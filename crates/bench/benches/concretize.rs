//! Criterion microbenchmarks mirroring the paper's three experiment
//! shapes on a fixed representative subset (full sweeps live in the
//! `fig5`/`fig6`/`fig7` binaries):
//!
//! * `fig5_encoding/*` — old vs indirect encoding, splicing off;
//! * `fig6_splicing/*` — old+mpich vs splice+mpiabi;
//! * `fig7_scaling/*` — splice candidates at 10 vs 100 replicas.

use criterion::{criterion_group, criterion_main, Criterion};
use spackle_buildcache::CacheSource;
use spackle_core::{Concretizer, ConcretizerConfig, Goal};
use spackle_radiuss::ExperimentEnv;
use spackle_spec::{parse_spec, Sym};
use std::sync::{Arc, OnceLock};

fn env() -> &'static ExperimentEnv {
    static ENV: OnceLock<ExperimentEnv> = OnceLock::new();
    ENV.get_or_init(|| ExperimentEnv::setup(300, 42))
}

fn local() -> &'static Arc<dyn CacheSource> {
    static C: OnceLock<Arc<dyn CacheSource>> = OnceLock::new();
    C.get_or_init(|| Arc::new(env().local.clone()))
}

fn public() -> &'static Arc<dyn CacheSource> {
    static C: OnceLock<Arc<dyn CacheSource>> = OnceLock::new();
    C.get_or_init(|| Arc::new(env().public.clone()))
}

fn bench_encoding(c: &mut Criterion) {
    let env = env();
    let mut g = c.benchmark_group("fig5_encoding");
    g.sample_size(10);
    for root in ["hypre", "mfem", "py-shroud"] {
        let spec = parse_spec(root).unwrap();
        for (label, cfg) in [
            ("old", ConcretizerConfig::old_spack()),
            ("indirect", ConcretizerConfig::splice_spack_disabled()),
        ] {
            g.bench_function(format!("{root}/{label}/local"), |b| {
                b.iter(|| {
                    Concretizer::new(&env.repo_plain)
                        .with_config(cfg.clone())
                        .with_reusable(local())
                        .concretize(&spec)
                        .unwrap()
                })
            });
            g.bench_function(format!("{root}/{label}/public"), |b| {
                b.iter(|| {
                    Concretizer::new(&env.repo_plain)
                        .with_config(cfg.clone())
                        .with_reusable(public())
                        .concretize(&spec)
                        .unwrap()
                })
            });
        }
    }
    g.finish();
}

fn bench_splicing(c: &mut Criterion) {
    let env = env();
    let mut g = c.benchmark_group("fig6_splicing");
    g.sample_size(10);
    for root in ["hypre", "mfem"] {
        let old_goal = parse_spec(&format!("{root} ^mpich")).unwrap();
        let new_goal = parse_spec(&format!("{root} ^mpiabi")).unwrap();
        g.bench_function(format!("{root}/old_mpich/local"), |b| {
            b.iter(|| {
                Concretizer::new(&env.repo_plain)
                    .with_config(ConcretizerConfig::old_spack())
                    .with_reusable(local())
                    .concretize(&old_goal)
                    .unwrap()
            })
        });
        g.bench_function(format!("{root}/splice_mpiabi/local"), |b| {
            b.iter(|| {
                Concretizer::new(&env.repo_mpiabi)
                    .with_config(ConcretizerConfig::splice_spack())
                    .with_reusable(local())
                    .concretize(&new_goal)
                    .unwrap()
            })
        });
        g.bench_function(format!("{root}/splice_mpiabi/public"), |b| {
            b.iter(|| {
                Concretizer::new(&env.repo_mpiabi)
                    .with_config(ConcretizerConfig::splice_spack())
                    .with_reusable(public())
                    .concretize(&new_goal)
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let env = env();
    let mut g = c.benchmark_group("fig7_scaling");
    g.sample_size(10);
    for n in [10usize, 100] {
        let repo = env.repo_with_replicas(n);
        let mut goal = Goal::single(parse_spec("hypre").unwrap());
        goal.forbidden.push(Sym::intern("mpich"));
        g.bench_function(format!("hypre/replicas_{n}"), |b| {
            b.iter(|| {
                Concretizer::new(&repo)
                    .with_config(ConcretizerConfig::splice_spack())
                    .with_reusable(local())
                    .concretize_goal(&goal)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_encoding, bench_splicing, bench_scaling);
criterion_main!(benches);
