//! Criterion microbenchmarks for the substrates: the ASP engine
//! (grounding + CDCL solving), spec hashing, parsing, and splicing.

use criterion::{criterion_group, criterion_main, Criterion};
use spackle_asp::{parse_program, Solver};
use spackle_spec::hash::Sha256;
use spackle_spec::spec::{ConcreteSpecBuilder, DepTypes};
use spackle_spec::{parse_spec, Version};

fn coloring_program(nodes: usize) -> String {
    let mut p = String::new();
    for i in 0..nodes {
        p.push_str(&format!("node({i}).\n"));
    }
    // Ring + chords.
    for i in 0..nodes {
        p.push_str(&format!("edge({},{}).\n", i, (i + 1) % nodes));
        if i + 3 < nodes {
            p.push_str(&format!("edge({},{}).\n", i, i + 3));
        }
    }
    p.push_str(
        r#"
        color("r"). color("g"). color("b"). color("y").
        1 { assign(N,C) : color(C) } 1 :- node(N).
        :- edge(A,B), assign(A,C), assign(B,C).
        cost(N, 1) :- assign(N, "y").
        #minimize { W@1,N : cost(N, W) }.
    "#,
    );
    p
}

fn bench_asp(c: &mut Criterion) {
    let mut g = c.benchmark_group("asp_engine");
    g.sample_size(10);
    let text = coloring_program(40);
    let prog = parse_program(&text).unwrap();
    g.bench_function("parse_coloring_40", |b| {
        b.iter(|| parse_program(&text).unwrap())
    });
    g.bench_function("solve_coloring_40", |b| {
        b.iter(|| Solver::new().solve(&prog).unwrap())
    });
    g.finish();
}

fn bench_spec(c: &mut Criterion) {
    let mut g = c.benchmark_group("spec");
    g.bench_function("sha256_64k", |b| {
        let data = vec![0xA5u8; 64 * 1024];
        b.iter(|| Sha256::digest(&data))
    });
    g.bench_function("parse_spec", |b| {
        b.iter(|| {
            parse_spec(
                "example@1.0.0+bzip arch=linux-centos8-skylake \
                 ^bzip2@1.0.8~debug+pic+shared ^zlib@1.2.11+optimize \
                 ^mpich@3.1 pmi=pmix",
            )
            .unwrap()
        })
    });
    g.bench_function("build_and_hash_dag_50", |b| {
        b.iter(|| {
            let mut bld = ConcreteSpecBuilder::new();
            let mut prev = bld.node("pkg0", Version::parse("1.0").unwrap());
            let root = prev;
            for i in 1..50 {
                let n = bld.node(&format!("pkg{i}"), Version::parse("1.0").unwrap());
                bld.edge(prev, n, DepTypes::LINK_RUN);
                prev = n;
            }
            bld.build(root).unwrap()
        })
    });
    g.bench_function("splice_chain_30", |b| {
        let mut bld = ConcreteSpecBuilder::new();
        let leaf = bld.node("leaf", Version::parse("1.0").unwrap());
        let mut prev = leaf;
        let mut root = leaf;
        for i in 1..30 {
            let n = bld.node(&format!("mid{i}"), Version::parse("1.0").unwrap());
            bld.edge(n, prev, DepTypes::LINK_RUN);
            prev = n;
            root = n;
        }
        let chain = bld.build(root).unwrap();
        let mut lb = ConcreteSpecBuilder::new();
        let nl = lb.node("leaf", Version::parse("2.0").unwrap());
        let new_leaf = lb.build(nl).unwrap();
        b.iter(|| chain.splice(&new_leaf, true).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_asp, bench_spec);
criterion_main!(benches);
