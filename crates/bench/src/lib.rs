//! Shared infrastructure for the figure-regeneration binaries: trial
//! running (parallel across workloads, sequential within a workload),
//! summary statistics, and a tiny CLI-argument parser.

use std::time::Duration;

/// Mean and sample standard deviation, in milliseconds.
pub fn mean_std_ms(times: &[Duration]) -> (f64, f64) {
    let ms: Vec<f64> = times.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    let n = ms.len() as f64;
    let mean = ms.iter().sum::<f64>() / n;
    if ms.len() < 2 {
        return (mean, 0.0);
    }
    let var = ms.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Percentage increase from `base` to `new` (paper-style deltas).
pub fn percent_increase(base: f64, new: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        (new - base) / base * 100.0
    }
}

/// Run `trials` timed invocations of `f` (sequentially, so each sample
/// is a clean single-threaded solve) and return the wall times.
pub fn run_trials(trials: usize, f: impl FnMut() -> Duration) -> Vec<Duration> {
    run_trials_warm(trials, 0, f)
}

/// Like [`run_trials`], but first runs `warmup` invocations whose times
/// are discarded. Warmup evicts one-time costs — lazy symbol interning,
/// allocator growth, cold instruction caches — that would otherwise
/// inflate the first sample and the reported standard deviation.
pub fn run_trials_warm(
    trials: usize,
    warmup: usize,
    mut f: impl FnMut() -> Duration,
) -> Vec<Duration> {
    for _ in 0..warmup {
        f();
    }
    (0..trials).map(|_| f()).collect()
}

/// Execute jobs in parallel with bounded threads, preserving input
/// order in the output.
pub fn parallel_map<T, R, F>(inputs: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n).max(1);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let inputs_ref = &inputs;
    let f_ref = &f;
    let indices: Vec<Vec<usize>> = (0..threads)
        .map(|t| (0..n).filter(|i| i % threads == t).collect())
        .collect();
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for chunk in &indices {
            handles.push(s.spawn(move |_| {
                chunk
                    .iter()
                    .map(|&i| (i, f_ref(&inputs_ref[i])))
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            for (i, r) in h.join().expect("bench worker") {
                out[i] = Some(r);
            }
        }
    })
    .expect("crossbeam scope");
    out.into_iter().map(|o| o.expect("all jobs ran")).collect()
}

/// Default worker-thread count for experiment fan-out.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Minimal `--key value` argument parser shared by the fig binaries.
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parse `std::env::args()`.
    pub fn parse() -> Args {
        Args::from_argv(std::env::args().skip(1).collect())
    }

    /// Parse an explicit argument vector (the testing seam for
    /// [`Args::parse`]).
    pub fn from_argv(argv: Vec<String>) -> Args {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            if let Some(key) = argv[i].strip_prefix("--") {
                // A following `--flag` is the next option, not this
                // option's value (so boolean flags compose anywhere).
                let value = match argv.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        i += 1;
                        v.clone()
                    }
                    _ => String::new(),
                };
                pairs.push((key.to_string(), value));
            }
            i += 1;
        }
        Args { pairs }
    }

    /// Fetch a numeric flag with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// Fetch a u64 flag with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// Fetch a string flag with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| default.to_string())
    }

    /// Is a boolean flag present?
    pub fn has(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let times = vec![
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
        ];
        let (mean, std) = mean_std_ms(&times);
        assert!((mean - 20.0).abs() < 1e-9);
        assert!((std - 10.0).abs() < 1e-9);
    }

    #[test]
    fn single_sample_no_std() {
        let (mean, std) = mean_std_ms(&[Duration::from_millis(5)]);
        assert!((mean - 5.0).abs() < 1e-9);
        assert_eq!(std, 0.0);
    }

    #[test]
    fn percent() {
        assert!((percent_increase(100.0, 153.0) - 53.0).abs() < 1e-9);
        assert_eq!(percent_increase(0.0, 10.0), 0.0);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let inputs: Vec<usize> = (0..100).collect();
        let out = parallel_map(inputs, 7, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn trials_count() {
        let times = run_trials(4, || Duration::from_micros(1));
        assert_eq!(times.len(), 4);
    }

    #[test]
    fn boolean_flags_do_not_swallow_the_next_option() {
        let args = Args::from_argv(
            ["--trials", "2", "--smoke", "--out", "report.json"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert_eq!(args.get_usize("trials", 0), 2);
        assert!(args.has("smoke"));
        assert_eq!(args.get_str("out", "default"), "report.json");
    }

    #[test]
    fn warmup_runs_are_discarded() {
        let mut calls = 0;
        let times = run_trials_warm(3, 2, || {
            calls += 1;
            Duration::from_micros(calls)
        });
        assert_eq!(calls, 5, "warmup + trials all execute");
        assert_eq!(times.len(), 3, "only timed trials are recorded");
        assert_eq!(times[0], Duration::from_micros(3), "warmup discarded");
    }
}
