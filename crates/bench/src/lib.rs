//! Shared infrastructure for the figure-regeneration binaries: trial
//! running (parallel across workloads, sequential within a workload),
//! summary statistics, and a tiny CLI-argument parser.

use std::time::Duration;

/// Mean and sample standard deviation, in milliseconds.
pub fn mean_std_ms(times: &[Duration]) -> (f64, f64) {
    let ms: Vec<f64> = times.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    let n = ms.len() as f64;
    let mean = ms.iter().sum::<f64>() / n;
    if ms.len() < 2 {
        return (mean, 0.0);
    }
    let var = ms.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Percentage increase from `base` to `new` (paper-style deltas).
pub fn percent_increase(base: f64, new: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        (new - base) / base * 100.0
    }
}

/// Run `trials` timed invocations of `f` (sequentially, so each sample
/// is a clean single-threaded solve) and return the wall times.
pub fn run_trials(trials: usize, mut f: impl FnMut() -> Duration) -> Vec<Duration> {
    (0..trials).map(|_| f()).collect()
}

/// Execute jobs in parallel with bounded threads, preserving input
/// order in the output.
pub fn parallel_map<T, R, F>(inputs: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n).max(1);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let inputs_ref = &inputs;
    let f_ref = &f;
    let indices: Vec<Vec<usize>> = (0..threads)
        .map(|t| (0..n).filter(|i| i % threads == t).collect())
        .collect();
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for chunk in &indices {
            handles.push(s.spawn(move |_| {
                chunk
                    .iter()
                    .map(|&i| (i, f_ref(&inputs_ref[i])))
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            for (i, r) in h.join().expect("bench worker") {
                out[i] = Some(r);
            }
        }
    })
    .expect("crossbeam scope");
    out.into_iter().map(|o| o.expect("all jobs ran")).collect()
}

/// Default worker-thread count for experiment fan-out.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Minimal `--key value` argument parser shared by the fig binaries.
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parse `std::env::args()`.
    pub fn parse() -> Args {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            if let Some(key) = argv[i].strip_prefix("--") {
                let value = argv.get(i + 1).cloned().unwrap_or_default();
                pairs.push((key.to_string(), value));
                i += 2;
            } else {
                i += 1;
            }
        }
        Args { pairs }
    }

    /// Fetch a numeric flag with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// Fetch a u64 flag with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// Is a boolean flag present?
    pub fn has(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let times = vec![
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
        ];
        let (mean, std) = mean_std_ms(&times);
        assert!((mean - 20.0).abs() < 1e-9);
        assert!((std - 10.0).abs() < 1e-9);
    }

    #[test]
    fn single_sample_no_std() {
        let (mean, std) = mean_std_ms(&[Duration::from_millis(5)]);
        assert!((mean - 5.0).abs() < 1e-9);
        assert_eq!(std, 0.0);
    }

    #[test]
    fn percent() {
        assert!((percent_increase(100.0, 153.0) - 53.0).abs() < 1e-9);
        assert_eq!(percent_increase(0.0, 10.0), 0.0);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let inputs: Vec<usize> = (0..100).collect();
        let out = parallel_map(inputs, 7, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn trials_count() {
        let times = run_trials(4, || Duration::from_micros(1));
        assert_eq!(times.len(), 4);
    }
}
