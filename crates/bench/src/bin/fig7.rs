//! **Figure 7 / RQ4** — scaling with the number of splice candidates.
//! The repository gains 10..100 copies of the `mpiabi` mock differing
//! only in name, each declaring `can_splice("mpich@3.4.3")`. The
//! MPI-dependent RADIUSS specs (plus `py-shroud` as the flat control)
//! are concretized against the local buildcache with `mpich` forbidden
//! from the solution, leaving the solver free to pick any replica.
//!
//! Paper result: mean concretization time rises ~74.2% from 10 to 100
//! replicas for MPI-dependent specs, and stays flat for specs without an
//! MPI dependency.
//!
//! Usage:
//!   fig7 [--trials N] [--warmup N] [--seed S] [--threads N] [--replicas a,b,c]

use spackle_bench::{default_threads, mean_std_ms, parallel_map, percent_increase, run_trials_warm, Args};
use spackle_core::{Concretizer, ConcretizerConfig, Goal};
use spackle_radiuss::ExperimentEnv;
use spackle_buildcache::CacheSource;
use spackle_spec::{parse_spec, Sym};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let trials = args.get_usize("trials", 10);
    let warmup = args.get_usize("warmup", 1);
    let seed = args.get_u64("seed", 42);
    let threads = args.get_usize("threads", default_threads());
    let replica_counts = [1usize, 10, 25, 50, 75, 100];

    eprintln!("fig7: setting up environment...");
    let t0 = Instant::now();
    // Public cache not used: the paper runs Fig 7 on the local cache only.
    let env = ExperimentEnv::setup(0, seed);
    eprintln!(
        "fig7: setup took {:?}; local cache = {} specs",
        t0.elapsed(),
        env.local.len()
    );

    let mut roots: Vec<String> = env
        .mpi_roots
        .iter()
        .map(|s| s.as_str().to_string())
        .collect();
    roots.push("py-shroud".to_string());

    println!("# Figure 7 (RQ4): scaling the number of splice candidates");
    println!("# local cache only; concretized specs must NOT depend on mpich");
    println!("# trials per cell: {trials}");
    print!("{:<14}", "spec");
    for n in replica_counts {
        print!(" {:>12}", format!("n={n}(ms)"));
    }
    println!();

    // Pre-build the replica repositories once.
    let repos: Vec<_> = replica_counts
        .iter()
        .map(|&n| (n, env.repo_with_replicas(n)))
        .collect();

    let is_mpi_root = |root: &str| env.mpi_roots.iter().any(|m| m.as_str() == root);
    // One shared handle, read concurrently by every worker thread.
    let local: Arc<dyn CacheSource> = Arc::new(env.local.clone());

    struct Row {
        root: String,
        means: Vec<(usize, f64, f64)>,
    }

    let rows: Vec<Row> = parallel_map(roots, threads, |root| {
        let mut means = Vec::new();
        for (n, repo) in &repos {
            let mut goal = Goal::single(parse_spec(root).expect("root"));
            goal.forbidden.push(Sym::intern("mpich"));
            let times = run_trials_warm(trials, warmup, || {
                let t = Instant::now();
                Concretizer::new(repo)
                    .with_config(ConcretizerConfig::splice_spack())
                    .with_reusable(&local)
                    .concretize_goal(&goal)
                    .unwrap_or_else(|e| panic!("fig7 {root} n={n}: {e}"));
                t.elapsed()
            });
            let (mean, std) = mean_std_ms(&times);
            means.push((*n, mean, std));
        }
        Row {
            root: root.clone(),
            means,
        }
    });

    let mut mpi_at: std::collections::BTreeMap<usize, (f64, usize)> = Default::default();
    for row in &rows {
        print!("{:<14}", row.root);
        for &(n, mean, std) in &row.means {
            print!(" {:>6.2}±{:<5.2}", mean, std);
            if is_mpi_root(&row.root) {
                let e = mpi_at.entry(n).or_insert((0.0, 0));
                e.0 += mean;
                e.1 += 1;
            }
        }
        println!();
    }

    println!();
    let m10 = mpi_at.get(&10).map(|(s, n)| s / *n as f64).unwrap_or(0.0);
    let m100 = mpi_at.get(&100).map(|(s, n)| s / *n as f64).unwrap_or(0.0);
    println!(
        "aggregate MPI-dependent specs: mean {:.2} ms at 10 replicas, {:.2} ms at 100 \
         replicas; increase {:+.1}%   (paper: +74.2%)",
        m10,
        m100,
        percent_increase(m10, m100)
    );
    if let Some(ctrl) = rows.iter().find(|r| r.root == "py-shroud") {
        let first = ctrl.means.first().map(|&(_, m, _)| m).unwrap_or(0.0);
        let last = ctrl.means.last().map(|&(_, m, _)| m).unwrap_or(0.0);
        println!(
            "control py-shroud (no MPI dependency): {:.2} ms -> {:.2} ms ({:+.1}%) — \
             expected flat",
            first,
            last,
            percent_increase(first, last)
        );
    }
}
