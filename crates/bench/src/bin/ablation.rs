//! **Ablation** — how much the encoder's relevance filtering matters.
//!
//! The concretizer restricts package facts and reusable-spec facts to
//! the goal's possible dependency closure before grounding (DESIGN.md
//! §3; Spack performs analogous scoping). This harness measures
//! concretization with the filter on vs off against caches of growing
//! size: unfiltered encoding hands the solver every entry, so its cost
//! grows with the whole cache rather than with the goal's slice of it.
//!
//! Usage:
//!   ablation [--trials N] [--warmup N] [--seed S]

use spackle_bench::{mean_std_ms, percent_increase, run_trials_warm, Args};
use spackle_buildcache::CacheSource;
use spackle_core::{Concretizer, ConcretizerConfig};
use spackle_radiuss::{public_cache, radiuss_repo};
use spackle_spec::parse_spec;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let trials = args.get_usize("trials", 5);
    let warmup = args.get_usize("warmup", 1);
    let seed = args.get_u64("seed", 42);

    let repo = radiuss_repo();
    println!("# Ablation: possible-closure relevance filtering");
    println!("# goal: hypre (11-node closure) against growing public caches");
    println!(
        "{:>10} {:>9} {:>16} {:>16} {:>9}",
        "cache dags", "entries", "filtered(ms)", "unfiltered(ms)", "penalty%"
    );

    for dags in [100usize, 300, 1000] {
        let cache = public_cache(&repo, dags, seed);
        let entries = cache.len();
        let cache: Arc<dyn CacheSource> = Arc::new(cache);
        let goal = parse_spec("hypre").expect("goal");
        let time_with = |filter: bool| {
            let cfg = ConcretizerConfig {
                filter_irrelevant: filter,
                ..ConcretizerConfig::splice_spack_disabled()
            };
            let times = run_trials_warm(trials, warmup, || {
                let t = Instant::now();
                Concretizer::new(&repo)
                    .with_config(cfg.clone())
                    .with_reusable(&cache)
                    .concretize(&goal)
                    .expect("ablation solve");
                t.elapsed()
            });
            mean_std_ms(&times)
        };
        let (on_mean, on_std) = time_with(true);
        let (off_mean, off_std) = time_with(false);
        println!(
            "{:>10} {:>9} {:>9.2}±{:<5.2} {:>9.2}±{:<5.2} {:>+8.1}",
            dags,
            entries,
            on_mean,
            on_std,
            off_mean,
            off_std,
            percent_increase(on_mean, off_mean)
        );
    }
    println!();
    println!("filtered keeps the solver's view proportional to the goal's");
    println!("closure; unfiltered grows with the entire cache.");
}
