//! **Figure 5 / RQ1** — overhead of the changed encoding for reusable
//! specs, with automatic splicing *disabled*: concretization time of all
//! 32 RADIUSS specs under *old spack* (direct `imposed_constraint`
//! facts) vs *splice spack* (`hash_attr` indirection), against the local
//! and the public buildcache.
//!
//! Paper result: +4.7% mean concretization time with the local cache,
//! +7.1% with the public cache — i.e. the indirection is negligible.
//!
//! Usage:
//!   fig5 [--trials N] [--warmup N] [--public-dags N] [--seed S] [--threads N]
//!
//! Defaults keep total runtime modest; pass `--trials 30 --public-dags
//! 8000` for paper-scale runs (the public cache then holds ~20k specs).

use spackle_bench::{default_threads, mean_std_ms, parallel_map, percent_increase, run_trials_warm, Args};
use spackle_core::{Concretizer, ConcretizerConfig};
use spackle_radiuss::ExperimentEnv;
use spackle_buildcache::CacheSource;
use spackle_spec::parse_spec;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let trials = args.get_usize("trials", 10);
    let warmup = args.get_usize("warmup", 1);
    let public_dags = args.get_usize("public-dags", 1000);
    let seed = args.get_u64("seed", 42);
    let threads = args.get_usize("threads", default_threads());

    eprintln!("fig5: setting up environment (public-dags={public_dags}, seed={seed})...");
    let t0 = Instant::now();
    let env = ExperimentEnv::setup(public_dags, seed);
    eprintln!(
        "fig5: setup took {:?}; local cache = {} specs, public cache = {} specs",
        t0.elapsed(),
        env.local.len(),
        env.public.len()
    );

    println!("# Figure 5 (RQ1): encoding overhead, splicing disabled");
    println!("# trials per cell: {trials}");
    println!(
        "{:<14} {:<7} {:>12} {:>12} {:>8}",
        "spec", "cache", "old(ms)", "splice(ms)", "delta%"
    );

    struct Cell {
        root: String,
        cache_label: &'static str,
        old_mean: f64,
        old_std: f64,
        new_mean: f64,
        new_std: f64,
    }

    let mut jobs: Vec<(String, &'static str)> = Vec::new();
    for root in &env.roots {
        for cache_label in ["local", "public"] {
            jobs.push((root.as_str().to_string(), cache_label));
        }
    }

    // Shared handles built once: every worker thread's solves read the
    // same two indexes (the daemon-style sharing the owned API enables).
    let local: Arc<dyn CacheSource> = Arc::new(env.local.clone());
    let public: Arc<dyn CacheSource> = Arc::new(env.public.clone());

    let cells: Vec<Cell> = parallel_map(jobs, threads, |(root, cache_label)| {
        let cache = match *cache_label {
            "local" => &local,
            _ => &public,
        };
        let spec = parse_spec(root).expect("root name");
        let time_config = |cfg: ConcretizerConfig| {
            run_trials_warm(trials, warmup, || {
                let t = Instant::now();
                Concretizer::new(&env.repo_plain)
                    .with_config(cfg.clone())
                    .with_reusable(cache)
                    .concretize(&spec)
                    .unwrap_or_else(|e| panic!("fig5 {root}: {e}"));
                t.elapsed()
            })
        };
        let old = time_config(ConcretizerConfig::old_spack());
        let new = time_config(ConcretizerConfig::splice_spack_disabled());
        let (old_mean, old_std) = mean_std_ms(&old);
        let (new_mean, new_std) = mean_std_ms(&new);
        Cell {
            root: root.clone(),
            cache_label,
            old_mean,
            old_std,
            new_mean,
            new_std,
        }
    });

    let mut agg: std::collections::BTreeMap<&str, (f64, f64, usize)> =
        std::collections::BTreeMap::new();
    for c in &cells {
        println!(
            "{:<14} {:<7} {:>6.2}±{:<5.2} {:>6.2}±{:<5.2} {:>+7.1}",
            c.root,
            c.cache_label,
            c.old_mean,
            c.old_std,
            c.new_mean,
            c.new_std,
            percent_increase(c.old_mean, c.new_mean)
        );
        let e = agg.entry(c.cache_label).or_insert((0.0, 0.0, 0));
        e.0 += c.old_mean;
        e.1 += c.new_mean;
        e.2 += 1;
    }

    println!();
    for (label, (old_sum, new_sum, n)) in agg {
        let paper = match label {
            "local" => "+4.7%",
            _ => "+7.1%",
        };
        println!(
            "aggregate {label:<7} ({n} specs): old mean {:.2} ms, splice mean {:.2} ms, \
             delta {:+.1}%   (paper: {paper})",
            old_sum / n as f64,
            new_sum / n as f64,
            percent_increase(old_sum, new_sum)
        );
    }
}
