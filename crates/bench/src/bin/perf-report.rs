//! **perf-report** — the concretization fast-path regression harness.
//!
//! Runs fig5/fig6-style multi-goal RADIUSS workloads through three
//! configurations of the same concretizer:
//!
//! * `sequential` — single-threaded grounding, no memoization (the
//!   baseline every prior figure measured);
//! * `parallel`   — `ground_threads` worker threads for grounding joins;
//! * `cached`     — `ground_threads` workers plus a shared
//!   [`spackle_core::GroundCache`], so repeated solves skip
//!   encode + parse + ground + CNF translation entirely.
//!
//! Every mode must produce *identical* solutions (same DAG hashes, same
//! reuse/build/splice decisions) — the run exits nonzero on any
//! divergence, which is what the CI `bench-smoke` job gates on. Timing
//! and cache statistics are written to `BENCH_concretize.json`.
//!
//! Usage:
//!   perf-report [--trials N] [--warmup N] [--goals N] [--public-dags N]
//!               [--seed S] [--ground-threads N] [--out PATH] [--smoke]
//!
//! `--smoke` shrinks the workloads for CI (fewer goals, smaller public
//! cache); `--ground-threads` defaults to 4 to match the paper-harness
//! speedup criterion.

use serde::Serialize;
use spackle_asp::SolverConfig;
use spackle_bench::{mean_std_ms, run_trials_warm, Args};
use spackle_buildcache::CacheSource;
use spackle_core::{Concretizer, ConcretizerConfig, GroundCache, Solution};
use spackle_radiuss::ExperimentEnv;
use spackle_repo::Repository;
use spackle_spec::{parse_spec, AbstractSpec};
use std::sync::Arc;
use std::time::Instant;

/// A goal with its display name.
struct NamedGoal {
    name: String,
    spec: AbstractSpec,
}

/// A canonical rendering of everything that makes two solutions "the
/// same": per-root DAG hashes plus the reuse / build / splice decisions.
fn signature(goal: &NamedGoal, sol: &Solution) -> String {
    let hashes: Vec<String> = sol.specs.iter().map(|s| s.dag_hash().to_string()).collect();
    format!(
        "{} specs=[{}] reused={} built={} spliced={}",
        goal.name,
        hashes.join(","),
        sol.reused.len(),
        sol.built.len(),
        sol.spliced.len()
    )
}

/// One timed sweep over every goal in the workload; returns the wall
/// time and the per-goal solution signatures.
fn sweep(
    repo: &Repository,
    cache: &Arc<dyn CacheSource>,
    config: &ConcretizerConfig,
    ground_cache: Option<&Arc<GroundCache>>,
    goals: &[NamedGoal],
) -> (std::time::Duration, Vec<String>) {
    let mut conc = Concretizer::new(repo)
        .with_config(config.clone())
        .with_reusable(cache);
    if let Some(gc) = ground_cache {
        conc = conc.with_ground_cache(Arc::clone(gc));
    }
    let t = Instant::now();
    let mut sigs = Vec::with_capacity(goals.len());
    for g in goals {
        let sol = conc
            .concretize(&g.spec)
            .unwrap_or_else(|e| panic!("perf-report {}: {e}", g.name));
        sigs.push(signature(g, &sol));
    }
    (t.elapsed(), sigs)
}

struct ModeResult {
    name: &'static str,
    mean_ms: f64,
    std_ms: f64,
    sigs: Vec<Vec<String>>,
    cache_hits: u64,
    cache_misses: u64,
}

/// Run one mode: `warmup` discarded sweeps, then `trials` timed ones.
/// The ground cache (when present) is deliberately shared across warmup
/// and trials — populating it is the warmup's job.
#[allow(clippy::too_many_arguments)]
fn run_mode(
    name: &'static str,
    trials: usize,
    warmup: usize,
    repo: &Repository,
    cache: &Arc<dyn CacheSource>,
    config: &ConcretizerConfig,
    ground_cache: Option<&Arc<GroundCache>>,
    goals: &[NamedGoal],
) -> ModeResult {
    let mut sigs: Vec<Vec<String>> = Vec::new();
    let times = run_trials_warm(trials, warmup, || {
        let (dt, s) = sweep(repo, cache, config, ground_cache, goals);
        sigs.push(s);
        dt
    });
    let (mean_ms, std_ms) = mean_std_ms(&times);
    ModeResult {
        name,
        mean_ms,
        std_ms,
        sigs,
        cache_hits: ground_cache.map_or(0, |gc| gc.hits()),
        cache_misses: ground_cache.map_or(0, |gc| gc.misses()),
    }
}

/// Search + preprocessing effort summed over one sweep of a workload.
#[derive(Serialize, Default, Clone, Copy)]
struct SearchJson {
    conflicts: u64,
    decisions: u64,
    propagations: u64,
    restarts: u64,
    pre_fixed_literals: u64,
    pre_failed_literals: u64,
    pre_pure_literals: u64,
    pre_subsumed_clauses: u64,
    pre_strengthened_clauses: u64,
    pre_eliminated_vars: u64,
}

impl SearchJson {
    fn absorb(&mut self, sol: &Solution) {
        let s = &sol.stats.solver;
        self.conflicts += s.conflicts;
        self.decisions += s.decisions;
        self.propagations += s.propagations;
        self.restarts += s.restarts;
        self.pre_fixed_literals += s.pre_fixed_literals;
        self.pre_failed_literals += s.pre_failed_literals;
        self.pre_pure_literals += s.pre_pure_literals;
        self.pre_subsumed_clauses += s.pre_subsumed_clauses;
        self.pre_strengthened_clauses += s.pre_strengthened_clauses;
        self.pre_eliminated_vars += s.pre_eliminated_vars;
    }
}

/// One engine's entry in the seed-vs-modern comparison.
#[derive(Serialize)]
struct EngineModeJson {
    mean_ms: f64,
    std_ms: f64,
    speedup_vs_seed: f64,
    search: SearchJson,
}

/// The SAT-engine comparison: the same workload solved by the
/// pre-modernization engine (no preprocessing, no phase saving /
/// restarts / LBD deletion, from-scratch branch-and-bound) and by the
/// full modern engine, each over its own warm ground cache so the
/// measurement is solve-dominated.
#[derive(Serialize)]
struct EngineJson {
    seed: EngineModeJson,
    modern: EngineModeJson,
}

/// Like [`sweep`], but also sums the solver's effort counters and
/// records each goal's lexicographic optimum (see the engine gate).
fn engine_sweep(
    repo: &Repository,
    cache: &Arc<dyn CacheSource>,
    config: &ConcretizerConfig,
    ground_cache: &Arc<GroundCache>,
    goals: &[NamedGoal],
) -> (std::time::Duration, Vec<String>, Vec<String>, SearchJson) {
    let conc = Concretizer::new(repo)
        .with_config(config.clone())
        .with_reusable(cache)
        .with_ground_cache(Arc::clone(ground_cache));
    let t = Instant::now();
    let mut sigs = Vec::with_capacity(goals.len());
    let mut costs = Vec::with_capacity(goals.len());
    let mut effort = SearchJson::default();
    for g in goals {
        let sol = conc
            .concretize(&g.spec)
            .unwrap_or_else(|e| panic!("perf-report engine {}: {e}", g.name));
        effort.absorb(&sol);
        costs.push(format!("{} cost={:?}", g.name, sol.cost));
        sigs.push(signature(g, &sol));
    }
    (t.elapsed(), sigs, costs, effort)
}

struct EngineModeResult {
    mean_ms: f64,
    std_ms: f64,
    sigs: Vec<Vec<String>>,
    costs: Vec<Vec<String>>,
    effort: SearchJson,
}

fn run_engine_mode(
    trials: usize,
    warmup: usize,
    repo: &Repository,
    cache: &Arc<dyn CacheSource>,
    config: &ConcretizerConfig,
    goals: &[NamedGoal],
) -> EngineModeResult {
    let ground_cache = GroundCache::shared();
    let mut sigs: Vec<Vec<String>> = Vec::new();
    let mut costs: Vec<Vec<String>> = Vec::new();
    let mut effort = SearchJson::default();
    let times = run_trials_warm(trials, warmup, || {
        let (dt, s, c, e) = engine_sweep(repo, cache, config, &ground_cache, goals);
        sigs.push(s);
        costs.push(c);
        effort = e;
        dt
    });
    let (mean_ms, std_ms) = mean_std_ms(&times);
    EngineModeResult {
        mean_ms,
        std_ms,
        sigs,
        costs,
        effort,
    }
}

struct Workload<'a> {
    name: &'static str,
    repo: &'a Repository,
    cache: Arc<dyn CacheSource>,
    base_config: ConcretizerConfig,
    goals: Vec<NamedGoal>,
}

/// One mode's entry in `BENCH_concretize.json`. `speedup_vs_sequential`
/// is 1.0 for the sequential baseline itself; the cache counters are
/// zero for the uncached modes.
#[derive(Serialize)]
struct ModeJson {
    mean_ms: f64,
    std_ms: f64,
    speedup_vs_sequential: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
}

#[derive(Serialize)]
struct ModesJson {
    sequential: ModeJson,
    parallel: ModeJson,
    cached: ModeJson,
}

#[derive(Serialize)]
struct WorkloadJson {
    name: String,
    goals: Vec<String>,
    modes: ModesJson,
    engine: EngineJson,
    equivalent: bool,
}

#[derive(Serialize)]
struct ReportJson {
    generated_by: String,
    workload: String,
    cpus: usize,
    ground_threads: usize,
    trials: usize,
    warmup: usize,
    smoke: bool,
    public_dags: usize,
    seed: u64,
    workloads: Vec<WorkloadJson>,
}

impl ModeJson {
    fn from_result(m: &ModeResult, seq_mean: f64) -> ModeJson {
        let total = m.cache_hits + m.cache_misses;
        ModeJson {
            mean_ms: round3(m.mean_ms),
            std_ms: round3(m.std_ms),
            speedup_vs_sequential: round3(seq_mean / m.mean_ms.max(1e-9)),
            cache_hits: m.cache_hits,
            cache_misses: m.cache_misses,
            cache_hit_rate: if total > 0 {
                round3(m.cache_hits as f64 / total as f64)
            } else {
                0.0
            },
        }
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let trials = args.get_usize("trials", if smoke { 2 } else { 5 });
    let warmup = args.get_usize("warmup", 1);
    let ground_threads = args.get_usize("ground-threads", 4);
    let goals_n = args.get_usize("goals", if smoke { 3 } else { 32 });
    let public_dags = args.get_usize("public-dags", if smoke { 50 } else { 300 });
    let seed = args.get_u64("seed", 42);
    let out_path = args.get_str("out", "BENCH_concretize.json");

    eprintln!("perf-report: setting up environment (public-dags={public_dags}, seed={seed})...");
    let t0 = Instant::now();
    let env = ExperimentEnv::setup(public_dags, seed);
    eprintln!(
        "perf-report: setup took {:?}; local cache = {} specs",
        t0.elapsed(),
        env.local.len()
    );

    // Workload 1 (fig5-style): plain RADIUSS roots, indirect encoding,
    // splicing off, local cache, static dead-rule pruning on — the full
    // fast-path configuration (pruning cost is part of what a
    // ground-cache hit amortizes away).
    let fig5_goals: Vec<NamedGoal> = env
        .roots
        .iter()
        .take(goals_n)
        .map(|r| NamedGoal {
            name: r.as_str().to_string(),
            spec: parse_spec(r.as_str()).expect("root name"),
        })
        .collect();

    // Workload 2 (fig6-style): MPI-dependent roots pinned to the mpiabi
    // mock, full splicing, local cache.
    let fig6_goals: Vec<NamedGoal> = env
        .mpi_roots
        .iter()
        .take(goals_n)
        .map(|r| {
            let name = format!("{} ^mpiabi", r.as_str());
            NamedGoal {
                spec: parse_spec(&name).expect("mpi goal"),
                name,
            }
        })
        .collect();

    // One shared handle: both workloads (and every mode within them)
    // read the same local-cache index, daemon-style.
    let local: Arc<dyn CacheSource> = Arc::new(env.local.clone());

    let workloads = [
        Workload {
            name: "fig5-multi-goal",
            repo: &env.repo_plain,
            cache: Arc::clone(&local),
            base_config: ConcretizerConfig {
                prune_dead: true,
                ..ConcretizerConfig::splice_spack_disabled()
            },
            goals: fig5_goals,
        },
        Workload {
            name: "fig6-splice-multi-goal",
            repo: &env.repo_mpiabi,
            cache: Arc::clone(&local),
            base_config: ConcretizerConfig::splice_spack(),
            goals: fig6_goals,
        },
    ];

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut diverged = false;
    let mut workload_reports = Vec::new();

    for w in &workloads {
        eprintln!(
            "perf-report: workload {} ({} goals, {} trials + {} warmup per mode)",
            w.name,
            w.goals.len(),
            trials,
            warmup
        );

        let mut seq_cfg = w.base_config.clone();
        seq_cfg.solver.ground_threads = 1;
        let mut par_cfg = w.base_config.clone();
        par_cfg.solver.ground_threads = ground_threads;

        let ground_cache = GroundCache::shared();
        let modes = [
            run_mode("sequential", trials, warmup, w.repo, &w.cache, &seq_cfg, None, &w.goals),
            run_mode("parallel", trials, warmup, w.repo, &w.cache, &par_cfg, None, &w.goals),
            run_mode(
                "cached",
                trials,
                warmup,
                w.repo,
                &w.cache,
                &par_cfg,
                Some(&ground_cache),
                &w.goals,
            ),
        ];

        // --- SAT-engine comparison: seed vs modern, warm caches ---
        let mut seed_cfg = par_cfg.clone();
        seed_cfg.solver = SolverConfig {
            ground_threads: seed_cfg.solver.ground_threads,
            ..SolverConfig::seed_engine()
        };
        let modern_cfg = par_cfg.clone();
        let seed_engine = run_engine_mode(trials, warmup, w.repo, &w.cache, &seed_cfg, &w.goals);
        let modern_engine =
            run_engine_mode(trials, warmup, w.repo, &w.cache, &modern_cfg, &w.goals);

        // Equivalence gate: every sweep of every mode must match the
        // first sequential sweep goal-for-goal.
        let reference = &modes[0].sigs[0];
        for m in &modes {
            for (i, s) in m.sigs.iter().enumerate() {
                if s != reference {
                    diverged = true;
                    eprintln!(
                        "perf-report: DIVERGENCE in {} mode {} sweep {i}:\n  expected {:?}\n  got      {:?}",
                        w.name, m.name, reference, s
                    );
                }
            }
        }
        // Engine gate, part 1: the modern engine runs the *same* solver
        // configuration as the sequential reference, so determinism
        // demands bit-identical solutions, DAG hashes included.
        for (i, s) in modern_engine.sigs.iter().enumerate() {
            if s != reference {
                diverged = true;
                eprintln!(
                    "perf-report: DIVERGENCE in {} engine modern-engine sweep {i}:\n  expected {:?}\n  got      {:?}",
                    w.name, reference, s
                );
            }
        }
        // Engine gate, part 2: the seed engine differs in search
        // machinery, which the solver only guarantees preserves
        // satisfiability and the lexicographic optimum — co-optimal
        // models (ties) may legitimately differ, so the comparison is on
        // cost vectors, not DAG hashes. (The RADIUSS workloads do
        // exhibit such ties; see DESIGN.md.)
        let cost_reference = &modern_engine.costs[0];
        for (ename, e) in [("seed-engine", &seed_engine), ("modern-engine", &modern_engine)] {
            for (i, c) in e.costs.iter().enumerate() {
                if c != cost_reference {
                    diverged = true;
                    eprintln!(
                        "perf-report: DIVERGENCE in {} engine {ename} optima sweep {i}:\n  expected {:?}\n  got      {:?}",
                        w.name, cost_reference, c
                    );
                }
            }
        }

        let seq_mean = modes[0].mean_ms;
        for m in &modes {
            eprintln!(
                "perf-report:   {:<10} {:>9.2} ms ± {:.2}{}",
                m.name,
                m.mean_ms,
                m.std_ms,
                if m.name == "sequential" {
                    String::new()
                } else {
                    format!("  ({:.2}x vs sequential)", seq_mean / m.mean_ms.max(1e-9))
                }
            );
        }

        let engine_speedup = seed_engine.mean_ms / modern_engine.mean_ms.max(1e-9);
        eprintln!(
            "perf-report:   seed-engine   {:>9.2} ms ± {:.2}",
            seed_engine.mean_ms, seed_engine.std_ms
        );
        eprintln!(
            "perf-report:   modern-engine {:>9.2} ms ± {:.2}  ({engine_speedup:.2}x vs seed; \
             {} vars eliminated, {} clauses subsumed, {} conflicts vs {})",
            modern_engine.mean_ms,
            modern_engine.std_ms,
            modern_engine.effort.pre_eliminated_vars,
            modern_engine.effort.pre_subsumed_clauses,
            modern_engine.effort.conflicts,
            seed_engine.effort.conflicts,
        );

        workload_reports.push(WorkloadJson {
            name: w.name.to_string(),
            goals: w.goals.iter().map(|g| g.name.clone()).collect(),
            modes: ModesJson {
                sequential: ModeJson::from_result(&modes[0], seq_mean),
                parallel: ModeJson::from_result(&modes[1], seq_mean),
                cached: ModeJson::from_result(&modes[2], seq_mean),
            },
            engine: EngineJson {
                seed: EngineModeJson {
                    mean_ms: round3(seed_engine.mean_ms),
                    std_ms: round3(seed_engine.std_ms),
                    speedup_vs_seed: 1.0,
                    search: seed_engine.effort,
                },
                modern: EngineModeJson {
                    mean_ms: round3(modern_engine.mean_ms),
                    std_ms: round3(modern_engine.std_ms),
                    speedup_vs_seed: round3(engine_speedup),
                    search: modern_engine.effort,
                },
            },
            equivalent: !diverged,
        });
    }

    let report = ReportJson {
        generated_by: "spackle-bench perf-report".to_string(),
        workload: "multi-goal radiuss".to_string(),
        cpus,
        ground_threads,
        trials,
        warmup,
        smoke,
        public_dags,
        seed,
        workloads: workload_reports,
    };
    let pretty = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, pretty + "\n").expect("write report");
    eprintln!("perf-report: wrote {out_path}");

    if diverged {
        eprintln!("perf-report: FAILED — modes diverged; see above");
        std::process::exit(1);
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}
