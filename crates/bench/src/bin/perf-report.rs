//! **perf-report** — the concretization fast-path regression harness.
//!
//! Runs fig5/fig6-style multi-goal RADIUSS workloads through three
//! configurations of the same concretizer:
//!
//! * `sequential` — single-threaded grounding, no memoization (the
//!   baseline every prior figure measured);
//! * `parallel`   — `ground_threads` worker threads for grounding joins;
//! * `cached`     — `ground_threads` workers plus a shared
//!   [`spackle_core::GroundCache`], so repeated solves skip
//!   encode + parse + ground + CNF translation entirely.
//!
//! Every mode must produce *identical* solutions (same DAG hashes, same
//! reuse/build/splice decisions) — the run exits nonzero on any
//! divergence, which is what the CI `bench-smoke` job gates on. Timing
//! and cache statistics are written to `BENCH_concretize.json`.
//!
//! On top of the per-workload modes the report carries:
//!
//! * a top-level `regressions` array naming every `(workload, mode)`
//!   whose min-of-trials speedup vs sequential rounds below 1.0× — CI
//!   gates on this being empty, so a parallel-grounding regression is a
//!   named failure rather than a buried number;
//! * a `delta` workload exercising incremental reconcretization: warm
//!   the fig5 goals, land one new (least preferred) package version via
//!   `Repository::upsert` + `GroundCache::apply_delta`, then re-solve
//!   everything. Only the touched goal re-prepares; the rest ride their
//!   retained segments. The delta pass must be bit-identical to cold
//!   solves of the post-delta world (`delta.equivalent`) and at least
//!   5× faster (`delta.speedup_vs_cold`, gated by CI's `delta-smoke`).
//!
//! Usage:
//!   perf-report [--trials N] [--warmup N] [--goals N] [--delta-goals N]
//!               [--public-dags N] [--seed S] [--ground-threads N]
//!               [--out PATH] [--smoke]
//!
//! `--smoke` shrinks the workloads for CI (fewer goals, smaller public
//! cache); `--ground-threads` defaults to 4 to match the paper-harness
//! speedup criterion.

use serde::Serialize;
use spackle_asp::SolverConfig;
use spackle_bench::{mean_std_ms, run_trials_warm, Args};
use spackle_buildcache::CacheSource;
use spackle_core::{repo_delta, Concretizer, ConcretizerConfig, Goal, GroundCache, Solution};
use spackle_radiuss::ExperimentEnv;
use spackle_repo::Repository;
use spackle_spec::{parse_spec, AbstractSpec, Sym, Version};
use std::sync::Arc;
use std::time::Instant;

/// A goal with its display name.
struct NamedGoal {
    name: String,
    spec: AbstractSpec,
}

/// A canonical rendering of everything that makes two solutions "the
/// same": per-root DAG hashes plus the reuse / build / splice decisions.
fn signature(goal: &NamedGoal, sol: &Solution) -> String {
    let hashes: Vec<String> = sol.specs.iter().map(|s| s.dag_hash().to_string()).collect();
    format!(
        "{} specs=[{}] reused={} built={} spliced={}",
        goal.name,
        hashes.join(","),
        sol.reused.len(),
        sol.built.len(),
        sol.spliced.len()
    )
}

/// One timed sweep over every goal in the workload; returns the wall
/// time and the per-goal solution signatures.
fn sweep(
    repo: &Repository,
    cache: &Arc<dyn CacheSource>,
    config: &ConcretizerConfig,
    ground_cache: Option<&Arc<GroundCache>>,
    goals: &[NamedGoal],
) -> (std::time::Duration, Vec<String>) {
    let mut conc = Concretizer::new(repo)
        .with_config(config.clone())
        .with_reusable(cache);
    if let Some(gc) = ground_cache {
        conc = conc.with_ground_cache(Arc::clone(gc));
    }
    let t = Instant::now();
    let mut sigs = Vec::with_capacity(goals.len());
    for g in goals {
        let sol = conc
            .concretize(&g.spec)
            .unwrap_or_else(|e| panic!("perf-report {}: {e}", g.name));
        sigs.push(signature(g, &sol));
    }
    (t.elapsed(), sigs)
}

struct ModeResult {
    name: &'static str,
    mean_ms: f64,
    std_ms: f64,
    /// Fastest single trial — what cached-mode regression detection
    /// compares, so a one-off scheduling hiccup in one trial cannot
    /// fabricate a regression (or mask one: a real slowdown slows
    /// every trial).
    min_ms: f64,
    sigs: Vec<Vec<String>>,
    cache_hits: u64,
    cache_misses: u64,
}

/// Run one mode: `warmup` discarded sweeps, then `trials` timed ones.
/// The ground cache (when present) is deliberately shared across warmup
/// and trials — populating it is the warmup's job.
#[allow(clippy::too_many_arguments)]
fn run_mode(
    name: &'static str,
    trials: usize,
    warmup: usize,
    repo: &Repository,
    cache: &Arc<dyn CacheSource>,
    config: &ConcretizerConfig,
    ground_cache: Option<&Arc<GroundCache>>,
    goals: &[NamedGoal],
) -> ModeResult {
    let mut sigs: Vec<Vec<String>> = Vec::new();
    let times = run_trials_warm(trials, warmup, || {
        let (dt, s) = sweep(repo, cache, config, ground_cache, goals);
        sigs.push(s);
        dt
    });
    let (mean_ms, std_ms) = mean_std_ms(&times);
    let min_ms = times
        .iter()
        .map(|d| d.as_secs_f64() * 1e3)
        .fold(f64::INFINITY, f64::min);
    ModeResult {
        name,
        mean_ms,
        std_ms,
        min_ms,
        sigs,
        cache_hits: ground_cache.map_or(0, |gc| gc.hits()),
        cache_misses: ground_cache.map_or(0, |gc| gc.misses()),
    }
}

/// Search + preprocessing effort summed over one sweep of a workload.
#[derive(Serialize, Default, Clone, Copy)]
struct SearchJson {
    conflicts: u64,
    decisions: u64,
    propagations: u64,
    restarts: u64,
    pre_fixed_literals: u64,
    pre_failed_literals: u64,
    pre_pure_literals: u64,
    pre_subsumed_clauses: u64,
    pre_strengthened_clauses: u64,
    pre_eliminated_vars: u64,
}

impl SearchJson {
    fn absorb(&mut self, sol: &Solution) {
        let s = &sol.stats.solver;
        self.conflicts += s.conflicts;
        self.decisions += s.decisions;
        self.propagations += s.propagations;
        self.restarts += s.restarts;
        self.pre_fixed_literals += s.pre_fixed_literals;
        self.pre_failed_literals += s.pre_failed_literals;
        self.pre_pure_literals += s.pre_pure_literals;
        self.pre_subsumed_clauses += s.pre_subsumed_clauses;
        self.pre_strengthened_clauses += s.pre_strengthened_clauses;
        self.pre_eliminated_vars += s.pre_eliminated_vars;
    }
}

/// One engine's entry in the seed-vs-modern comparison.
#[derive(Serialize)]
struct EngineModeJson {
    mean_ms: f64,
    std_ms: f64,
    speedup_vs_seed: f64,
    search: SearchJson,
}

/// The SAT-engine comparison: the same workload solved by the
/// pre-modernization engine (no preprocessing, no phase saving /
/// restarts / LBD deletion, from-scratch branch-and-bound) and by the
/// full modern engine, each over its own warm ground cache so the
/// measurement is solve-dominated.
#[derive(Serialize)]
struct EngineJson {
    seed: EngineModeJson,
    modern: EngineModeJson,
}

/// Like [`sweep`], but also sums the solver's effort counters and
/// records each goal's lexicographic optimum (see the engine gate).
fn engine_sweep(
    repo: &Repository,
    cache: &Arc<dyn CacheSource>,
    config: &ConcretizerConfig,
    ground_cache: &Arc<GroundCache>,
    goals: &[NamedGoal],
) -> (std::time::Duration, Vec<String>, Vec<String>, SearchJson) {
    let conc = Concretizer::new(repo)
        .with_config(config.clone())
        .with_reusable(cache)
        .with_ground_cache(Arc::clone(ground_cache));
    let t = Instant::now();
    let mut sigs = Vec::with_capacity(goals.len());
    let mut costs = Vec::with_capacity(goals.len());
    let mut effort = SearchJson::default();
    for g in goals {
        let sol = conc
            .concretize(&g.spec)
            .unwrap_or_else(|e| panic!("perf-report engine {}: {e}", g.name));
        effort.absorb(&sol);
        costs.push(format!("{} cost={:?}", g.name, sol.cost));
        sigs.push(signature(g, &sol));
    }
    (t.elapsed(), sigs, costs, effort)
}

struct EngineModeResult {
    mean_ms: f64,
    std_ms: f64,
    sigs: Vec<Vec<String>>,
    costs: Vec<Vec<String>>,
    effort: SearchJson,
}

fn run_engine_mode(
    trials: usize,
    warmup: usize,
    repo: &Repository,
    cache: &Arc<dyn CacheSource>,
    config: &ConcretizerConfig,
    goals: &[NamedGoal],
) -> EngineModeResult {
    let ground_cache = GroundCache::shared();
    let mut sigs: Vec<Vec<String>> = Vec::new();
    let mut costs: Vec<Vec<String>> = Vec::new();
    let mut effort = SearchJson::default();
    let times = run_trials_warm(trials, warmup, || {
        let (dt, s, c, e) = engine_sweep(repo, cache, config, &ground_cache, goals);
        sigs.push(s);
        costs.push(c);
        effort = e;
        dt
    });
    let (mean_ms, std_ms) = mean_std_ms(&times);
    EngineModeResult {
        mean_ms,
        std_ms,
        sigs,
        costs,
        effort,
    }
}

struct Workload<'a> {
    name: &'static str,
    repo: &'a Repository,
    cache: Arc<dyn CacheSource>,
    base_config: ConcretizerConfig,
    goals: Vec<NamedGoal>,
}

/// One mode's entry in `BENCH_concretize.json`. `speedup_vs_sequential`
/// is 1.0 for the sequential baseline itself and comes from a
/// noise-robust estimator for the others — best paired sweep for
/// `parallel`, best trial vs best trial for `cached` — because on a
/// shared host the mean-of-trials ratio measures machine load, not the
/// code (`mean_ms`/`std_ms` stay raw for exactly that diagnosis). The
/// cache counters are zero for the uncached modes.
#[derive(Serialize)]
struct ModeJson {
    mean_ms: f64,
    std_ms: f64,
    speedup_vs_sequential: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
}

#[derive(Serialize)]
struct ModesJson {
    sequential: ModeJson,
    parallel: ModeJson,
    cached: ModeJson,
}

#[derive(Serialize)]
struct WorkloadJson {
    name: String,
    goals: Vec<String>,
    modes: ModesJson,
    engine: EngineJson,
    equivalent: bool,
}

/// One named speedup regression: a mode whose min-of-trials speedup vs
/// the sequential baseline rounds below 1.0× (two decimals). CI gates on
/// this array being empty.
#[derive(Serialize)]
struct RegressionJson {
    workload: String,
    mode: String,
    speedup: f64,
}

/// The incremental-reconcretization workload: one package version lands
/// on a warm index, and only the touched goal pays for it.
#[derive(Serialize)]
struct DeltaJson {
    goals: Vec<String>,
    /// The package that gained a version (chosen to sit in exactly one
    /// goal's encode closure where possible).
    mutated_package: String,
    added_version: String,
    /// Goals whose encode closure contains the mutated package.
    affected_goals: usize,
    /// Segment fingerprints the delta moved.
    segments_changed: usize,
    /// Warm entries dropped by `apply_delta` (segments moved).
    entries_invalidated: usize,
    /// Warm entries retained (still hitting after the delta).
    entries_retained: usize,
    /// Re-grounds that salvaged a dropped entry's CNF translation.
    salvaged_translations: u64,
    /// Mean wall time of a cold full sweep on the post-delta world.
    cold_ms: f64,
    /// Wall time of the single delta-updated sweep.
    delta_ms: f64,
    speedup_vs_cold: f64,
    /// Delta-updated solves bit-identical to cold post-delta solves?
    equivalent: bool,
}

#[derive(Serialize)]
struct ReportJson {
    generated_by: String,
    workload: String,
    cpus: usize,
    ground_threads: usize,
    trials: usize,
    warmup: usize,
    smoke: bool,
    public_dags: usize,
    seed: u64,
    workloads: Vec<WorkloadJson>,
    delta: DeltaJson,
    regressions: Vec<RegressionJson>,
}

impl ModeJson {
    fn from_result(m: &ModeResult, speedup_vs_sequential: f64) -> ModeJson {
        let total = m.cache_hits + m.cache_misses;
        ModeJson {
            mean_ms: round3(m.mean_ms),
            std_ms: round3(m.std_ms),
            speedup_vs_sequential: round3(speedup_vs_sequential),
            cache_hits: m.cache_hits,
            cache_misses: m.cache_misses,
            cache_hit_rate: if total > 0 {
                round3(m.cache_hits as f64 / total as f64)
            } else {
                0.0
            },
        }
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let trials = args.get_usize("trials", if smoke { 2 } else { 5 });
    let warmup = args.get_usize("warmup", 1);
    let ground_threads = args.get_usize("ground-threads", 4);
    let goals_n = args.get_usize("goals", if smoke { 3 } else { 32 });
    let public_dags = args.get_usize("public-dags", if smoke { 50 } else { 300 });
    let seed = args.get_u64("seed", 42);
    let out_path = args.get_str("out", "BENCH_concretize.json");

    eprintln!("perf-report: setting up environment (public-dags={public_dags}, seed={seed})...");
    let t0 = Instant::now();
    let env = ExperimentEnv::setup(public_dags, seed);
    eprintln!(
        "perf-report: setup took {:?}; local cache = {} specs",
        t0.elapsed(),
        env.local.len()
    );

    // Workload 1 (fig5-style): plain RADIUSS roots, indirect encoding,
    // splicing off, local cache, static dead-rule pruning on — the full
    // fast-path configuration (pruning cost is part of what a
    // ground-cache hit amortizes away).
    let fig5_goals: Vec<NamedGoal> = env
        .roots
        .iter()
        .take(goals_n)
        .map(|r| NamedGoal {
            name: r.as_str().to_string(),
            spec: parse_spec(r.as_str()).expect("root name"),
        })
        .collect();

    // Workload 2 (fig6-style): MPI-dependent roots pinned to the mpiabi
    // mock, full splicing, local cache.
    let fig6_goals: Vec<NamedGoal> = env
        .mpi_roots
        .iter()
        .take(goals_n)
        .map(|r| {
            let name = format!("{} ^mpiabi", r.as_str());
            NamedGoal {
                spec: parse_spec(&name).expect("mpi goal"),
                name,
            }
        })
        .collect();

    // One shared handle: both workloads (and every mode within them)
    // read the same local-cache index, daemon-style.
    let local: Arc<dyn CacheSource> = Arc::new(env.local.clone());

    let workloads = [
        Workload {
            name: "fig5-multi-goal",
            repo: &env.repo_plain,
            cache: Arc::clone(&local),
            base_config: ConcretizerConfig {
                prune_dead: true,
                ..ConcretizerConfig::splice_spack_disabled()
            },
            goals: fig5_goals,
        },
        Workload {
            name: "fig6-splice-multi-goal",
            repo: &env.repo_mpiabi,
            cache: Arc::clone(&local),
            base_config: ConcretizerConfig::splice_spack(),
            goals: fig6_goals,
        },
    ];

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut diverged = false;
    let mut workload_reports = Vec::new();
    let mut regressions: Vec<RegressionJson> = Vec::new();

    for w in &workloads {
        eprintln!(
            "perf-report: workload {} ({} goals, {} trials + {} warmup per mode)",
            w.name,
            w.goals.len(),
            trials,
            warmup
        );

        let mut seq_cfg = w.base_config.clone();
        seq_cfg.solver.ground_threads = 1;
        let mut par_cfg = w.base_config.clone();
        par_cfg.solver.ground_threads = ground_threads;

        let ground_cache = GroundCache::shared();
        let modes = [
            run_mode("sequential", trials, warmup, w.repo, &w.cache, &seq_cfg, None, &w.goals),
            run_mode("parallel", trials, warmup, w.repo, &w.cache, &par_cfg, None, &w.goals),
            run_mode(
                "cached",
                trials,
                warmup,
                w.repo,
                &w.cache,
                &par_cfg,
                Some(&ground_cache),
                &w.goals,
            ),
        ];

        // --- SAT-engine comparison: seed vs modern, warm caches ---
        let mut seed_cfg = par_cfg.clone();
        seed_cfg.solver = SolverConfig {
            ground_threads: seed_cfg.solver.ground_threads,
            ..SolverConfig::seed_engine()
        };
        let modern_cfg = par_cfg.clone();
        let seed_engine = run_engine_mode(trials, warmup, w.repo, &w.cache, &seed_cfg, &w.goals);
        let modern_engine =
            run_engine_mode(trials, warmup, w.repo, &w.cache, &modern_cfg, &w.goals);

        // Equivalence gate: every sweep of every mode must match the
        // first sequential sweep goal-for-goal.
        let reference = &modes[0].sigs[0];
        for m in &modes {
            for (i, s) in m.sigs.iter().enumerate() {
                if s != reference {
                    diverged = true;
                    eprintln!(
                        "perf-report: DIVERGENCE in {} mode {} sweep {i}:\n  expected {:?}\n  got      {:?}",
                        w.name, m.name, reference, s
                    );
                }
            }
        }
        // Engine gate, part 1: the modern engine runs the *same* solver
        // configuration as the sequential reference, so determinism
        // demands bit-identical solutions, DAG hashes included.
        for (i, s) in modern_engine.sigs.iter().enumerate() {
            if s != reference {
                diverged = true;
                eprintln!(
                    "perf-report: DIVERGENCE in {} engine modern-engine sweep {i}:\n  expected {:?}\n  got      {:?}",
                    w.name, reference, s
                );
            }
        }
        // Engine gate, part 2: the seed engine differs in search
        // machinery, which the solver only guarantees preserves
        // satisfiability and the lexicographic optimum — co-optimal
        // models (ties) may legitimately differ, so the comparison is on
        // cost vectors, not DAG hashes. (The RADIUSS workloads do
        // exhibit such ties; see DESIGN.md.)
        let cost_reference = &modern_engine.costs[0];
        for (ename, e) in [("seed-engine", &seed_engine), ("modern-engine", &modern_engine)] {
            for (i, c) in e.costs.iter().enumerate() {
                if c != cost_reference {
                    diverged = true;
                    eprintln!(
                        "perf-report: DIVERGENCE in {} engine {ename} optima sweep {i}:\n  expected {:?}\n  got      {:?}",
                        w.name, cost_reference, c
                    );
                }
            }
        }

        // Named regressions: a mode slower than the sequential baseline
        // is recorded by name, not buried in the numbers. The judgment
        // is deliberately noise-robust on loaded machines:
        //
        // * `cached` is judged on best trials (min-of-trials on both
        //   sides) — its margin is an order of magnitude, so noise
        //   cannot flip it;
        // * `parallel` is judged on *paired* sweeps: alternate
        //   sequential/parallel runs back-to-back so machine drift hits
        //   both sides, and take parallel's best paired ratio. On a
        //   one-core host the clamped grounder makes the two code paths
        //   identical, so only a systematic slowdown — never a one-off
        //   scheduling hiccup — can push every pair below 1.0×.
        let seq_min = modes[0].min_ms;
        let mut best_paired = 0.0f64;
        for _ in 0..trials.max(4) {
            let (ts, _) = sweep(w.repo, &w.cache, &seq_cfg, None, &w.goals);
            let (tp, _) = sweep(w.repo, &w.cache, &par_cfg, None, &w.goals);
            best_paired = best_paired.max(ts.as_secs_f64() / tp.as_secs_f64().max(1e-12));
        }
        let par_speedup = round2(best_paired);
        let cached_speedup = round2(seq_min / modes[2].min_ms.max(1e-9));
        for (m, speedup) in [(&modes[1], par_speedup), (&modes[2], cached_speedup)] {
            if speedup < 1.0 {
                eprintln!(
                    "perf-report: REGRESSION in {} mode {}: {speedup:.2}x vs sequential",
                    w.name, m.name
                );
                regressions.push(RegressionJson {
                    workload: w.name.to_string(),
                    mode: m.name.to_string(),
                    speedup,
                });
            }
        }

        let seq_mean = modes[0].mean_ms;
        for m in &modes {
            eprintln!(
                "perf-report:   {:<10} {:>9.2} ms ± {:.2}{}",
                m.name,
                m.mean_ms,
                m.std_ms,
                if m.name == "sequential" {
                    String::new()
                } else {
                    format!("  ({:.2}x vs sequential)", seq_mean / m.mean_ms.max(1e-9))
                }
            );
        }

        let engine_speedup = seed_engine.mean_ms / modern_engine.mean_ms.max(1e-9);
        eprintln!(
            "perf-report:   seed-engine   {:>9.2} ms ± {:.2}",
            seed_engine.mean_ms, seed_engine.std_ms
        );
        eprintln!(
            "perf-report:   modern-engine {:>9.2} ms ± {:.2}  ({engine_speedup:.2}x vs seed; \
             {} vars eliminated, {} clauses subsumed, {} conflicts vs {})",
            modern_engine.mean_ms,
            modern_engine.std_ms,
            modern_engine.effort.pre_eliminated_vars,
            modern_engine.effort.pre_subsumed_clauses,
            modern_engine.effort.conflicts,
            seed_engine.effort.conflicts,
        );

        workload_reports.push(WorkloadJson {
            name: w.name.to_string(),
            goals: w.goals.iter().map(|g| g.name.clone()).collect(),
            modes: ModesJson {
                sequential: ModeJson::from_result(&modes[0], 1.0),
                parallel: ModeJson::from_result(&modes[1], par_speedup),
                cached: ModeJson::from_result(&modes[2], cached_speedup),
            },
            engine: EngineJson {
                seed: EngineModeJson {
                    mean_ms: round3(seed_engine.mean_ms),
                    std_ms: round3(seed_engine.std_ms),
                    speedup_vs_seed: 1.0,
                    search: seed_engine.effort,
                },
                modern: EngineModeJson {
                    mean_ms: round3(modern_engine.mean_ms),
                    std_ms: round3(modern_engine.std_ms),
                    speedup_vs_seed: round3(engine_speedup),
                    search: modern_engine.effort,
                },
            },
            equivalent: !diverged,
        });
    }

    // --- Delta workload: incremental reconcretization end-to-end ---
    //
    // Warm every fig5 goal through one shared ground cache, land one
    // new (least preferred, so solutions are unchanged) version on a
    // package sitting in exactly one goal's encode closure, partially
    // invalidate by segment, and re-solve the whole set. Untouched
    // goals ride their retained entries and memoized models; only the
    // touched goal re-encodes / re-grounds / re-solves.
    let delta_goals_n = args.get_usize("delta-goals", if smoke { 12 } else { 32 });
    let delta_goals: Vec<NamedGoal> = env
        .roots
        .iter()
        .take(delta_goals_n)
        .map(|r| NamedGoal {
            name: r.as_str().to_string(),
            spec: parse_spec(r.as_str()).expect("root name"),
        })
        .collect();
    let mut delta_cfg = ConcretizerConfig {
        prune_dead: true,
        ..ConcretizerConfig::splice_spack_disabled()
    };
    delta_cfg.solver.ground_threads = ground_threads;

    // Pick the mutated package: the first (in goal order, then name
    // order) that appears in exactly one goal's segment set, so the
    // delta invalidates exactly one entry. Falls back to the
    // least-shared package on pathological universes.
    let keyer = Concretizer::new(&env.repo_plain)
        .with_config(delta_cfg.clone())
        .with_reusable(&local);
    let segment_sets: Vec<_> = delta_goals
        .iter()
        .map(|g| {
            keyer
                .segment_key(&Goal::single(g.spec.clone()))
                .unwrap_or_else(|e| panic!("perf-report delta {}: {e}", g.name))
                .1
        })
        .collect();
    let mut counts: std::collections::BTreeMap<Sym, usize> = std::collections::BTreeMap::new();
    for set in &segment_sets {
        for (name, _) in &set.packages {
            *counts.entry(*name).or_default() += 1;
        }
    }
    let mutated = segment_sets
        .iter()
        .flat_map(|s| s.packages.iter().map(|(n, _)| *n))
        .find(|n| counts[n] == 1)
        .or_else(|| counts.iter().min_by_key(|(_, c)| **c).map(|(n, _)| *n))
        .expect("delta goals have non-empty closures");
    let affected_goals = counts[&mutated];
    let added_version = "999.0";
    eprintln!(
        "perf-report: delta workload ({} goals): adding {}@{added_version} \
         (in {affected_goals} goal closure{})",
        delta_goals.len(),
        mutated.as_str(),
        if affected_goals == 1 { "" } else { "s" },
    );

    // Warm pass (untimed): populate the ground cache and model memos.
    let delta_ground_cache = GroundCache::shared();
    sweep(
        &env.repo_plain,
        &local,
        &delta_cfg,
        Some(&delta_ground_cache),
        &delta_goals,
    );

    // Land the delta: upsert the mutated definition, diff the segment
    // fingerprints, partially invalidate the warm cache.
    let mut repo_post = env.repo_plain.clone();
    let mut def = repo_post.get(mutated).expect("mutated package exists").clone();
    def.versions
        .push(Version::parse(added_version).expect("static version"));
    repo_post.upsert(def);
    let delta = repo_delta(&env.repo_plain, &repo_post);
    let delta_report = delta_ground_cache.apply_delta(&delta);
    eprintln!(
        "perf-report:   apply_delta: {} segment(s) moved, {} entr{} invalidated, {} retained",
        delta.len(),
        delta_report.invalidated,
        if delta_report.invalidated == 1 { "y" } else { "ies" },
        delta_report.retained,
    );

    // The timed delta pass: one sweep over every goal on the post-delta
    // world, riding the partially retained cache.
    let (delta_time, delta_sigs) = sweep(
        &repo_post,
        &local,
        &delta_cfg,
        Some(&delta_ground_cache),
        &delta_goals,
    );
    let delta_ms = delta_time.as_secs_f64() * 1e3;

    // Cold reference: full sweeps of the post-delta world with no cache.
    // The delta pass must be bit-identical to these.
    let mut delta_equivalent = true;
    let cold_times = run_trials_warm(trials, warmup.min(1), || {
        let (dt, sigs) = sweep(&repo_post, &local, &delta_cfg, None, &delta_goals);
        if sigs != delta_sigs {
            delta_equivalent = false;
            eprintln!(
                "perf-report: DIVERGENCE in delta workload:\n  cold  {sigs:?}\n  delta {delta_sigs:?}"
            );
        }
        dt
    });
    let (cold_ms, _) = mean_std_ms(&cold_times);
    if !delta_equivalent {
        diverged = true;
    }
    let delta_stats = delta_ground_cache.stats();
    let speedup_vs_cold = round2(cold_ms / delta_ms.max(1e-9));
    eprintln!(
        "perf-report:   delta sweep {delta_ms:.2} ms vs cold {cold_ms:.2} ms \
         ({speedup_vs_cold:.2}x); equivalent={delta_equivalent}"
    );

    let delta_json = DeltaJson {
        goals: delta_goals.iter().map(|g| g.name.clone()).collect(),
        mutated_package: mutated.as_str().to_string(),
        added_version: added_version.to_string(),
        affected_goals,
        segments_changed: delta.len(),
        entries_invalidated: delta_report.invalidated,
        entries_retained: delta_report.retained,
        salvaged_translations: delta_stats.salvaged_translations,
        cold_ms: round3(cold_ms),
        delta_ms: round3(delta_ms),
        speedup_vs_cold,
        equivalent: delta_equivalent,
    };

    let report = ReportJson {
        generated_by: "spackle-bench perf-report".to_string(),
        workload: "multi-goal radiuss".to_string(),
        cpus,
        ground_threads,
        trials,
        warmup,
        smoke,
        public_dags,
        seed,
        workloads: workload_reports,
        delta: delta_json,
        regressions,
    };
    let pretty = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, pretty + "\n").expect("write report");
    eprintln!("perf-report: wrote {out_path}");

    if diverged {
        eprintln!("perf-report: FAILED — modes diverged; see above");
        std::process::exit(1);
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}
