//! **Figure 6 / RQ2+RQ3** — correctness and overhead of automatic
//! splicing. The MPI-dependent subset of RADIUSS (plus `py-shroud` as
//! the no-MPI control) is concretized:
//!
//! * under *old spack* with an explicit `^mpich` dependency, and
//! * under *splice spack* with an explicit `^mpiabi` dependency
//!   (the MVAPICH-based mock that declares `can_splice("mpich@3.4.3")`),
//!
//! against both buildcaches. The harness verifies that splice spack
//! produces spliced solutions whenever the spec depends on MPI (RQ2) and
//! reports the concretization-time overhead (RQ3).
//!
//! Paper result: +17.1% (local cache), +153% (public cache); no change
//! for py-shroud. Every spliced solution trades minutes of solve time
//! for hours of avoided rebuilds.
//!
//! Usage:
//!   fig6 [--trials N] [--warmup N] [--public-dags N] [--seed S] [--threads N] [--joint]

use spackle_bench::{default_threads, mean_std_ms, parallel_map, percent_increase, run_trials_warm, Args};
use spackle_core::{Concretizer, ConcretizerConfig, Goal};
use spackle_radiuss::ExperimentEnv;
use spackle_buildcache::CacheSource;
use spackle_spec::parse_spec;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let trials = args.get_usize("trials", 10);
    let warmup = args.get_usize("warmup", 1);
    let public_dags = args.get_usize("public-dags", 1000);
    let seed = args.get_u64("seed", 42);
    let threads = args.get_usize("threads", default_threads());
    let joint = args.has("joint");

    eprintln!("fig6: setting up environment (public-dags={public_dags}, seed={seed})...");
    let t0 = Instant::now();
    let env = ExperimentEnv::setup(public_dags, seed);
    eprintln!(
        "fig6: setup took {:?}; {} MPI-dependent roots; caches: local={} public={}",
        t0.elapsed(),
        env.mpi_roots.len(),
        env.local.len(),
        env.public.len()
    );

    let mut roots: Vec<String> = env
        .mpi_roots
        .iter()
        .map(|s| s.as_str().to_string())
        .collect();
    roots.push("py-shroud".to_string()); // the non-spliceable control

    println!("# Figure 6 (RQ2+RQ3): splicing correctness and overhead");
    println!("# old spack concretizes `spec ^mpich`; splice spack `spec ^mpiabi`");
    println!("# trials per cell: {trials}");
    println!(
        "{:<14} {:<7} {:>12} {:>12} {:>8} {:>8}",
        "spec", "cache", "old(ms)", "splice(ms)", "delta%", "splices"
    );

    struct Cell {
        root: String,
        cache_label: &'static str,
        old_mean: f64,
        old_std: f64,
        new_mean: f64,
        new_std: f64,
        splices: usize,
        spliced_ok: bool,
    }

    let mut jobs: Vec<(String, &'static str)> = Vec::new();
    for root in &roots {
        for cache_label in ["local", "public"] {
            jobs.push((root.clone(), cache_label));
        }
    }

    let is_mpi_root =
        |root: &str| env.mpi_roots.iter().any(|m| m.as_str() == root);

    // One shared handle per cache, read by every worker thread's solves.
    let local: Arc<dyn CacheSource> = Arc::new(env.local.clone());
    let public: Arc<dyn CacheSource> = Arc::new(env.public.clone());

    let cells: Vec<Cell> = parallel_map(jobs, threads, |(root, cache_label)| {
        let cache = match *cache_label {
            "local" => &local,
            _ => &public,
        };
        let mpi = is_mpi_root(root);
        // Old spack: explicit dependency on the reference MPI.
        let old_goal = if mpi {
            parse_spec(&format!("{root} ^mpich")).expect("goal")
        } else {
            parse_spec(root).expect("goal")
        };
        let old_times = run_trials_warm(trials, warmup, || {
            let t = Instant::now();
            Concretizer::new(&env.repo_plain)
                .with_config(ConcretizerConfig::old_spack())
                .with_reusable(cache)
                .concretize(&old_goal)
                .unwrap_or_else(|e| panic!("fig6 old {root}: {e}"));
            t.elapsed()
        });
        // Splice spack: explicit dependency on the ABI-compatible mock.
        let new_goal = if mpi {
            parse_spec(&format!("{root} ^mpiabi")).expect("goal")
        } else {
            parse_spec(root).expect("goal")
        };
        let mut splices = 0usize;
        let mut spliced_ok = !mpi; // control spec needs no splices
        let new_times = run_trials_warm(trials, warmup, || {
            let t = Instant::now();
            let sol = Concretizer::new(&env.repo_mpiabi)
                .with_config(ConcretizerConfig::splice_spack())
                .with_reusable(cache)
                .concretize(&new_goal)
                .unwrap_or_else(|e| panic!("fig6 splice {root}: {e}"));
            let dt = t.elapsed();
            splices = sol.spliced.len();
            if mpi && !sol.spliced.is_empty() {
                spliced_ok = true;
            }
            dt
        });
        let (old_mean, old_std) = mean_std_ms(&old_times);
        let (new_mean, new_std) = mean_std_ms(&new_times);
        Cell {
            root: root.clone(),
            cache_label,
            old_mean,
            old_std,
            new_mean,
            new_std,
            splices,
            spliced_ok,
        }
    });

    let mut agg: std::collections::BTreeMap<&str, (f64, f64, usize)> =
        std::collections::BTreeMap::new();
    let mut all_spliced = true;
    for c in &cells {
        println!(
            "{:<14} {:<7} {:>6.2}±{:<5.2} {:>6.2}±{:<5.2} {:>+7.1} {:>8}{}",
            c.root,
            c.cache_label,
            c.old_mean,
            c.old_std,
            c.new_mean,
            c.new_std,
            percent_increase(c.old_mean, c.new_mean),
            c.splices,
            if c.spliced_ok { "" } else { "  [NO SPLICE!]" }
        );
        all_spliced &= c.spliced_ok;
        if c.root != "py-shroud" {
            let e = agg.entry(c.cache_label).or_insert((0.0, 0.0, 0));
            e.0 += c.old_mean;
            e.1 += c.new_mean;
            e.2 += 1;
        }
    }

    println!();
    println!(
        "RQ2 (spliced solutions produced when necessary): {}",
        if all_spliced { "PASS" } else { "FAIL" }
    );
    for (label, (old_sum, new_sum, n)) in agg {
        let paper = match label {
            "local" => "+17.1%",
            _ => "+153%",
        };
        println!(
            "aggregate {label:<7} ({n} MPI specs): old mean {:.2} ms, splice mean {:.2} ms, \
             delta {:+.1}%   (paper: {paper})",
            old_sum / n as f64,
            new_sum / n as f64,
            percent_increase(old_sum, new_sum)
        );
    }

    if joint {
        println!();
        println!("# joint concretization of all MPI-dependent specs");
        for (label, cache) in [("local", &local), ("public", &public)] {
            let old_goal = Goal {
                roots: env
                    .mpi_roots
                    .iter()
                    .map(|r| parse_spec(&format!("{r} ^mpich")).expect("goal"))
                    .collect(),
                forbidden: vec![],
            };
            let new_goal = Goal {
                roots: env
                    .mpi_roots
                    .iter()
                    .map(|r| parse_spec(&format!("{r} ^mpiabi")).expect("goal"))
                    .collect(),
                forbidden: vec![],
            };
            let t = Instant::now();
            Concretizer::new(&env.repo_plain)
                .with_config(ConcretizerConfig::old_spack())
                .with_reusable(cache)
                .concretize_goal(&old_goal)
                .expect("joint old");
            let old_ms = t.elapsed().as_secs_f64() * 1e3;
            let t = Instant::now();
            let sol = Concretizer::new(&env.repo_mpiabi)
                .with_config(ConcretizerConfig::splice_spack())
                .with_reusable(cache)
                .concretize_goal(&new_goal)
                .expect("joint splice");
            let new_ms = t.elapsed().as_secs_f64() * 1e3;
            println!(
                "joint {label:<7}: old {old_ms:.1} ms, splice {new_ms:.1} ms \
                 (delta {:+.1}%, {} splices)",
                percent_increase(old_ms, new_ms),
                sol.spliced.len()
            );
        }
    }
}
