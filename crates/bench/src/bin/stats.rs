//! Solver-internals report: grounding and search statistics per RADIUSS
//! root and configuration — the kind of breakdown the Spack/Clingo paper
//! series reports alongside wall times. Useful for understanding *where*
//! the encodings differ.
//!
//! Usage:
//!   stats [--public-dags N] [--seed S] [--mpiabi]

use spackle_bench::Args;
use spackle_buildcache::CacheSource;
use spackle_core::{Concretizer, ConcretizerConfig};
use spackle_radiuss::ExperimentEnv;
use spackle_spec::parse_spec;
use std::sync::Arc;

fn main() {
    let args = Args::parse();
    let public_dags = args.get_usize("public-dags", 300);
    let seed = args.get_u64("seed", 42);
    let env = ExperimentEnv::setup(public_dags, seed);
    let local: Arc<dyn CacheSource> = Arc::new(env.local.clone());
    let public: Arc<dyn CacheSource> = Arc::new(env.public.clone());

    println!(
        "{:<14} {:<9} {:<7} {:>9} {:>9} {:>9} {:>10} {:>9} {:>7} {:>7}",
        "spec", "config", "cache", "atoms", "rules", "satvars", "conflicts", "decision", "probes", "cegar"
    );
    for root in &env.roots {
        let spec = parse_spec(root.as_str()).expect("root");
        for (cfg_label, cfg, repo) in [
            ("old", ConcretizerConfig::old_spack(), &env.repo_plain),
            (
                "indirect",
                ConcretizerConfig::splice_spack_disabled(),
                &env.repo_plain,
            ),
            ("splice", ConcretizerConfig::splice_spack(), &env.repo_mpiabi),
        ] {
            for (cache_label, cache) in [("local", &local), ("public", &public)] {
                let sol = Concretizer::new(repo)
                    .with_config(cfg.clone())
                    .with_reusable(cache)
                    .concretize(&spec)
                    .unwrap_or_else(|e| panic!("{root} {cfg_label}/{cache_label}: {e}"));
                let s = &sol.stats.solver;
                println!(
                    "{:<14} {:<9} {:<7} {:>9} {:>9} {:>9} {:>10} {:>9} {:>7} {:>7}",
                    root,
                    cfg_label,
                    cache_label,
                    s.ground_atoms,
                    s.ground_rules,
                    s.sat_vars,
                    s.conflicts,
                    s.decisions,
                    s.optimize_probes,
                    s.stability_restarts
                );
            }
        }
    }
}
