//! The issue's acceptance fixture: one repository seeded with exactly
//! three distinct defects — an unsatisfiable `can_splice` constraint,
//! an undeclared variant in a `when=`, and a virtual nobody provides —
//! must produce three distinct error-severity codes (and thus a
//! nonzero `spackle audit` exit).

use spackle_audit::{audit_repository, AuditReport, Code, Provenance, Severity};
use spackle_repo::{CanSplice, DependsOn, PackageBuilder, PackageDef, Repository};
use spackle_spec::{parse_spec, AbstractSpec, DepTypes, Sym, Version};
use std::collections::{BTreeMap, BTreeSet};

fn fixture() -> Repository {
    let zlib = PackageBuilder::new("zlib")
        .version("1.3")
        .version("1.2.11")
        .build()
        .unwrap();
    // Defect 1 (R008): no declared zlib version matches @9.9.
    let zlib_ng = PackageDef {
        name: Sym::intern("zlib-ng"),
        versions: vec![Version::parse("2.1").unwrap()],
        variants: BTreeMap::new(),
        depends: vec![],
        conflicts: vec![],
        provides: vec![],
        can_splice: vec![CanSplice {
            target: parse_spec("zlib@9.9").unwrap(),
            when: AbstractSpec::anonymous(),
        }],
    };
    // Defect 2 (R003): `when="+fast"` but app declares no such variant.
    // Defect 3 (R005): depends on `mpi`, which nothing provides.
    let app = PackageDef {
        name: Sym::intern("app"),
        versions: vec![Version::parse("1.0").unwrap()],
        variants: BTreeMap::new(),
        depends: vec![
            DependsOn {
                spec: parse_spec("zlib").unwrap(),
                types: DepTypes::ALL,
                when: parse_spec("+fast").unwrap(),
            },
            DependsOn {
                spec: parse_spec("mpi").unwrap(),
                types: DepTypes::ALL,
                when: AbstractSpec::anonymous(),
            },
        ],
        conflicts: vec![],
        provides: vec![],
        can_splice: vec![],
    };
    Repository::from_packages([zlib, zlib_ng, app]).unwrap()
}

#[test]
fn seeded_fixture_yields_three_distinct_error_codes() {
    let report = AuditReport::new(audit_repository(&fixture()));
    let error_codes: BTreeSet<Code> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.code)
        .collect();
    assert_eq!(
        error_codes,
        BTreeSet::from([Code::R003, Code::R005, Code::R008]),
        "full report:\n{}",
        report.render_human()
    );
    // Error findings force the CLI's nonzero exit.
    assert!(report.has_errors());
}

#[test]
fn fixture_diagnostics_carry_directive_provenance_and_spans() {
    let report = AuditReport::new(audit_repository(&fixture()));
    let r008 = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::R008)
        .unwrap();
    match &r008.provenance {
        Provenance::Package {
            package,
            directive,
            span,
        } => {
            assert_eq!(package, "zlib-ng");
            let text = directive.as_deref().unwrap();
            assert!(text.starts_with("can_splice(\"zlib@9.9\""), "{text}");
            let sp = span.expect("version span");
            assert_eq!(&text[sp.start..sp.end], "@9.9");
        }
        other => panic!("expected package provenance, got {other:?}"),
    }
    // Human rendering underlines exactly the version token.
    let human = report.render_human();
    assert!(human.contains("^^^^"), "{human}");
    // JSON rendering carries the same span.
    let json = AuditReport::new(vec![r008.clone()]).render_json();
    assert!(json.contains("\"span\":{\"start\":"), "{json}");
}
