//! One positive and one clean negative per diagnostic code.
//!
//! Positives that the `PackageBuilder` would reject at build time
//! (e.g. an undeclared variant in `when=`) construct `PackageDef`
//! directly — exactly the raw-definition path `spackle audit` guards.

use spackle_audit::{audit_program_text, audit_repository, Code, Diagnostic, Severity};
use spackle_repo::{DependsOn, PackageBuilder, PackageDef, Repository};
use spackle_spec::{parse_spec, DepTypes, Sym, Version};
use std::collections::{BTreeMap, BTreeSet};

fn codes(diags: &[Diagnostic]) -> BTreeSet<Code> {
    diags.iter().map(|d| d.code).collect()
}

fn repo(pkgs: impl IntoIterator<Item = PackageDef>) -> Repository {
    Repository::from_packages(pkgs).unwrap()
}

fn zlib() -> PackageDef {
    PackageBuilder::new("zlib")
        .version("1.3")
        .version("1.2.11")
        .build()
        .unwrap()
}

/// A repository with no findings at all: the shared clean negative.
fn clean_repo() -> Repository {
    repo([
        zlib(),
        PackageBuilder::new("mpich")
            .version("3.4.3")
            .provides("mpi")
            .build()
            .unwrap(),
        PackageBuilder::new("app")
            .version("2.0")
            .variant_bool("shared", true)
            .depends_on("zlib@1.3")
            .depends_on_when("mpi", "+shared")
            .build()
            .unwrap(),
    ])
}

#[test]
fn clean_repository_produces_no_diagnostics() {
    let diags = audit_repository(&clean_repo());
    assert!(diags.is_empty(), "unexpected findings: {diags:?}");
}

#[test]
fn r001_empty_dependency_version_intersection() {
    let diags = audit_repository(&repo([
        zlib(),
        PackageBuilder::new("app")
            .version("1.0")
            .depends_on("zlib@9.9")
            .build()
            .unwrap(),
    ]));
    let hit = diags.iter().find(|d| d.code == Code::R001).expect("R001");
    assert_eq!(hit.severity, Severity::Error);
    assert!(hit.message.contains("zlib"), "{}", hit.message);
    assert!(
        hit.hint.as_deref().unwrap().contains("1.3"),
        "hint lists declared versions: {:?}",
        hit.hint
    );
    // An overlapping requirement is clean.
    let ok = audit_repository(&repo([
        zlib(),
        PackageBuilder::new("app")
            .version("1.0")
            .depends_on("zlib@1.2:")
            .build()
            .unwrap(),
    ]));
    assert!(!codes(&ok).contains(&Code::R001), "{ok:?}");
}

#[test]
fn r002_vacuous_when_condition() {
    let diags = audit_repository(&repo([
        zlib(),
        PackageBuilder::new("app")
            .version("1.0")
            .depends_on_when("zlib", "@9.9")
            .build()
            .unwrap(),
    ]));
    assert!(codes(&diags).contains(&Code::R002), "{diags:?}");
    let ok = audit_repository(&repo([
        zlib(),
        PackageBuilder::new("app")
            .version("1.0")
            .depends_on_when("zlib", "@1.0")
            .build()
            .unwrap(),
    ]));
    assert!(!codes(&ok).contains(&Code::R002), "{ok:?}");
}

#[test]
fn r003_undeclared_variant_in_when() {
    // The builder rejects this, so construct the definition raw.
    let app = PackageDef {
        name: Sym::intern("app"),
        versions: vec![Version::parse("1.0").unwrap()],
        variants: BTreeMap::new(),
        depends: vec![DependsOn {
            spec: parse_spec("zlib").unwrap(),
            types: DepTypes::ALL,
            when: parse_spec("+fast").unwrap(),
        }],
        conflicts: vec![],
        provides: vec![],
        can_splice: vec![],
    };
    let diags = audit_repository(&repo([zlib(), app]));
    let hit = diags.iter().find(|d| d.code == Code::R003).expect("R003");
    assert_eq!(hit.severity, Severity::Error);
    assert!(hit.message.contains("fast"), "{}", hit.message);
    assert!(!codes(&audit_repository(&clean_repo())).contains(&Code::R003));
}

#[test]
fn r003_undeclared_variant_on_dependency_spec() {
    // `depends_on("zlib+bogus")`: the *target* package lacks the variant.
    let diags = audit_repository(&repo([
        zlib(),
        PackageBuilder::new("app")
            .version("1.0")
            .depends_on("zlib+bogus")
            .build()
            .unwrap(),
    ]));
    let hit = diags.iter().find(|d| d.code == Code::R003).expect("R003");
    assert!(hit.message.contains("zlib"), "{}", hit.message);
}

#[test]
fn r004_illegal_variant_value() {
    let app = PackageDef {
        name: Sym::intern("app"),
        versions: vec![Version::parse("1.0").unwrap()],
        variants: BTreeMap::from([(
            Sym::intern("api"),
            spackle_spec::VariantKind::Single {
                default: Sym::intern("v1"),
                allowed: vec![Sym::intern("v1"), Sym::intern("v2")],
            },
        )]),
        depends: vec![DependsOn {
            spec: parse_spec("zlib").unwrap(),
            types: DepTypes::ALL,
            when: parse_spec("api=v3").unwrap(),
        }],
        conflicts: vec![],
        provides: vec![],
        can_splice: vec![],
    };
    let diags = audit_repository(&repo([zlib(), app]));
    let hit = diags.iter().find(|d| d.code == Code::R004).expect("R004");
    assert!(hit.hint.as_deref().unwrap().contains("v1, v2"), "{:?}", hit.hint);
    assert!(!codes(&audit_repository(&clean_repo())).contains(&Code::R004));
}

#[test]
fn r005_unprovided_virtual() {
    let diags = audit_repository(&repo([PackageBuilder::new("app")
        .version("1.0")
        .depends_on("mpi")
        .build()
        .unwrap()]));
    let hit = diags.iter().find(|d| d.code == Code::R005).expect("R005");
    assert_eq!(hit.severity, Severity::Error);
    assert!(hit.message.contains("mpi"), "{}", hit.message);
    // With a provider present the same dependency is clean.
    assert!(!codes(&audit_repository(&clean_repo())).contains(&Code::R005));
}

#[test]
fn r006_link_run_dependency_cycle() {
    let diags = audit_repository(&repo([
        PackageBuilder::new("a")
            .version("1.0")
            .depends_on("b")
            .build()
            .unwrap(),
        PackageBuilder::new("b")
            .version("1.0")
            .depends_on("a")
            .build()
            .unwrap(),
    ]));
    let hit = diags.iter().find(|d| d.code == Code::R006).expect("R006");
    assert!(hit.message.contains("a, b"), "{}", hit.message);
    // A pure build-type cycle is how bootstrapping works: not flagged.
    let ok = audit_repository(&repo([
        PackageBuilder::new("a")
            .version("1.0")
            .depends_on_full("b", "", DepTypes::BUILD)
            .build()
            .unwrap(),
        PackageBuilder::new("b")
            .version("1.0")
            .depends_on_full("a", "", DepTypes::BUILD)
            .build()
            .unwrap(),
    ]));
    assert!(!codes(&ok).contains(&Code::R006), "{ok:?}");
}

#[test]
fn r007_duplicate_directive() {
    let diags = audit_repository(&repo([
        zlib(),
        PackageBuilder::new("app")
            .version("1.0")
            .depends_on("zlib")
            .depends_on("zlib")
            .build()
            .unwrap(),
    ]));
    let hit = diags.iter().find(|d| d.code == Code::R007).expect("R007");
    assert_eq!(hit.severity, Severity::Warning);
    // Distinct constraints on the same package are not duplicates.
    let ok = audit_repository(&repo([
        zlib(),
        PackageBuilder::new("app")
            .version("1.0")
            .depends_on("zlib@1.3")
            .depends_on_when("zlib", "@1.0")
            .build()
            .unwrap(),
    ]));
    assert!(!codes(&ok).contains(&Code::R007), "{ok:?}");
}

#[test]
fn r008_unsatisfiable_can_splice_target() {
    let diags = audit_repository(&repo([
        zlib(),
        PackageBuilder::new("zlib-ng")
            .version("2.1")
            .can_splice("zlib@9.9", "")
            .build()
            .unwrap(),
    ]));
    let hit = diags.iter().find(|d| d.code == Code::R008).expect("R008");
    assert_eq!(hit.severity, Severity::Error);
    assert!(hit.hint.as_deref().unwrap().contains("1.3"), "{:?}", hit.hint);
    let ok = audit_repository(&repo([
        zlib(),
        PackageBuilder::new("zlib-ng")
            .version("2.1")
            .can_splice("zlib@1.3", "")
            .build()
            .unwrap(),
    ]));
    assert!(!codes(&ok).contains(&Code::R008), "{ok:?}");
}

// ---- logic-program codes ----

const CLEAN_PROGRAM: &str = "f(1). g(X) :- f(X).";

#[test]
fn clean_program_produces_no_diagnostics() {
    let diags = audit_program_text(CLEAN_PROGRAM, &["g"]).unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l001_unsafe_variable() {
    let diags = audit_program_text("p(X) :- not q(X).", &[]).unwrap();
    let hit = diags.iter().find(|d| d.code == Code::L001).expect("L001");
    assert_eq!(hit.severity, Severity::Error);
    assert!(hit.message.contains('X'), "{}", hit.message);
    assert!(!codes(&audit_program_text(CLEAN_PROGRAM, &[]).unwrap()).contains(&Code::L001));
}

#[test]
fn l002_undefined_predicate() {
    let diags = audit_program_text("a :- b.", &[]).unwrap();
    let hit = diags.iter().find(|d| d.code == Code::L002).expect("L002");
    assert!(hit.message.contains("b/0"), "{}", hit.message);
    // The rule's only dead predicate is the undefined one: no L004 noise.
    assert!(!codes(&diags).contains(&Code::L004), "{diags:?}");
    assert!(!codes(&audit_program_text(CLEAN_PROGRAM, &[]).unwrap()).contains(&Code::L002));
}

#[test]
fn l003_unstratified_negation() {
    let diags = audit_program_text("p :- not q. q :- not p.", &[]).unwrap();
    assert!(codes(&diags).contains(&Code::L003), "{diags:?}");
    // Negation over a lower stratum is stratified and clean.
    let ok = audit_program_text("f(1). g(X) :- f(X), not h(X). h(2).", &[]).unwrap();
    assert!(!codes(&ok).contains(&Code::L003), "{ok:?}");
}

#[test]
fn l004_rule_can_never_fire() {
    // `cyc` heads a rule (so it is not L002) but is never derivable.
    let diags = audit_program_text("cyc :- cyc. dead :- cyc.", &[]).unwrap();
    let hit = diags.iter().find(|d| d.code == Code::L004).expect("L004");
    assert!(hit.message.contains("cyc/0"), "{}", hit.message);
    assert!(!codes(&audit_program_text(CLEAN_PROGRAM, &[]).unwrap()).contains(&Code::L004));
}

#[test]
fn l005_predicate_irrelevant_to_goals() {
    let diags = audit_program_text("f(1). g(X) :- f(X). goal(X) :- f(X).", &["goal"]).unwrap();
    let hit = diags.iter().find(|d| d.code == Code::L005).expect("L005");
    assert_eq!(hit.severity, Severity::Note);
    assert!(hit.message.contains("g/1"), "{}", hit.message);
    // With every head predicate a goal, nothing is irrelevant.
    let ok = audit_program_text("f(1). g(X) :- f(X).", &["f", "g"]).unwrap();
    assert!(!codes(&ok).contains(&Code::L005), "{ok:?}");
}
