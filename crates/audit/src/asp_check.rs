//! Level 2: static analysis over an ASP [`Program`].
//!
//! The checks are the diagnostic face of `spackle_asp::analysis`: rule
//! safety (L001), undefined predicates (L002), stratification (L003),
//! and the two reachability analyses backing
//! [`Program::prune_unreachable`] — rules that can never fire (L004)
//! and predicates irrelevant to the goal predicates (L005).

use crate::diag::{Code, Diagnostic, Provenance};
use spackle_asp::analysis::{derivable_preds, pred_name, relevant_preds, stratify, PredGraph};
use spackle_asp::program::{BodyElem, Head};
use spackle_asp::{parse_program, unsafe_variables, AspError, Program};
use spackle_spec::Sym;
use std::collections::BTreeSet;

/// Run all logic-program checks (codes `SPKL-L001`…`SPKL-L005`).
/// `goal_preds` are the predicates the program's consumer reads from
/// models (the concretizer reads `attr` and `splice_to`); L005 is
/// skipped when it is empty.
pub fn audit_program(program: &Program, goal_preds: &[Sym]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let rule_text = |i: usize| Provenance::Rule {
        index: i,
        text: program.rules[i].to_string(),
    };

    // L001: unsafe variables, with the exact binding context.
    for (i, rule) in program.rules.iter().enumerate() {
        for uv in unsafe_variables(rule) {
            diags.push(
                Diagnostic::new(
                    Code::L001,
                    format!("variable {} is unsafe: {}", uv.variable.as_str(), uv.context),
                    rule_text(i),
                )
                .with_hint(format!(
                    "bind {} in a positive body literal",
                    uv.variable.as_str()
                )),
            );
        }
    }

    // L002: predicates used in a positive body but heading no rule.
    let graph = PredGraph::build(program);
    let undefined = graph.undefined_preds(program);
    for p in &undefined {
        diags.push(
            Diagnostic::new(
                Code::L002,
                format!(
                    "predicate {} appears in a positive body but heads no rule",
                    pred_name(p)
                ),
                Provenance::Predicate { name: pred_name(p) },
            )
            .with_hint("rules depending on it can never fire; define it or drop the literal"),
        );
    }

    // L003: negative edges inside an SCC — recursion through negation.
    let strat = stratify(&graph);
    for (head, body) in &strat.unstratified {
        diags.push(Diagnostic::new(
            Code::L003,
            format!(
                "unstratified negation: {} depends negatively on {} within a recursive component",
                pred_name(head),
                pred_name(body)
            ),
            Provenance::Predicate {
                name: pred_name(head),
            },
        ));
    }

    // L004: rules whose positive body mentions a predicate that is
    // defined somewhere yet never derivable. (Undefined predicates are
    // already L002; re-flagging each rule would be noise.)
    let derivable = derivable_preds(program);
    for (i, rule) in program.rules.iter().enumerate() {
        let mut dead: Vec<String> = Vec::new();
        let mut only_undefined = true;
        for el in &rule.body {
            if let BodyElem::Pos(a) = el {
                let p = spackle_asp::analysis::pred_of(a);
                if !derivable.contains(&p) {
                    dead.push(pred_name(&p));
                    if !undefined.contains(&p) {
                        only_undefined = false;
                    }
                }
            }
        }
        if !dead.is_empty() && !only_undefined {
            diags.push(
                Diagnostic::new(
                    Code::L004,
                    format!("rule can never fire: {} is never derivable", dead.join(", ")),
                    rule_text(i),
                )
                .with_hint("Program::prune_unreachable drops this rule before grounding"),
            );
        }
    }

    // L005: head predicates no goal predicate (transitively) reads.
    if !goal_preds.is_empty() {
        let relevant = relevant_preds(program, goal_preds);
        let mut irrelevant: BTreeSet<String> = BTreeSet::new();
        for rule in &program.rules {
            if let Head::Atom(a) = &rule.head {
                let p = spackle_asp::analysis::pred_of(a);
                if derivable.contains(&p) && !relevant.contains(&p) {
                    irrelevant.insert(pred_name(&p));
                }
            }
        }
        let goals: Vec<&str> = goal_preds.iter().map(|g| g.as_str()).collect();
        for name in irrelevant {
            diags.push(
                Diagnostic::new(
                    Code::L005,
                    format!(
                        "predicate {} is never read by the goal predicates ({})",
                        name,
                        goals.join(", ")
                    ),
                    Provenance::Predicate { name },
                )
                .with_hint("its rules are dropped by Program::prune_unreachable"),
            );
        }
    }

    diags
}

/// Parse `text` and audit it. Parse failures surface as [`AspError`];
/// goal predicate names are interned here for convenience.
pub fn audit_program_text(text: &str, goal_preds: &[&str]) -> Result<Vec<Diagnostic>, AspError> {
    let program = parse_program(text)?;
    let goals: Vec<Sym> = goal_preds.iter().map(|g| Sym::intern(g)).collect();
    Ok(audit_program(&program, &goals))
}
