//! # spackle-audit — static analysis for repositories and logic programs
//!
//! Two analysis levels over one structured-diagnostics core:
//!
//! * **Level 1 (repository, `SPKL-R…`)** lints [`Repository`] contents:
//!   version constraints that intersect no declared version (reusing
//!   the concretizer's exact `VersionReq::intersect`), `when=`
//!   conditions referencing undeclared variants or illegal values,
//!   unresolvable package/virtual references, possible non-build
//!   dependency cycles, duplicated directives, and `can_splice`
//!   targets that can never match.
//! * **Level 2 (logic program, `SPKL-L…`)** lints an ASP [`Program`]:
//!   rule safety with precise binding contexts, undefined predicates,
//!   stratification, and the reachability analyses that back
//!   [`Program::prune_unreachable`] — rules that can never fire and
//!   predicates irrelevant to the model consumer's goal predicates.
//!
//! Every finding carries a stable [`Code`], a [`Severity`], provenance
//! (directive text with a byte [`Span`](spackle_spec::Span) for caret
//! underlines, or a rule index and text), and an optional fix-it hint.
//! [`AuditReport`] renders findings for humans or as JSON and applies
//! `--deny` promotions; `spackle audit` exits nonzero iff
//! [`AuditReport::has_errors`].
//!
//! ```
//! use spackle_audit::{audit_repository, AuditReport, Code};
//! use spackle_repo::{PackageBuilder, Repository};
//!
//! let repo = Repository::from_packages([
//!     PackageBuilder::new("zlib").version("1.3").build().unwrap(),
//!     PackageBuilder::new("app")
//!         .version("1.0")
//!         .depends_on("zlib@9.9") // no declared zlib version matches
//!         .build()
//!         .unwrap(),
//! ])
//! .unwrap();
//! let report = AuditReport::new(audit_repository(&repo));
//! assert!(report.diagnostics.iter().any(|d| d.code == Code::R001));
//! assert!(report.has_errors());
//! ```

pub mod asp_check;
pub mod diag;
pub mod explain_report;
pub mod repo_check;

pub use asp_check::{audit_program, audit_program_text};
pub use diag::{AuditReport, Code, Diagnostic, Provenance, Severity};
pub use explain_report::{audit_concretizability, explanation_report};
pub use repo_check::audit_repository;

use spackle_asp::Program;
use spackle_repo::Repository;
use spackle_spec::Sym;

/// Audit both levels in one pass: the repository, then the logic
/// program with the given goal predicates (what the program's model
/// consumer reads — the concretizer reads `attr` and `splice_to`).
pub fn audit(repo: &Repository, program: &Program, goal_preds: &[Sym]) -> AuditReport {
    let mut report = AuditReport::new(audit_repository(repo));
    report.extend(audit_program(program, goal_preds));
    report
}
