//! The structured-diagnostics core shared by both audit levels.
//!
//! Every finding is a [`Diagnostic`]: a stable [`Code`] (so CI deny-lists
//! survive message rewording), a [`Severity`], a human message, a
//! [`Provenance`] locating the finding in a package directive (with an
//! optional source [`Span`] for caret underlines) or in a logic-program
//! rule, and an optional fix-it hint. An [`AuditReport`] aggregates
//! diagnostics and renders them for humans or as JSON.

use spackle_spec::Span;
use std::fmt;

/// How bad a finding is. `Error` findings make `spackle audit` exit
/// nonzero; `--deny CODE` promotes a code to `Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, never actionable on its own.
    Note,
    /// Suspicious but not provably wrong (e.g. a possible cycle that
    /// conditional dependencies may avoid at concretization time).
    Warning,
    /// Provably broken: the flagged construct can never behave as
    /// written.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes. `R` codes come from the repository level,
/// `L` codes from the logic-program level, `E` codes from unsat-core
/// explanations (`spackle concretize --explain`). Codes are
/// append-only: a retired check leaves a hole rather than renumbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Dependency version constraint intersects no declared version of
    /// the target package.
    R001,
    /// A directive's `when=` (or a conflict spec) can never match any
    /// declared version of the package: the directive is vacuous.
    R002,
    /// A spec references a variant the constrained package does not
    /// declare.
    R003,
    /// A spec assigns a value a declared variant does not accept.
    R004,
    /// A referenced package name is neither a defined package nor a
    /// virtual with at least one provider.
    R005,
    /// A possible dependency cycle through non-build (link/run) edges.
    R006,
    /// The same directive is declared twice in one package.
    R007,
    /// A `can_splice` target version constraint matches no declared
    /// version of the target package: the splice can never apply.
    R008,
    /// A rule variable is unsafe (not bound by any positive body
    /// literal).
    L001,
    /// A predicate appears in a positive rule body but heads no rule.
    L002,
    /// Recursion through negation: the program is unstratified.
    L003,
    /// A rule can never fire: some positive body predicate is defined
    /// but never derivable.
    L004,
    /// A predicate is derivable but irrelevant to the goal predicates:
    /// `Program::prune_unreachable` removes its rules.
    L005,
    /// A goal (or package) is statically unconcretizable: the solver
    /// proved UNSAT and extracted a minimized core of the responsible
    /// directives.
    L006,
    /// A goal cannot concretize: the unsat-core summary heading an
    /// explanation (`spackle concretize --explain`).
    E001,
    /// A package directive (`depends_on`, `conflicts`, `provides`,
    /// `can_splice`) participates in the unsat core.
    E002,
    /// A goal requirement (a root constraint or a `--forbid` exclusion)
    /// participates in the unsat core.
    E003,
    /// Core minimization did not finish (probe budget, timeout, or
    /// cancellation): the reported core is correct but possibly
    /// non-minimal.
    E004,
    /// A derived constraint (solver-internal rule, logic fragment, or
    /// completion clause) participates in the unsat core.
    E005,
}

impl Code {
    /// Every code, in order.
    pub const ALL: [Code; 19] = [
        Code::R001,
        Code::R002,
        Code::R003,
        Code::R004,
        Code::R005,
        Code::R006,
        Code::R007,
        Code::R008,
        Code::L001,
        Code::L002,
        Code::L003,
        Code::L004,
        Code::L005,
        Code::L006,
        Code::E001,
        Code::E002,
        Code::E003,
        Code::E004,
        Code::E005,
    ];

    /// The stable string form, e.g. `"SPKL-R001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::R001 => "SPKL-R001",
            Code::R002 => "SPKL-R002",
            Code::R003 => "SPKL-R003",
            Code::R004 => "SPKL-R004",
            Code::R005 => "SPKL-R005",
            Code::R006 => "SPKL-R006",
            Code::R007 => "SPKL-R007",
            Code::R008 => "SPKL-R008",
            Code::L001 => "SPKL-L001",
            Code::L002 => "SPKL-L002",
            Code::L003 => "SPKL-L003",
            Code::L004 => "SPKL-L004",
            Code::L005 => "SPKL-L005",
            Code::L006 => "SPKL-L006",
            Code::E001 => "SPKL-E001",
            Code::E002 => "SPKL-E002",
            Code::E003 => "SPKL-E003",
            Code::E004 => "SPKL-E004",
            Code::E005 => "SPKL-E005",
        }
    }

    /// Parse `"SPKL-R001"` (or the bare `"R001"`), case-insensitively.
    pub fn parse(s: &str) -> Option<Code> {
        let s = s.trim();
        let bare = s
            .strip_prefix("SPKL-")
            .or_else(|| s.strip_prefix("spkl-"))
            .unwrap_or(s);
        Code::ALL
            .iter()
            .copied()
            .find(|c| c.as_str()[5..].eq_ignore_ascii_case(bare))
    }

    /// Severity when no `--deny` override applies.
    pub fn default_severity(self) -> Severity {
        match self {
            Code::R001
            | Code::R003
            | Code::R004
            | Code::R005
            | Code::R008
            | Code::L001
            | Code::L006
            | Code::E001
            | Code::E002
            | Code::E003 => Severity::Error,
            Code::R002 | Code::R006 | Code::R007 | Code::L002 | Code::L004 | Code::E004 => {
                Severity::Warning
            }
            Code::L003 | Code::L005 | Code::E005 => Severity::Note,
        }
    }

    /// Short registry title (used by `spackle audit --explain`-style
    /// listings and the docs table).
    pub fn title(self) -> &'static str {
        match self {
            Code::R001 => "empty dependency version intersection",
            Code::R002 => "vacuous directive condition",
            Code::R003 => "undeclared variant",
            Code::R004 => "illegal variant value",
            Code::R005 => "unresolvable package reference",
            Code::R006 => "possible non-build dependency cycle",
            Code::R007 => "duplicate directive",
            Code::R008 => "unsatisfiable can_splice target",
            Code::L001 => "unsafe rule variable",
            Code::L002 => "undefined predicate in positive body",
            Code::L003 => "recursion through negation",
            Code::L004 => "rule can never fire",
            Code::L005 => "predicate irrelevant to goals",
            Code::L006 => "goal statically unconcretizable",
            Code::E001 => "goal cannot concretize",
            Code::E002 => "directive in unsat core",
            Code::E003 => "goal requirement in unsat core",
            Code::E004 => "unsat core possibly non-minimal",
            Code::E005 => "derived constraint in unsat core",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// A package directive. `directive` is the rendered directive text
    /// (`depends_on("zlib@9.9", when="+shared")`); `span`, when present,
    /// indexes into that text and selects the offending token.
    Package {
        /// Declaring package name.
        package: String,
        /// Rendered directive text, if the finding is tied to one.
        directive: Option<String>,
        /// Byte span of the offending token within `directive`.
        span: Option<Span>,
    },
    /// A logic-program rule, by index into `Program::rules`.
    Rule {
        /// Rule index in the audited program.
        index: usize,
        /// The rule, rendered.
        text: String,
    },
    /// A predicate of the logic program (`name/arity`).
    Predicate {
        /// `name/arity` notation.
        name: String,
    },
}

/// One structured finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Effective severity (default per code; `--deny` may promote).
    pub severity: Severity,
    /// Human-readable description of this specific instance.
    pub message: String,
    /// Where the finding lives.
    pub provenance: Provenance,
    /// Optional fix-it hint.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity and no hint.
    pub fn new(code: Code, message: impl Into<String>, provenance: Provenance) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            provenance,
            hint: None,
        }
    }

    /// Attach a fix-it hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Diagnostic {
        self.hint = Some(hint.into());
        self
    }
}

/// An audit run's findings, with deny-list application and rendering.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// All findings, repository level first, then program level.
    pub diagnostics: Vec<Diagnostic>,
}

impl AuditReport {
    /// Wrap a list of findings.
    pub fn new(diagnostics: Vec<Diagnostic>) -> AuditReport {
        AuditReport { diagnostics }
    }

    /// Append another level's findings.
    pub fn extend(&mut self, more: Vec<Diagnostic>) {
        self.diagnostics.extend(more);
    }

    /// Promote every diagnostic whose code is in `codes` to
    /// [`Severity::Error`].
    pub fn deny(&mut self, codes: &[Code]) {
        for d in &mut self.diagnostics {
            if codes.contains(&d.code) {
                d.severity = Severity::Error;
            }
        }
    }

    /// Count findings at `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == sev).count()
    }

    /// True when any finding is an error (after deny promotion): the
    /// CLI exits nonzero.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Rustc-style human rendering with caret underlines where a span
    /// is known.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            render_one_human(d, &mut out);
        }
        out.push_str(&format!(
            "audit: {} error(s), {} warning(s), {} note(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note)
        ));
        out
    }

    /// Stable JSON rendering (one object; no trailing newline inside
    /// values). Field order is fixed so goldens can string-compare.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_one_json(d, &mut out);
        }
        out.push_str(&format!(
            "],\"summary\":{{\"errors\":{},\"warnings\":{},\"notes\":{}}}}}",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note)
        ));
        out
    }
}

fn render_one_human(d: &Diagnostic, out: &mut String) {
    out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
    match &d.provenance {
        Provenance::Package {
            package,
            directive,
            span,
        } => {
            match directive {
                Some(text) => {
                    out.push_str(&format!("  --> {package}: {text}\n"));
                    if let Some(sp) = span {
                        if !sp.is_empty() && sp.end <= text.len() {
                            // "  --> " is 6 columns, then the package name
                            // and ": " precede the directive text.
                            let indent = 6 + package.len() + 2 + sp.start;
                            out.push_str(&" ".repeat(indent));
                            out.push_str(&"^".repeat(sp.len()));
                            out.push('\n');
                        }
                    }
                }
                None => out.push_str(&format!("  --> {package}\n")),
            }
        }
        Provenance::Rule { index, text } => {
            out.push_str(&format!("  --> rule {index}: {text}\n"));
        }
        Provenance::Predicate { name } => {
            out.push_str(&format!("  --> predicate {name}\n"));
        }
    }
    if let Some(h) = &d.hint {
        out.push_str(&format!("  = hint: {h}\n"));
    }
}

fn render_one_json(d: &Diagnostic, out: &mut String) {
    out.push_str("{\"code\":");
    json_string(d.code.as_str(), out);
    out.push_str(",\"severity\":");
    json_string(&d.severity.to_string(), out);
    out.push_str(",\"message\":");
    json_string(&d.message, out);
    out.push_str(",\"provenance\":");
    match &d.provenance {
        Provenance::Package {
            package,
            directive,
            span,
        } => {
            out.push_str("{\"kind\":\"package\",\"package\":");
            json_string(package, out);
            if let Some(text) = directive {
                out.push_str(",\"directive\":");
                json_string(text, out);
            }
            if let Some(sp) = span {
                out.push_str(&format!(
                    ",\"span\":{{\"start\":{},\"end\":{}}}",
                    sp.start, sp.end
                ));
            }
            out.push('}');
        }
        Provenance::Rule { index, text } => {
            out.push_str(&format!("{{\"kind\":\"rule\",\"index\":{index},\"text\":"));
            json_string(text, out);
            out.push('}');
        }
        Provenance::Predicate { name } => {
            out.push_str("{\"kind\":\"predicate\",\"name\":");
            json_string(name, out);
            out.push('}');
        }
    }
    if let Some(h) = &d.hint {
        out.push_str(",\"hint\":");
        json_string(h, out);
    }
    out.push('}');
}

/// Minimal JSON string escaper (the crate deliberately avoids a serde
/// dependency: the output schema is flat and fixed).
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip_and_registry() {
        for c in Code::ALL {
            assert_eq!(Code::parse(c.as_str()), Some(c));
            // Bare form and lowercase both parse.
            assert_eq!(Code::parse(&c.as_str()[5..]), Some(c));
            assert_eq!(Code::parse(&c.as_str().to_lowercase()), Some(c));
            assert!(!c.title().is_empty());
        }
        assert_eq!(Code::parse("SPKL-R999"), None);
        assert_eq!(Code::parse("nonsense"), None);
    }

    #[test]
    fn deny_promotes_and_flips_exit_status() {
        let mut report = AuditReport::new(vec![Diagnostic::new(
            Code::R007,
            "duplicate directive",
            Provenance::Package {
                package: "app".into(),
                directive: None,
                span: None,
            },
        )]);
        assert!(!report.has_errors());
        report.deny(&[Code::R007]);
        assert!(report.has_errors());
        assert_eq!(report.count(Severity::Error), 1);
    }

    #[test]
    fn human_rendering_underlines_span() {
        let text = "depends_on(\"zlib@9.9\")".to_string();
        // Span over "@9.9" inside the rendered text.
        let span = Span::new(16, 20);
        let report = AuditReport::new(vec![Diagnostic::new(
            Code::R001,
            "no declared version of zlib matches @9.9",
            Provenance::Package {
                package: "app".into(),
                directive: Some(text),
                span: Some(span),
            },
        )
        .with_hint("declared versions of zlib: 1.3, 1.2.11")]);
        let human = report.render_human();
        assert!(human.contains("error[SPKL-R001]"), "{human}");
        assert!(human.contains("  --> app: depends_on(\"zlib@9.9\")"));
        let underline = human
            .lines()
            .find(|l| l.trim_start().starts_with('^'))
            .expect("underline line");
        // The caret column must line up with the '@' of the directive.
        let header = "  --> app: ";
        assert_eq!(underline.len(), header.len() + span.end);
        assert!(underline.ends_with("^^^^"));
        assert!(human.contains("= hint: declared versions"));
        assert!(human.contains("1 error(s), 0 warning(s), 0 note(s)"));
    }

    #[test]
    fn json_rendering_escapes_and_counts() {
        let report = AuditReport::new(vec![Diagnostic::new(
            Code::L001,
            "variable \"X\"\nis unsafe",
            Provenance::Rule {
                index: 3,
                text: "p(X) :- not q(X).".into(),
            },
        )]);
        let json = report.render_json();
        assert!(json.contains("\"code\":\"SPKL-L001\""), "{json}");
        assert!(json.contains("\\\"X\\\"\\nis unsafe"), "{json}");
        assert!(json.contains("\"kind\":\"rule\",\"index\":3"), "{json}");
        assert!(json.contains("\"summary\":{\"errors\":1,\"warnings\":0,\"notes\":0}"));
        // No raw control characters may survive escaping.
        assert!(!json.chars().any(|c| (c as u32) < 0x20));
    }
}
