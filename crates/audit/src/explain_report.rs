//! Rendering provenance-mapped unsat cores (`SPKL-E…`) through the
//! structured-diagnostics core, plus the L006 concretizability lint.
//!
//! [`explanation_report`] converts a
//! [`spackle_core::Explanation`] — the concretizer's minimized,
//! provenance-mapped unsat core — into an [`AuditReport`]: one `E001`
//! summary, one `E002` finding per package directive in the core (with
//! the directive rendered and the offending token underlined, exactly
//! like the repository lints), one `E003` finding per goal requirement,
//! `E005` notes for derived constraints, and an `E004` warning when
//! minimization stopped early. [`audit_concretizability`] is the audit
//! entry point: it proves goals statically unconcretizable (L006) and
//! attaches their minimized cores.

use crate::diag::{AuditReport, Code, Diagnostic, Provenance};
use crate::repo_check::{directive_text, Focus};
use spackle_core::{Concretizer, CoreError, EncodeOrigin, Explanation, Goal};
use spackle_repo::Repository;
use spackle_spec::VersionReq;
use std::collections::BTreeSet;

/// Render a directive named by an [`EncodeOrigin`] as the audit lints
/// would: `kind("spec", when="…")` with a span selecting the most
/// conflict-relevant token (the version constraint when one exists).
/// `None` when the origin is not a package directive or the index is
/// stale with respect to `repo`.
fn origin_directive(
    repo: &Repository,
    origin: &EncodeOrigin,
) -> Option<(String, String, Option<spackle_spec::Span>)> {
    match origin {
        EncodeOrigin::DependsOn { package, index } => {
            let d = repo.get(*package)?.depends.get(*index)?;
            let focus = if matches!(d.spec.version, VersionReq::Any) {
                Focus::None
            } else {
                Focus::SpecVersion
            };
            let (text, span) = directive_text("depends_on", &d.spec.to_string(), &d.when, focus);
            Some((package.as_str().to_string(), text, span))
        }
        EncodeOrigin::Conflict { package, index } => {
            let c = repo.get(*package)?.conflicts.get(*index)?;
            let focus = if matches!(c.spec.version, VersionReq::Any) {
                Focus::None
            } else {
                Focus::SpecVersion
            };
            let (text, span) = directive_text("conflicts", &c.spec.to_string(), &c.when, focus);
            Some((package.as_str().to_string(), text, span))
        }
        EncodeOrigin::Provides { package, index } => {
            let p = repo.get(*package)?.provides.get(*index)?;
            let (text, span) =
                directive_text("provides", p.virtual_name.as_str(), &p.when, Focus::None);
            Some((package.as_str().to_string(), text, span))
        }
        EncodeOrigin::CanSplice { package, index } => {
            let c = repo.get(*package)?.can_splice.get(*index)?;
            let (text, span) =
                directive_text("can_splice", &c.target.to_string(), &c.when, Focus::None);
            Some((package.as_str().to_string(), text, span))
        }
        _ => None,
    }
}

/// One-line human label for a core member's origin — used in hints and
/// in the L006 core listing.
fn origin_label(repo: &Repository, origin: &EncodeOrigin) -> String {
    match origin_directive(repo, origin) {
        Some((pkg, text, _)) => format!("{pkg}: {text}"),
        None => match origin {
            EncodeOrigin::GoalRoot { root } => format!("goal requirements on {root}"),
            EncodeOrigin::Forbidden { package } => format!("--forbid {package}"),
            EncodeOrigin::Reusable { package, hash } => {
                format!("reusable spec {package}/{hash}")
            }
            EncodeOrigin::Logic { fragment } => format!("solver logic ({fragment})"),
            EncodeOrigin::ProviderWeights => "provider preference weights".to_string(),
            EncodeOrigin::Environment => "environment facts".to_string(),
            // Directives whose repo lookup failed fall through here.
            other => format!("{other:?}"),
        },
    }
}

/// Convert an [`Explanation`] into structured `SPKL-E…` diagnostics.
///
/// `goal_label` is the rendered goal (e.g. the spec text the user
/// typed); it anchors the `E001` summary and the `E004` partial-core
/// warning. Repeated core members mapping to the same directive (two
/// ground instances of one rule) are deduplicated.
pub fn explanation_report(repo: &Repository, goal_label: &str, ex: &Explanation) -> AuditReport {
    let mut diags = Vec::new();
    diags.push(
        Diagnostic::new(
            Code::E001,
            format!(
                "goal `{goal_label}` cannot concretize: {} constraint group(s) are jointly \
                 unsatisfiable{}",
                ex.entries.len(),
                if ex.minimal {
                    " (minimal core: dropping any one makes the goal satisfiable)"
                } else {
                    ""
                }
            ),
            Provenance::Predicate {
                name: goal_label.to_string(),
            },
        )
        .with_hint(
            "relax any directive or goal requirement flagged SPKL-E002/E003 below to \
             restore satisfiability",
        ),
    );
    if !ex.minimal {
        diags.push(Diagnostic::new(
            Code::E004,
            format!(
                "core minimization stopped early (after {} deletion probes): every finding \
                 participates in the conflict, but some may be removable",
                ex.probes
            ),
            Provenance::Predicate {
                name: goal_label.to_string(),
            },
        ));
    }

    let mut seen: BTreeSet<String> = BTreeSet::new();
    for e in &ex.entries {
        match &e.origin {
            Some(
                origin @ (EncodeOrigin::DependsOn { .. }
                | EncodeOrigin::Conflict { .. }
                | EncodeOrigin::Provides { .. }
                | EncodeOrigin::CanSplice { .. }),
            ) => {
                if !seen.insert(format!("{origin:?}")) {
                    continue;
                }
                let Some((pkg, text, span)) = origin_directive(repo, origin) else {
                    continue;
                };
                diags.push(
                    Diagnostic::new(
                        Code::E002,
                        "this directive participates in the conflict",
                        Provenance::Package {
                            package: pkg,
                            directive: Some(text),
                            span,
                        },
                    )
                    .with_hint(format!("as ground rule: {}", e.rule)),
                );
            }
            Some(origin @ (EncodeOrigin::GoalRoot { .. } | EncodeOrigin::Forbidden { .. })) => {
                if !seen.insert(format!("{origin:?}")) {
                    continue;
                }
                let package = match origin {
                    EncodeOrigin::GoalRoot { root } => root.as_str().to_string(),
                    EncodeOrigin::Forbidden { package } => package.as_str().to_string(),
                    _ => unreachable!(),
                };
                diags.push(
                    Diagnostic::new(
                        Code::E003,
                        format!(
                            "{} participate in the conflict",
                            origin_label(repo, origin)
                        ),
                        Provenance::Package {
                            package,
                            directive: None,
                            span: None,
                        },
                    )
                    .with_hint(format!("as ground rule: {}", e.rule)),
                );
            }
            other => {
                // Derived constraints: solver logic, environment facts,
                // cache entries, completion clauses. Deduplicate on the
                // ground-rule rendering.
                if !seen.insert(e.rule.clone()) {
                    continue;
                }
                let label = match other {
                    Some(o) => origin_label(repo, o),
                    None => "derived constraint".to_string(),
                };
                diags.push(Diagnostic::new(
                    Code::E005,
                    format!("{label} participate(s) in the conflict"),
                    Provenance::Rule {
                        index: e.line.unwrap_or(0),
                        text: e.rule.clone(),
                    },
                ));
            }
        }
    }
    AuditReport::new(diags)
}

/// Level-2 lint L006: prove goals statically unconcretizable.
///
/// For each goal, runs the concretizer's unsat-core extractor
/// ([`Concretizer::explain_goal`]) with no reusable sources — the
/// static question is "can this ever build from source as declared".
/// Satisfiable goals produce nothing; unsatisfiable ones produce one
/// L006 error carrying the minimized core as its hint. Goals that fail
/// for other reasons (unknown package, unsupported constructs) are
/// skipped — other lints already cover those.
pub fn audit_concretizability(repo: &Repository, goals: &[Goal]) -> Vec<Diagnostic> {
    let c = Concretizer::new(repo);
    let mut diags = Vec::new();
    for goal in goals {
        let label = goal
            .roots
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        match c.explain_goal(goal) {
            Ok(None) | Err(CoreError::BadGoal(_)) | Err(CoreError::Unsupported(_)) => {}
            Ok(Some(ex)) => {
                let mut core: Vec<String> = Vec::new();
                let mut seen = BTreeSet::new();
                for e in &ex.entries {
                    if let Some(o) = &e.origin {
                        let label = origin_label(repo, o);
                        if seen.insert(label.clone()) {
                            core.push(label);
                        }
                    }
                }
                diags.push(
                    Diagnostic::new(
                        Code::L006,
                        format!(
                            "goal `{label}` can never concretize: {} constraint group(s) \
                             conflict{}",
                            ex.entries.len(),
                            if ex.minimal { " (minimal core)" } else { "" }
                        ),
                        Provenance::Predicate { name: label },
                    )
                    .with_hint(format!("unsat core: {}", core.join("; "))),
                );
            }
            Err(e) => diags.push(Diagnostic::new(
                Code::L006,
                format!("goal `{label}` could not be checked: {e}"),
                Provenance::Predicate { name: label },
            )),
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use spackle_repo::PackageBuilder;
    use spackle_spec::parse_spec;

    fn conflicted_repo() -> Repository {
        let zlib = PackageBuilder::new("zlib")
            .version("1.3")
            .version("1.2.11")
            .build()
            .unwrap();
        let liba = PackageBuilder::new("liba")
            .version("1.0")
            .depends_on("zlib@1.2")
            .build()
            .unwrap();
        let libb = PackageBuilder::new("libb")
            .version("1.0")
            .depends_on("zlib@1.3")
            .build()
            .unwrap();
        let app = PackageBuilder::new("app")
            .version("2.0")
            .depends_on("liba")
            .depends_on("libb")
            .build()
            .unwrap();
        Repository::from_packages([zlib, liba, libb, app]).unwrap()
    }

    #[test]
    fn explanation_renders_directives_with_spans() {
        let repo = conflicted_repo();
        let c = Concretizer::new(&repo);
        let goal = Goal::single(parse_spec("app").unwrap());
        let ex = c.explain_goal(&goal).unwrap().expect("unsat");
        let report = explanation_report(&repo, "app", &ex);

        assert!(report.has_errors());
        assert!(report.diagnostics.iter().any(|d| d.code == Code::E001));
        // Both clashing pins appear as E002 with rendered directives.
        let e002: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::E002)
            .collect();
        let has = |pkg: &str, frag: &str| {
            e002.iter().any(|d| match &d.provenance {
                Provenance::Package {
                    package, directive, ..
                } => package == pkg && directive.as_deref().is_some_and(|t| t.contains(frag)),
                _ => false,
            })
        };
        assert!(has("liba", "zlib@1.2"), "{:?}", report.render_human());
        assert!(has("libb", "zlib@1.3"), "{:?}", report.render_human());
        // Version-pinned directives carry a span for the caret underline.
        assert!(e002.iter().any(|d| matches!(
            &d.provenance,
            Provenance::Package { span: Some(_), .. }
        )));
        // Human rendering shows an underline.
        let human = report.render_human();
        assert!(human.lines().any(|l| l.trim_start().starts_with('^')), "{human}");
    }

    #[test]
    fn concretizability_lint_flags_only_broken_goals() {
        let repo = conflicted_repo();
        let goals = vec![
            Goal::single(parse_spec("liba").unwrap()),
            Goal::single(parse_spec("app").unwrap()),
        ];
        let diags = audit_concretizability(&repo, &goals);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::L006);
        let hint = diags[0].hint.as_deref().unwrap();
        assert!(hint.contains("zlib@1.2") && hint.contains("zlib@1.3"), "{hint}");
    }
}
