//! Level 1: static analysis over a package [`Repository`].
//!
//! Every check reasons about the *declared* configuration space only —
//! no concretization, no solver. The version checks reuse the exact
//! [`VersionReq::intersect`] the concretizer's encoder relies on, so a
//! constraint the audit calls empty is one the solver could never
//! satisfy either.

use crate::diag::{Code, Diagnostic, Provenance};
use spackle_asp::analysis::{stratify, EdgeKind, PredGraph};
use spackle_repo::{PackageDef, Repository};
use spackle_spec::{
    parse_spec_spanned, AbstractSpec, Span, Sym, VariantKind, Version, VersionReq,
};
use std::collections::BTreeSet;

/// Run all repository checks (codes `SPKL-R001`…`SPKL-R008`).
pub fn audit_repository(repo: &Repository) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for pkg in repo.packages() {
        audit_package(repo, pkg, &mut diags);
    }
    audit_cycles(repo, &mut diags);
    diags
}

/// Which token of the rendered directive a diagnostic underlines.
pub(crate) enum Focus {
    None,
    SpecVersion,
    SpecVariant(Sym),
    WhenVersion,
    WhenVariant(Sym),
}

/// Render a directive as `kind("spec", when="…")` and locate the
/// focused token inside the rendered text. Spec rendering round-trips
/// through the parser, so the spanned re-parse finds the exact bytes
/// the offending token occupies.
pub(crate) fn directive_text(
    kind: &str,
    spec_text: &str,
    when: &AbstractSpec,
    focus: Focus,
) -> (String, Option<Span>) {
    let mut text = format!("{kind}(\"{spec_text}\"");
    let spec_off = kind.len() + 2;
    let mut when_off = 0usize;
    let when_text = if when.is_empty() {
        None
    } else {
        Some(when.to_string())
    };
    if let Some(w) = &when_text {
        text.push_str(", when=\"");
        when_off = text.len();
        text.push_str(w);
        text.push('"');
    }
    text.push(')');

    fn pick(src: &str, off: usize, f: impl Fn(&spackle_spec::SpecSpans) -> Option<Span>) -> Option<Span> {
        let (_, spans) = parse_spec_spanned(src).ok()?;
        let s = f(&spans)?;
        Some(Span::new(s.start + off, s.end + off))
    }
    let span = match focus {
        Focus::None => None,
        Focus::SpecVersion => pick(spec_text, spec_off, |s| s.version),
        Focus::SpecVariant(v) => pick(spec_text, spec_off, |s| s.variant(v)),
        Focus::WhenVersion => when_text
            .as_deref()
            .and_then(|w| pick(w, when_off, |s| s.version)),
        Focus::WhenVariant(v) => when_text
            .as_deref()
            .and_then(|w| pick(w, when_off, |s| s.variant(v))),
    };
    (text, span)
}

fn provenance(pkg: &PackageDef, text: String, span: Option<Span>) -> Provenance {
    Provenance::Package {
        package: pkg.name.as_str().to_string(),
        directive: Some(text),
        span,
    }
}

/// Does `req` intersect at least one declared (exact) version?
fn any_declared_matches(req: &VersionReq, versions: &[Version]) -> bool {
    versions
        .iter()
        .any(|v| req.intersect(&VersionReq::Exact(v.clone())).is_some())
}

fn versions_hint(pkg: &PackageDef) -> String {
    if pkg.versions.is_empty() {
        format!("package {} declares no versions", pkg.name.as_str())
    } else {
        let vs: Vec<String> = pkg.versions.iter().map(|v| v.to_string()).collect();
        format!(
            "declared versions of {}: {}",
            pkg.name.as_str(),
            vs.join(", ")
        )
    }
}

fn variants_hint(pkg: &PackageDef) -> String {
    if pkg.variants.is_empty() {
        format!("package {} declares no variants", pkg.name.as_str())
    } else {
        let vs: Vec<&str> = pkg.variants.keys().map(|k| k.as_str()).collect();
        format!(
            "declared variants of {}: {}",
            pkg.name.as_str(),
            vs.join(", ")
        )
    }
}

fn values_hint(name: Sym, kind: &VariantKind) -> String {
    match kind {
        VariantKind::Bool { .. } => {
            format!("\"{0}\" is boolean: use +{0} or ~{0}", name.as_str())
        }
        VariantKind::Single { allowed, .. } | VariantKind::Multi { allowed, .. } => {
            let vs: Vec<&str> = allowed.iter().map(|s| s.as_str()).collect();
            format!("allowed values for \"{}\": {}", name.as_str(), vs.join(", "))
        }
    }
}

fn audit_package(repo: &Repository, pkg: &PackageDef, diags: &mut Vec<Diagnostic>) {
    // R007: duplicated directives (exact payload equality).
    flag_duplicates(pkg, "depends_on", &pkg.depends, diags, |d| {
        directive_text("depends_on", &d.spec.to_string(), &d.when, Focus::None).0
    });
    flag_duplicates(pkg, "conflicts", &pkg.conflicts, diags, |c| {
        directive_text("conflicts", &c.spec.to_string(), &c.when, Focus::None).0
    });
    flag_duplicates(pkg, "provides", &pkg.provides, diags, |p| {
        directive_text("provides", p.virtual_name.as_str(), &p.when, Focus::None).0
    });
    flag_duplicates(pkg, "can_splice", &pkg.can_splice, diags, |c| {
        directive_text("can_splice", &c.target.to_string(), &c.when, Focus::None).0
    });

    for d in &pkg.depends {
        let spec_text = d.spec.to_string();
        check_condition(pkg, "depends_on", &spec_text, &d.when, diags);
        check_target(repo, pkg, "depends_on", &spec_text, &d.spec, &d.when, Code::R001, diags);
    }

    for c in &pkg.conflicts {
        let spec_text = c.spec.to_string();
        check_condition(pkg, "conflicts", &spec_text, &c.when, diags);
        // The conflict spec itself constrains the declaring package
        // (anonymous or named self) — a conflict that can never match is
        // vacuous, and its variants must be declared.
        if c.spec.name.is_none() || c.spec.name == Some(pkg.name) {
            check_self_constraint(pkg, "conflicts", &spec_text, &c.spec, &c.when, diags);
        }
        // `conflicts("^mpich-typo")`: dependency fragments must at least
        // resolve to something.
        for dep in &c.spec.deps {
            check_name_resolves(repo, pkg, "conflicts", &spec_text, &c.when, &dep.spec, diags);
        }
    }

    for p in &pkg.provides {
        let spec_text = p.virtual_name.as_str().to_string();
        check_condition(pkg, "provides", &spec_text, &p.when, diags);
    }

    for c in &pkg.can_splice {
        let spec_text = c.target.to_string();
        check_condition(pkg, "can_splice", &spec_text, &c.when, diags);
        check_target(repo, pkg, "can_splice", &spec_text, &c.target, &c.when, Code::R008, diags);
    }
}

/// R007 helper: any directive equal to an earlier one in the same list.
fn flag_duplicates<T: PartialEq>(
    pkg: &PackageDef,
    kind: &str,
    items: &[T],
    diags: &mut Vec<Diagnostic>,
    render: impl Fn(&T) -> String,
) {
    for j in 1..items.len() {
        if let Some(i) = items[..j].iter().position(|x| x == &items[j]) {
            diags.push(
                Diagnostic::new(
                    Code::R007,
                    format!("duplicate {kind} directive (already declared at position {i})"),
                    provenance(pkg, render(&items[j]), None),
                )
                .with_hint("remove the repeated declaration"),
            );
        }
    }
}

/// R002/R003/R004 against the declaring package's own configuration
/// space: the `when=` condition of any directive.
fn check_condition(
    pkg: &PackageDef,
    kind: &str,
    spec_text: &str,
    when: &AbstractSpec,
    diags: &mut Vec<Diagnostic>,
) {
    if when.is_empty() {
        return;
    }
    // A `when=` naming a different package never constrains `pkg`
    // itself; nothing to check against our declarations.
    if when.name.is_some() && when.name != Some(pkg.name) {
        return;
    }
    if !matches!(when.version, VersionReq::Any) && !any_declared_matches(&when.version, &pkg.versions)
    {
        let (text, span) = directive_text(kind, spec_text, when, Focus::WhenVersion);
        diags.push(
            Diagnostic::new(
                Code::R002,
                format!(
                    "{} directive is vacuous: no declared version of {} matches when=\"{}\"",
                    kind,
                    pkg.name.as_str(),
                    when
                ),
                provenance(pkg, text, span),
            )
            .with_hint(versions_hint(pkg)),
        );
    }
    for (vname, vval) in &when.variants {
        match pkg.variants.get(vname) {
            None => {
                let (text, span) = directive_text(kind, spec_text, when, Focus::WhenVariant(*vname));
                diags.push(
                    Diagnostic::new(
                        Code::R003,
                        format!(
                            "when= references variant \"{}\" which {} does not declare",
                            vname.as_str(),
                            pkg.name.as_str()
                        ),
                        provenance(pkg, text, span),
                    )
                    .with_hint(variants_hint(pkg)),
                );
            }
            Some(kind_decl) if !kind_decl.accepts(vval) => {
                let (text, span) = directive_text(kind, spec_text, when, Focus::WhenVariant(*vname));
                diags.push(
                    Diagnostic::new(
                        Code::R004,
                        format!(
                            "when= assigns \"{}\" to variant \"{}\" of {}, which does not accept it",
                            vval.canonical(),
                            vname.as_str(),
                            pkg.name.as_str()
                        ),
                        provenance(pkg, text, span),
                    )
                    .with_hint(values_hint(*vname, kind_decl)),
                );
            }
            Some(_) => {}
        }
    }
}

/// Checks on a directive's main spec against the package it names:
/// resolvability (R005), version satisfiability (R001 for `depends_on`,
/// R008 for `can_splice`), and variant declarations (R003/R004).
#[allow(clippy::too_many_arguments)]
fn check_target(
    repo: &Repository,
    pkg: &PackageDef,
    kind: &str,
    spec_text: &str,
    spec: &AbstractSpec,
    when: &AbstractSpec,
    version_code: Code,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(tname) = spec.name else { return };
    let Some(target) = repo.get(tname) else {
        if !repo.is_virtual(tname) {
            let (text, span) = directive_text(kind, spec_text, when, Focus::None);
            diags.push(
                Diagnostic::new(
                    Code::R005,
                    format!(
                        "\"{}\" is neither a package nor a virtual with a provider",
                        tname.as_str()
                    ),
                    provenance(pkg, text, span),
                )
                .with_hint(format!(
                    "define package {0}, or add provides(\"{0}\") to a provider",
                    tname.as_str()
                )),
            );
        }
        // Virtual targets resolve per-provider at solve time; the
        // version/variant space is provider-specific, so static checks
        // against a single declaration list do not apply.
        return;
    };
    if !matches!(spec.version, VersionReq::Any)
        && !any_declared_matches(&spec.version, &target.versions)
    {
        let (text, span) = directive_text(kind, spec_text, when, Focus::SpecVersion);
        let what = if version_code == Code::R008 {
            "can_splice target can never match"
        } else {
            "dependency constraint can never be satisfied"
        };
        diags.push(
            Diagnostic::new(
                version_code,
                format!(
                    "{what}: no declared version of {} intersects \"{}\"",
                    tname.as_str(),
                    spec
                ),
                provenance(pkg, text, span),
            )
            .with_hint(versions_hint(target)),
        );
    }
    for (vname, vval) in &spec.variants {
        match target.variants.get(vname) {
            None => {
                let (text, span) = directive_text(kind, spec_text, when, Focus::SpecVariant(*vname));
                diags.push(
                    Diagnostic::new(
                        Code::R003,
                        format!(
                            "{} constrains variant \"{}\" which {} does not declare",
                            kind,
                            vname.as_str(),
                            tname.as_str()
                        ),
                        provenance(pkg, text, span),
                    )
                    .with_hint(variants_hint(target)),
                );
            }
            Some(kind_decl) if !kind_decl.accepts(vval) => {
                let (text, span) = directive_text(kind, spec_text, when, Focus::SpecVariant(*vname));
                diags.push(
                    Diagnostic::new(
                        Code::R004,
                        format!(
                            "value \"{}\" is not legal for variant \"{}\" of {}",
                            vval.canonical(),
                            vname.as_str(),
                            tname.as_str()
                        ),
                        provenance(pkg, text, span),
                    )
                    .with_hint(values_hint(*vname, kind_decl)),
                );
            }
            Some(_) => {}
        }
    }
}

/// R005 for dependency fragments nested inside a conflict spec
/// (`conflicts("^mpich-typo")`).
fn check_name_resolves(
    repo: &Repository,
    pkg: &PackageDef,
    kind: &str,
    spec_text: &str,
    when: &AbstractSpec,
    dep_spec: &AbstractSpec,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(tname) = dep_spec.name else { return };
    if repo.get(tname).is_none() && !repo.is_virtual(tname) {
        let (text, span) = directive_text(kind, spec_text, when, Focus::None);
        diags.push(
            Diagnostic::new(
                Code::R005,
                format!(
                    "\"{}\" is neither a package nor a virtual with a provider",
                    tname.as_str()
                ),
                provenance(pkg, text, span),
            )
            .with_hint(format!(
                "define package {0}, or add provides(\"{0}\") to a provider",
                tname.as_str()
            )),
        );
    }
}

/// R002/R003/R004 for a conflict's own spec (the constraint on the
/// declaring package), underlining the main-spec tokens.
fn check_self_constraint(
    pkg: &PackageDef,
    kind: &str,
    spec_text: &str,
    spec: &AbstractSpec,
    when: &AbstractSpec,
    diags: &mut Vec<Diagnostic>,
) {
    if !matches!(spec.version, VersionReq::Any) && !any_declared_matches(&spec.version, &pkg.versions)
    {
        let (text, span) = directive_text(kind, spec_text, when, Focus::SpecVersion);
        diags.push(
            Diagnostic::new(
                Code::R002,
                format!(
                    "{} directive is vacuous: no declared version of {} matches \"{}\"",
                    kind,
                    pkg.name.as_str(),
                    spec
                ),
                provenance(pkg, text, span),
            )
            .with_hint(versions_hint(pkg)),
        );
    }
    for (vname, vval) in &spec.variants {
        match pkg.variants.get(vname) {
            None => {
                let (text, span) = directive_text(kind, spec_text, when, Focus::SpecVariant(*vname));
                diags.push(
                    Diagnostic::new(
                        Code::R003,
                        format!(
                            "{} references variant \"{}\" which {} does not declare",
                            kind,
                            vname.as_str(),
                            pkg.name.as_str()
                        ),
                        provenance(pkg, text, span),
                    )
                    .with_hint(variants_hint(pkg)),
                );
            }
            Some(kind_decl) if !kind_decl.accepts(vval) => {
                let (text, span) = directive_text(kind, spec_text, when, Focus::SpecVariant(*vname));
                diags.push(
                    Diagnostic::new(
                        Code::R004,
                        format!(
                            "value \"{}\" is not legal for variant \"{}\" of {}",
                            vval.canonical(),
                            vname.as_str(),
                            pkg.name.as_str()
                        ),
                        provenance(pkg, text, span),
                    )
                    .with_hint(values_hint(*vname, kind_decl)),
                );
            }
            Some(_) => {}
        }
    }
}

/// R006: strongly connected components of the *possible* link/run
/// dependency graph (virtual edges expanded to every provider). The
/// SCC computation reuses the ASP analyzer's Tarjan.
fn audit_cycles(repo: &Repository, diags: &mut Vec<Diagnostic>) {
    let mut graph = PredGraph {
        preds: BTreeSet::new(),
        edges: BTreeSet::new(),
    };
    let mut self_loops: BTreeSet<Sym> = BTreeSet::new();
    for pkg in repo.packages() {
        graph.preds.insert((pkg.name, 0));
        for d in &pkg.depends {
            if !d.types.is_link_run() {
                continue;
            }
            let Some(t) = d.spec.name else { continue };
            let targets: Vec<Sym> = if repo.get(t).is_some() {
                vec![t]
            } else {
                repo.providers_of(t).to_vec()
            };
            for tgt in targets {
                if tgt == pkg.name {
                    self_loops.insert(pkg.name);
                }
                graph.preds.insert((tgt, 0));
                graph
                    .edges
                    .insert(((pkg.name, 0), (tgt, 0), EdgeKind::Pos));
            }
        }
    }
    let strat = stratify(&graph);
    for scc in &strat.sccs {
        let cyclic = scc.len() > 1 || (scc.len() == 1 && self_loops.contains(&scc[0].0));
        if !cyclic {
            continue;
        }
        let mut names: Vec<&str> = scc.iter().map(|p| p.0.as_str()).collect();
        names.sort_unstable();
        diags.push(
            Diagnostic::new(
                Code::R006,
                format!(
                    "possible dependency cycle through link/run edges among: {}",
                    names.join(", ")
                ),
                Provenance::Package {
                    package: names[0].to_string(),
                    directive: None,
                    span: None,
                },
            )
            .with_hint("conditional dependencies may avoid the cycle at solve time; otherwise make one edge type=\"build\""),
        );
    }
}
