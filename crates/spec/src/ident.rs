//! Global string interning.
//!
//! Package names, variant names, variant values, OS and target names appear
//! millions of times inside the grounder and solver. Interning them to a
//! `u32` makes comparisons and hashing O(1) and keeps hot maps keyed by
//! integers (see the Rust Performance Book's hashing chapter).
//!
//! The interner is global and append-only; interned strings are leaked, so
//! [`Sym::as_str`] can hand out `&'static str` without locking.

use parking_lot::RwLock;
use rustc_hash::FxHashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned string. Cheap to copy, compare and hash.
///
/// Ordering on `Sym` is *lexicographic over the underlying strings*, not
/// over intern ids, so that sorted containers of symbols have a
/// deterministic, human-meaningful order regardless of interning order.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

struct Interner {
    map: FxHashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();

fn interner() -> &'static RwLock<Interner> {
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: FxHashMap::default(),
            strings: Vec::with_capacity(1024),
        })
    })
}

impl Sym {
    /// Intern `s`, returning its symbol. Idempotent.
    pub fn intern(s: &str) -> Sym {
        let lock = interner();
        // Fast path: read lock only.
        if let Some(&id) = lock.read().map.get(s) {
            return Sym(id);
        }
        let mut w = lock.write();
        if let Some(&id) = w.map.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = w.strings.len() as u32;
        w.strings.push(leaked);
        w.map.insert(leaked, id);
        Sym(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().strings[self.0 as usize]
    }

    /// Raw intern id. Useful as a dense index into side tables.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::intern(&s)
    }
}

impl serde::Serialize for Sym {
    fn serialize<S: serde::Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_str(self.as_str())
    }
}

impl<'de> serde::Deserialize<'de> for Sym {
    fn deserialize<D: serde::Deserializer<'de>>(de: D) -> Result<Sym, D::Error> {
        struct V;
        impl serde::de::Visitor<'_> for V {
            type Value = Sym;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: serde::de::Error>(self, v: &str) -> Result<Sym, E> {
                Ok(Sym::intern(v))
            }
        }
        de.deserialize_str(V)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Sym::intern("hdf5");
        let b = Sym::intern("hdf5");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "hdf5");
    }

    #[test]
    fn distinct_strings_distinct_syms() {
        assert_ne!(Sym::intern("mpich"), Sym::intern("openmpi"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Intern in reverse lexicographic order to prove ordering does not
        // follow intern ids.
        let z = Sym::intern("zzz-order-test");
        let a = Sym::intern("aaa-order-test");
        assert!(a < z);
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn display_and_debug() {
        let s = Sym::intern("trilinos");
        assert_eq!(format!("{s}"), "trilinos");
        assert_eq!(format!("{s:?}"), "Sym(\"trilinos\")");
    }

    #[test]
    fn empty_string_interns() {
        let e = Sym::intern("");
        assert_eq!(e.as_str(), "");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..200)
                        .map(|i| Sym::intern(&format!("pkg-{i}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
