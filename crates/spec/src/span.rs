//! Byte spans into spec-syntax source text, recorded by
//! [`parse_spec_spanned`](crate::parse_spec_spanned) so diagnostics
//! (notably `spackle-audit`) can underline the exact token — a version
//! requirement or variant setting — that a finding is about.

use crate::ident::Sym;

/// A half-open byte range `[start, end)` into the parsed source text.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True when the span covers nothing.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Token spans for the *root node* of a parsed spec expression.
///
/// Dependency nodes (`^`/`%`) are not tracked: directive diagnostics
/// always talk about a single node, and re-parsing a rendered node is
/// cheap when a dependency's spans are needed.
#[derive(Clone, Debug, Default)]
pub struct SpecSpans {
    /// Span of the package name, if present.
    pub name: Option<Span>,
    /// Span of the last `@…` version fragment, including the sigil.
    pub version: Option<Span>,
    /// Span of each variant setting (`+v`, `~v`, or `key=value`,
    /// including sigil/key), in source order.
    pub variants: Vec<(Sym, Span)>,
}

impl SpecSpans {
    /// The span recorded for variant `name`, if any.
    pub fn variant(&self, name: Sym) -> Option<Span> {
        self.variants
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| *s)
    }
}
