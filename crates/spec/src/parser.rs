//! Parser for Spack's spec syntax (paper §3.1, Table 1).
//!
//! Supported sigils:
//!
//! | Sigil       | Example                | Meaning                      |
//! |-------------|------------------------|------------------------------|
//! | `@`         | `hdf5@1.14.5`          | version requirement          |
//! | `+`         | `hdf5+cxx`             | enable boolean variant       |
//! | `~`         | `hdf5~mpi`             | disable boolean variant      |
//! | `^`         | `hdf5 ^zlib`           | link-run dependency          |
//! | `%`         | `hdf5%clang`           | build dependency             |
//! | `key=value` | `hdf5 target=icelake`  | variant / os / target / arch |
//!
//! `^` dependencies always attach to the root spec (Spack semantics);
//! `%` build dependencies attach to the most recently named node.
//! A spec may be anonymous (start with a sigil), as used by `when=`
//! conditions in package directives.

use crate::arch::{Os, Target};
use crate::error::SpecError;
use crate::ident::Sym;
use crate::span::{Span, SpecSpans};
use crate::spec::{AbstractDep, AbstractSpec, DepTypes};
use crate::variant::VariantValue;
use crate::version::VersionReq;
use crate::Result;

struct Cursor<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Self {
        Cursor { input, pos: 0 }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn read_while(&mut self, pred: impl Fn(char) -> bool) -> &'a str {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if pred(c)) {
            self.bump();
        }
        &self.input[start..self.pos]
    }

    fn err(&self, message: impl Into<String>) -> SpecError {
        SpecError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }
}

fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.'
}

fn is_version_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '.' | ':' | '=' | '-' | '_')
}

fn is_value_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '.' | ',' | '-' | '_')
}

/// Parse a single spec expression.
///
/// ```
/// use spackle_spec::parse_spec;
/// let s = parse_spec("hdf5@1.14.5 +cxx~mpi target=icelake %clang ^zlib@1.3").unwrap();
/// assert_eq!(s.name.unwrap().as_str(), "hdf5");
/// assert_eq!(s.deps.len(), 2); // clang (build) and zlib (link-run)
/// ```
pub fn parse_spec(input: &str) -> Result<AbstractSpec> {
    parse_spec_inner(input, None)
}

/// Parse a single spec expression, also recording the byte spans of the
/// root node's tokens (see [`SpecSpans`]) for diagnostic underlining.
///
/// ```
/// use spackle_spec::parse_spec_spanned;
/// let (spec, spans) = parse_spec_spanned("zlib@1.2:1.4 +shared").unwrap();
/// assert_eq!(spec.name.unwrap().as_str(), "zlib");
/// let v = spans.version.unwrap();
/// assert_eq!(&"zlib@1.2:1.4 +shared"[v.start..v.end], "@1.2:1.4");
/// ```
pub fn parse_spec_spanned(input: &str) -> Result<(AbstractSpec, SpecSpans)> {
    let mut spans = SpecSpans::default();
    let spec = parse_spec_inner(input, Some(&mut spans))?;
    Ok((spec, spans))
}

fn parse_spec_inner(input: &str, spans: Option<&mut SpecSpans>) -> Result<AbstractSpec> {
    let mut cur = Cursor::new(input);
    cur.eat_ws();
    if cur.peek().is_none() {
        return Err(cur.err("empty spec"));
    }

    // Parse the root node, then a flat sequence of sigil-introduced deps.
    let root = parse_node_spanned(&mut cur, true, spans)?;
    let mut segments: Vec<(char, AbstractSpec)> = Vec::new();
    loop {
        cur.eat_ws();
        match cur.peek() {
            None => break,
            Some('^') => {
                cur.bump();
                let node = parse_node(&mut cur, false)?;
                segments.push(('^', node));
            }
            Some('%') => {
                cur.bump();
                let node = parse_node(&mut cur, false)?;
                segments.push(('%', node));
            }
            Some(c) => return Err(cur.err(format!("unexpected character {c:?}"))),
        }
    }

    // Assembly: `^` deps attach to the root; `%` deps attach to the most
    // recent `^` dep (or the root if none has appeared yet).
    let mut root = root;
    let mut links: Vec<AbstractSpec> = Vec::new();
    for (sigil, node) in segments {
        match sigil {
            '^' => links.push(node),
            _ => {
                let target = links.last_mut().unwrap_or(&mut root);
                target.deps.push(AbstractDep {
                    spec: node,
                    types: DepTypes::BUILD,
                });
            }
        }
    }
    for l in links {
        root.deps.push(AbstractDep {
            spec: l,
            types: DepTypes::LINK_RUN,
        });
    }
    Ok(root)
}

/// Parse one node: optional name followed by attribute fragments, stopping
/// at `^`, `%`, or end of input. `allow_anonymous` permits a missing name
/// (only the root of a `when=` constraint may be anonymous).
fn parse_node(cur: &mut Cursor<'_>, allow_anonymous: bool) -> Result<AbstractSpec> {
    parse_node_spanned(cur, allow_anonymous, None)
}

fn parse_node_spanned(
    cur: &mut Cursor<'_>,
    allow_anonymous: bool,
    mut spans: Option<&mut SpecSpans>,
) -> Result<AbstractSpec> {
    let mut spec = AbstractSpec::anonymous();
    cur.eat_ws();

    // Optional leading name.
    if matches!(cur.peek(), Some(c) if c.is_ascii_alphanumeric()) {
        let start = cur.pos;
        let word = cur.read_while(is_name_char);
        if cur.peek() == Some('=') {
            // Not a name after all: it's `key=value`; rewind.
            cur.pos = start;
        } else {
            spec.name = Some(Sym::intern(word));
            if let Some(s) = spans.as_deref_mut() {
                s.name = Some(Span::new(start, cur.pos));
            }
        }
    } else if !allow_anonymous && !matches!(cur.peek(), Some('@' | '+' | '~')) {
        return Err(cur.err("expected package name after dependency sigil"));
    }

    loop {
        // Attributes may be glued (`hdf5@1.14+cxx~mpi`) or space-separated.
        let before_ws = cur.pos;
        cur.eat_ws();
        let frag_start = cur.pos;
        match cur.peek() {
            Some('@') => {
                cur.bump();
                let text = cur.read_while(is_version_char);
                if text.is_empty() {
                    return Err(cur.err("expected version after '@'"));
                }
                let req = VersionReq::parse(text)?;
                spec.version = spec.version.intersect(&req).ok_or_else(|| {
                    SpecError::Conflict("incompatible version constraints in spec".to_string())
                })?;
                if let Some(s) = spans.as_deref_mut() {
                    s.version = Some(Span::new(frag_start, cur.pos));
                }
            }
            Some(sigil @ ('+' | '~')) => {
                cur.bump();
                let name = cur.read_while(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
                if name.is_empty() {
                    return Err(cur.err(format!("expected variant name after '{sigil}'")));
                }
                let key = Sym::intern(name);
                spec.variants.insert(key, VariantValue::Bool(sigil == '+'));
                if let Some(s) = spans.as_deref_mut() {
                    s.variants.push((key, Span::new(frag_start, cur.pos)));
                }
            }
            Some(c) if c.is_ascii_alphanumeric() => {
                // Must be key=value, otherwise this word belongs to someone
                // else (or is an error the caller will report).
                let start = cur.pos;
                let key = cur.read_while(is_name_char);
                if cur.peek() != Some('=') {
                    cur.pos = start;
                    if before_ws != start {
                        // We consumed whitespace then found a non-attribute
                        // word: end this node and let the caller decide.
                        cur.pos = before_ws;
                        break;
                    }
                    return Err(cur.err(format!("unexpected word {key:?} (missing '=' value?)")));
                }
                cur.bump(); // '='
                let value = cur.read_while(is_value_char);
                if value.is_empty() {
                    return Err(cur.err(format!("expected value after '{key}='")));
                }
                let is_variant = apply_key_value(&mut spec, key, value)?;
                if is_variant {
                    if let Some(s) = spans.as_deref_mut() {
                        s.variants
                            .push((Sym::intern(key), Span::new(frag_start, cur.pos)));
                    }
                }
            }
            _ => {
                cur.pos = before_ws;
                break;
            }
        }
    }
    Ok(spec)
}

/// Apply a `key=value` fragment; returns true when it set a variant (as
/// opposed to os/target/platform/arch).
fn apply_key_value(spec: &mut AbstractSpec, key: &str, value: &str) -> Result<bool> {
    match key {
        "os" => spec.os = Some(Os::new(value)),
        "target" => spec.target = Some(Target::new(value)),
        "platform" => { /* platform is accepted and ignored (always linux) */ }
        "arch" => {
            // platform-os-target, e.g. linux-centos8-skylake.
            let first = value.find('-');
            let last = value.rfind('-');
            match (first, last) {
                (Some(f), Some(l)) if f < l => {
                    spec.os = Some(Os::new(&value[f + 1..l]));
                    spec.target = Some(Target::new(&value[l + 1..]));
                }
                _ => {
                    return Err(SpecError::Parse {
                        offset: 0,
                        message: format!("arch must be platform-os-target, got {value:?}"),
                    });
                }
            }
        }
        _ => {
            spec.variants
                .insert(Sym::intern(key), VariantValue::parse(value));
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::Version;

    fn v(s: &str) -> Version {
        Version::parse(s).unwrap()
    }

    #[test]
    fn table1_version() {
        let s = parse_spec("hdf5@1.14.5").unwrap();
        assert_eq!(s.name.unwrap().as_str(), "hdf5");
        assert!(s.version.satisfies(&v("1.14.5")));
        assert!(!s.version.satisfies(&v("1.14.6")));
    }

    #[test]
    fn table1_variant_on() {
        let s = parse_spec("hdf5+cxx").unwrap();
        assert_eq!(
            s.variants.get(&Sym::intern("cxx")),
            Some(&VariantValue::Bool(true))
        );
    }

    #[test]
    fn table1_variant_off() {
        let s = parse_spec("hdf5~mpi").unwrap();
        assert_eq!(
            s.variants.get(&Sym::intern("mpi")),
            Some(&VariantValue::Bool(false))
        );
    }

    #[test]
    fn table1_link_run_dep() {
        let s = parse_spec("hdf5 ^zlib").unwrap();
        assert_eq!(s.deps.len(), 1);
        assert_eq!(s.deps[0].spec.name.unwrap().as_str(), "zlib");
        assert!(s.deps[0].types.is_link_run());
        assert!(!s.deps[0].types.is_build());
    }

    #[test]
    fn table1_build_dep() {
        let s = parse_spec("hdf5%clang").unwrap();
        assert_eq!(s.deps.len(), 1);
        assert_eq!(s.deps[0].spec.name.unwrap().as_str(), "clang");
        assert!(s.deps[0].types.is_build());
        assert!(!s.deps[0].types.is_link_run());
    }

    #[test]
    fn table1_target_kv() {
        let s = parse_spec("hdf5 target=icelake").unwrap();
        assert_eq!(s.target, Some(Target::new("icelake")));
    }

    #[test]
    fn table1_variant_kv() {
        let s = parse_spec("hdf5 api=default").unwrap();
        assert_eq!(
            s.variants.get(&Sym::intern("api")),
            Some(&VariantValue::Single(Sym::intern("default")))
        );
    }

    #[test]
    fn glued_attributes() {
        let s = parse_spec("hdf5@1.14.5+cxx~mpi").unwrap();
        assert_eq!(s.variants.len(), 2);
        assert!(s.version.satisfies(&v("1.14.5")));
    }

    #[test]
    fn arch_triple() {
        let s = parse_spec("example arch=linux-centos8-skylake").unwrap();
        assert_eq!(s.os, Some(Os::new("centos8")));
        assert_eq!(s.target, Some(Target::new("skylake")));
    }

    #[test]
    fn section33_example_concretization_input() {
        let s = parse_spec(
            "example@1.0.0 +bzip arch=linux-centos8-skylake \
             ^bzip2@1.0.8 ~debug+pic+shared arch=linux-centos8-skylake \
             ^zlib@1.2.11 +optimize+pic+shared arch=linux-centos8-skylake \
             ^mpich@3.1 pmi=pmix arch=linux-centos8-skylake",
        )
        .unwrap();
        assert_eq!(s.deps.len(), 3);
        let mpich = s
            .deps
            .iter()
            .find(|d| d.spec.name == Some(Sym::intern("mpich")))
            .unwrap();
        assert_eq!(
            mpich.spec.variants.get(&Sym::intern("pmi")),
            Some(&VariantValue::Single(Sym::intern("pmix")))
        );
        assert_eq!(mpich.spec.target, Some(Target::new("skylake")));
    }

    #[test]
    fn build_dep_attaches_to_most_recent_link_dep() {
        let s = parse_spec("app ^zlib %gcc").unwrap();
        assert_eq!(s.deps.len(), 1);
        let zlib = &s.deps[0].spec;
        assert_eq!(zlib.deps.len(), 1);
        assert_eq!(zlib.deps[0].spec.name.unwrap().as_str(), "gcc");
        assert!(zlib.deps[0].types.is_build());
    }

    #[test]
    fn build_dep_before_link_dep_attaches_to_root() {
        let s = parse_spec("app %gcc ^zlib").unwrap();
        assert_eq!(s.deps.len(), 2);
        assert!(s.deps.iter().any(|d| d.types.is_build()
            && d.spec.name == Some(Sym::intern("gcc"))));
        assert!(s.deps.iter().any(|d| d.types.is_link_run()
            && d.spec.name == Some(Sym::intern("zlib"))));
    }

    #[test]
    fn anonymous_when_specs() {
        let s = parse_spec("@1.1.0+bzip").unwrap();
        assert!(s.name.is_none());
        assert!(s.version.satisfies(&v("1.1.0")));
        assert_eq!(
            s.variants.get(&Sym::intern("bzip")),
            Some(&VariantValue::Bool(true))
        );
    }

    #[test]
    fn version_ranges() {
        let s = parse_spec("zlib@1.2:1.4").unwrap();
        assert!(s.version.satisfies(&v("1.3")));
        assert!(!s.version.satisfies(&v("1.5")));
        let s = parse_spec("zlib@1.2:").unwrap();
        assert!(s.version.satisfies(&v("9.9")));
        let s = parse_spec("zlib@:1.4").unwrap();
        assert!(s.version.satisfies(&v("0.1")));
        let s = parse_spec("zlib@=1.2").unwrap();
        assert!(s.version.satisfies(&v("1.2")));
        assert!(!s.version.satisfies(&v("1.2.1")));
    }

    #[test]
    fn multi_value_variant() {
        let s = parse_spec("trilinos languages=c,cxx").unwrap();
        match s.variants.get(&Sym::intern("languages")).unwrap() {
            VariantValue::Multi(vs) => assert_eq!(vs.len(), 2),
            other => panic!("expected multi, got {other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse_spec("").is_err());
        assert!(parse_spec("   ").is_err());
        assert!(parse_spec("hdf5 @").is_err());
        assert!(parse_spec("hdf5 +").is_err());
        assert!(parse_spec("hdf5 ^").is_err());
        assert!(parse_spec("hdf5 bogusword").is_err());
        assert!(parse_spec("hdf5 key=").is_err());
        assert!(parse_spec("a ^b c").is_err());
        assert!(parse_spec("x arch=weird").is_err());
    }

    #[test]
    fn spanned_parse_records_root_tokens() {
        let text = "hdf5@1.14.5+cxx~mpi api=default target=icelake ^zlib@1.3";
        let (spec, spans) = parse_spec_spanned(text).unwrap();
        assert_eq!(spec.name.unwrap().as_str(), "hdf5");
        let slice = |s: Span| &text[s.start..s.end];
        assert_eq!(slice(spans.name.unwrap()), "hdf5");
        // Root version span, not the dependency's.
        assert_eq!(slice(spans.version.unwrap()), "@1.14.5");
        let vars: Vec<(&str, &str)> = spans
            .variants
            .iter()
            .map(|(n, s)| (n.as_str(), slice(*s)))
            .collect();
        assert_eq!(
            vars,
            [
                ("cxx", "+cxx"),
                ("mpi", "~mpi"),
                ("api", "api=default"),
            ]
        );
        assert_eq!(spans.variant(Sym::intern("mpi")).map(slice), Some("~mpi"));
        // target= is not a variant; no span recorded for it.
        assert!(spans.variant(Sym::intern("target")).is_none());
    }

    #[test]
    fn conflicting_versions_rejected() {
        assert!(parse_spec("hdf5@1.2@1.3").is_err());
    }

    #[test]
    fn display_roundtrip() {
        for text in [
            "hdf5@1.14.5",
            "hdf5+cxx",
            "hdf5~mpi",
            "hdf5 ^zlib",
            "hdf5 %clang",
            "hdf5 target=icelake",
            "hdf5 api=default",
            "hdf5@1.14.5+cxx~mpi os=centos8 target=icelake %clang ^zlib@1.3",
            "example@1.0.0+bzip ^bzip2@1.0.8+pic+shared~debug ^mpich@3.1 pmi=pmix ^zlib@1.2.11",
            "app %gcc ^zlib",
            "app ^zlib %gcc",
        ] {
            let once = parse_spec(text).unwrap();
            let printed = once.to_string();
            let twice = parse_spec(&printed)
                .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
            assert_eq!(once, twice, "round-trip mismatch for {text:?} -> {printed:?}");
        }
    }
}
