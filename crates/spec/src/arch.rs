//! Target operating systems and microarchitectures.
//!
//! Spack models targets with `archspec`, a database of microarchitecture
//! families and feature-compatibility. We reproduce the subset the paper's
//! experiments need: a family tree in which binaries built for an ancestor
//! (more generic) target run on any descendant (more specific) target.

use crate::ident::Sym;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An operating system, e.g. `centos8`, `ubuntu22.04`, `rhel8`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Os(pub Sym);

impl Os {
    /// Intern an OS by name.
    pub fn new(name: &str) -> Os {
        Os(Sym::intern(name))
    }
    /// The OS name.
    pub fn name(&self) -> Sym {
        self.0
    }
}

impl fmt::Display for Os {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A CPU microarchitecture, e.g. `x86_64`, `skylake`, `icelake`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Target(pub Sym);

/// The built-in microarchitecture ancestry: `(target, parent)` pairs.
/// A `None` parent marks a family root. Ordered roughly by generation
/// within each family, mirroring archspec's x86_64 and aarch64 chains.
const TARGET_TREE: &[(&str, Option<&str>)] = &[
    ("x86_64", None),
    ("x86_64_v2", Some("x86_64")),
    ("x86_64_v3", Some("x86_64_v2")),
    ("x86_64_v4", Some("x86_64_v3")),
    ("haswell", Some("x86_64_v3")),
    ("broadwell", Some("haswell")),
    ("skylake", Some("broadwell")),
    ("cascadelake", Some("skylake")),
    ("icelake", Some("cascadelake")),
    ("sapphirerapids", Some("icelake")),
    ("zen2", Some("x86_64_v3")),
    ("zen3", Some("zen2")),
    ("zen4", Some("zen3")),
    ("aarch64", None),
    ("armv8.2a", Some("aarch64")),
    ("neoverse_n1", Some("armv8.2a")),
    ("neoverse_v1", Some("neoverse_n1")),
    ("neoverse_v2", Some("neoverse_v1")),
    ("ppc64le", None),
    ("power9le", Some("ppc64le")),
    ("power10le", Some("power9le")),
];

impl Target {
    /// Intern a target by name. Unknown names are allowed (they form
    /// singleton families with no ancestors).
    pub fn new(name: &str) -> Target {
        Target(Sym::intern(name))
    }

    /// The target name.
    pub fn name(&self) -> Sym {
        self.0
    }

    fn parent_of(name: &str) -> Option<&'static str> {
        TARGET_TREE
            .iter()
            .find(|(t, _)| *t == name)
            .and_then(|(_, p)| *p)
    }

    /// Is this target known to the built-in microarchitecture tree?
    pub fn is_known(&self) -> bool {
        let n = self.0.as_str();
        TARGET_TREE.iter().any(|(t, _)| *t == n)
    }

    /// Chain of ancestors from this target up to its family root
    /// (exclusive of `self`).
    pub fn ancestors(&self) -> Vec<Target> {
        let mut out = Vec::new();
        let mut cur = Self::parent_of(self.0.as_str());
        while let Some(p) = cur {
            out.push(Target::new(p));
            cur = Self::parent_of(p);
        }
        out
    }

    /// Can a binary built for `built_for` execute on `self`?
    ///
    /// True when `built_for` equals `self` or is an ancestor of `self`
    /// (generic binaries run on newer microarchitectures of the family).
    pub fn runs_binary_built_for(&self, built_for: Target) -> bool {
        self == &built_for || self.ancestors().contains(&built_for)
    }

    /// The family root for this target (itself, if unknown or a root).
    pub fn family(&self) -> Target {
        self.ancestors().last().copied().unwrap_or(*self)
    }

    /// Generation depth within the family: roots are 0.
    pub fn depth(&self) -> usize {
        self.ancestors().len()
    }

    /// All targets in the built-in tree, family roots first.
    pub fn all_known() -> Vec<Target> {
        TARGET_TREE.iter().map(|(t, _)| Target::new(t)).collect()
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ancestry_chain() {
        let icelake = Target::new("icelake");
        let anc = icelake.ancestors();
        let names: Vec<&str> = anc.iter().map(|t| t.0.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "cascadelake",
                "skylake",
                "broadwell",
                "haswell",
                "x86_64_v3",
                "x86_64_v2",
                "x86_64"
            ]
        );
    }

    #[test]
    fn generic_binary_runs_on_specific() {
        let icelake = Target::new("icelake");
        let generic = Target::new("x86_64");
        assert!(icelake.runs_binary_built_for(generic));
        assert!(icelake.runs_binary_built_for(icelake));
        assert!(!generic.runs_binary_built_for(icelake));
    }

    #[test]
    fn cross_family_incompatible() {
        let icelake = Target::new("icelake");
        let neoverse = Target::new("neoverse_v1");
        assert!(!icelake.runs_binary_built_for(neoverse));
        assert!(!neoverse.runs_binary_built_for(icelake));
    }

    #[test]
    fn family_and_depth() {
        assert_eq!(Target::new("skylake").family(), Target::new("x86_64"));
        assert_eq!(Target::new("x86_64").depth(), 0);
        assert!(Target::new("icelake").depth() > Target::new("haswell").depth());
    }

    #[test]
    fn unknown_target_is_singleton_family() {
        let t = Target::new("quantum9000");
        assert!(!t.is_known());
        assert!(t.ancestors().is_empty());
        assert_eq!(t.family(), t);
        assert!(t.runs_binary_built_for(t));
        assert!(!t.runs_binary_built_for(Target::new("x86_64")));
    }

    #[test]
    fn all_known_is_consistent() {
        for t in Target::all_known() {
            assert!(t.is_known());
            // Every ancestor chain terminates at a root.
            assert_eq!(t.family().depth(), 0);
        }
    }
}
