//! Abstract and concrete specs (paper §3.1).
//!
//! An [`AbstractSpec`] is a constraint: any attribute may be left open and
//! dependency constraints nest recursively. A [`ConcreteSpec`] is a fully
//! resolved directed acyclic multigraph: every node carries all six
//! attributes, edges are typed *build* and/or *link-run*, and each node has
//! a content hash over the sub-DAG it roots.

use crate::arch::{Os, Target};
use crate::error::SpecError;
use crate::hash::{Sha256, SpecHash};
use crate::ident::Sym;
use crate::variant::{display_variant, VariantValue};
use crate::version::{Version, VersionReq};
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Dependency edge types. An edge may be build, link-run, or both.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub struct DepTypes(u8);

impl DepTypes {
    /// Needed to execute the build (compilers, build systems, interpreters).
    pub const BUILD: DepTypes = DepTypes(0b01);
    /// Needed at link time or runtime (shared libraries, runtime tools).
    pub const LINK_RUN: DepTypes = DepTypes(0b10);
    /// Both build and link-run.
    pub const ALL: DepTypes = DepTypes(0b11);

    /// Does this edge include the build type?
    pub fn is_build(self) -> bool {
        self.0 & Self::BUILD.0 != 0
    }
    /// Does this edge include the link-run type?
    pub fn is_link_run(self) -> bool {
        self.0 & Self::LINK_RUN.0 != 0
    }
    /// Union of two edge type sets.
    pub fn union(self, other: DepTypes) -> DepTypes {
        DepTypes(self.0 | other.0)
    }
}

impl fmt::Debug for DepTypes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.is_build(), self.is_link_run()) {
            (true, true) => f.write_str("build+link-run"),
            (true, false) => f.write_str("build"),
            (false, true) => f.write_str("link-run"),
            (false, false) => f.write_str("none"),
        }
    }
}

/// A dependency constraint inside an abstract spec (`^zlib@1.2` or `%gcc`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbstractDep {
    /// Constraint on the dependency (recursively abstract).
    pub spec: AbstractSpec,
    /// Which edge types the constraint applies to.
    pub types: DepTypes,
}

/// A partial build-configuration constraint, as typed by a user or written
/// in a package directive (`hdf5@1.14 +cxx ~mpi ^zlib@1.3 %gcc`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbstractSpec {
    /// Package (or virtual) name; `None` for an anonymous constraint
    /// (e.g. the `when` spec `@1.1.0` inside a package definition).
    pub name: Option<Sym>,
    /// Version requirement.
    pub version: VersionReq,
    /// Constrained variant values.
    pub variants: BTreeMap<Sym, VariantValue>,
    /// Required operating system, if any.
    pub os: Option<Os>,
    /// Required target microarchitecture, if any.
    pub target: Option<Target>,
    /// Dependency constraints.
    pub deps: Vec<AbstractDep>,
}

impl AbstractSpec {
    /// A named spec with no other constraints.
    pub fn named(name: &str) -> AbstractSpec {
        AbstractSpec {
            name: Some(Sym::intern(name)),
            ..Default::default()
        }
    }

    /// An anonymous constraint (no package name).
    pub fn anonymous() -> AbstractSpec {
        AbstractSpec::default()
    }

    /// Builder: constrain the version.
    pub fn with_version(mut self, req: VersionReq) -> Self {
        self.version = req;
        self
    }

    /// Builder: constrain a variant value.
    pub fn with_variant(mut self, name: &str, value: VariantValue) -> Self {
        self.variants.insert(Sym::intern(name), value);
        self
    }

    /// Builder: require a boolean variant on (`+name`).
    pub fn with_on(self, name: &str) -> Self {
        self.with_variant(name, VariantValue::Bool(true))
    }

    /// Builder: require a boolean variant off (`~name`).
    pub fn with_off(self, name: &str) -> Self {
        self.with_variant(name, VariantValue::Bool(false))
    }

    /// Builder: add a link-run dependency constraint (`^dep`).
    pub fn with_dep(mut self, dep: AbstractSpec) -> Self {
        self.deps.push(AbstractDep {
            spec: dep,
            types: DepTypes::LINK_RUN,
        });
        self
    }

    /// Builder: add a build dependency constraint (`%dep`).
    pub fn with_build_dep(mut self, dep: AbstractSpec) -> Self {
        self.deps.push(AbstractDep {
            spec: dep,
            types: DepTypes::BUILD,
        });
        self
    }

    /// Builder: constrain the target.
    pub fn with_target(mut self, t: Target) -> Self {
        self.target = Some(t);
        self
    }

    /// Builder: constrain the OS.
    pub fn with_os(mut self, os: Os) -> Self {
        self.os = Some(os);
        self
    }

    /// True if no attribute is constrained at all.
    pub fn is_empty(&self) -> bool {
        self.name.is_none()
            && matches!(self.version, VersionReq::Any)
            && self.variants.is_empty()
            && self.os.is_none()
            && self.target.is_none()
            && self.deps.is_empty()
    }

    /// Merge `other`'s constraints into `self`. Errors when the two
    /// obviously conflict (different names, disjoint versions, different
    /// fixed variant values).
    pub fn constrain(&mut self, other: &AbstractSpec) -> Result<()> {
        match (self.name, other.name) {
            (Some(a), Some(b)) if a != b => {
                return Err(SpecError::Conflict(format!("name {a} vs {b}")));
            }
            (None, Some(b)) => self.name = Some(b),
            _ => {}
        }
        self.version = self
            .version
            .intersect(&other.version)
            .ok_or_else(|| {
                SpecError::Conflict(format!("versions {} vs {}", self.version, other.version))
            })?;
        for (&k, v) in &other.variants {
            match self.variants.get(&k) {
                Some(existing) if existing != v => {
                    return Err(SpecError::Conflict(format!(
                        "variant {k}: {existing} vs {v}"
                    )));
                }
                _ => {
                    self.variants.insert(k, v.clone());
                }
            }
        }
        match (self.os, other.os) {
            (Some(a), Some(b)) if a != b => {
                return Err(SpecError::Conflict(format!("os {a} vs {b}")));
            }
            (None, Some(b)) => self.os = Some(b),
            _ => {}
        }
        match (self.target, other.target) {
            (Some(a), Some(b)) if a != b => {
                return Err(SpecError::Conflict(format!("target {a} vs {b}")));
            }
            (None, Some(b)) => self.target = Some(b),
            _ => {}
        }
        // Dependencies with the same name merge; others append.
        for dep in &other.deps {
            if let Some(name) = dep.spec.name {
                if let Some(mine) = self
                    .deps
                    .iter_mut()
                    .find(|d| d.spec.name == Some(name))
                {
                    mine.spec.constrain(&dep.spec)?;
                    mine.types = mine.types.union(dep.types);
                    continue;
                }
            }
            self.deps.push(dep.clone());
        }
        Ok(())
    }
}

impl fmt::Display for AbstractSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = self.name {
            write!(f, "{n}")?;
        }
        write!(f, "{}", self.version)?;
        for (name, value) in &self.variants {
            let frag = display_variant(*name, value);
            if frag.starts_with('+') || frag.starts_with('~') {
                write!(f, "{frag}")?;
            } else {
                write!(f, " {frag}")?;
            }
        }
        if let Some(os) = self.os {
            write!(f, " os={os}")?;
        }
        if let Some(t) = self.target {
            write!(f, " target={t}")?;
        }
        // Build deps print before link-run deps so that `%x` fragments
        // re-attach to the correct node when the output is re-parsed
        // (`a ^b %c` attaches c to b, but `a %c ^b` attaches c to a).
        for dep in self.deps.iter().filter(|d| !d.types.is_link_run()) {
            write!(f, " %{}", dep.spec)?;
        }
        for dep in self.deps.iter().filter(|d| d.types.is_link_run()) {
            write!(f, " ^{}", dep.spec)?;
        }
        Ok(())
    }
}

/// Index of a node within a [`ConcreteSpec`]'s arena.
pub type NodeId = usize;

/// One fully resolved package configuration inside a concrete spec DAG.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConcreteNode {
    /// Package name.
    pub name: Sym,
    /// Resolved version.
    pub version: Version,
    /// All declared variants with chosen values.
    pub variants: BTreeMap<Sym, VariantValue>,
    /// Target operating system.
    pub os: Os,
    /// Target microarchitecture.
    pub target: Target,
    /// Outgoing dependency edges (node id + edge types).
    pub deps: Vec<(NodeId, DepTypes)>,
    /// Content hash of the sub-DAG rooted at this node.
    pub hash: SpecHash,
    /// Build provenance: the original spec this node's binary was built as,
    /// present only when the node has been spliced (paper §4.1, Fig 2's
    /// dashed edges).
    pub build_spec: Option<Arc<ConcreteSpec>>,
}

impl ConcreteNode {
    /// Was this node produced by splicing (i.e. relinked rather than built)?
    pub fn is_spliced(&self) -> bool {
        self.build_spec.is_some()
    }
}

/// A fully concretized spec: an arena-backed dependency DAG with a root.
///
/// Invariants maintained by [`ConcreteSpecBuilder`]:
/// * acyclic;
/// * at most one node per package name (Spack's single-configuration rule);
/// * node hashes are computed bottom-up and cover name, version, variants,
///   os, target, dependency hashes with edge types, and (when present) the
///   build-spec hash — so splices hash differently from native builds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConcreteSpec {
    nodes: Vec<ConcreteNode>,
    root: NodeId,
}

impl ConcreteSpec {
    /// Assemble a spec from raw parts without validation or hashing.
    /// Crate-internal: callers must follow with pruning/`rehash`.
    pub(crate) fn from_parts(nodes: Vec<ConcreteNode>, root: NodeId) -> ConcreteSpec {
        ConcreteSpec { nodes, root }
    }

    /// The root node.
    pub fn root(&self) -> &ConcreteNode {
        &self.nodes[self.root]
    }

    /// Root node id.
    pub fn root_id(&self) -> NodeId {
        self.root
    }

    /// All nodes in the arena (order is deterministic but unspecified).
    pub fn nodes(&self) -> &[ConcreteNode] {
        &self.nodes
    }

    /// Look up a node by id.
    pub fn node(&self, id: NodeId) -> &ConcreteNode {
        &self.nodes[id]
    }

    /// Find the unique node with the given package name.
    pub fn find(&self, name: Sym) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// The DAG hash of the whole spec (= the root node's hash).
    pub fn dag_hash(&self) -> SpecHash {
        self.root().hash
    }

    /// Ids reachable from `start` along edges passing `filter`, in BFS
    /// order, including `start`.
    pub fn reachable(&self, start: NodeId, filter: impl Fn(DepTypes) -> bool) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut order = Vec::new();
        let mut q = VecDeque::new();
        seen[start] = true;
        q.push_back(start);
        while let Some(id) = q.pop_front() {
            order.push(id);
            for &(dep, types) in &self.nodes[id].deps {
                if filter(types) && !seen[dep] {
                    seen[dep] = true;
                    q.push_back(dep);
                }
            }
        }
        order
    }

    /// All node ids reachable from the root (the whole DAG, by
    /// construction).
    pub fn all_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).collect()
    }

    /// The link-run closure of the root: the runtime footprint.
    pub fn runtime_nodes(&self) -> Vec<NodeId> {
        self.reachable(self.root, |t| t.is_link_run())
    }

    /// Extract the sub-DAG rooted at `id` as a standalone spec.
    pub fn subdag(&self, id: NodeId) -> ConcreteSpec {
        let ids = self.reachable(id, |_| true);
        let mut remap: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        for (new, &old) in ids.iter().enumerate() {
            remap.insert(old, new);
        }
        let nodes = ids
            .iter()
            .map(|&old| {
                let mut n = self.nodes[old].clone();
                n.deps = n
                    .deps
                    .iter()
                    .map(|&(d, t)| (remap[&d], t))
                    .collect();
                n
            })
            .collect();
        ConcreteSpec {
            nodes,
            root: remap[&id],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the DAG has no nodes (never produced by the builder).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Single-line rendering: root attributes then `^dep` fragments in
    /// name order (matching §3.3's example output style).
    pub fn format_flat(&self) -> String {
        let mut out = self.format_node(self.root);
        let mut dep_ids: Vec<NodeId> = self
            .all_ids()
            .into_iter()
            .filter(|&id| id != self.root)
            .collect();
        dep_ids.sort_by_key(|&id| self.nodes[id].name);
        for id in dep_ids {
            out.push_str(" ^");
            out.push_str(&self.format_node(id));
        }
        out
    }

    /// Render one node's attributes.
    pub fn format_node(&self, id: NodeId) -> String {
        let n = &self.nodes[id];
        let mut out = format!("{}@{}", n.name, n.version);
        for (name, value) in &n.variants {
            let frag = display_variant(*name, value);
            if frag.starts_with('+') || frag.starts_with('~') {
                out.push_str(&frag);
            } else {
                out.push(' ');
                out.push_str(&frag);
            }
        }
        out.push_str(&format!(" arch={}-{}", n.os, n.target));
        if n.build_spec.is_some() {
            out.push_str(" (spliced)");
        }
        out
    }

    /// Spack-style indented tree rendering (children under parents,
    /// sorted by name, each with its short hash and a `(spliced)`
    /// marker where provenance exists).
    pub fn format_tree(&self) -> String {
        fn walk(spec: &ConcreteSpec, id: NodeId, depth: usize, out: &mut String) {
            out.push_str(&" ".repeat(depth * 4));
            if depth > 0 {
                out.push('^');
            }
            out.push_str(&spec.format_node(id));
            out.push_str(&format!("  /{}", spec.node(id).hash.short()));
            out.push('\n');
            let mut deps: Vec<NodeId> = spec.node(id).deps.iter().map(|&(d, _)| d).collect();
            deps.sort_by_key(|&d| spec.node(d).name);
            for d in deps {
                walk(spec, d, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, self.root, 0, &mut out);
        out
    }

    /// Recompute all node hashes bottom-up. Used internally after
    /// structural transformations; public for tests.
    pub fn rehash(&mut self) -> Result<()> {
        let order = topo_order(&self.nodes, self.root)?;
        for id in order {
            let h = hash_node(&self.nodes, id);
            self.nodes[id].hash = h;
        }
        Ok(())
    }
}

impl PartialEq for ConcreteSpec {
    fn eq(&self, other: &Self) -> bool {
        self.dag_hash() == other.dag_hash()
    }
}

impl Eq for ConcreteSpec {}

impl fmt::Display for ConcreteSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.format_flat())
    }
}

/// Compute a reverse-topological order (dependencies before dependents)
/// over the nodes reachable from `root`.
fn topo_order(nodes: &[ConcreteNode], root: NodeId) -> Result<Vec<NodeId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; nodes.len()];
    let mut order = Vec::with_capacity(nodes.len());
    // Iterative DFS with an explicit stack to avoid recursion limits on
    // deep DAGs.
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    marks[root] = Mark::Grey;
    while let Some(&(id, next)) = stack.last() {
        if next < nodes[id].deps.len() {
            stack.last_mut().expect("stack non-empty").1 += 1;
            let (dep, _) = nodes[id].deps[next];
            match marks[dep] {
                Mark::White => {
                    marks[dep] = Mark::Grey;
                    stack.push((dep, 0));
                }
                Mark::Grey => {
                    return Err(SpecError::Cycle(format!(
                        "{} -> {}",
                        nodes[id].name, nodes[dep].name
                    )));
                }
                Mark::Black => {}
            }
        } else {
            marks[id] = Mark::Black;
            order.push(id);
            stack.pop();
        }
    }
    Ok(order)
}

/// Hash one node given that all of its dependencies already carry correct
/// hashes.
fn hash_node(nodes: &[ConcreteNode], id: NodeId) -> SpecHash {
    let n = &nodes[id];
    let mut h = Sha256::new();
    h.update(b"node\0");
    h.update(n.name.as_str().as_bytes());
    h.update(b"\0version\0");
    h.update(n.version.to_string().as_bytes());
    h.update(b"\0os\0");
    h.update(n.os.name().as_str().as_bytes());
    h.update(b"\0target\0");
    h.update(n.target.name().as_str().as_bytes());
    for (name, value) in &n.variants {
        h.update(b"\0variant\0");
        h.update(name.as_str().as_bytes());
        h.update(b"\0");
        h.update(value.canonical().as_bytes());
    }
    // Sort dep digests for order independence.
    let mut dep_digests: Vec<(Sym, SpecHash, u8)> = n
        .deps
        .iter()
        .map(|&(d, t)| {
            (
                nodes[d].name,
                nodes[d].hash,
                (t.is_build() as u8) | ((t.is_link_run() as u8) << 1),
            )
        })
        .collect();
    dep_digests.sort();
    for (name, hash, types) in dep_digests {
        h.update(b"\0dep\0");
        h.update(name.as_str().as_bytes());
        h.update(&hash.0);
        h.update(&[types]);
    }
    if let Some(bs) = &n.build_spec {
        h.update(b"\0build_spec\0");
        h.update(&bs.dag_hash().0);
    }
    h.finish()
}

/// Incremental builder for [`ConcreteSpec`] DAGs.
///
/// ```
/// use spackle_spec::spec::{ConcreteSpecBuilder, DepTypes};
/// use spackle_spec::version::Version;
///
/// let mut b = ConcreteSpecBuilder::new();
/// let zlib = b.node("zlib", Version::parse("1.3").unwrap());
/// let hdf5 = b.node("hdf5", Version::parse("1.14.5").unwrap());
/// b.edge(hdf5, zlib, DepTypes::LINK_RUN);
/// let spec = b.build(hdf5).unwrap();
/// assert_eq!(spec.root().name.as_str(), "hdf5");
/// ```
#[derive(Default)]
pub struct ConcreteSpecBuilder {
    nodes: Vec<ConcreteNode>,
}

impl ConcreteSpecBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with default OS/target (`linux`/`x86_64`) and no
    /// variants; returns its id.
    pub fn node(&mut self, name: &str, version: Version) -> NodeId {
        self.node_full(
            name,
            version,
            BTreeMap::new(),
            Os::new("linux"),
            Target::new("x86_64"),
        )
    }

    /// Add a fully attributed node; returns its id.
    pub fn node_full(
        &mut self,
        name: &str,
        version: Version,
        variants: BTreeMap<Sym, VariantValue>,
        os: Os,
        target: Target,
    ) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(ConcreteNode {
            name: Sym::intern(name),
            version,
            variants,
            os,
            target,
            deps: Vec::new(),
            hash: SpecHash::ZERO,
            build_spec: None,
        });
        id
    }

    /// Set a variant value on a node.
    pub fn set_variant(&mut self, id: NodeId, name: &str, value: VariantValue) {
        self.nodes[id].variants.insert(Sym::intern(name), value);
    }

    /// Record build provenance on a node (used by splicing).
    pub fn set_build_spec(&mut self, id: NodeId, build_spec: Arc<ConcreteSpec>) {
        self.nodes[id].build_spec = Some(build_spec);
    }

    /// Graft an existing concrete spec into this builder, preserving node
    /// attributes, edges, and build-spec provenance. Nodes are
    /// deduplicated against already-grafted nodes by content hash.
    /// Returns the builder id of `spec`'s root.
    pub fn import(&mut self, spec: &ConcreteSpec) -> NodeId {
        let mut remap: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        // Dependencies first so edges can be added as we go.
        let order: Vec<NodeId> = {
            let mut o = Vec::with_capacity(spec.len());
            let mut state = vec![0u8; spec.len()];
            let mut stack = vec![(spec.root_id(), 0usize)];
            state[spec.root_id()] = 1;
            while let Some(&(id, next)) = stack.last() {
                if next < spec.node(id).deps.len() {
                    stack.last_mut().expect("non-empty").1 += 1;
                    let (d, _) = spec.node(id).deps[next];
                    if state[d] == 0 {
                        state[d] = 1;
                        stack.push((d, 0));
                    }
                } else {
                    state[id] = 2;
                    o.push(id);
                    stack.pop();
                }
            }
            o
        };
        for old in order {
            let n = spec.node(old);
            // Dedup: reuse an existing node with the same content hash.
            if let Some(existing) = self
                .nodes
                .iter()
                .position(|m| m.hash == n.hash && m.hash != SpecHash::ZERO)
            {
                remap.insert(old, existing);
                continue;
            }
            let id = self.nodes.len();
            let mut copy = n.clone();
            copy.deps = n.deps.iter().map(|&(d, t)| (remap[&d], t)).collect();
            self.nodes.push(copy);
            remap.insert(old, id);
        }
        remap[&spec.root_id()]
    }

    /// Add a dependency edge. Duplicate edges merge their types.
    pub fn edge(&mut self, from: NodeId, to: NodeId, types: DepTypes) {
        if let Some(e) = self.nodes[from].deps.iter_mut().find(|(d, _)| *d == to) {
            e.1 = e.1.union(types);
        } else {
            self.nodes[from].deps.push((to, types));
        }
    }

    /// Finalize: verify the invariants, drop unreachable nodes, compute
    /// hashes, and return the spec rooted at `root`.
    pub fn build(self, root: NodeId) -> Result<ConcreteSpec> {
        let mut spec = ConcreteSpec {
            nodes: self.nodes,
            root,
        };
        // Restrict to reachable nodes for a canonical arena.
        let reach = spec.reachable(root, |_| true);
        if reach.len() != spec.nodes.len() {
            spec = spec.subdag(root);
        }
        // Uniqueness of names in the link-run closure (Spack invariant:
        // one configuration of each package at runtime). Build-only deps
        // may, in principle, diverge, but we enforce global uniqueness for
        // simplicity — matching how Spack DAGs behave in practice.
        let mut seen: BTreeSet<Sym> = BTreeSet::new();
        for n in &spec.nodes {
            if !seen.insert(n.name) {
                return Err(SpecError::Conflict(format!(
                    "duplicate package {} in concrete spec",
                    n.name
                )));
            }
        }
        spec.rehash()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Version {
        Version::parse(s).unwrap()
    }

    fn diamond() -> ConcreteSpec {
        // app -> (libA, libB) -> zlib
        let mut b = ConcreteSpecBuilder::new();
        let zlib = b.node("zlib", v("1.3"));
        let la = b.node("liba", v("2.0"));
        let lb = b.node("libb", v("3.1"));
        let app = b.node("app", v("1.0"));
        b.edge(la, zlib, DepTypes::LINK_RUN);
        b.edge(lb, zlib, DepTypes::LINK_RUN);
        b.edge(app, la, DepTypes::LINK_RUN);
        b.edge(app, lb, DepTypes::LINK_RUN);
        b.build(app).unwrap()
    }

    #[test]
    fn build_diamond() {
        let d = diamond();
        assert_eq!(d.len(), 4);
        assert_eq!(d.root().name.as_str(), "app");
        assert_eq!(d.runtime_nodes().len(), 4);
    }

    #[test]
    fn hashes_deterministic_and_structural() {
        let a = diamond();
        let b = diamond();
        assert_eq!(a.dag_hash(), b.dag_hash());
        assert_eq!(a, b);
    }

    #[test]
    fn hash_changes_with_version() {
        let mk = |zv: &str| {
            let mut b = ConcreteSpecBuilder::new();
            let z = b.node("zlib", v(zv));
            let a = b.node("app", v("1.0"));
            b.edge(a, z, DepTypes::LINK_RUN);
            b.build(a).unwrap()
        };
        assert_ne!(mk("1.2").dag_hash(), mk("1.3").dag_hash());
    }

    #[test]
    fn hash_independent_of_edge_insertion_order() {
        let mk = |flip: bool| {
            let mut b = ConcreteSpecBuilder::new();
            let x = b.node("x", v("1"));
            let y = b.node("y", v("1"));
            let a = b.node("app", v("1.0"));
            if flip {
                b.edge(a, y, DepTypes::LINK_RUN);
                b.edge(a, x, DepTypes::LINK_RUN);
            } else {
                b.edge(a, x, DepTypes::LINK_RUN);
                b.edge(a, y, DepTypes::LINK_RUN);
            }
            b.build(a).unwrap()
        };
        assert_eq!(mk(false).dag_hash(), mk(true).dag_hash());
    }

    #[test]
    fn hash_distinguishes_dep_types() {
        let mk = |t: DepTypes| {
            let mut b = ConcreteSpecBuilder::new();
            let z = b.node("zlib", v("1.3"));
            let a = b.node("app", v("1.0"));
            b.edge(a, z, t);
            b.build(a).unwrap()
        };
        assert_ne!(
            mk(DepTypes::BUILD).dag_hash(),
            mk(DepTypes::LINK_RUN).dag_hash()
        );
    }

    #[test]
    fn cycle_rejected() {
        let mut b = ConcreteSpecBuilder::new();
        let x = b.node("x", v("1"));
        let y = b.node("y", v("1"));
        b.edge(x, y, DepTypes::LINK_RUN);
        b.edge(y, x, DepTypes::LINK_RUN);
        assert!(matches!(b.build(x), Err(SpecError::Cycle(_))));
    }

    #[test]
    fn duplicate_package_rejected() {
        let mut b = ConcreteSpecBuilder::new();
        let z1 = b.node("zlib", v("1.2"));
        let z2 = b.node("zlib", v("1.3"));
        let a = b.node("app", v("1.0"));
        b.edge(a, z1, DepTypes::LINK_RUN);
        b.edge(a, z2, DepTypes::BUILD);
        assert!(matches!(b.build(a), Err(SpecError::Conflict(_))));
    }

    #[test]
    fn unreachable_nodes_dropped() {
        let mut b = ConcreteSpecBuilder::new();
        let _orphan = b.node("orphan", v("1"));
        let a = b.node("app", v("1.0"));
        let spec = b.build(a).unwrap();
        assert_eq!(spec.len(), 1);
        assert!(spec.find(Sym::intern("orphan")).is_none());
    }

    #[test]
    fn subdag_extraction() {
        let d = diamond();
        let la = d.find(Sym::intern("liba")).unwrap();
        let sub = d.subdag(la);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.root().name.as_str(), "liba");
        // Sub-DAG node hash must equal the node's hash in the parent DAG.
        assert_eq!(sub.dag_hash(), d.node(la).hash);
    }

    #[test]
    fn runtime_excludes_build_only() {
        let mut b = ConcreteSpecBuilder::new();
        let cmake = b.node("cmake", v("3.27"));
        let zlib = b.node("zlib", v("1.3"));
        let a = b.node("app", v("1.0"));
        b.edge(a, cmake, DepTypes::BUILD);
        b.edge(a, zlib, DepTypes::LINK_RUN);
        let spec = b.build(a).unwrap();
        let rt = spec.runtime_nodes();
        assert_eq!(rt.len(), 2);
        assert!(rt
            .iter()
            .all(|&id| spec.node(id).name.as_str() != "cmake"));
    }

    #[test]
    fn format_flat_sorted() {
        let d = diamond();
        let s = d.format_flat();
        assert!(s.starts_with("app@1.0"));
        let la = s.find("^liba").unwrap();
        let lb = s.find("^libb").unwrap();
        let z = s.find("^zlib").unwrap();
        assert!(la < lb && lb < z);
    }

    #[test]
    fn abstract_constrain_merges() {
        let mut a = AbstractSpec::named("hdf5").with_version(VersionReq::parse("1.14").unwrap());
        let b = AbstractSpec::named("hdf5")
            .with_on("mpi")
            .with_dep(AbstractSpec::named("zlib"));
        a.constrain(&b).unwrap();
        assert_eq!(a.variants.len(), 1);
        assert_eq!(a.deps.len(), 1);
    }

    #[test]
    fn abstract_constrain_conflicts() {
        let mut a = AbstractSpec::named("hdf5").with_on("mpi");
        let b = AbstractSpec::named("hdf5").with_off("mpi");
        assert!(a.constrain(&b).is_err());

        let mut c = AbstractSpec::named("hdf5");
        let d = AbstractSpec::named("zlib");
        assert!(c.constrain(&d).is_err());
    }

    #[test]
    fn abstract_constrain_merges_same_name_deps() {
        let mut a = AbstractSpec::named("app").with_dep(
            AbstractSpec::named("zlib").with_version(VersionReq::parse("1.2:").unwrap()),
        );
        let b = AbstractSpec::named("app").with_dep(
            AbstractSpec::named("zlib").with_version(VersionReq::parse(":1.4").unwrap()),
        );
        a.constrain(&b).unwrap();
        assert_eq!(a.deps.len(), 1);
        let req = &a.deps[0].spec.version;
        assert!(req.satisfies(&v("1.3")));
        assert!(!req.satisfies(&v("1.5")));
    }

    #[test]
    fn serde_roundtrip() {
        let d = diamond();
        let json = serde_json::to_string(&d).unwrap();
        let back: ConcreteSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
        assert_eq!(back.len(), 4);
    }
}
