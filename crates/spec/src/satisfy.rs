//! Satisfaction: does a concrete spec meet an abstract constraint?
//!
//! Used to match buildcache entries against user requests, to evaluate
//! `when=` conditions of directives against concrete nodes, and to match
//! `can_splice` target constraints against reusable specs (paper §5.2).
//!
//! Virtual packages (like `mpi`) are resolved a layer above (the repo
//! knows providers); satisfaction here is purely name-based.

use crate::spec::{AbstractSpec, ConcreteNode, ConcreteSpec, NodeId};

/// Does `node` (within `spec`) satisfy the *node-local* attributes of
/// `constraint` (name, version, variants, os, target), ignoring dependency
/// constraints?
pub fn node_satisfies(node: &ConcreteNode, constraint: &AbstractSpec) -> bool {
    if let Some(name) = constraint.name {
        if node.name != name {
            return false;
        }
    }
    if !constraint.version.satisfies(&node.version) {
        return false;
    }
    for (vname, want) in &constraint.variants {
        match node.variants.get(vname) {
            Some(have) if have.satisfies(want) => {}
            _ => return false,
        }
    }
    if let Some(os) = constraint.os {
        if node.os != os {
            return false;
        }
    }
    if let Some(target) = constraint.target {
        if node.target != target {
            return false;
        }
    }
    true
}

/// Does the sub-DAG of `spec` rooted at `root` satisfy `constraint`,
/// including its dependency constraints?
///
/// Each `^dep` constraint must be satisfied by some node in the link-run
/// closure of `root`; each `%dep` constraint by some node reachable over
/// build edges from `root` directly. Dependency constraints recurse.
pub fn spec_satisfies_at(spec: &ConcreteSpec, root: NodeId, constraint: &AbstractSpec) -> bool {
    if !node_satisfies(spec.node(root), constraint) {
        return false;
    }
    for dep in &constraint.deps {
        let candidates: Vec<NodeId> = if dep.types.is_link_run() {
            // Anywhere in the link-run closure (Spack's `^` semantics).
            spec.reachable(root, |t| t.is_link_run())
                .into_iter()
                .filter(|&id| id != root)
                .collect()
        } else {
            // Direct build dependencies of this node.
            spec.node(root)
                .deps
                .iter()
                .filter(|(_, t)| t.is_build())
                .map(|&(d, _)| d)
                .collect()
        };
        if !candidates
            .iter()
            .any(|&id| spec_satisfies_at(spec, id, &dep.spec))
        {
            return false;
        }
    }
    true
}

/// Does the whole spec (from its root) satisfy `constraint`?
pub fn spec_satisfies(spec: &ConcreteSpec, constraint: &AbstractSpec) -> bool {
    spec_satisfies_at(spec, spec.root_id(), constraint)
}

impl ConcreteSpec {
    /// Convenience method form of [`spec_satisfies`].
    pub fn satisfies(&self, constraint: &AbstractSpec) -> bool {
        spec_satisfies(self, constraint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spec;
    use crate::spec::{ConcreteSpecBuilder, DepTypes};
    use crate::variant::VariantValue;
    use crate::version::Version;

    fn v(s: &str) -> Version {
        Version::parse(s).unwrap()
    }

    fn sample() -> ConcreteSpec {
        let mut b = ConcreteSpecBuilder::new();
        let zlib = b.node("zlib", v("1.2.11"));
        b.set_variant(zlib, "optimize", VariantValue::Bool(true));
        let mpich = b.node("mpich", v("3.1"));
        b.set_variant(mpich, "pmi", VariantValue::parse("pmix"));
        let cmake = b.node("cmake", v("3.27"));
        let hdf5 = b.node("hdf5", v("1.14.5"));
        b.set_variant(hdf5, "cxx", VariantValue::Bool(true));
        b.set_variant(hdf5, "mpi", VariantValue::Bool(true));
        b.edge(hdf5, zlib, DepTypes::LINK_RUN);
        b.edge(hdf5, mpich, DepTypes::LINK_RUN);
        b.edge(hdf5, cmake, DepTypes::BUILD);
        b.build(hdf5).unwrap()
    }

    #[test]
    fn satisfies_name_and_version() {
        let s = sample();
        assert!(s.satisfies(&parse_spec("hdf5").unwrap()));
        assert!(s.satisfies(&parse_spec("hdf5@1.14").unwrap()));
        assert!(s.satisfies(&parse_spec("hdf5@1.14.5").unwrap()));
        assert!(!s.satisfies(&parse_spec("hdf5@1.15").unwrap()));
        assert!(!s.satisfies(&parse_spec("zlib").unwrap()));
    }

    #[test]
    fn satisfies_variants() {
        let s = sample();
        assert!(s.satisfies(&parse_spec("hdf5+cxx").unwrap()));
        assert!(!s.satisfies(&parse_spec("hdf5~cxx").unwrap()));
        // Constraint on an undeclared variant fails.
        assert!(!s.satisfies(&parse_spec("hdf5+fortran").unwrap()));
    }

    #[test]
    fn satisfies_link_run_deps_anywhere_in_closure() {
        let s = sample();
        assert!(s.satisfies(&parse_spec("hdf5 ^zlib@1.2").unwrap()));
        assert!(s.satisfies(&parse_spec("hdf5 ^mpich pmi=pmix").unwrap()));
        assert!(!s.satisfies(&parse_spec("hdf5 ^zlib@1.3").unwrap()));
        assert!(!s.satisfies(&parse_spec("hdf5 ^openmpi").unwrap()));
    }

    #[test]
    fn build_deps_match_percent_not_caret() {
        let s = sample();
        assert!(s.satisfies(&parse_spec("hdf5 %cmake").unwrap()));
        // cmake is a build dep, not link-run, so ^cmake must NOT match.
        assert!(!s.satisfies(&parse_spec("hdf5 ^cmake").unwrap()));
        // zlib is link-run only, so %zlib must NOT match.
        assert!(!s.satisfies(&parse_spec("hdf5 %zlib").unwrap()));
    }

    #[test]
    fn anonymous_constraint_matches_any_name() {
        let s = sample();
        assert!(s.satisfies(&parse_spec("@1.14").unwrap()));
        assert!(s.satisfies(&parse_spec("+cxx").unwrap()));
        assert!(!s.satisfies(&parse_spec("@2:").unwrap()));
    }

    #[test]
    fn os_target_constraints() {
        let s = sample();
        assert!(s.satisfies(&parse_spec("hdf5 os=linux target=x86_64").unwrap()));
        assert!(!s.satisfies(&parse_spec("hdf5 target=icelake").unwrap()));
    }

    #[test]
    fn nested_dep_constraints() {
        // app -> libx -> zlib@1.2; constraint app ^libx ^zlib@1.2 holds,
        // and so does app ^libx@2 even though zlib hangs off libx.
        let mut b = ConcreteSpecBuilder::new();
        let z = b.node("zlib", v("1.2"));
        let lx = b.node("libx", v("2.0"));
        let app = b.node("app", v("1.0"));
        b.edge(lx, z, DepTypes::LINK_RUN);
        b.edge(app, lx, DepTypes::LINK_RUN);
        let s = b.build(app).unwrap();
        assert!(s.satisfies(&parse_spec("app ^zlib@1.2").unwrap()));
        assert!(s.satisfies(&parse_spec("app ^libx@2").unwrap()));
        assert!(!s.satisfies(&parse_spec("app ^zlib@1.3").unwrap()));
    }
}
