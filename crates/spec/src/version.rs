//! Versions and version constraints.
//!
//! Spack versions are dotted sequences of numeric and alphanumeric
//! components (`1.14.5`, `2024.01`, `3.1rc2`, `develop`). A version
//! *requirement* written `@...` in spec syntax is either a prefix match
//! (`@1.2` accepts `1.2`, `1.2.11`, ...) or an inclusive range
//! (`@1.2:1.4`, `@1.2:`, `@:1.4`).

use crate::error::SpecError;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// One dot-separated component of a version.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// Purely numeric component, compared numerically.
    Num(u64),
    /// Alphanumeric component (e.g. `rc2`, `develop`), compared
    /// lexicographically and ordered *before* any numeric component so that
    /// pre-releases sort below releases (`1.0rc1 < 1.0`... approximated at
    /// segment granularity).
    Alpha(String),
}

impl PartialOrd for Segment {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Segment {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Segment::Num(a), Segment::Num(b)) => a.cmp(b),
            (Segment::Alpha(a), Segment::Alpha(b)) => a.cmp(b),
            (Segment::Alpha(_), Segment::Num(_)) => Ordering::Less,
            (Segment::Num(_), Segment::Alpha(_)) => Ordering::Greater,
        }
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Segment::Num(n) => write!(f, "{n}"),
            Segment::Alpha(a) => f.write_str(a),
        }
    }
}

/// A concrete version such as `1.14.5` or `develop`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Version {
    segments: Vec<Segment>,
}

impl Version {
    /// Parse a version from its dotted string form.
    ///
    /// A component that consists only of ASCII digits becomes
    /// [`Segment::Num`]; mixed components like `1rc2` are split into `1`
    /// and `rc2`.
    pub fn parse(s: &str) -> Result<Version, SpecError> {
        if s.is_empty() {
            return Err(SpecError::BadVersion(s.to_string()));
        }
        let mut segments = Vec::new();
        for part in s.split('.') {
            if part.is_empty() {
                return Err(SpecError::BadVersion(s.to_string()));
            }
            // Split a mixed part into runs of digits / non-digits.
            let mut cur = String::new();
            let mut cur_is_digit: Option<bool> = None;
            for ch in part.chars() {
                if !(ch.is_ascii_alphanumeric() || ch == '-' || ch == '_') {
                    return Err(SpecError::BadVersion(s.to_string()));
                }
                let is_digit = ch.is_ascii_digit();
                match cur_is_digit {
                    Some(d) if d != is_digit => {
                        segments.push(Self::mk_segment(&cur, d, s)?);
                        cur.clear();
                    }
                    _ => {}
                }
                cur_is_digit = Some(is_digit);
                cur.push(ch);
            }
            if let Some(d) = cur_is_digit {
                segments.push(Self::mk_segment(&cur, d, s)?);
            }
        }
        Ok(Version { segments })
    }

    fn mk_segment(text: &str, is_digit: bool, orig: &str) -> Result<Segment, SpecError> {
        if is_digit {
            text.parse::<u64>()
                .map(Segment::Num)
                .map_err(|_| SpecError::BadVersion(orig.to_string()))
        } else {
            Ok(Segment::Alpha(text.to_string()))
        }
    }

    /// The version's components.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// True when `self` extends `prefix` (`1.2.11` has prefix `1.2`).
    /// Every version is a prefix-extension of itself.
    pub fn starts_with(&self, prefix: &Version) -> bool {
        prefix.segments.len() <= self.segments.len()
            && self.segments[..prefix.segments.len()] == prefix.segments[..]
    }
}

impl PartialOrd for Version {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Version {
    /// Componentwise order; a strict prefix sorts below its extensions
    /// (`1.2 < 1.2.1`).
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.segments.iter().zip(&other.segments) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        self.segments.len().cmp(&other.segments.len())
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut prev_alpha = false;
        for seg in &self.segments {
            let is_alpha = matches!(seg, Segment::Alpha(_));
            if !first {
                // Mixed segments like `1rc2` were split during parsing; we
                // re-join digit->alpha and alpha->digit transitions without a
                // dot only when they originated that way is unknowable, so we
                // canonicalize with dots except alpha directly after num,
                // which Spack prints joined (e.g. `3.1rc2`).
                if !is_alpha || prev_alpha {
                    f.write_str(".")?;
                }
            }
            write!(f, "{seg}")?;
            prev_alpha = is_alpha;
            first = false;
        }
        Ok(())
    }
}

impl FromStr for Version {
    type Err = SpecError;
    fn from_str(s: &str) -> Result<Version, SpecError> {
        Version::parse(s)
    }
}

/// A constraint on versions, as written after `@` in spec syntax.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum VersionReq {
    /// No constraint (`hdf5` with no `@`).
    #[default]
    Any,
    /// `@1.2` — any version extending the prefix `1.2` (includes `1.2`).
    Prefix(Version),
    /// `@=1.2` — exactly the version `1.2`.
    Exact(Version),
    /// `@lo:hi` with optional endpoints, inclusive. `@1.2:` and `@:1.4`
    /// leave one side open. The upper endpoint is prefix-inclusive like
    /// Spack: `@:1.4` admits `1.4.9`.
    Range(Option<Version>, Option<Version>),
}

impl VersionReq {
    /// Parse the text following `@` in spec syntax.
    pub fn parse(s: &str) -> Result<VersionReq, SpecError> {
        if s.is_empty() {
            return Err(SpecError::BadVersion("@ with no version".into()));
        }
        if let Some(rest) = s.strip_prefix('=') {
            return Ok(VersionReq::Exact(Version::parse(rest)?));
        }
        if let Some(idx) = s.find(':') {
            let (lo, hi) = s.split_at(idx);
            let hi = &hi[1..];
            let lo = if lo.is_empty() {
                None
            } else {
                Some(Version::parse(lo)?)
            };
            let hi = if hi.is_empty() {
                None
            } else {
                Some(Version::parse(hi)?)
            };
            if lo.is_none() && hi.is_none() {
                return Err(SpecError::BadVersion(s.to_string()));
            }
            Ok(VersionReq::Range(lo, hi))
        } else {
            Ok(VersionReq::Prefix(Version::parse(s)?))
        }
    }

    /// Does `v` satisfy this requirement?
    pub fn satisfies(&self, v: &Version) -> bool {
        match self {
            VersionReq::Any => true,
            VersionReq::Prefix(p) => v.starts_with(p),
            VersionReq::Exact(e) => v == e,
            VersionReq::Range(lo, hi) => {
                if let Some(lo) = lo {
                    if v < lo {
                        return false;
                    }
                }
                if let Some(hi) = hi {
                    // Prefix-inclusive upper bound: v <= hi or v extends hi.
                    if v > hi && !v.starts_with(hi) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// A requirement at least as strong as both `self` and `other`, or
    /// `None` when they are syntactically incompatible in ways we can
    /// detect. (Sound but not complete: a returned requirement may still be
    /// unsatisfiable; the solver settles final feasibility.)
    pub fn intersect(&self, other: &VersionReq) -> Option<VersionReq> {
        use VersionReq::*;
        match (self, other) {
            (Any, r) | (r, Any) => Some(r.clone()),
            (Exact(a), Exact(b)) => (a == b).then(|| Exact(a.clone())),
            (Exact(e), r) | (r, Exact(e)) => r.satisfies(e).then(|| Exact(e.clone())),
            (Prefix(a), Prefix(b)) => {
                if a.starts_with(b) {
                    Some(Prefix(a.clone()))
                } else if b.starts_with(a) {
                    Some(Prefix(b.clone()))
                } else {
                    None
                }
            }
            // With prefix-inclusive bounds, `@p` ≡ `@p:p`: v is in the
            // range iff v >= p and (v <= p or v extends p), i.e. iff v
            // extends p. Intersect prefixes with ranges as ranges.
            (Prefix(p), Range(lo, hi)) | (Range(lo, hi), Prefix(p)) => {
                range_intersect(&Some(p.clone()), &Some(p.clone()), lo, hi)
            }
            (Range(lo1, hi1), Range(lo2, hi2)) => range_intersect(lo1, hi1, lo2, hi2),
        }
    }
}

/// The stronger of two prefix-inclusive upper bounds. When one bound
/// extends the other (`1.2.5` vs `1.2`), every version admitted by the
/// extension is admitted by the shorter bound, so the extension — the
/// *larger* version — is stronger. When neither extends the other, any
/// version under the smaller bound shares its distinguishing segment
/// and stays under the larger one, so plain `min` is exact.
fn stronger_upper(a: &Version, b: &Version) -> Version {
    if a.starts_with(b) {
        a.clone()
    } else if b.starts_with(a) {
        b.clone()
    } else {
        a.clone().min(b.clone())
    }
}

fn range_intersect(
    lo1: &Option<Version>,
    hi1: &Option<Version>,
    lo2: &Option<Version>,
    hi2: &Option<Version>,
) -> Option<VersionReq> {
    let lo = match (lo1, lo2) {
        (Some(a), Some(b)) => Some(a.clone().max(b.clone())),
        (Some(a), None) | (None, Some(a)) => Some(a.clone()),
        (None, None) => None,
    };
    let hi = match (hi1, hi2) {
        (Some(a), Some(b)) => Some(stronger_upper(a, b)),
        (Some(a), None) | (None, Some(a)) => Some(a.clone()),
        (None, None) => None,
    };
    if let (Some(l), Some(h)) = (&lo, &hi) {
        // Disjoint unless some v >= l also sits at or under h: that
        // needs l <= h, or l extending h (then l itself qualifies).
        if l > h && !l.starts_with(h) {
            return None;
        }
        // A degenerate range `@p:p` is exactly the prefix `@p`.
        if l == h {
            return Some(VersionReq::Prefix(l.clone()));
        }
    }
    Some(VersionReq::Range(lo, hi))
}

impl fmt::Display for VersionReq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VersionReq::Any => Ok(()),
            VersionReq::Prefix(v) => write!(f, "@{v}"),
            VersionReq::Exact(v) => write!(f, "@={v}"),
            VersionReq::Range(lo, hi) => {
                f.write_str("@")?;
                if let Some(lo) = lo {
                    write!(f, "{lo}")?;
                }
                f.write_str(":")?;
                if let Some(hi) = hi {
                    write!(f, "{hi}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Version {
        Version::parse(s).unwrap()
    }

    #[test]
    fn parse_simple() {
        assert_eq!(v("1.2.3").segments().len(), 3);
        assert_eq!(
            v("1.2.3").segments(),
            &[Segment::Num(1), Segment::Num(2), Segment::Num(3)]
        );
    }

    #[test]
    fn parse_alpha() {
        assert_eq!(v("develop").segments(), &[Segment::Alpha("develop".into())]);
    }

    #[test]
    fn parse_mixed_splits() {
        assert_eq!(
            v("3.1rc2").segments(),
            &[
                Segment::Num(3),
                Segment::Num(1),
                Segment::Alpha("rc".into()),
                Segment::Num(2)
            ]
        );
    }

    #[test]
    fn parse_rejects_bad() {
        assert!(Version::parse("").is_err());
        assert!(Version::parse("1..2").is_err());
        assert!(Version::parse("1.2.").is_err());
        assert!(Version::parse("1 2").is_err());
    }

    #[test]
    fn ordering_numeric_not_lexicographic() {
        assert!(v("1.10") > v("1.9"));
        assert!(v("1.2") < v("1.10"));
    }

    #[test]
    fn prefix_sorts_below_extension() {
        assert!(v("1.2") < v("1.2.1"));
        assert!(v("1.2.0") > v("1.2"));
    }

    #[test]
    fn alpha_sorts_below_num() {
        // pre-release style: 1.0.rc1 < 1.0.0
        assert!(v("1.0.rc1") < v("1.0.0"));
        assert!(v("develop") < v("1.0"));
    }

    #[test]
    fn starts_with() {
        assert!(v("1.2.11").starts_with(&v("1.2")));
        assert!(v("1.2").starts_with(&v("1.2")));
        assert!(!v("1.20").starts_with(&v("1.2")));
        assert!(!v("1.2").starts_with(&v("1.2.11")));
    }

    #[test]
    fn display_roundtrip() {
        for s in ["1.2.3", "1.14.5", "develop", "2024.1"] {
            assert_eq!(v(s).to_string(), s);
            assert_eq!(v(&v(s).to_string()), v(s));
        }
        // Mixed segments canonicalize with the alpha joined to the number.
        assert_eq!(v("3.1rc2").to_string(), "3.1rc.2");
        assert_eq!(v(&v("3.1rc2").to_string()), v("3.1rc2"));
    }

    #[test]
    fn req_prefix() {
        let r = VersionReq::parse("1.2").unwrap();
        assert!(r.satisfies(&v("1.2")));
        assert!(r.satisfies(&v("1.2.11")));
        assert!(!r.satisfies(&v("1.20")));
        assert!(!r.satisfies(&v("1.3")));
    }

    #[test]
    fn req_exact() {
        let r = VersionReq::parse("=1.2").unwrap();
        assert!(r.satisfies(&v("1.2")));
        assert!(!r.satisfies(&v("1.2.0")));
    }

    #[test]
    fn req_range() {
        let r = VersionReq::parse("1.2:1.4").unwrap();
        assert!(r.satisfies(&v("1.2")));
        assert!(r.satisfies(&v("1.3.7")));
        assert!(r.satisfies(&v("1.4")));
        assert!(r.satisfies(&v("1.4.9"))); // prefix-inclusive upper bound
        assert!(!r.satisfies(&v("1.5")));
        assert!(!r.satisfies(&v("1.1.9")));
    }

    #[test]
    fn req_open_ranges() {
        let lo = VersionReq::parse("2:").unwrap();
        assert!(lo.satisfies(&v("2.0")));
        assert!(lo.satisfies(&v("99")));
        assert!(!lo.satisfies(&v("1.9")));
        let hi = VersionReq::parse(":1.4").unwrap();
        assert!(hi.satisfies(&v("0.1")));
        assert!(hi.satisfies(&v("1.4.9")));
        assert!(!hi.satisfies(&v("1.5")));
    }

    #[test]
    fn req_parse_errors() {
        assert!(VersionReq::parse("").is_err());
        assert!(VersionReq::parse(":").is_err());
    }

    #[test]
    fn req_intersect() {
        let a = VersionReq::parse("1.2:").unwrap();
        let b = VersionReq::parse(":1.4").unwrap();
        let i = a.intersect(&b).unwrap();
        assert!(i.satisfies(&v("1.3")));
        assert!(!i.satisfies(&v("1.5")));
        assert!(!i.satisfies(&v("1.1")));

        let p = VersionReq::parse("1.2").unwrap();
        let q = VersionReq::parse("1.2.11").unwrap();
        assert_eq!(p.intersect(&q), Some(VersionReq::Prefix(v("1.2.11"))));
        let r = VersionReq::parse("1.3").unwrap();
        assert_eq!(p.intersect(&r), None);
    }

    #[test]
    fn req_intersect_prefix_range() {
        // Regression: `1.2.5:` ∩ `@1.2` used to return None because the
        // prefix 1.2 itself sits below the range's lower bound — but
        // 1.2.7 satisfies both.
        let range = VersionReq::parse("1.2.5:").unwrap();
        let prefix = VersionReq::parse("1.2").unwrap();
        let i = range.intersect(&prefix).expect("not disjoint");
        assert!(i.satisfies(&v("1.2.7")));
        assert!(!i.satisfies(&v("1.2.4")));
        assert!(!i.satisfies(&v("1.3")));
        assert_eq!(prefix.intersect(&range), Some(i));

        // Regression: `:1.4` ∩ `@1` used to keep the bare prefix `@1`,
        // which wrongly admits 1.9.
        let hi = VersionReq::parse(":1.4").unwrap();
        let p1 = VersionReq::parse("1").unwrap();
        let i = hi.intersect(&p1).expect("not disjoint");
        assert!(i.satisfies(&v("1.3")));
        assert!(i.satisfies(&v("1.4.9")));
        assert!(!i.satisfies(&v("1.9")));

        // Genuinely disjoint prefix/range pairs still report None.
        assert_eq!(
            VersionReq::parse("2:").unwrap().intersect(&p1),
            None,
            "@1 has no version >= 2"
        );
        assert_eq!(
            VersionReq::parse("1.2").unwrap().intersect(&VersionReq::parse("1.3:").unwrap()),
            None
        );
    }

    #[test]
    fn req_intersect_upper_bounds_prefer_extension() {
        // Regression: `:1` ∩ `:1.4` used `min` and kept `:1`, which
        // admits 1.9 via prefix-inclusion; the extension 1.4 is the
        // stronger bound.
        let a = VersionReq::parse(":1").unwrap();
        let b = VersionReq::parse(":1.4").unwrap();
        let i = a.intersect(&b).unwrap();
        assert!(i.satisfies(&v("1.4")));
        assert!(i.satisfies(&v("0.9")));
        assert!(!i.satisfies(&v("1.9")));
        assert_eq!(b.intersect(&a), Some(i));
    }

    #[test]
    fn req_intersect_degenerate_range_is_prefix() {
        let a = VersionReq::parse("1.2:").unwrap();
        let b = VersionReq::parse(":1.2").unwrap();
        assert_eq!(a.intersect(&b), Some(VersionReq::Prefix(v("1.2"))));
    }

    #[test]
    fn req_display_roundtrip() {
        for s in ["1.2", "=1.2.3", "1.2:1.4", "1.2:", ":1.4"] {
            let r = VersionReq::parse(s).unwrap();
            let printed = r.to_string();
            assert_eq!(printed, format!("@{s}"));
            assert_eq!(VersionReq::parse(&printed[1..]).unwrap(), r);
        }
    }
}
