//! Variants: named compile-time options on a package.
//!
//! A variant is either boolean (`+mpi` / `~mpi`), single-valued
//! (`api=default`), or multi-valued (`languages=c,cxx`). Packages declare
//! the *kind* and allowed values; specs constrain or fix the value.

use crate::ident::Sym;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The declared shape of a variant on a package.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VariantKind {
    /// `+name` / `~name`, with a default.
    Bool {
        /// Default truth value.
        default: bool,
    },
    /// `name=value`, one value from an allowed set.
    Single {
        /// Default value.
        default: Sym,
        /// Legal values.
        allowed: Vec<Sym>,
    },
    /// `name=v1,v2`, any non-empty subset of the allowed set.
    Multi {
        /// Default subset.
        default: BTreeSet<Sym>,
        /// Legal values.
        allowed: Vec<Sym>,
    },
}

impl VariantKind {
    /// The default value for this variant kind.
    pub fn default_value(&self) -> VariantValue {
        match self {
            VariantKind::Bool { default } => VariantValue::Bool(*default),
            VariantKind::Single { default, .. } => VariantValue::Single(*default),
            VariantKind::Multi { default, .. } => VariantValue::Multi(default.clone()),
        }
    }

    /// All values a concretizer may choose for this variant.
    pub fn candidate_values(&self) -> Vec<VariantValue> {
        match self {
            VariantKind::Bool { .. } => {
                vec![VariantValue::Bool(true), VariantValue::Bool(false)]
            }
            VariantKind::Single { allowed, .. } => {
                allowed.iter().map(|&v| VariantValue::Single(v)).collect()
            }
            // For multi-valued variants we enumerate only the default and
            // each singleton; full powerset enumeration would explode and is
            // not needed by the paper's workloads.
            VariantKind::Multi { default, allowed } => {
                let mut out = vec![VariantValue::Multi(default.clone())];
                for &v in allowed {
                    let single: BTreeSet<Sym> = [v].into_iter().collect();
                    if single != *default {
                        out.push(VariantValue::Multi(single));
                    }
                }
                out
            }
        }
    }

    /// Is `value` legal for this variant kind?
    pub fn accepts(&self, value: &VariantValue) -> bool {
        match (self, value) {
            (VariantKind::Bool { .. }, VariantValue::Bool(_)) => true,
            (VariantKind::Single { allowed, .. }, VariantValue::Single(v)) => allowed.contains(v),
            (VariantKind::Multi { allowed, .. }, VariantValue::Multi(vs)) => {
                !vs.is_empty() && vs.iter().all(|v| allowed.contains(v))
            }
            _ => false,
        }
    }
}

/// A set or constrained value for a variant on a spec.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VariantValue {
    /// Boolean variant value.
    Bool(bool),
    /// Single-valued variant value.
    Single(Sym),
    /// Multi-valued variant value (non-empty set).
    Multi(BTreeSet<Sym>),
}

impl VariantValue {
    /// Canonical string rendering used in ASP facts and hashing
    /// (`"True"`/`"False"` for booleans, matching the paper's encoding).
    pub fn canonical(&self) -> String {
        match self {
            VariantValue::Bool(true) => "True".to_string(),
            VariantValue::Bool(false) => "False".to_string(),
            VariantValue::Single(s) => s.as_str().to_string(),
            VariantValue::Multi(vs) => {
                let parts: Vec<&str> = vs.iter().map(|s| s.as_str()).collect();
                parts.join(",")
            }
        }
    }

    /// Parse a `key=value` right-hand side into a value. Comma produces a
    /// multi-value; `True`/`False` canonical forms produce booleans.
    pub fn parse(raw: &str) -> VariantValue {
        match raw {
            "True" | "true" => VariantValue::Bool(true),
            "False" | "false" => VariantValue::Bool(false),
            _ if raw.contains(',') => VariantValue::Multi(
                raw.split(',')
                    .filter(|s| !s.is_empty())
                    .map(Sym::intern)
                    .collect(),
            ),
            _ => VariantValue::Single(Sym::intern(raw)),
        }
    }

    /// Does a concrete value `self` satisfy a constraint value `other`?
    ///
    /// Bool/Single require equality; a concrete Multi satisfies a
    /// constraint Multi when it is a superset.
    pub fn satisfies(&self, constraint: &VariantValue) -> bool {
        match (self, constraint) {
            (VariantValue::Multi(have), VariantValue::Multi(want)) => have.is_superset(want),
            (a, b) => a == b,
        }
    }
}

/// Render a spec-syntax fragment for a named variant value
/// (`+bzip`, `~debug`, `api=default`).
pub fn display_variant(name: Sym, value: &VariantValue) -> String {
    match value {
        VariantValue::Bool(true) => format!("+{name}"),
        VariantValue::Bool(false) => format!("~{name}"),
        other => format!("{name}={}", other.canonical()),
    }
}

impl fmt::Display for VariantValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> Sym {
        Sym::intern(x)
    }

    #[test]
    fn bool_kind_defaults_and_candidates() {
        let k = VariantKind::Bool { default: true };
        assert_eq!(k.default_value(), VariantValue::Bool(true));
        assert_eq!(k.candidate_values().len(), 2);
        assert!(k.accepts(&VariantValue::Bool(false)));
        assert!(!k.accepts(&VariantValue::Single(s("x"))));
    }

    #[test]
    fn single_kind_accepts_only_allowed() {
        let k = VariantKind::Single {
            default: s("default"),
            allowed: vec![s("default"), s("custom")],
        };
        assert!(k.accepts(&VariantValue::Single(s("custom"))));
        assert!(!k.accepts(&VariantValue::Single(s("bogus"))));
        assert_eq!(k.candidate_values().len(), 2);
    }

    #[test]
    fn multi_kind_candidates_include_default_and_singletons() {
        let k = VariantKind::Multi {
            default: [s("c"), s("cxx")].into_iter().collect(),
            allowed: vec![s("c"), s("cxx"), s("fortran")],
        };
        let cands = k.candidate_values();
        assert!(cands.contains(&VariantValue::Multi([s("c"), s("cxx")].into_iter().collect())));
        assert!(cands.contains(&VariantValue::Multi([s("fortran")].into_iter().collect())));
        assert!(!k.accepts(&VariantValue::Multi(BTreeSet::new())));
        assert!(!k.accepts(&VariantValue::Multi([s("rust")].into_iter().collect())));
    }

    #[test]
    fn canonical_bool_matches_paper_encoding() {
        assert_eq!(VariantValue::Bool(true).canonical(), "True");
        assert_eq!(VariantValue::Bool(false).canonical(), "False");
    }

    #[test]
    fn parse_values() {
        assert_eq!(VariantValue::parse("True"), VariantValue::Bool(true));
        assert_eq!(VariantValue::parse("pmix"), VariantValue::Single(s("pmix")));
        assert_eq!(
            VariantValue::parse("c,cxx"),
            VariantValue::Multi([s("c"), s("cxx")].into_iter().collect())
        );
    }

    #[test]
    fn multi_satisfies_is_superset() {
        let have = VariantValue::Multi([s("c"), s("cxx"), s("f90")].into_iter().collect());
        let want = VariantValue::Multi([s("c")].into_iter().collect());
        assert!(have.satisfies(&want));
        assert!(!want.satisfies(&have));
    }

    #[test]
    fn display_fragments() {
        assert_eq!(display_variant(s("bzip"), &VariantValue::Bool(true)), "+bzip");
        assert_eq!(display_variant(s("mpi"), &VariantValue::Bool(false)), "~mpi");
        assert_eq!(
            display_variant(s("api"), &VariantValue::Single(s("default"))),
            "api=default"
        );
    }
}
