//! Splice mechanics (paper §4, Fig 2).
//!
//! A *splice* replaces a dependency of an already-built concrete spec with
//! an ABI-compatible, also-already-built substitute — without rebuilding.
//! The resulting DAG records *build provenance*: every node whose runtime
//! dependency closure changed carries a `build_spec` pointing at the spec
//! it was actually compiled as.
//!
//! Two flavours (paper §4.1):
//!
//! * **transitive** — the replacement's dependencies win ties: every
//!   package shared between the target spec and the replacement spec is
//!   unified to the replacement's copy.
//! * **intransitive** — the target keeps its own dependencies: the
//!   replacement is relinked against the target's existing copies of any
//!   shared packages (so the replacement's root itself becomes spliced).
//!
//! Build dependencies of spliced nodes are pruned: they describe how the
//! original binary was produced and live on in the `build_spec`, not in
//! the runtime DAG (paper §4.1, final subtlety).

use crate::error::SpecError;
use crate::hash::SpecHash;
use crate::ident::Sym;
use crate::spec::{ConcreteNode, ConcreteSpec, DepTypes, NodeId};
use crate::Result;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Which source DAG a merged node came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Src {
    Target,
    Replacement,
}

impl ConcreteSpec {
    /// Splice `replacement` in for the node of the same name
    /// (`spec.splice(&new_zlib, true)`).
    pub fn splice(&self, replacement: &ConcreteSpec, transitive: bool) -> Result<ConcreteSpec> {
        self.splice_as(replacement.root().name, replacement, transitive)
    }

    /// Splice `replacement` in for the node named `replace_name`, which may
    /// differ from the replacement's own name (cross-package splices, e.g.
    /// `mpiabi` standing in for `mpich`).
    pub fn splice_as(
        &self,
        replace_name: Sym,
        replacement: &ConcreteSpec,
        transitive: bool,
    ) -> Result<ConcreteSpec> {
        let x = self.find(replace_name).ok_or_else(|| {
            SpecError::BadSplice(format!("{replace_name} is not a node of the target spec"))
        })?;
        if x == self.root_id() {
            return Err(SpecError::BadSplice(
                "cannot splice the root of a spec; splice into a dependent instead".into(),
            ));
        }
        // Note: the replacement's own package may already appear in the
        // target (e.g. an earlier child splice introduced it); the winner
        // rules below unify to the replacement's copy.
        let o_root_name = replacement.root().name;

        // --- 1. Decide the winning copy of every package name. ---
        let mut winners: BTreeMap<Sym, (Src, NodeId)> = BTreeMap::new();
        for (id, n) in self.nodes().iter().enumerate() {
            if n.name != replace_name {
                winners.insert(n.name, (Src::Target, id));
            }
        }
        for (id, n) in replacement.nodes().iter().enumerate() {
            // The replacement root always wins; transitive: the
            // replacement's deps win ties; intransitive: the target's do.
            let take = (n.name == o_root_name && id == replacement.root_id())
                || transitive
                || !winners.contains_key(&n.name);
            if take {
                winners.insert(n.name, (Src::Replacement, id));
            }
        }
        // The spliced-out name resolves to the replacement root.
        winners.insert(replace_name, (Src::Replacement, replacement.root_id()));

        let src_spec = |s: Src| -> &ConcreteSpec {
            match s {
                Src::Target => self,
                Src::Replacement => replacement,
            }
        };

        // --- 2. Materialize merged nodes with resolved edges. ---
        // Stable ordering: target nodes first, then replacement nodes.
        let mut order: Vec<(Sym, Src, NodeId)> = Vec::new();
        for (&name, &(s, id)) in &winners {
            if name == replace_name && o_root_name != replace_name {
                continue; // alias entry, same node as o_root_name's
            }
            order.push((name, s, id));
        }
        let index_of: BTreeMap<Sym, usize> = order
            .iter()
            .enumerate()
            .map(|(i, &(name, _, _))| (name, i))
            .collect();
        let resolve = |from: Src, dep_name: Sym| -> Option<usize> {
            let name = if from == Src::Target && dep_name == replace_name {
                o_root_name
            } else if dep_name == replace_name && o_root_name != replace_name {
                // A replacement-subtree reference to the spliced-out name
                // also lands on the replacement root.
                o_root_name
            } else {
                dep_name
            };
            index_of.get(&name).copied()
        };

        struct Merged {
            node: ConcreteNode,
            src: Src,
            orig_id: NodeId,
            orig_hash: SpecHash,
            deps: Vec<(usize, DepTypes, SpecHash)>, // (new idx, types, hash the edge was built against)
        }

        let mut merged: Vec<Merged> = Vec::with_capacity(order.len());
        for &(_, s, id) in &order {
            let spec = src_spec(s);
            let n = spec.node(id);
            let mut deps = Vec::with_capacity(n.deps.len());
            for &(d, t) in &n.deps {
                let dep_name = spec.node(d).name;
                let Some(new_idx) = resolve(s, dep_name) else {
                    // Dependency not among winners: it can only be a
                    // subtree of the spliced-out node that nothing else
                    // retains; drop the edge (it is unreachable anyway).
                    continue;
                };
                deps.push((new_idx, t, spec.node(d).hash));
            }
            merged.push(Merged {
                node: n.clone(),
                src: s,
                orig_id: id,
                orig_hash: n.hash,
                deps,
            });
        }

        // --- 3. Decide which nodes changed (need provenance). ---
        // A node changed iff some resolved link-run dependency is a
        // different binary than it was built against, or a dependency
        // changed transitively.
        let adjacency: Vec<Vec<usize>> = merged
            .iter()
            .map(|m| m.deps.iter().map(|&(d, _, _)| d).collect())
            .collect();
        let topo = topo_merged(&adjacency)?;
        let mut changed = vec![false; merged.len()];
        for &i in &topo {
            let m = &merged[i];
            for &(dep_idx, types, built_against) in &m.deps {
                if !types.is_link_run() {
                    continue;
                }
                if merged[dep_idx].orig_hash != built_against || changed[dep_idx] {
                    changed[i] = true;
                    break;
                }
            }
        }

        // --- 4. Emit the final DAG. ---
        let mut nodes: Vec<ConcreteNode> = Vec::with_capacity(merged.len());
        for (i, m) in merged.iter().enumerate() {
            let mut n = m.node.clone();
            n.deps = m
                .deps
                .iter()
                .filter_map(|&(d, t, _)| {
                    if changed[i] {
                        // Spliced nodes shed build-only edges; mixed edges
                        // keep only their link-run component.
                        if t.is_link_run() {
                            Some((d, DepTypes::LINK_RUN))
                        } else {
                            None
                        }
                    } else {
                        Some((d, t))
                    }
                })
                .collect();
            if changed[i] && n.build_spec.is_none() {
                n.build_spec = Some(Arc::new(src_spec(m.src).subdag(m.orig_id)));
            }
            nodes.push(n);
        }

        let root_idx = index_of[&self.root().name];
        let mut out = ConcreteSpec::from_parts(nodes, root_idx);
        out = out.subdag(out.root_id()); // prune unreachable
        out.rehash()?;
        Ok(out)
    }
}

/// Topological order (dependencies first) over an adjacency list; detects
/// cycles introduced by a malformed splice.
fn topo_merged(adjacency: &[Vec<usize>]) -> Result<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; adjacency.len()];
    let mut order = Vec::with_capacity(adjacency.len());
    for start in 0..adjacency.len() {
        if marks[start] != Mark::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        marks[start] = Mark::Grey;
        while let Some(&(id, next)) = stack.last() {
            let deps = &adjacency[id];
            if next < deps.len() {
                stack.last_mut().expect("non-empty").1 += 1;
                let dep = deps[next];
                match marks[dep] {
                    Mark::White => {
                        marks[dep] = Mark::Grey;
                        stack.push((dep, 0));
                    }
                    Mark::Grey => {
                        return Err(SpecError::Cycle(
                            "splice would introduce a dependency cycle".into(),
                        ));
                    }
                    Mark::Black => {}
                }
            } else {
                marks[id] = Mark::Black;
                order.push(id);
                stack.pop();
            }
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ConcreteSpecBuilder;
    use crate::version::Version;

    fn v(s: &str) -> Version {
        Version::parse(s).unwrap()
    }

    /// Paper Fig 2: T ^H ^Z@1.0 (built) and H' ^S ^Z@1.1 (built).
    fn fig2_t() -> ConcreteSpec {
        let mut b = ConcreteSpecBuilder::new();
        let z = b.node("z", v("1.0"));
        let h = b.node("h", v("1.0"));
        let t = b.node("t", v("1.0"));
        b.edge(h, z, DepTypes::LINK_RUN);
        b.edge(t, h, DepTypes::LINK_RUN);
        b.edge(t, z, DepTypes::LINK_RUN);
        b.build(t).unwrap()
    }

    fn fig2_hprime() -> ConcreteSpec {
        let mut b = ConcreteSpecBuilder::new();
        let z = b.node("z", v("1.1"));
        let s = b.node("s", v("1.0"));
        let h = b.node("h", v("2.0"));
        b.edge(h, s, DepTypes::LINK_RUN);
        b.edge(h, z, DepTypes::LINK_RUN);
        b.build(h).unwrap()
    }

    #[test]
    fn fig2_transitive_splice() {
        let t = fig2_t();
        let hp = fig2_hprime();
        // Request: T ^H' — transitive splice of H' into T.
        let spliced = t.splice(&hp, true).unwrap();

        // Shape: t -> h'(2.0) -> {s, z@1.1}; t -> z@1.1 (shared dep unified
        // to the replacement's copy).
        let h = spliced.find(Sym::intern("h")).unwrap();
        assert_eq!(spliced.node(h).version, v("2.0"));
        let z = spliced.find(Sym::intern("z")).unwrap();
        assert_eq!(spliced.node(z).version, v("1.1"));
        assert!(spliced.find(Sym::intern("s")).is_some());

        // Provenance: T changed (relinked) -> build_spec present; H' and
        // its subtree are exactly as built -> no provenance.
        assert!(spliced.root().is_spliced());
        assert!(!spliced.node(h).is_spliced());
        assert!(!spliced.node(z).is_spliced());

        // T's build_spec records the original T ^H ^Z@1.0.
        let bs = spliced.root().build_spec.as_ref().unwrap();
        assert_eq!(bs.dag_hash(), t.dag_hash());
    }

    #[test]
    fn fig2_intransitive_splice() {
        let t = fig2_t();
        let hp = fig2_hprime();
        let step1 = t.splice(&hp, true).unwrap();

        // Request: T ^H' ^Z@1.0 — splice Z@1.0 back in (intransitive
        // result per the paper: H' now uses Z@1.0, T's dep restored).
        let mut zb = ConcreteSpecBuilder::new();
        let z = zb.node("z", v("1.0"));
        let z10 = zb.build(z).unwrap();
        let step2 = step1.splice(&z10, false).unwrap();

        let z = step2.find(Sym::intern("z")).unwrap();
        assert_eq!(step2.node(z).version, v("1.0"));
        // Both T and H' are now spliced; Z@1.0 itself was built as-is.
        let h = step2.find(Sym::intern("h")).unwrap();
        assert!(step2.root().is_spliced());
        assert!(step2.node(h).is_spliced());
        assert!(!step2.node(z).is_spliced());

        // H's provenance records how it was *really* built: H' ^S ^Z@1.1.
        let h_bs = step2.node(h).build_spec.as_ref().unwrap();
        assert_eq!(h_bs.dag_hash(), hp.dag_hash());
    }

    #[test]
    fn splice_prunes_build_deps_of_spliced_nodes() {
        // app --(build)--> cmake, --(link)--> zlib@1.2
        let mut b = ConcreteSpecBuilder::new();
        let cmake = b.node("cmake", v("3.27"));
        let z = b.node("zlib", v("1.2"));
        let app = b.node("app", v("1.0"));
        b.edge(app, cmake, DepTypes::BUILD);
        b.edge(app, z, DepTypes::LINK_RUN);
        let app_spec = b.build(app).unwrap();

        let mut zb = ConcreteSpecBuilder::new();
        let z13 = zb.node("zlib", v("1.3"));
        let z13 = zb.build(z13).unwrap();

        let spliced = app_spec.splice(&z13, true).unwrap();
        assert!(spliced.find(Sym::intern("cmake")).is_none());
        assert!(spliced.root().is_spliced());
        // The provenance still knows about cmake.
        let bs = spliced.root().build_spec.as_ref().unwrap();
        assert!(bs.find(Sym::intern("cmake")).is_some());
    }

    #[test]
    fn cross_package_splice() {
        // trilinos ^mpich; splice mpiabi (ABI-compatible) in for mpich.
        let mut b = ConcreteSpecBuilder::new();
        let mpich = b.node("mpich", v("3.4.3"));
        let tri = b.node("trilinos", v("14.0"));
        b.edge(tri, mpich, DepTypes::LINK_RUN);
        let tri = b.build(tri).unwrap();

        let mut mb = ConcreteSpecBuilder::new();
        let mpiabi = mb.node("mpiabi", v("1.0"));
        let mpiabi = mb.build(mpiabi).unwrap();

        let spliced = tri
            .splice_as(Sym::intern("mpich"), &mpiabi, true)
            .unwrap();
        assert!(spliced.find(Sym::intern("mpich")).is_none());
        assert!(spliced.find(Sym::intern("mpiabi")).is_some());
        assert!(spliced.root().is_spliced());
        assert_eq!(
            spliced.root().build_spec.as_ref().unwrap().dag_hash(),
            tri.dag_hash()
        );
    }

    #[test]
    fn splice_missing_target_errors() {
        let t = fig2_t();
        let mut b = ConcreteSpecBuilder::new();
        let q = b.node("q", v("1"));
        let q = b.build(q).unwrap();
        assert!(matches!(
            t.splice(&q, true),
            Err(SpecError::BadSplice(_))
        ));
    }

    #[test]
    fn splice_root_errors() {
        let t = fig2_t();
        let mut b = ConcreteSpecBuilder::new();
        let t2 = b.node("t", v("2.0"));
        let t2 = b.build(t2).unwrap();
        assert!(matches!(t.splice(&t2, true), Err(SpecError::BadSplice(_))));
    }

    #[test]
    fn spliced_hash_differs_from_native_build() {
        // A natively-built T ^H' ^Z@1.1 must hash differently from the
        // spliced one (paper: reproducibility requires distinguishing).
        let t = fig2_t();
        let hp = fig2_hprime();
        let spliced = t.splice(&hp, true).unwrap();

        let mut b = ConcreteSpecBuilder::new();
        let z = b.node("z", v("1.1"));
        let s = b.node("s", v("1.0"));
        let h = b.node("h", v("2.0"));
        let troot = b.node("t", v("1.0"));
        b.edge(h, s, DepTypes::LINK_RUN);
        b.edge(h, z, DepTypes::LINK_RUN);
        b.edge(troot, h, DepTypes::LINK_RUN);
        b.edge(troot, z, DepTypes::LINK_RUN);
        let native = b.build(troot).unwrap();

        assert_ne!(spliced.dag_hash(), native.dag_hash());
    }

    #[test]
    fn splice_is_idempotent_on_hash() {
        let t = fig2_t();
        let hp = fig2_hprime();
        let a = t.splice(&hp, true).unwrap();
        let b = t.splice(&hp, true).unwrap();
        assert_eq!(a.dag_hash(), b.dag_hash());
    }

    #[test]
    fn double_splice_keeps_original_provenance() {
        // Splice zlib twice; the root's build_spec still points at the
        // ORIGINAL build, not the intermediate splice.
        let mut b = ConcreteSpecBuilder::new();
        let z = b.node("zlib", v("1.1"));
        let app = b.node("app", v("1.0"));
        b.edge(app, z, DepTypes::LINK_RUN);
        let orig = b.build(app).unwrap();

        let mk_z = |ver: &str| {
            let mut zb = ConcreteSpecBuilder::new();
            let z = zb.node("zlib", v(ver));
            zb.build(z).unwrap()
        };
        let s1 = orig.splice(&mk_z("1.2"), true).unwrap();
        let s2 = s1.splice(&mk_z("1.3"), true).unwrap();
        assert_eq!(
            s2.root().build_spec.as_ref().unwrap().dag_hash(),
            orig.dag_hash()
        );
    }

    #[test]
    fn unrelated_subtree_untouched() {
        // app -> {libfoo -> zlib, libbar}; splicing zlib leaves libbar
        // identical (same node hash as before).
        let mut b = ConcreteSpecBuilder::new();
        let z = b.node("zlib", v("1.1"));
        let foo = b.node("libfoo", v("1.0"));
        let bar = b.node("libbar", v("1.0"));
        let app = b.node("app", v("1.0"));
        b.edge(foo, z, DepTypes::LINK_RUN);
        b.edge(app, foo, DepTypes::LINK_RUN);
        b.edge(app, bar, DepTypes::LINK_RUN);
        let orig = b.build(app).unwrap();
        let bar_hash = orig.node(orig.find(Sym::intern("libbar")).unwrap()).hash;

        let mut zb = ConcreteSpecBuilder::new();
        let z12 = zb.node("zlib", v("1.2"));
        let z12 = zb.build(z12).unwrap();
        let spliced = orig.splice(&z12, true).unwrap();

        let bar_new = spliced.find(Sym::intern("libbar")).unwrap();
        assert_eq!(spliced.node(bar_new).hash, bar_hash);
        assert!(!spliced.node(bar_new).is_spliced());
        // libfoo and app are spliced.
        let foo_new = spliced.find(Sym::intern("libfoo")).unwrap();
        assert!(spliced.node(foo_new).is_spliced());
        assert!(spliced.root().is_spliced());
    }
}
