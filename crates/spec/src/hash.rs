//! Content hashing for concrete specs.
//!
//! Spack identifies every concrete spec by a cryptographic digest of its
//! canonical serialization (the "DAG hash") and renders it in lowercase
//! base32. We reproduce that scheme with a from-scratch SHA-256
//! implementation (FIPS 180-4) — no external crypto crates.

use std::fmt;

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use spackle_spec::hash::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     h.finish().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a fresh hasher in the initial state.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finalize and produce the digest.
    pub fn finish(mut self) -> SpecHash {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80 then zeros until 56 mod 64, then 64-bit big-endian length.
        self.update_padding(0x80);
        while self.buf_len != 56 {
            self.update_padding(0x00);
        }
        let len_bytes = bit_len.to_be_bytes();
        for b in len_bytes {
            self.update_padding(b);
        }
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        SpecHash(out)
    }

    /// Like `update` for a single padding byte, but without advancing the
    /// message length counter.
    fn update_padding(&mut self, byte: u8) {
        self.buf[self.buf_len] = byte;
        self.buf_len += 1;
        if self.buf_len == 64 {
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }

    /// One-shot convenience.
    pub fn digest(data: &[u8]) -> SpecHash {
        let mut h = Sha256::new();
        h.update(data);
        h.finish()
    }
}

/// A 256-bit content hash identifying a concrete spec.
///
/// Displayed, like Spack's DAG hashes, as lowercase base32 (RFC 4648
/// alphabet, lowercased, no padding) — conventionally abbreviated to its
/// first 7 characters in user-facing output.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecHash(pub [u8; 32]);

const B32_ALPHABET: &[u8; 32] = b"abcdefghijklmnopqrstuvwxyz234567";

impl SpecHash {
    /// All-zero hash; used as a sentinel in tests.
    pub const ZERO: SpecHash = SpecHash([0u8; 32]);

    /// Lowercase hex rendering (64 chars).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Full lowercase base32 rendering (52 chars, unpadded).
    pub fn to_base32(&self) -> String {
        let mut out = String::with_capacity(52);
        let mut acc: u64 = 0;
        let mut bits = 0u32;
        for &byte in &self.0 {
            acc = (acc << 8) | byte as u64;
            bits += 8;
            while bits >= 5 {
                bits -= 5;
                let idx = ((acc >> bits) & 0x1f) as usize;
                out.push(B32_ALPHABET[idx] as char);
            }
        }
        if bits > 0 {
            let idx = ((acc << (5 - bits)) & 0x1f) as usize;
            out.push(B32_ALPHABET[idx] as char);
        }
        out
    }

    /// Abbreviated hash, like `spack find /abcdefg`.
    pub fn short(&self) -> String {
        self.to_base32()[..7].to_string()
    }

    /// Parse the full base32 rendering back into a hash.
    pub fn from_base32(s: &str) -> Option<SpecHash> {
        if s.len() != 52 {
            return None;
        }
        let mut acc: u64 = 0;
        let mut bits = 0u32;
        let mut out = [0u8; 32];
        let mut oi = 0;
        for ch in s.bytes() {
            let v = B32_ALPHABET.iter().position(|&a| a == ch)? as u64;
            acc = (acc << 5) | v;
            bits += 5;
            if bits >= 8 {
                bits -= 8;
                if oi < 32 {
                    out[oi] = ((acc >> bits) & 0xff) as u8;
                    oi += 1;
                }
            }
        }
        if oi != 32 {
            return None;
        }
        Some(SpecHash(out))
    }
}

impl fmt::Display for SpecHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_base32())
    }
}

impl fmt::Debug for SpecHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpecHash({})", self.short())
    }
}

impl serde::Serialize for SpecHash {
    fn serialize<S: serde::Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_str(&self.to_base32())
    }
}

impl<'de> serde::Deserialize<'de> for SpecHash {
    fn deserialize<D: serde::Deserializer<'de>>(de: D) -> Result<SpecHash, D::Error> {
        struct V;
        impl serde::de::Visitor<'_> for V {
            type Value = SpecHash;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a 52-char base32 spec hash")
            }
            fn visit_str<E: serde::de::Error>(self, v: &str) -> Result<SpecHash, E> {
                SpecHash::from_base32(v)
                    .ok_or_else(|| E::custom(format!("invalid spec hash: {v}")))
            }
        }
        de.deserialize_str(V)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST test vectors.
    #[test]
    fn sha256_empty() {
        assert_eq!(
            Sha256::digest(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            Sha256::digest(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_message() {
        assert_eq!(
            Sha256::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finish().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let oneshot = Sha256::digest(&data);
        // Feed in awkward chunk sizes to exercise buffering.
        for chunk_size in [1usize, 3, 63, 64, 65, 127, 1000] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk_size) {
                h.update(c);
            }
            assert_eq!(h.finish(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn base32_roundtrip() {
        let h = Sha256::digest(b"round trip me");
        let s = h.to_base32();
        assert_eq!(s.len(), 52);
        assert_eq!(SpecHash::from_base32(&s), Some(h));
    }

    #[test]
    fn base32_rejects_garbage() {
        assert_eq!(SpecHash::from_base32("tooshort"), None);
        assert_eq!(SpecHash::from_base32(&"!".repeat(52)), None);
        // Uppercase is not in the alphabet.
        let s = Sha256::digest(b"x").to_base32().to_uppercase();
        assert_eq!(SpecHash::from_base32(&s), None);
    }

    #[test]
    fn short_is_prefix() {
        let h = Sha256::digest(b"prefix");
        assert!(h.to_base32().starts_with(&h.short()));
        assert_eq!(h.short().len(), 7);
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(Sha256::digest(b"a"), Sha256::digest(b"b"));
    }
}
