//! Error types for the spec crate.

use std::fmt;

/// Errors arising from parsing, constructing, or transforming specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec string could not be parsed.
    Parse {
        /// Byte offset into the input where the error was detected.
        offset: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// A version string was malformed.
    BadVersion(String),
    /// Two constraints on the same attribute cannot both hold.
    Conflict(String),
    /// A DAG operation referenced a node that does not exist.
    NoSuchNode(String),
    /// A splice was requested that is not structurally possible.
    BadSplice(String),
    /// A dependency cycle was detected where a DAG is required.
    Cycle(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            SpecError::BadVersion(v) => write!(f, "malformed version: {v}"),
            SpecError::Conflict(m) => write!(f, "conflicting constraints: {m}"),
            SpecError::NoSuchNode(n) => write!(f, "no such node in spec DAG: {n}"),
            SpecError::BadSplice(m) => write!(f, "invalid splice: {m}"),
            SpecError::Cycle(m) => write!(f, "dependency cycle: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}
