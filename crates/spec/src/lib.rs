#![warn(missing_docs)]

//! # spackle-spec
//!
//! The spec model underlying Spackle, a Rust reproduction of Spack's
//! configuration language and dependency representation (paper §3).
//!
//! A *spec* describes a software configuration: package name, version,
//! variant values (compile-time options), target operating system and
//! microarchitecture, and the specs of its dependencies. Specs come in two
//! flavours:
//!
//! * [`AbstractSpec`] — a partial description / constraint, as written by a
//!   user on the command line (e.g. `hdf5@1.14 +mpi ^zlib@1.3`).
//! * [`ConcreteSpec`] — a fully resolved dependency DAG in which every node
//!   has all six attributes fixed. Concrete specs are installable and carry
//!   a content [`SpecHash`] computed over the whole DAG.
//!
//! The module [`splice`] implements the paper's §4 contribution at the DAG
//! level: replacing a dependency of an already-built spec with an
//! ABI-compatible substitute while retaining full *build provenance*.

pub mod arch;
pub mod error;
pub mod hash;
pub mod ident;
pub mod parser;
pub mod satisfy;
pub mod span;
pub mod spec;
pub mod splice;
pub mod variant;
pub mod version;

pub use arch::{Os, Target};
pub use error::SpecError;
pub use hash::{Sha256, SpecHash};
pub use ident::Sym;
pub use parser::{parse_spec, parse_spec_spanned};
pub use span::{Span, SpecSpans};
pub use spec::{
    AbstractDep, AbstractSpec, ConcreteNode, ConcreteSpec, DepTypes, NodeId,
};
pub use variant::{VariantKind, VariantValue};
pub use version::{Version, VersionReq};

/// Convenience result alias used across the crate.
pub type Result<T, E = SpecError> = std::result::Result<T, E>;
