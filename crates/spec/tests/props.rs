//! Property tests for the spec substrate: version ordering laws,
//! requirement/intersection coherence, parser round-trips, hash
//! stability, base32 coding, and splice invariants.

use proptest::prelude::*;
use spackle_spec::spec::{AbstractDep, AbstractSpec, ConcreteSpecBuilder, DepTypes};
use spackle_spec::{parse_spec, Os, Sha256, SpecHash, Sym, Target, VariantValue, Version, VersionReq};

// ---------------------------------------------------------------------
// Versions
// ---------------------------------------------------------------------

fn version_strategy() -> impl Strategy<Value = Version> {
    let seg = prop_oneof![
        (0u64..50).prop_map(|n| n.to_string()),
        prop_oneof![Just("rc1"), Just("alpha"), Just("beta2"), Just("dev")]
            .prop_map(|s| s.to_string()),
    ];
    prop::collection::vec(seg, 1..4)
        .prop_map(|parts| Version::parse(&parts.join(".")).expect("generated version parses"))
}

proptest! {
    #[test]
    fn version_order_total_and_consistent(
        a in version_strategy(),
        b in version_strategy(),
        c in version_strategy()
    ) {
        use std::cmp::Ordering::*;
        // Antisymmetry.
        match a.cmp(&b) {
            Less => prop_assert_eq!(b.cmp(&a), Greater),
            Greater => prop_assert_eq!(b.cmp(&a), Less),
            Equal => prop_assert_eq!(&a, &b),
        }
        // Transitivity (on the sampled triple).
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        // Display round-trip preserves order and equality.
        let a2 = Version::parse(&a.to_string()).unwrap();
        prop_assert_eq!(a.cmp(&b), a2.cmp(&b));
    }

    #[test]
    fn prefix_relation_matches_req(
        base in version_strategy(),
        ext in prop::collection::vec(0u64..9, 0..3)
    ) {
        // Any extension of `base` satisfies Prefix(base).
        let mut text = base.to_string();
        for e in &ext {
            text.push_str(&format!(".{e}"));
        }
        let extended = Version::parse(&text).unwrap();
        prop_assert!(extended.starts_with(&base));
        let req = VersionReq::Prefix(base.clone());
        prop_assert!(req.satisfies(&extended));
    }

    #[test]
    fn intersection_is_sound(
        v in version_strategy(),
        a in version_strategy(),
        b in version_strategy()
    ) {
        // If v satisfies the intersection, it satisfies both inputs.
        let ra = VersionReq::Range(Some(a.clone()), None);
        let rb = VersionReq::Range(None, Some(b.clone()));
        if let Some(both) = ra.intersect(&rb) {
            if both.satisfies(&v) {
                prop_assert!(ra.satisfies(&v), "{v} vs {ra}");
                prop_assert!(rb.satisfies(&v), "{v} vs {rb}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Version requirement algebra
// ---------------------------------------------------------------------

fn req_strategy() -> impl Strategy<Value = VersionReq> {
    prop_oneof![
        Just(VersionReq::Any),
        version_strategy().prop_map(VersionReq::Prefix),
        version_strategy().prop_map(VersionReq::Exact),
        version_strategy().prop_map(|v| VersionReq::Range(Some(v), None)),
        version_strategy().prop_map(|v| VersionReq::Range(None, Some(v))),
        (version_strategy(), version_strategy()).prop_map(|(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            VersionReq::Range(Some(lo), Some(hi))
        }),
    ]
}

proptest! {
    // The intersection is *exact* at the satisfaction level: a version
    // satisfies `a ∩ b` iff it satisfies both, and `None` really means
    // the requirements share no version. (Regression for the old
    // Prefix/Range arms, which violated both directions.)
    #[test]
    fn intersect_agrees_with_conjunction(
        a in req_strategy(),
        b in req_strategy(),
        v in version_strategy()
    ) {
        let conj = a.satisfies(&v) && b.satisfies(&v);
        match a.intersect(&b) {
            Some(i) => prop_assert_eq!(
                i.satisfies(&v),
                conj,
                "{a} ∩ {b} = {i}, disagrees on {v}"
            ),
            None => prop_assert!(!conj, "{a} ∩ {b} = None, but {v} satisfies both"),
        }
    }

    #[test]
    fn intersect_commutes(a in req_strategy(), b in req_strategy()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
    }

    #[test]
    fn intersect_any_is_identity(a in req_strategy()) {
        prop_assert_eq!(VersionReq::Any.intersect(&a), Some(a.clone()));
        prop_assert_eq!(a.intersect(&VersionReq::Any), Some(a.clone()));
    }

    // Self-intersection may normalize the syntax (`@p:p` becomes `@p`)
    // but must never change the satisfied set.
    #[test]
    fn intersect_self_preserves_satisfaction(
        a in req_strategy(),
        v in version_strategy()
    ) {
        let i = a.intersect(&a).expect("self-intersection is never empty");
        prop_assert_eq!(i.satisfies(&v), a.satisfies(&v), "{a} ∩ {a} = {i} on {v}");
    }
}

// ---------------------------------------------------------------------
// Spec syntax round-trips
// ---------------------------------------------------------------------

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}(-[a-z0-9]{1,4})?"
}

fn spec_text_strategy() -> impl Strategy<Value = String> {
    let variant = prop_oneof![
        Just(String::new()),
        "[a-z]{2,6}".prop_map(|v| format!("+{v}")),
        "[a-z]{2,6}".prop_map(|v| format!("~{v}")),
        ("[a-z]{2,5}", "[a-z0-9]{1,5}").prop_map(|(k, v)| format!(" {k}={v}")),
    ];
    let version = prop_oneof![
        Just(String::new()),
        (1u64..9, 0u64..20).prop_map(|(a, b)| format!("@{a}.{b}")),
        (1u64..9).prop_map(|a| format!("@{a}:")),
        (1u64..9, 1u64..9).prop_map(|(a, b)| format!("@{}:{}", a.min(b), a.max(b))),
    ];
    let dep = prop_oneof![
        Just(String::new()),
        (name_strategy(), version.clone()).prop_map(|(n, v)| format!(" ^{n}{v}")),
        name_strategy().prop_map(|n| format!(" %{n}")),
    ];
    (name_strategy(), version, variant, dep)
        .prop_map(|(n, v, var, d)| format!("{n}{v}{var}{d}"))
}

proptest! {
    #[test]
    fn parse_display_parse_is_identity(text in spec_text_strategy()) {
        let once = parse_spec(&text).expect("generated spec parses");
        let printed = once.to_string();
        let twice = parse_spec(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?}: {e}"));
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn parser_never_panics(text in "[ -~]{0,40}") {
        let _ = parse_spec(&text); // must return, never panic
    }
}

// ---------------------------------------------------------------------
// AST-level round-trip: parse(format(spec)) == spec
// ---------------------------------------------------------------------
//
// The text-level round-trip above only proves parse∘format reaches a
// fixpoint; this one starts from a random *AST* and proves formatting
// loses nothing. The generator stays inside what one line of spec
// syntax can express unambiguously: build deps are leaves (a deeper
// `%`/`^` fragment would re-attach elsewhere on reparse), link-run deps
// nest only build deps, and deps are ordered build-before-link the way
// `Display` prints them.

fn variant_value_strategy() -> impl Strategy<Value = VariantValue> {
    prop_oneof![
        any::<bool>().prop_map(VariantValue::Bool),
        // ≤4 chars starting a..g can never spell the reserved words
        // "true"/"false", which would reparse as Bool.
        "[a-g][a-z0-9]{0,3}".prop_map(|s| VariantValue::Single(Sym::intern(&s))),
        // Disjoint leading ranges guarantee two distinct elements, so
        // the value prints with a comma and reparses as Multi.
        ("[h-m][a-z]{0,2}", "[n-z][a-z]{0,2}").prop_map(|(a, b)| {
            VariantValue::Multi([Sym::intern(&a), Sym::intern(&b)].into_iter().collect())
        }),
    ]
}

/// Version + variants for one node. Keys start with `k` so they can
/// never collide with the reserved `os`/`target`/`platform`/`arch`.
type NodeParts = (VersionReq, Vec<(String, VariantValue)>);

fn node_parts_strategy() -> impl Strategy<Value = NodeParts> {
    (
        req_strategy(),
        prop::collection::vec(("k[a-z0-9]{0,4}", variant_value_strategy()), 0..3),
    )
}

fn mk_node(name: String, parts: NodeParts) -> AbstractSpec {
    let mut s = AbstractSpec::named(&name).with_version(parts.0);
    for (k, v) in parts.1 {
        s.variants.insert(Sym::intern(&k), v);
    }
    s
}

fn abstract_spec_strategy() -> impl Strategy<Value = AbstractSpec> {
    (
        ("[a-z][a-z0-9]{0,5}", node_parts_strategy()),
        prop::option::of(prop_oneof![Just("centos8"), Just("ubuntu22")]),
        prop::option::of(prop_oneof![Just("skylake"), Just("zen3")]),
        prop::collection::vec(node_parts_strategy(), 0..2),
        prop::collection::vec(
            (
                node_parts_strategy(),
                prop::collection::vec(node_parts_strategy(), 0..2),
            ),
            0..3,
        ),
    )
        .prop_map(|((root_name, root_parts), os, target, builds, links)| {
            let mut s = mk_node(root_name, root_parts);
            s.os = os.map(Os::new);
            s.target = target.map(Target::new);
            for (i, parts) in builds.into_iter().enumerate() {
                s.deps.push(AbstractDep {
                    spec: mk_node(format!("bdep{i}"), parts),
                    types: DepTypes::BUILD,
                });
            }
            for (i, (parts, subs)) in links.into_iter().enumerate() {
                let mut dep = mk_node(format!("dep{i}"), parts);
                for (j, sub) in subs.into_iter().enumerate() {
                    dep.deps.push(AbstractDep {
                        spec: mk_node(format!("sub{i}x{j}"), sub),
                        types: DepTypes::BUILD,
                    });
                }
                s.deps.push(AbstractDep {
                    spec: dep,
                    types: DepTypes::LINK_RUN,
                });
            }
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn format_then_parse_recovers_the_ast(spec in abstract_spec_strategy()) {
        let printed = spec.to_string();
        let reparsed = parse_spec(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        prop_assert_eq!(reparsed, spec, "printed form: {}", printed);
    }
}

// ---------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn base32_roundtrip(bytes in prop::array::uniform32(0u8..)) {
        let h = SpecHash(bytes);
        prop_assert_eq!(SpecHash::from_base32(&h.to_base32()), Some(h));
    }

    #[test]
    fn sha256_chunking_invariance(
        data in prop::collection::vec(any::<u8>(), 0..2000),
        split in 0usize..2000
    ) {
        let oneshot = Sha256::digest(&data);
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finish(), oneshot);
    }

    #[test]
    fn dag_hash_insensitive_to_insertion_order(perm in 0usize..6) {
        // Build a 3-leaf star inserting leaves in different orders.
        let orders = [
            ["a", "b", "c"], ["a", "c", "b"], ["b", "a", "c"],
            ["b", "c", "a"], ["c", "a", "b"], ["c", "b", "a"],
        ];
        let mk = |order: &[&str; 3]| {
            let mut b = ConcreteSpecBuilder::new();
            let leaves: Vec<usize> = order
                .iter()
                .map(|n| b.node(n, Version::parse("1.0").unwrap()))
                .collect();
            let root = b.node("root", Version::parse("1.0").unwrap());
            for l in leaves {
                b.edge(root, l, DepTypes::LINK_RUN);
            }
            b.build(root).unwrap().dag_hash()
        };
        prop_assert_eq!(mk(&orders[perm]), mk(&orders[0]));
    }
}

// ---------------------------------------------------------------------
// Splice invariants on random chains
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn splice_chain_invariants(
        depth in 2usize..8,
        splice_at_leaf_version in 1u64..9
    ) {
        // chain: top -> mid1 -> ... -> leaf@1.0
        let mut b = ConcreteSpecBuilder::new();
        let leaf = b.node("leaf", Version::parse("1.0").unwrap());
        let mut prev = leaf;
        let mut root = leaf;
        for i in 1..depth {
            let n = b.node(&format!("mid{i}"), Version::parse("1.0").unwrap());
            b.edge(n, prev, DepTypes::LINK_RUN);
            prev = n;
            root = n;
        }
        let chain = b.build(root).unwrap();

        let mut lb = ConcreteSpecBuilder::new();
        let nl = lb.node("leaf", Version::parse(&format!("{splice_at_leaf_version}.0")).unwrap());
        let new_leaf = lb.build(nl).unwrap();

        let spliced = chain.splice(&new_leaf, true).unwrap();
        // Same package set, same size.
        prop_assert_eq!(spliced.len(), chain.len());
        if splice_at_leaf_version == 1 {
            // Identical replacement: a no-op splice. Nothing changes,
            // nothing gains provenance.
            prop_assert_eq!(spliced.dag_hash(), chain.dag_hash());
            for id in spliced.all_ids() {
                prop_assert!(!spliced.node(id).is_spliced());
            }
        } else {
            // All intermediate nodes (everything but the leaf) are
            // spliced, with provenance matching the original sub-DAGs.
            for id in spliced.all_ids() {
                let n = spliced.node(id);
                if n.name == Sym::intern("leaf") {
                    prop_assert!(!n.is_spliced());
                } else {
                    prop_assert!(n.is_spliced(), "{} must be spliced", n.name);
                    let bs = n.build_spec.as_ref().unwrap();
                    let orig = chain.find(n.name).unwrap();
                    prop_assert_eq!(bs.dag_hash(), chain.node(orig).hash);
                }
            }
            prop_assert_ne!(spliced.dag_hash(), chain.dag_hash());
        }
    }
}
