//! Integration: a spliced install resolved through a [`ChainedCache`]
//! whose build-spec binary lives only in the *second* source.
//!
//! This is the multi-mirror scenario the `CacheSource` seam exists for:
//! the replacement package's binaries sit in a local cache, while the
//! original (pre-splice) binary of the parent — the one rewiring needs —
//! is only published in a further-down mirror. The planner and executor
//! only ever see one `&dyn CacheSource`, so the chain must make the
//! union visible without caller-side plumbing.

use spackle_buildcache::{BuildCache, CacheSource, ChainedCache};
use spackle_install::{InstallError, InstallLayout, InstallPlan, Installer};
use spackle_spec::spec::{ConcreteSpecBuilder, DepTypes};
use spackle_spec::{ConcreteSpec, Sym, Version};

fn v(s: &str) -> Version {
    Version::parse(s).unwrap()
}

/// `app -> hdf5 -> zlib@1.0`, plus a direct app->zlib edge.
fn build_app() -> ConcreteSpec {
    let mut b = ConcreteSpecBuilder::new();
    let z = b.node("zlib", v("1.0"));
    let h = b.node("hdf5", v("1.0"));
    let a = b.node("app", v("1.0"));
    b.edge(h, z, DepTypes::LINK_RUN);
    b.edge(a, h, DepTypes::LINK_RUN);
    b.edge(a, z, DepTypes::LINK_RUN);
    b.build(a).unwrap()
}

/// The replacement subtree: `hdf5@2.0 -> zlib@1.1`.
fn build_hdf5_prime() -> ConcreteSpec {
    let mut b = ConcreteSpecBuilder::new();
    let z = b.node("zlib", v("1.1"));
    let h = b.node("hdf5", v("2.0"));
    b.edge(h, z, DepTypes::LINK_RUN);
    b.build(h).unwrap()
}

#[test]
fn spliced_install_resolves_across_a_chain() {
    let app = build_app();
    let hp = build_hdf5_prime();
    let farm = Installer::new(InstallLayout::new("/opt/spackle"));

    // Local cache: only the replacement subtree's binaries.
    let mut local = BuildCache::new();
    local.add_spec_with(&hp, |s| farm.build_artifact(s, s.root_id()));

    // Mirror cache: only the original app build (the build-spec binary a
    // rewire must start from).
    let mut mirror = BuildCache::new();
    mirror.add_spec_with(&app, |s| farm.build_artifact(s, s.root_id()));

    // Transitive splice: app now links hdf5@2.0 and zlib@1.1, and its
    // node carries the original build spec as provenance.
    let spliced = app.splice(&hp, true).unwrap();
    assert!(spliced.root().is_spliced());
    let build_hash = spliced.root().build_spec.as_ref().unwrap().dag_hash();
    assert_eq!(build_hash, app.dag_hash());

    // Neither cache alone can realize the spliced spec without compiling:
    // the local cache is missing the build-spec binary entirely...
    assert!(local.get(build_hash).is_none());
    let mut only_local = Installer::new(InstallLayout::new("/opt/spackle"));
    let p = InstallPlan::plan(&spliced, &local);
    assert!(matches!(
        only_local.install(&spliced, &local, &p),
        Err(InstallError::MissingBuildSpecBinary { .. })
    ));
    // ...and the mirror alone would have to rebuild the replacements.
    assert!(InstallPlan::plan(&spliced, &mirror).builds() > 0);

    // Chained, the union resolves everything binary-only.
    let chain = ChainedCache::with(vec![local.clone(), mirror.clone()]);
    assert!(chain.contains(build_hash).unwrap());
    let plan = InstallPlan::plan(&spliced, &chain);
    assert_eq!(plan.builds(), 0, "no compilation with the chain");

    let mut inst = Installer::new(InstallLayout::new("/opt/spackle"));
    let report = inst.install(&spliced, &chain, &plan).unwrap();
    assert_eq!(report.rewired, 1, "exactly the spliced app is rewired");
    assert_eq!(report.built, 0);
    assert!(
        inst.verify(&spliced).is_empty(),
        "{:?}",
        inst.verify(&spliced)
    );

    // The rewired app must point at the *new* hdf5 prefix.
    let app_prefix = inst.layout().prefix(&spliced, spliced.root_id());
    let art = spackle_buildcache::Artifact::from_bytes(
        inst.artifact_at(&app_prefix).expect("artifact on disk"),
    )
    .unwrap();
    let hp_id = spliced.find(Sym::intern("hdf5")).unwrap();
    let hp_prefix = inst.layout().prefix(&spliced, hp_id);
    assert!(
        art.dep_prefixes().iter().any(|p| *p == hp_prefix),
        "rewired app links the replacement hdf5: {:?}",
        art.dep_prefixes()
    );
}
