//! Property tests for relocation: parse/patch/parse round-trips,
//! idempotence, composability of successive relocations, and stats
//! accounting.

use proptest::prelude::*;
use rustc_hash::FxHashMap;
use spackle_buildcache::Artifact;
use spackle_install::{relocate_artifact, RelocationStats};

fn path_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-z0-9]{1,8}", 1..4).prop_map(|parts| format!("/{}", parts.join("/")))
}

fn artifact_strategy() -> impl Strategy<Value = Artifact> {
    (
        path_strategy(),
        prop::collection::vec(path_strategy(), 0..4),
        prop::collection::vec("[A-Za-z_][A-Za-z0-9_]{0,10}", 0..4),
    )
        .prop_map(|(own, deps, symbols)| {
            // Dep prefixes must be distinct from each other and from the
            // own prefix for mapping semantics to be well-defined.
            let mut seen = std::collections::BTreeSet::new();
            seen.insert(own.clone());
            let deps: Vec<String> = deps
                .into_iter()
                .filter(|d| seen.insert(d.clone()))
                .collect();
            Artifact::build(&own, &deps, symbols)
        })
}

proptest! {
    #[test]
    fn full_relocation_roundtrip(art in artifact_strategy(), new_root in path_strategy()) {
        let bytes = art.to_bytes();
        // Map every path under a new root.
        let mapping: FxHashMap<String, String> = art
            .paths
            .iter()
            .map(|(_, p)| (p.clone(), format!("{new_root}{p}")))
            .collect();
        let (out, stats) = relocate_artifact(&bytes, &mapping).unwrap();
        let back = Artifact::from_bytes(&out).unwrap();
        prop_assert_eq!(back.own_prefix(), format!("{new_root}{}", art.own_prefix()));
        prop_assert_eq!(back.symbols, art.symbols.clone());
        prop_assert_eq!(
            stats.in_place + stats.lengthened,
            art.paths.len(),
            "every distinct path patched exactly once"
        );
        prop_assert_eq!(stats.untouched, 0);
    }

    #[test]
    fn relocation_is_idempotent(art in artifact_strategy(), new_root in path_strategy()) {
        let mapping: FxHashMap<String, String> = art
            .paths
            .iter()
            .map(|(_, p)| (p.clone(), format!("{new_root}{p}")))
            .collect();
        let (once, _) = relocate_artifact(&art.to_bytes(), &mapping).unwrap();
        let (twice, stats) = relocate_artifact(&once, &mapping).unwrap();
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(stats.in_place + stats.lengthened, 0);
    }

    #[test]
    fn relocation_composes(
        art in artifact_strategy(),
        root_a in path_strategy(),
        root_b in path_strategy()
    ) {
        // Relocating orig->A then A->B equals relocating orig->B.
        let to_a: FxHashMap<String, String> = art
            .paths
            .iter()
            .map(|(_, p)| (p.clone(), format!("{root_a}{p}")))
            .collect();
        let a_to_b: FxHashMap<String, String> = art
            .paths
            .iter()
            .map(|(_, p)| (format!("{root_a}{p}"), format!("{root_b}{p}")))
            .collect();
        let direct: FxHashMap<String, String> = art
            .paths
            .iter()
            .map(|(_, p)| (p.clone(), format!("{root_b}{p}")))
            .collect();

        let (via_a, _) = relocate_artifact(&art.to_bytes(), &to_a).unwrap();
        let (via_ab, _) = relocate_artifact(&via_a, &a_to_b).unwrap();
        let (direct_out, _) = relocate_artifact(&art.to_bytes(), &direct).unwrap();
        let lhs = Artifact::from_bytes(&via_ab).unwrap();
        let rhs = Artifact::from_bytes(&direct_out).unwrap();
        // Slot capacities may differ (lengthening history), but the
        // semantic content — paths and symbols — must agree.
        prop_assert_eq!(lhs.own_prefix(), rhs.own_prefix());
        prop_assert_eq!(lhs.dep_prefixes(), rhs.dep_prefixes());
        prop_assert_eq!(lhs.symbols, rhs.symbols);
    }

    #[test]
    fn untouched_when_mapping_disjoint(art in artifact_strategy()) {
        let mapping: FxHashMap<String, String> =
            [("/definitely/not/present".to_string(), "/x".to_string())]
                .into_iter()
                .collect();
        let (out, stats) = relocate_artifact(&art.to_bytes(), &mapping).unwrap();
        prop_assert_eq!(
            Artifact::from_bytes(&out).unwrap(),
            Artifact::from_bytes(&art.to_bytes()).unwrap()
        );
        prop_assert_eq!(
            stats,
            RelocationStats {
                in_place: 0,
                lengthened: 0,
                untouched: art.paths.len()
            }
        );
    }
}
