//! Install layout: where each concrete spec lives on disk.
//!
//! Spack installs every package under a user-defined root at a prefix
//! derived from its name, version, and DAG hash — which is what makes
//! multiple configurations of one package coexist, and what relocation
//! rewrites when binaries move between layouts.

use spackle_spec::{ConcreteNode, ConcreteSpec, NodeId};

/// A hash-addressed install layout rooted at a path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstallLayout {
    root: String,
}

impl InstallLayout {
    /// Layout rooted at `root` (no trailing slash).
    pub fn new(root: &str) -> InstallLayout {
        InstallLayout {
            root: root.trim_end_matches('/').to_string(),
        }
    }

    /// The layout root.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Install prefix for a node.
    pub fn prefix_of(&self, node: &ConcreteNode) -> String {
        format!(
            "{}/{}-{}-{}",
            self.root,
            node.name,
            node.version,
            node.hash.short()
        )
    }

    /// Install prefix for a node of a spec by id.
    pub fn prefix(&self, spec: &ConcreteSpec, id: NodeId) -> String {
        self.prefix_of(spec.node(id))
    }

    /// Prefixes of the direct link-run dependencies of `id`, sorted by
    /// dependency package name (the deterministic order artifacts embed
    /// their path slots in).
    pub fn dep_prefixes(&self, spec: &ConcreteSpec, id: NodeId) -> Vec<String> {
        let mut deps: Vec<&ConcreteNode> = spec
            .node(id)
            .deps
            .iter()
            .filter(|(_, t)| t.is_link_run())
            .map(|&(d, _)| spec.node(d))
            .collect();
        deps.sort_by_key(|n| n.name);
        deps.iter().map(|n| self.prefix_of(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spackle_spec::spec::{ConcreteSpecBuilder, DepTypes};
    use spackle_spec::Version;

    fn spec() -> ConcreteSpec {
        let mut b = ConcreteSpecBuilder::new();
        let z = b.node("zlib", Version::parse("1.3").unwrap());
        let m = b.node("mpich", Version::parse("3.4.3").unwrap());
        let h = b.node("hdf5", Version::parse("1.14.5").unwrap());
        b.edge(h, z, DepTypes::LINK_RUN);
        b.edge(h, m, DepTypes::LINK_RUN);
        b.build(h).unwrap()
    }

    #[test]
    fn prefix_contains_name_version_hash() {
        let l = InstallLayout::new("/opt/spackle/");
        let s = spec();
        let p = l.prefix(&s, s.root_id());
        assert!(p.starts_with("/opt/spackle/hdf5-1.14.5-"));
        assert_eq!(p.len(), "/opt/spackle/hdf5-1.14.5-".len() + 7);
    }

    #[test]
    fn distinct_hashes_distinct_prefixes() {
        let l = InstallLayout::new("/opt/spackle");
        let s = spec();
        let mut b = ConcreteSpecBuilder::new();
        let z = b.node("zlib", Version::parse("1.2").unwrap());
        let m = b.node("mpich", Version::parse("3.4.3").unwrap());
        let h = b.node("hdf5", Version::parse("1.14.5").unwrap());
        b.edge(h, z, DepTypes::LINK_RUN);
        b.edge(h, m, DepTypes::LINK_RUN);
        let s2 = b.build(h).unwrap();
        assert_ne!(
            l.prefix(&s, s.root_id()),
            l.prefix(&s2, s2.root_id()),
            "different zlib version must change hdf5's hash and prefix"
        );
    }

    #[test]
    fn dep_prefixes_sorted_by_name() {
        let l = InstallLayout::new("/opt");
        let s = spec();
        let deps = l.dep_prefixes(&s, s.root_id());
        assert_eq!(deps.len(), 2);
        assert!(deps[0].contains("/mpich-"));
        assert!(deps[1].contains("/zlib-"));
    }
}
