//! Binary relocation (paper §3.4): rewrite install-path strings embedded
//! in an artifact according to a mapping from old to new prefixes.

use rustc_hash::FxHashMap;
use spackle_buildcache::{Artifact, ArtifactError};

/// Counters distinguishing Spack's two patching mechanisms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelocationStats {
    /// Paths rewritten in place (new path fit the existing slot).
    pub in_place: usize,
    /// Paths that required growing the slot (the `patchelf` fallback).
    pub lengthened: usize,
    /// Path slots left untouched (not in the mapping).
    pub untouched: usize,
}

/// Apply `mapping` to every path slot of the artifact serialized in
/// `bytes`. Paths not present in the mapping are left alone. Returns the
/// re-serialized artifact and the patching statistics.
pub fn relocate_artifact(
    bytes: &[u8],
    mapping: &FxHashMap<String, String>,
) -> Result<(Vec<u8>, RelocationStats), ArtifactError> {
    let mut art = Artifact::from_bytes(bytes)?;
    let mut stats = RelocationStats::default();
    for (slot, path) in &mut art.paths {
        match mapping.get(path.as_str()) {
            None => stats.untouched += 1,
            Some(new_path) => {
                if new_path.len() <= *slot {
                    stats.in_place += 1;
                } else {
                    // patchelf-style: grow the slot to fit (plus fresh
                    // headroom for the next relocation).
                    *slot = new_path.len() + 16;
                    stats.lengthened += 1;
                }
                *path = new_path.clone();
            }
        }
    }
    Ok((art.to_bytes().to_vec(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping(pairs: &[(&str, &str)]) -> FxHashMap<String, String> {
        pairs
            .iter()
            .map(|&(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    fn sample() -> Vec<u8> {
        Artifact::build(
            "/build/hdf5-1.14.5-abc",
            &["/build/zlib-1.3-def".to_string()],
            vec!["sym1".to_string()],
        )
        .to_bytes()
        .to_vec()
    }

    #[test]
    fn in_place_when_it_fits() {
        let (out, stats) = relocate_artifact(
            &sample(),
            &mapping(&[
                ("/build/hdf5-1.14.5-abc", "/opt/hdf5-1.14.5-abc"),
                ("/build/zlib-1.3-def", "/opt/zlib-1.3-def"),
            ]),
        )
        .unwrap();
        assert_eq!(stats.in_place, 2);
        assert_eq!(stats.lengthened, 0);
        let art = Artifact::from_bytes(&out).unwrap();
        assert_eq!(art.own_prefix(), "/opt/hdf5-1.14.5-abc");
        assert_eq!(art.dep_prefixes(), vec!["/opt/zlib-1.3-def"]);
    }

    #[test]
    fn lengthening_when_new_path_is_longer() {
        let long = "/a/very/long/install/root/that/exceeds/original/padding/hdf5";
        let (out, stats) = relocate_artifact(
            &sample(),
            &mapping(&[("/build/hdf5-1.14.5-abc", long)]),
        )
        .unwrap();
        assert_eq!(stats.lengthened, 1);
        assert_eq!(stats.untouched, 1);
        let art = Artifact::from_bytes(&out).unwrap();
        assert_eq!(art.own_prefix(), long);
    }

    #[test]
    fn unmapped_paths_untouched() {
        let (out, stats) = relocate_artifact(&sample(), &mapping(&[])).unwrap();
        assert_eq!(stats.untouched, 2);
        assert_eq!(Artifact::from_bytes(&out).unwrap(), Artifact::from_bytes(&sample()).unwrap());
    }

    #[test]
    fn relocation_is_idempotent() {
        let m = mapping(&[("/build/hdf5-1.14.5-abc", "/opt/hdf5")]);
        let (once, _) = relocate_artifact(&sample(), &m).unwrap();
        let (twice, stats) = relocate_artifact(&once, &m).unwrap();
        assert_eq!(once, twice);
        assert_eq!(stats.in_place, 0); // old path no longer present
    }

    #[test]
    fn symbols_preserved_across_relocation() {
        let m = mapping(&[("/build/zlib-1.3-def", "/somewhere/else/zlib")]);
        let (out, _) = relocate_artifact(&sample(), &m).unwrap();
        let art = Artifact::from_bytes(&out).unwrap();
        assert_eq!(art.symbols, vec!["sym1".to_string()]);
    }

    #[test]
    fn corrupt_input_propagates_error() {
        assert!(relocate_artifact(b"garbage", &mapping(&[])).is_err());
    }
}
