//! The install planner and executor.
//!
//! For a concrete (possibly spliced) spec, the planner decides per node:
//!
//! * **Reuse** — a binary for this exact hash is in the buildcache;
//!   relocate it into the local layout.
//! * **Rewire** — the node is spliced (carries a build spec); take the
//!   binary built as the build spec and rewire its dependency paths
//!   (paper §4.2).
//! * **Build** — no binary available; "compile" (synthesize an artifact).
//!
//! The executor installs into an in-memory tree (hermetic for tests and
//! benches) and can verify that every installed artifact's embedded
//! paths point at installed prefixes — the property relocation and
//! rewiring exist to maintain.

use crate::layout::InstallLayout;
use crate::relocate::{relocate_artifact, RelocationStats};
use crate::rewire::rewire_mapping;
use rustc_hash::FxHashMap;
use spackle_buildcache::{Artifact, ArtifactError, CacheSource};
use spackle_spec::{ConcreteSpec, NodeId, SpecHash};
use std::collections::BTreeMap;
use std::fmt;

/// Installation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstallError {
    /// Rewire requested on a node without a build spec.
    NotSpliced(String),
    /// A spliced node's build-spec binary is not in any cache.
    MissingBuildSpecBinary {
        /// The spliced node's package.
        node: String,
        /// Short hash of the missing build spec.
        build_hash: String,
    },
    /// Dependency pairing for rewiring was ambiguous.
    AmbiguousRewire {
        /// The spliced node's package.
        node: String,
        /// Build-spec dependencies with no same-name counterpart.
        unmatched_old: Vec<String>,
        /// Runtime dependencies with no same-name counterpart.
        unmatched_new: Vec<String>,
    },
    /// The artifact could not be parsed or patched.
    Artifact(ArtifactError),
    /// A cache source failed (or served a corrupt entry) while the
    /// executor was pulling a binary the plan counted on.
    CacheFailure {
        /// The node whose binary was being fetched.
        node: String,
        /// Short hash of the entry being fetched.
        hash: String,
        /// What the backend reported.
        detail: String,
    },
}

impl From<ArtifactError> for InstallError {
    fn from(e: ArtifactError) -> InstallError {
        InstallError::Artifact(e)
    }
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::NotSpliced(n) => write!(f, "node {n} is not spliced"),
            InstallError::MissingBuildSpecBinary { node, build_hash } => write!(
                f,
                "spliced node {node} needs binary for build spec /{build_hash} but no cache has it"
            ),
            InstallError::AmbiguousRewire {
                node,
                unmatched_old,
                unmatched_new,
            } => write!(
                f,
                "ambiguous rewire for {node}: old deps {unmatched_old:?} vs new deps {unmatched_new:?}"
            ),
            InstallError::Artifact(e) => write!(f, "artifact error: {e}"),
            InstallError::CacheFailure { node, hash, detail } => {
                write!(f, "cache failure installing {node}/{hash}: {detail}")
            }
        }
    }
}

impl std::error::Error for InstallError {}

/// Per-node install decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Binary with this hash is cached; relocate and install.
    Reuse(SpecHash),
    /// Spliced: rewire the build spec's binary.
    Rewire {
        /// Hash of the build spec whose binary gets rewired.
        build_hash: SpecHash,
    },
    /// Build from source.
    Build,
}

/// A topologically ordered install plan.
#[derive(Clone, Debug)]
pub struct InstallPlan {
    /// `(node, action)` pairs, dependencies before dependents.
    pub steps: Vec<(NodeId, Action)>,
}

impl InstallPlan {
    /// Decide actions for every node of `spec` given any binary source
    /// (a [`spackle_buildcache::BuildCache`], a
    /// [`spackle_buildcache::ChainedCache`], or a custom backend).
    ///
    /// Planning degrades conservatively: a source error or a corrupt
    /// entry (one that doesn't hash to what was asked for) demotes the
    /// node to [`Action::Build`] — a flaky mirror costs a rebuild, never
    /// a wrong or failed plan.
    pub fn plan(spec: &ConcreteSpec, cache: &dyn CacheSource) -> InstallPlan {
        let order = topo_ids(spec);
        let steps = order
            .into_iter()
            .map(|id| {
                let node = spec.node(id);
                let cached = matches!(
                    cache.get(node.hash),
                    Ok(Some(e)) if e.spec.dag_hash() == node.hash
                );
                let action = if let Some(bs) = &node.build_spec {
                    Action::Rewire {
                        build_hash: bs.dag_hash(),
                    }
                } else if cached {
                    Action::Reuse(node.hash)
                } else {
                    Action::Build
                };
                (id, action)
            })
            .collect();
        InstallPlan { steps }
    }

    /// Number of nodes that must be compiled.
    pub fn builds(&self) -> usize {
        self.steps
            .iter()
            .filter(|(_, a)| matches!(a, Action::Build))
            .count()
    }

    /// Number of nodes satisfied by cached binaries (reuse + rewire).
    pub fn binary_installs(&self) -> usize {
        self.steps.len() - self.builds()
    }
}

/// Fetch `hash` from `cache`, turning backend failures, vanished
/// entries, and corrupt (wrong-hash) entries into structured
/// [`InstallError::CacheFailure`]s.
fn fetch_checked<'c>(
    cache: &'c dyn CacheSource,
    node: &str,
    hash: SpecHash,
) -> Result<&'c spackle_buildcache::CacheEntry, InstallError> {
    let fail = |detail: String| InstallError::CacheFailure {
        node: node.to_string(),
        hash: hash.short(),
        detail,
    };
    match cache.get(hash) {
        Ok(Some(e)) if e.spec.dag_hash() == hash => Ok(e),
        Ok(Some(e)) => Err(fail(format!(
            "corrupt entry: hashes to {}",
            e.spec.dag_hash().short()
        ))),
        Ok(None) => Err(fail("entry vanished after planning".to_string())),
        Err(e) => Err(fail(e.to_string())),
    }
}

/// Dependencies-first order over all nodes.
fn topo_ids(spec: &ConcreteSpec) -> Vec<NodeId> {
    let mut order = Vec::with_capacity(spec.len());
    let mut state = vec![0u8; spec.len()];
    let mut stack: Vec<(NodeId, usize)> = vec![(spec.root_id(), 0)];
    state[spec.root_id()] = 1;
    while let Some(&(id, next)) = stack.last() {
        let deps = &spec.node(id).deps;
        if next < deps.len() {
            stack.last_mut().expect("non-empty").1 += 1;
            let (d, _) = deps[next];
            if state[d] == 0 {
                state[d] = 1;
                stack.push((d, 0));
            }
        } else {
            state[id] = 2;
            order.push(id);
            stack.pop();
        }
    }
    order
}

/// Outcome counters for one install.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InstallReport {
    /// Nodes compiled from source.
    pub built: usize,
    /// Nodes installed from cached binaries (same hash).
    pub reused: usize,
    /// Spliced nodes installed by rewiring.
    pub rewired: usize,
    /// Relocation statistics accumulated over all binary installs.
    pub relocation: RelocationStats,
}

/// The installer: owns a layout and an in-memory installed tree.
pub struct Installer {
    layout: InstallLayout,
    /// prefix -> artifact bytes
    tree: BTreeMap<String, Vec<u8>>,
    /// installed spec hashes -> prefix
    installed: FxHashMap<SpecHash, String>,
}

impl Installer {
    /// Installer writing under `layout`.
    pub fn new(layout: InstallLayout) -> Installer {
        Installer {
            layout,
            tree: BTreeMap::new(),
            installed: FxHashMap::default(),
        }
    }

    /// The layout in use.
    pub fn layout(&self) -> &InstallLayout {
        &self.layout
    }

    /// Has a spec with this hash been installed?
    pub fn is_installed(&self, hash: SpecHash) -> bool {
        self.installed.contains_key(&hash)
    }

    /// The artifact bytes installed at `prefix`, if any.
    pub fn artifact_at(&self, prefix: &str) -> Option<&[u8]> {
        self.tree.get(prefix).map(|v| v.as_slice())
    }

    /// Number of installed prefixes.
    pub fn installed_count(&self) -> usize {
        self.tree.len()
    }

    /// Iterate installed `(prefix, artifact bytes)` pairs in prefix
    /// order (e.g. to persist the tree to a real filesystem).
    pub fn installed_prefixes(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.tree.iter().map(|(p, b)| (p.as_str(), b.as_slice()))
    }

    /// Synthesize the artifact a source build of `spec.node(id)` would
    /// produce in this layout: own prefix plus sorted link-run dep
    /// prefixes, with symbols derived from name and version (the ABI
    /// surface stand-in).
    pub fn build_artifact(&self, spec: &ConcreteSpec, id: NodeId) -> Vec<u8> {
        let node = spec.node(id);
        let own = self.layout.prefix(spec, id);
        let deps = self.layout.dep_prefixes(spec, id);
        let symbols = vec![
            format!("_ZN{}{}3apiEv", node.name.as_str().len(), node.name),
            format!("_ZN{}{}7versionEv_{}", node.name.as_str().len(), node.name, node.version),
        ];
        Artifact::build(&own, &deps, symbols).to_bytes().to_vec()
    }

    /// Execute `plan` for `spec`, pulling binaries from any `cache`
    /// source (plan and install may use different sources, e.g. plan
    /// against a chained view and install from the same chain).
    pub fn install(
        &mut self,
        spec: &ConcreteSpec,
        cache: &dyn CacheSource,
        plan: &InstallPlan,
    ) -> Result<InstallReport, InstallError> {
        let mut report = InstallReport::default();
        for (id, action) in &plan.steps {
            let id = *id;
            let node = spec.node(id);
            if self.installed.contains_key(&node.hash) {
                continue; // already present (shared dependency)
            }
            let prefix = self.layout.prefix(spec, id);
            let bytes = match action {
                Action::Build => {
                    report.built += 1;
                    self.build_artifact(spec, id)
                }
                Action::Reuse(hash) => {
                    // The plan saw this entry, but the source may have
                    // failed (or started serving garbage) since; both
                    // surface structurally instead of panicking.
                    let entry = fetch_checked(cache, node.name.as_str(), *hash)?;
                    let cached = entry
                        .artifact()?;
                    // Map the artifact's recorded prefixes onto this
                    // layout: own prefix plus dependency prefixes in the
                    // cached spec's sorted-name order.
                    let mut mapping: FxHashMap<String, String> = FxHashMap::default();
                    mapping.insert(cached.own_prefix().to_string(), prefix.clone());
                    let local_deps = self.layout.dep_prefixes(spec, id);
                    for (old, new) in cached.dep_prefixes().iter().zip(&local_deps) {
                        mapping.insert(old.to_string(), new.clone());
                    }
                    report.reused += 1;
                    let (bytes, stats) = relocate_artifact(&entry.artifact, &mapping)?;
                    accumulate(&mut report.relocation, stats);
                    bytes
                }
                Action::Rewire { build_hash } => {
                    let entry = match cache.get(*build_hash) {
                        Ok(Some(e)) if e.spec.dag_hash() == *build_hash => e,
                        Ok(Some(e)) => {
                            return Err(InstallError::CacheFailure {
                                node: node.name.as_str().to_string(),
                                hash: build_hash.short(),
                                detail: format!(
                                    "corrupt entry: hashes to {}",
                                    e.spec.dag_hash().short()
                                ),
                            });
                        }
                        Ok(None) => {
                            return Err(InstallError::MissingBuildSpecBinary {
                                node: node.name.as_str().to_string(),
                                build_hash: build_hash.short(),
                            });
                        }
                        Err(e) => {
                            return Err(InstallError::CacheFailure {
                                node: node.name.as_str().to_string(),
                                hash: build_hash.short(),
                                detail: e.to_string(),
                            });
                        }
                    };
                    let mapping = rewire_mapping(spec, id, &self.layout)?;
                    // The cached binary may live at a different prefix
                    // than this layout's build-spec prefix; relocate from
                    // its recorded own prefix first.
                    let cached = entry
                        .artifact()?;
                    let mut full_mapping = mapping;
                    let build_spec = node.build_spec.as_ref().expect("action is Rewire");
                    let expected_old_own =
                        self.layout.prefix(build_spec, build_spec.root_id());
                    if cached.own_prefix() != expected_old_own {
                        // Two hops: recorded -> expected-old handled by
                        // composing into one map entry recorded -> new.
                        let new_own = full_mapping
                            .get(&expected_old_own)
                            .cloned()
                            .unwrap_or_else(|| prefix.clone());
                        full_mapping.insert(cached.own_prefix().to_string(), new_own);
                        // Same composition for dependency prefixes, paired
                        // in sorted order against the build spec's deps.
                        let old_dep_prefixes: Vec<String> = self
                            .layout
                            .dep_prefixes(build_spec, build_spec.root_id());
                        for (recorded, expected) in
                            cached.dep_prefixes().iter().zip(&old_dep_prefixes)
                        {
                            if let Some(new) = full_mapping.get(expected).cloned() {
                                full_mapping.insert(recorded.to_string(), new);
                            }
                        }
                    }
                    report.rewired += 1;
                    let (bytes, stats) = relocate_artifact(&entry.artifact, &full_mapping)?;
                    accumulate(&mut report.relocation, stats);
                    bytes
                }
            };
            self.tree.insert(prefix.clone(), bytes);
            self.installed.insert(node.hash, prefix);
        }
        Ok(report)
    }

    /// Verify the closure of `spec`: every installed artifact's own
    /// prefix matches where it is installed, and every dependency path
    /// points at an installed prefix. Returns the list of violations.
    pub fn verify(&self, spec: &ConcreteSpec) -> Vec<String> {
        let mut problems = Vec::new();
        for id in spec.all_ids() {
            let prefix = self.layout.prefix(spec, id);
            let Some(bytes) = self.tree.get(&prefix) else {
                problems.push(format!("{prefix}: not installed"));
                continue;
            };
            let art = match Artifact::from_bytes(bytes) {
                Ok(a) => a,
                Err(e) => {
                    problems.push(format!("{prefix}: {e}"));
                    continue;
                }
            };
            if art.own_prefix() != prefix {
                problems.push(format!(
                    "{prefix}: artifact thinks it lives at {}",
                    art.own_prefix()
                ));
            }
            // Rewired binaries keep their original slot order (paths are
            // patched in place), so compare as sets.
            let mut expected: Vec<String> = self.layout.dep_prefixes(spec, id);
            let mut got: Vec<&str> = art.dep_prefixes();
            expected.sort();
            got.sort();
            if got.len() != expected.len()
                || got.iter().zip(&expected).any(|(g, e)| *g != e.as_str())
            {
                problems.push(format!(
                    "{prefix}: dependency paths {got:?} != expected {expected:?}"
                ));
            }
            for dep in got {
                if !self.tree.contains_key(dep) {
                    problems.push(format!("{prefix}: dangling dependency path {dep}"));
                }
            }
        }
        problems
    }
}

fn accumulate(total: &mut RelocationStats, s: RelocationStats) {
    total.in_place += s.in_place;
    total.lengthened += s.lengthened;
    total.untouched += s.untouched;
}

#[cfg(test)]
mod tests {
    use super::*;
    use spackle_buildcache::BuildCache;
    use spackle_spec::spec::{ConcreteSpecBuilder, DepTypes};
    use spackle_spec::{Sym, Version};

    fn v(s: &str) -> Version {
        Version::parse(s).unwrap()
    }

    fn diamond() -> ConcreteSpec {
        let mut b = ConcreteSpecBuilder::new();
        let z = b.node("zlib", v("1.3"));
        let la = b.node("liba", v("2.0"));
        let lb = b.node("libb", v("3.1"));
        let app = b.node("app", v("1.0"));
        b.edge(la, z, DepTypes::LINK_RUN);
        b.edge(lb, z, DepTypes::LINK_RUN);
        b.edge(app, la, DepTypes::LINK_RUN);
        b.edge(app, lb, DepTypes::LINK_RUN);
        b.build(app).unwrap()
    }

    #[test]
    fn plan_all_builds_on_empty_cache() {
        let plan = InstallPlan::plan(&diamond(), &BuildCache::new());
        assert_eq!(plan.builds(), 4);
        assert_eq!(plan.binary_installs(), 0);
        // Topological: zlib before liba/libb before app.
        let spec = diamond();
        let pos =
            |name: &str| plan.steps.iter().position(|(id, _)| spec.node(*id).name.as_str() == name);
        assert!(pos("zlib") < pos("liba"));
        assert!(pos("liba") < pos("app"));
        assert!(pos("libb") < pos("app"));
    }

    #[test]
    fn build_then_verify() {
        let spec = diamond();
        let mut inst = Installer::new(InstallLayout::new("/opt/spackle"));
        let plan = InstallPlan::plan(&spec, &BuildCache::new());
        let report = inst.install(&spec, &BuildCache::new(), &plan).unwrap();
        assert_eq!(report.built, 4);
        assert!(inst.verify(&spec).is_empty(), "{:?}", inst.verify(&spec));
    }

    #[test]
    fn reuse_from_cache_relocates() {
        // Build on a "build server" layout, cache, install locally.
        let spec = diamond();
        let builder = Installer::new(InstallLayout::new("/buildfarm/store"));
        let mut cache = BuildCache::new();
        cache.add_spec_with(&spec, |sub| {
            // Synthesize what the build server produced for each sub-DAG.
            builder.build_artifact(sub, sub.root_id())
        });

        let mut local = Installer::new(InstallLayout::new("/home/user/.spackle"));
        let plan = InstallPlan::plan(&spec, &cache);
        assert_eq!(plan.builds(), 0);
        let report = local.install(&spec, &cache, &plan).unwrap();
        assert_eq!(report.reused, 4);
        assert!(report.relocation.in_place + report.relocation.lengthened > 0);
        assert!(local.verify(&spec).is_empty(), "{:?}", local.verify(&spec));
    }

    #[test]
    fn rewire_spliced_spec_end_to_end() {
        // Build app ^zlib@1.2 and zlib@1.3 separately; splice; install
        // must rewire instead of rebuilding.
        let mut b = ConcreteSpecBuilder::new();
        let z12 = b.node("zlib", v("1.2"));
        let app = b.node("app", v("1.0"));
        b.edge(app, z12, DepTypes::LINK_RUN);
        let orig = b.build(app).unwrap();

        let mut zb = ConcreteSpecBuilder::new();
        let z13 = zb.node("zlib", v("1.3"));
        let z13 = zb.build(z13).unwrap();

        let farm = Installer::new(InstallLayout::new("/opt/spackle"));
        let mut cache = BuildCache::new();
        cache.add_spec_with(&orig, |sub| farm.build_artifact(sub, sub.root_id()));
        cache.add_spec_with(&z13, |sub| farm.build_artifact(sub, sub.root_id()));

        let spliced = orig.splice(&z13, true).unwrap();
        let plan = InstallPlan::plan(&spliced, &cache);
        assert_eq!(plan.builds(), 0, "no rebuilds for an ABI-compatible splice");
        assert!(plan
            .steps
            .iter()
            .any(|(_, a)| matches!(a, Action::Rewire { .. })));

        let mut inst = Installer::new(InstallLayout::new("/opt/spackle"));
        let report = inst.install(&spliced, &cache, &plan).unwrap();
        assert_eq!(report.rewired, 1);
        assert_eq!(report.reused, 1); // zlib@1.3 itself
        assert!(inst.verify(&spliced).is_empty(), "{:?}", inst.verify(&spliced));

        // The app artifact now points at zlib@1.3's prefix.
        let app_prefix = inst.layout().prefix(&spliced, spliced.root_id());
        let art = Artifact::from_bytes(inst.artifact_at(&app_prefix).unwrap()).unwrap();
        let z13_prefix = inst
            .layout()
            .prefix(&spliced, spliced.find(Sym::intern("zlib")).unwrap());
        assert_eq!(art.dep_prefixes(), vec![z13_prefix.as_str()]);
    }

    #[test]
    fn rewire_missing_build_binary_errors() {
        let mut b = ConcreteSpecBuilder::new();
        let z = b.node("zlib", v("1.2"));
        let app = b.node("app", v("1.0"));
        b.edge(app, z, DepTypes::LINK_RUN);
        let orig = b.build(app).unwrap();
        let mut zb = ConcreteSpecBuilder::new();
        let z13 = zb.node("zlib", v("1.3"));
        let z13 = zb.build(z13).unwrap();
        let spliced = orig.splice(&z13, true).unwrap();

        // Cache only has zlib@1.3, not the original app build.
        let farm = Installer::new(InstallLayout::new("/opt/spackle"));
        let mut cache = BuildCache::new();
        cache.add_spec_with(&z13, |sub| farm.build_artifact(sub, sub.root_id()));

        let plan = InstallPlan::plan(&spliced, &cache);
        let mut inst = Installer::new(InstallLayout::new("/opt/spackle"));
        assert!(matches!(
            inst.install(&spliced, &cache, &plan),
            Err(InstallError::MissingBuildSpecBinary { .. })
        ));
    }

    #[test]
    fn shared_hash_installed_once() {
        let spec = diamond();
        let mut inst = Installer::new(InstallLayout::new("/opt"));
        let plan = InstallPlan::plan(&spec, &BuildCache::new());
        inst.install(&spec, &BuildCache::new(), &plan).unwrap();
        let n = inst.installed_count();
        // Install again: no duplicates.
        inst.install(&spec, &BuildCache::new(), &plan).unwrap();
        assert_eq!(inst.installed_count(), n);
    }
}
