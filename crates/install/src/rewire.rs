//! Rewiring (paper §4.2): generalizing relocation to splices.
//!
//! A spliced node's binary was built as its `build_spec`; at install time
//! its embedded dependency paths must be redirected from the
//! dependencies it was *built against* to the dependencies of the
//! *spliced* spec. The build spec is exactly what makes this mapping
//! computable — which is why spliced specs must carry it.

use crate::layout::InstallLayout;
use crate::installer::InstallError;
use rustc_hash::FxHashMap;
use spackle_spec::{ConcreteSpec, NodeId, Sym};

/// Compute the old-prefix → new-prefix mapping for rewiring the artifact
/// of `spliced.node(id)` (which must carry a build spec).
///
/// Dependencies are paired by package name; a single unmatched pair is
/// paired cross-name (the `mpich` → `mpiabi` case). More than one
/// unmatched dependency on either side is ambiguous and rejected.
pub fn rewire_mapping(
    spliced: &ConcreteSpec,
    id: NodeId,
    layout: &InstallLayout,
) -> Result<FxHashMap<String, String>, InstallError> {
    let node = spliced.node(id);
    let build_spec = node.build_spec.as_ref().ok_or_else(|| {
        InstallError::NotSpliced(node.name.as_str().to_string())
    })?;

    let mut mapping = FxHashMap::default();
    // Own prefix: the binary was installed at the build spec's prefix.
    mapping.insert(
        layout.prefix(build_spec, build_spec.root_id()),
        layout.prefix(spliced, id),
    );

    // Old and new direct link-run dependencies.
    let old_deps: Vec<(Sym, String)> = build_spec
        .root()
        .deps
        .iter()
        .filter(|(_, t)| t.is_link_run())
        .map(|&(d, _)| {
            (
                build_spec.node(d).name,
                layout.prefix(build_spec, d),
            )
        })
        .collect();
    let new_deps: Vec<(Sym, String)> = node
        .deps
        .iter()
        .filter(|(_, t)| t.is_link_run())
        .map(|&(d, _)| (spliced.node(d).name, layout.prefix(spliced, d)))
        .collect();

    let mut unmatched_old: Vec<(Sym, String)> = Vec::new();
    for (oname, oprefix) in old_deps {
        if let Some((_, nprefix)) = new_deps.iter().find(|(n, _)| *n == oname) {
            mapping.insert(oprefix, nprefix.clone());
        } else {
            unmatched_old.push((oname, oprefix));
        }
    }
    let matched_new_names: Vec<Sym> = new_deps
        .iter()
        .map(|(n, _)| *n)
        .filter(|n| {
            build_spec
                .root()
                .deps
                .iter()
                .filter(|(_, t)| t.is_link_run())
                .any(|&(d, _)| build_spec.node(d).name == *n)
        })
        .collect();
    let unmatched_new: Vec<&(Sym, String)> = new_deps
        .iter()
        .filter(|(n, _)| !matched_new_names.contains(n))
        .collect();

    match (unmatched_old.len(), unmatched_new.len()) {
        (0, 0) => Ok(mapping),
        (1, 1) => {
            let (_, oprefix) = unmatched_old.pop().expect("len checked");
            mapping.insert(oprefix, unmatched_new[0].1.clone());
            Ok(mapping)
        }
        _ => Err(InstallError::AmbiguousRewire {
            node: node.name.as_str().to_string(),
            unmatched_old: unmatched_old.iter().map(|(n, _)| n.as_str().to_string()).collect(),
            unmatched_new: unmatched_new.iter().map(|(n, _)| n.as_str().to_string()).collect(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spackle_spec::spec::{ConcreteSpecBuilder, DepTypes};
    use spackle_spec::Version;

    fn v(s: &str) -> Version {
        Version::parse(s).unwrap()
    }

    fn app_with_zlib(zv: &str) -> ConcreteSpec {
        let mut b = ConcreteSpecBuilder::new();
        let z = b.node("zlib", v(zv));
        let a = b.node("app", v("1.0"));
        b.edge(a, z, DepTypes::LINK_RUN);
        b.build(a).unwrap()
    }

    #[test]
    fn same_name_rewire_mapping() {
        let orig = app_with_zlib("1.2");
        let mut zb = ConcreteSpecBuilder::new();
        let z13 = zb.node("zlib", v("1.3"));
        let z13 = zb.build(z13).unwrap();
        let spliced = orig.splice(&z13, true).unwrap();

        let layout = InstallLayout::new("/opt");
        let m = rewire_mapping(&spliced, spliced.root_id(), &layout).unwrap();
        // Own prefix remaps from the build spec's to the spliced node's.
        let old_own = layout.prefix(&orig, orig.root_id());
        assert!(m.contains_key(&old_own));
        // zlib@1.2's prefix remaps to zlib@1.3's.
        let old_z = layout.prefix(&orig, orig.find(Sym::intern("zlib")).unwrap());
        let new_z = layout.prefix(&spliced, spliced.find(Sym::intern("zlib")).unwrap());
        assert_eq!(m.get(&old_z), Some(&new_z));
    }

    #[test]
    fn cross_name_rewire_pairs_single_unmatched() {
        let mut b = ConcreteSpecBuilder::new();
        let mpich = b.node("mpich", v("3.4.3"));
        let t = b.node("trilinos", v("14.0"));
        b.edge(t, mpich, DepTypes::LINK_RUN);
        let orig = b.build(t).unwrap();

        let mut mb = ConcreteSpecBuilder::new();
        let mpiabi = mb.node("mpiabi", v("1.0"));
        let mpiabi = mb.build(mpiabi).unwrap();
        let spliced = orig
            .splice_as(Sym::intern("mpich"), &mpiabi, true)
            .unwrap();

        let layout = InstallLayout::new("/opt");
        let m = rewire_mapping(&spliced, spliced.root_id(), &layout).unwrap();
        let old_mpich = layout.prefix(&orig, orig.find(Sym::intern("mpich")).unwrap());
        let new_mpiabi =
            layout.prefix(&spliced, spliced.find(Sym::intern("mpiabi")).unwrap());
        assert_eq!(m.get(&old_mpich), Some(&new_mpiabi));
    }

    #[test]
    fn non_spliced_node_rejected() {
        let s = app_with_zlib("1.2");
        let layout = InstallLayout::new("/opt");
        assert!(matches!(
            rewire_mapping(&s, s.root_id(), &layout),
            Err(InstallError::NotSpliced(_))
        ));
    }
}
