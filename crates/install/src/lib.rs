#![warn(missing_docs)]

//! # spackle-install
//!
//! The installer side of Spackle: install layout, **relocation** (paper
//! §3.4) and **rewiring** of spliced binaries (paper §4.2), plus the
//! install planner that decides, per node, whether to build from source,
//! reuse a cached binary, or rewire a spliced one.
//!
//! Artifacts are the synthetic binaries of `spackle-buildcache`: their
//! NUL-padded path regions play the role of RPATHs. Relocation rewrites
//! those paths in place when the new path fits the slot (Spack's simple
//! patching) and rebuilds the region otherwise (the `patchelf`
//! lengthening fallback) — both paths are counted so tests and benches
//! can observe which mechanism ran.

pub mod installer;
pub mod layout;
pub mod relocate;
pub mod rewire;

pub use installer::{Action, InstallError, InstallPlan, InstallReport, Installer};
pub use layout::InstallLayout;
pub use relocate::{relocate_artifact, RelocationStats};
pub use rewire::rewire_mapping;
