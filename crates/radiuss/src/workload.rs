//! Experiment environments matching the paper's setup (§6.1.4): the
//! RADIUSS repository (with or without mpiabi mocks), the local and
//! public buildcaches, and the root subsets each experiment concretizes.

use crate::cachegen::{local_cache, public_cache};
use crate::mpi::{with_mpiabi, with_replicas};
use crate::stack::{radiuss_repo, RADIUSS_ROOTS};
use spackle_buildcache::BuildCache;
use spackle_repo::Repository;
use spackle_spec::Sym;

/// A prepared experiment environment.
pub struct ExperimentEnv {
    /// The plain RADIUSS repository (no mocks) — for *old spack* runs.
    pub repo_plain: Repository,
    /// RADIUSS + the `mpiabi` mock — for *splice spack* runs.
    pub repo_mpiabi: Repository,
    /// The controlled local buildcache (~200 specs).
    pub local: BuildCache,
    /// The large public buildcache.
    pub public: BuildCache,
    /// All 32 top-level roots.
    pub roots: Vec<Sym>,
    /// The MPI-dependent subset.
    pub mpi_roots: Vec<Sym>,
}

impl ExperimentEnv {
    /// Build the environment. `public_dags` controls how many synthetic
    /// configurations seed the public cache (entries are a multiple of
    /// this); `seed` fixes the synthesis RNG.
    pub fn setup(public_dags: usize, seed: u64) -> ExperimentEnv {
        let repo_plain = radiuss_repo();
        let repo_mpiabi = with_mpiabi(&repo_plain);
        let local = local_cache(&repo_plain);
        let public = {
            let mut p = public_cache(&repo_plain, public_dags, seed);
            // The public cache subsumes the local one, as in the paper
            // (the public mirror holds RADIUSS configurations too).
            p.merge(&local);
            p
        };
        let roots: Vec<Sym> = RADIUSS_ROOTS.iter().map(|r| Sym::intern(r)).collect();
        let mpi = Sym::intern("mpi");
        let mpi_roots: Vec<Sym> = roots
            .iter()
            .copied()
            .filter(|r| repo_plain.possible_closure(&[*r]).contains(&mpi))
            .collect();
        ExperimentEnv {
            repo_plain,
            repo_mpiabi,
            local,
            public,
            roots,
            mpi_roots,
        }
    }

    /// A repository with `n` mpiabi replicas (RQ4 scaling).
    pub fn repo_with_replicas(&self, n: usize) -> Repository {
        with_replicas(&self.repo_plain, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "builds the full local cache; run explicitly or via benches"]
    fn environment_setup_smoke() {
        let env = ExperimentEnv::setup(50, 42);
        assert_eq!(env.roots.len(), 32);
        assert!(env.mpi_roots.len() >= 12);
        assert!(env.local.len() >= 100, "local cache: {}", env.local.len());
        assert!(env.public.len() > env.local.len());
    }
}
