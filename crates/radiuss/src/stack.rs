//! The synthetic RADIUSS software stack (paper §6.1.2).
//!
//! RADIUSS is LLNL's open-source HPC foundation: infrastructure (Flux,
//! LvArray), portability layers (RAJA, CHAI, Umpire), data management
//! and visualization (Conduit, GLVis, VisIt, Hatchet), and simulation
//! packages (Ascent, SUNDIALS, ...). We reproduce its *dependency
//! structure* — 32 top-level packages over a common HPC substrate, many
//! with a virtual dependency on MPI — with package definitions whose
//! version/variant spaces are representative rather than exhaustive.

use spackle_repo::{PackageBuilder, PackageDef, Repository};

fn substrate() -> Vec<PackageDef> {
    let b = |p: PackageBuilder| p.build().expect("static package definition");
    vec![
        // --- build tools ---
        b(PackageBuilder::new("cmake")
            .version("3.27.7")
            .version("3.24.3")
            .depends_on("openssl")
            .depends_on("curl")),
        b(PackageBuilder::new("ninja").version("1.11.1")),
        b(PackageBuilder::new("pkgconf").version("1.9.5")),
        b(PackageBuilder::new("blt").version("0.5.3").version("0.5.2")),
        b(PackageBuilder::new("python")
            .version("3.11.4")
            .version("3.10.8")
            .depends_on("zlib")
            .depends_on("bzip2")
            .depends_on("openssl")
            .depends_on("sqlite")),
        b(PackageBuilder::new("perl").version("5.38.0")),
        b(PackageBuilder::new("py-setuptools")
            .version("68.0.0")
            .depends_on("python")),
        b(PackageBuilder::new("py-numpy")
            .version("1.25.1")
            .version("1.24.3")
            .depends_on("python")
            .depends_on("openblas")
            .build_depends_on("py-setuptools")),
        b(PackageBuilder::new("py-pandas")
            .version("2.0.3")
            .depends_on("python")
            .depends_on("py-numpy")
            .build_depends_on("py-setuptools")),
        // --- compression / io ---
        b(PackageBuilder::new("zlib")
            .version("1.3")
            .version("1.2.13")
            .variant_bool("optimize", true)
            .variant_bool("pic", true)
            .variant_bool("shared", true)),
        b(PackageBuilder::new("bzip2")
            .version("1.0.8")
            .variant_bool("shared", true)),
        b(PackageBuilder::new("zstd").version("1.5.5").version("1.5.2")),
        // --- explain fixture (planted two-directive conflict) ---
        // `explain-demo+newzlib` is deliberately unsatisfiable: the
        // unconditional zlib@1.2 pin and the +newzlib-conditional
        // zlib@1.3 pin can never hold together, so
        // `spackle concretize "explain-demo+newzlib" --explain` must
        // name exactly these two depends_on directives. The default
        // (~newzlib) configuration concretizes fine, keeping the
        // audit's L006 concretizability sweep green.
        b(PackageBuilder::new("explain-demo")
            .version("1.0.0")
            .variant_bool("newzlib", false)
            .depends_on("zlib@1.2")
            .depends_on_when("zlib@1.3", "+newzlib")),
        b(PackageBuilder::new("lz4").version("1.9.4")),
        b(PackageBuilder::new("libpng")
            .version("1.6.39")
            .depends_on("zlib")
            .build_depends_on("cmake")),
        // --- crypto / net ---
        b(PackageBuilder::new("openssl")
            .version("3.1.3")
            .version("1.1.1u")
            .depends_on("zlib")
            .build_depends_on("perl")),
        b(PackageBuilder::new("curl")
            .version("8.1.2")
            .depends_on("openssl")
            .depends_on("zlib")),
        b(PackageBuilder::new("libxml2")
            .version("2.10.3")
            .depends_on("zlib")
            .build_depends_on("pkgconf")),
        // --- system substrate ---
        b(PackageBuilder::new("hwloc")
            .version("2.9.1")
            .depends_on("libxml2")
            .build_depends_on("pkgconf")),
        b(PackageBuilder::new("libevent")
            .version("2.1.12")
            .depends_on("openssl")),
        b(PackageBuilder::new("pmix")
            .version("4.2.3")
            .depends_on("hwloc")
            .depends_on("libevent")),
        b(PackageBuilder::new("munge")
            .version("0.5.15")
            .depends_on("openssl")),
        b(PackageBuilder::new("lua").version("5.4.4")),
        b(PackageBuilder::new("libzmq")
            .version("4.3.4")
            .depends_on("libsodium")),
        b(PackageBuilder::new("libsodium").version("1.0.18")),
        b(PackageBuilder::new("czmq").version("4.2.1").depends_on("libzmq")),
        b(PackageBuilder::new("jansson")
            .version("2.14")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("yaml-cpp")
            .version("0.7.0")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("sqlite").version("3.42.0").depends_on("zlib")),
        // --- math ---
        b(PackageBuilder::new("openblas")
            .version("0.3.23")
            .version("0.3.21")
            .variant_single("threads", "none", &["none", "openmp", "pthreads"])
            .build_depends_on("perl")),
        b(PackageBuilder::new("boost")
            .version("1.82.0")
            .version("1.80.0")
            .variant_bool("shared", true)),
        b(PackageBuilder::new("metis")
            .version("5.1.0")
            .variant_bool("int64", false)
            .build_depends_on("cmake")),
        b(PackageBuilder::new("parmetis")
            .version("4.0.3")
            .depends_on("metis")
            .depends_on("mpi")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("superlu-dist")
            .version("8.1.2")
            .depends_on("parmetis")
            .depends_on("openblas")
            .depends_on("mpi")
            .build_depends_on("cmake")),
        // --- MPI implementations ---
        b(PackageBuilder::new("mpich")
            .version("3.4.3")
            .version("3.1")
            .variant_single("pmi", "pmix", &["pmix", "pmi2", "off"])
            .variant_single("device", "ch4", &["ch4", "ch3"])
            .provides("mpi")
            .depends_on("hwloc")
            .build_depends_on("pkgconf")),
        b(PackageBuilder::new("openmpi")
            .version("4.1.5")
            .variant_bool("legacylaunchers", false)
            .provides("mpi")
            .depends_on("hwloc")
            .depends_on("pmix")
            .depends_on("libevent")
            .build_depends_on("perl")),
        // --- data / io stack ---
        b(PackageBuilder::new("hdf5")
            .version("1.14.5")
            .version("1.12.2")
            .variant_bool("mpi", true)
            .variant_bool("cxx", false)
            .variant_bool("shared", true)
            .depends_on("zlib")
            .depends_on_when("mpi", "+mpi")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("netcdf-c")
            .version("4.9.2")
            .depends_on("hdf5")
            .depends_on("zlib")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("silo")
            .version("4.11")
            .depends_on("hdf5")
            .depends_on("zlib")),
        b(PackageBuilder::new("adios2")
            .version("2.9.1")
            .variant_bool("mpi", true)
            .depends_on("zstd")
            .depends_on("libpng")
            .depends_on_when("mpi", "+mpi")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("vtk")
            .version("9.2.6")
            .depends_on("libpng")
            .depends_on("hdf5")
            .depends_on("boost")
            .depends_on("libxml2")
            .build_depends_on("cmake")),
        // --- performance-portability core (RADIUSS) ---
        b(PackageBuilder::new("camp")
            .version("2024.02.0")
            .version("2023.06.0")
            .build_depends_on("cmake")
            .build_depends_on("blt")),
    ]
}

fn radiuss_packages() -> Vec<PackageDef> {
    let b = |p: PackageBuilder| p.build().expect("static package definition");
    vec![
        b(PackageBuilder::new("raja")
            .version("2024.02.0")
            .version("2023.06.0")
            .variant_bool("openmp", true)
            .depends_on("camp")
            .build_depends_on("cmake")
            .build_depends_on("blt")),
        b(PackageBuilder::new("umpire")
            .version("2024.02.0")
            .version("2023.06.0")
            .variant_bool("c", true)
            .depends_on("camp")
            .build_depends_on("cmake")
            .build_depends_on("blt")),
        b(PackageBuilder::new("chai")
            .version("2024.02.0")
            .depends_on("raja")
            .depends_on("umpire")
            .build_depends_on("cmake")
            .build_depends_on("blt")),
        b(PackageBuilder::new("care")
            .version("0.13.0")
            .depends_on("chai")
            .depends_on("raja")
            .depends_on("umpire")
            .build_depends_on("cmake")
            .build_depends_on("blt")),
        b(PackageBuilder::new("caliper")
            .version("2.10.0")
            .version("2.9.1")
            .variant_bool("mpi", true)
            .variant_bool("shared", true)
            .depends_on_when("mpi", "+mpi")
            .depends_on("python")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("conduit")
            .version("0.8.8")
            .version("0.8.7")
            .variant_bool("mpi", true)
            .variant_bool("hdf5", true)
            .depends_on_when("hdf5", "+hdf5")
            .depends_on_when("mpi", "+mpi")
            .depends_on("python")
            .build_depends_on("cmake")
            .build_depends_on("blt")),
        b(PackageBuilder::new("ascent")
            .version("0.9.2")
            .variant_bool("mpi", true)
            .depends_on("conduit")
            .depends_on("raja")
            .depends_on("umpire")
            .depends_on_when("mpi", "+mpi")
            .build_depends_on("cmake")
            .build_depends_on("blt")),
        b(PackageBuilder::new("axom")
            .version("0.8.1")
            .depends_on("conduit")
            .depends_on("raja")
            .depends_on("umpire")
            .depends_on("hdf5")
            .depends_on("mpi")
            .build_depends_on("cmake")
            .build_depends_on("blt")),
        b(PackageBuilder::new("hypre")
            .version("2.29.0")
            .version("2.28.0")
            .variant_bool("shared", true)
            .depends_on("openblas")
            .depends_on("mpi")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("mfem")
            .version("4.5.2")
            .version("4.5.0")
            .variant_bool("static", false)
            .depends_on("hypre")
            .depends_on("metis")
            .depends_on("zlib")
            .depends_on("mpi")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("sundials")
            .version("6.6.0")
            .version("6.5.1")
            .variant_bool("mpi", true)
            .depends_on("openblas")
            .depends_on_when("mpi", "+mpi")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("samrai")
            .version("4.1.2")
            .depends_on("hdf5")
            .depends_on("boost")
            .depends_on("mpi")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("xbraid")
            .version("3.1.0")
            .depends_on("mpi")),
        b(PackageBuilder::new("zfp")
            .version("1.0.0")
            .version("0.5.5")
            .variant_bool("shared", true)
            .build_depends_on("cmake")),
        b(PackageBuilder::new("scr")
            .version("3.0.1")
            .depends_on("mpi")
            .depends_on("zlib")
            .depends_on("yaml-cpp")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("flux-core")
            .version("0.53.0")
            .version("0.52.0")
            .depends_on("czmq")
            .depends_on("jansson")
            .depends_on("lua")
            .depends_on("hwloc")
            .depends_on("sqlite")
            .depends_on("python")
            .depends_on("munge")
            .build_depends_on("pkgconf")),
        b(PackageBuilder::new("flux-sched")
            .version("0.33.1")
            .depends_on("flux-core")
            .depends_on("boost")
            .depends_on("yaml-cpp")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("glvis")
            .version("4.2")
            .depends_on("mfem")
            .depends_on("libpng")),
        b(PackageBuilder::new("visit")
            .version("3.3.3")
            .variant_bool("mpi", true)
            .depends_on("vtk")
            .depends_on("hdf5")
            .depends_on("silo")
            .depends_on("netcdf-c")
            .depends_on("python")
            .depends_on("adios2")
            .depends_on_when("mpi", "+mpi")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("hatchet")
            .version("1.3.1")
            .depends_on("python")
            .depends_on("py-numpy")
            .depends_on("py-pandas")
            .build_depends_on("py-setuptools")),
        b(PackageBuilder::new("lvarray")
            .version("0.2.2")
            .depends_on("raja")
            .depends_on("umpire")
            .depends_on("camp")
            .build_depends_on("cmake")
            .build_depends_on("blt")),
        b(PackageBuilder::new("spot")
            .version("2.0.0")
            .depends_on("caliper")
            .depends_on("sqlite")),
        b(PackageBuilder::new("py-shroud")
            .version("0.13.0")
            .version("0.12.2")
            .depends_on("python")
            .build_depends_on("py-setuptools")),
        b(PackageBuilder::new("py-maestrowf")
            .version("1.1.9")
            .depends_on("python")
            .build_depends_on("py-setuptools")),
        b(PackageBuilder::new("lbann")
            .version("0.102")
            .depends_on("openblas")
            .depends_on("hwloc")
            .depends_on("hdf5")
            .depends_on("mpi")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("merlin")
            .version("1.10.3")
            .depends_on("python")
            .build_depends_on("py-setuptools")),
        b(PackageBuilder::new("umap")
            .version("2.1.0")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("variorum")
            .version("0.6.0")
            .depends_on("hwloc")
            .depends_on("jansson")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("metall")
            .version("0.25")
            .depends_on("boost")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("gotcha")
            .version("1.0.4")
            .version("1.0.3")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("sina")
            .version("1.11.0")
            .depends_on("sqlite")
            .build_depends_on("cmake")),
        b(PackageBuilder::new("mgmol")
            .version("1.0.0")
            .depends_on("openblas")
            .depends_on("hdf5")
            .depends_on("mpi")
            .build_depends_on("cmake")),
    ]
}

/// The 32 top-level RADIUSS package names whose concretization the
/// paper's experiments time (paper §6.1.4).
pub const RADIUSS_ROOTS: [&str; 32] = [
    "raja",
    "umpire",
    "chai",
    "care",
    "caliper",
    "conduit",
    "ascent",
    "axom",
    "hypre",
    "mfem",
    "sundials",
    "samrai",
    "xbraid",
    "zfp",
    "scr",
    "flux-core",
    "flux-sched",
    "glvis",
    "visit",
    "hatchet",
    "lvarray",
    "spot",
    "py-shroud",
    "py-maestrowf",
    "lbann",
    "merlin",
    "umap",
    "variorum",
    "metall",
    "gotcha",
    "sina",
    "mgmol",
];

/// Build the full repository: substrate + RADIUSS packages.
pub fn radiuss_repo() -> Repository {
    let mut pkgs = substrate();
    pkgs.extend(radiuss_packages());
    let repo = Repository::from_packages(pkgs).expect("no duplicate packages");
    repo.validate().expect("stack is internally consistent");
    repo
}

#[cfg(test)]
mod tests {
    use super::*;
    use spackle_spec::Sym;

    #[test]
    fn repo_builds_and_validates() {
        let repo = radiuss_repo();
        assert!(repo.len() >= 60, "expected a substantial stack, got {}", repo.len());
    }

    #[test]
    fn all_roots_exist() {
        let repo = radiuss_repo();
        for r in RADIUSS_ROOTS {
            assert!(repo.get(Sym::intern(r)).is_some(), "missing root {r}");
        }
        assert_eq!(RADIUSS_ROOTS.len(), 32);
    }

    #[test]
    fn explain_demo_fixture_is_conditionally_unsat() {
        // The planted conflict must stay dormant by default (so the
        // audit L006 sweep passes) and fire exactly under +newzlib.
        let repo = radiuss_repo();
        let demo = repo.get(Sym::intern("explain-demo")).expect("fixture exists");
        assert_eq!(demo.depends.len(), 2);
        assert!(demo.depends[1].when.to_string().contains("+newzlib"));
    }

    #[test]
    fn mpi_is_virtual_with_two_providers() {
        let repo = radiuss_repo();
        let mpi = Sym::intern("mpi");
        assert!(repo.is_virtual(mpi));
        assert_eq!(repo.providers_of(mpi).len(), 2);
    }

    #[test]
    fn many_roots_are_mpi_dependent() {
        let repo = radiuss_repo();
        let mpi = Sym::intern("mpi");
        let mpi_roots: Vec<&str> = RADIUSS_ROOTS
            .iter()
            .copied()
            .filter(|r| repo.possible_closure(&[Sym::intern(r)]).contains(&mpi))
            .collect();
        assert!(
            mpi_roots.len() >= 12,
            "expected a large MPI-dependent subset, got {mpi_roots:?}"
        );
        // py-shroud is the paper's non-MPI control.
        assert!(!mpi_roots.contains(&"py-shroud"));
    }

    #[test]
    fn visit_is_the_heavyweight() {
        let repo = radiuss_repo();
        let visit = repo.possible_closure(&[Sym::intern("visit")]);
        for r in ["py-shroud", "zfp", "raja"] {
            let other = repo.possible_closure(&[Sym::intern(r)]);
            assert!(visit.len() > other.len(), "visit should outweigh {r}");
        }
    }
}
