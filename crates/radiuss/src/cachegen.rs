//! Buildcache generators (paper §6.1.3): the controlled *local* cache
//! (the RADIUSS stack as concretized, ~200 specs) and the large *public*
//! cache (many thousands of varied configurations).

use crate::stack::RADIUSS_ROOTS;
use crate::synth::{synth_spec, SynthConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spackle_buildcache::{Artifact, BuildCache};
use spackle_core::{Concretizer, ConcretizerConfig};
use spackle_install::InstallLayout;
use spackle_repo::Repository;
use spackle_spec::{parse_spec, ConcreteSpec, Sym};

/// The "build farm" layout cached binaries are built under; installs
/// elsewhere exercise relocation.
pub const FARM_ROOT: &str = "/opt/spackle-farm/store";

/// Synthesize the artifact a build of `spec`'s root would produce under
/// the farm layout: own prefix, sorted link-run dependency prefixes, and
/// name/version-derived symbols.
///
/// MPI implementations export *interface* symbols with type-layout
/// markers modeling §2.1: MPICH-ABI implementations (mpich, mpiabi and
/// its replicas) lay `MPI_Comm` out as a 32-bit integer, Open MPI as a
/// struct pointer — so ABI discovery (`buildcache::suggest_splices`)
/// finds exactly the pairs the mock's `can_splice` declares.
pub fn farm_artifact(spec: &ConcreteSpec) -> Vec<u8> {
    let layout = InstallLayout::new(FARM_ROOT);
    let id = spec.root_id();
    let node = spec.root();
    let own = layout.prefix(spec, id);
    let deps = layout.dep_prefixes(spec, id);
    let name = node.name.as_str();
    // MPI implementations export only the standard interface (their
    // public ABI); other packages export name-mangled symbols of their
    // own.
    let symbols = if name == "mpich" || name.starts_with("mpiabi") {
        let mut s = vec![
            "MPI_Init".to_string(),
            "MPI_Send".to_string(),
            "MPI_Recv".to_string(),
            "MPI_Comm=int32".to_string(),
        ];
        if name.starts_with("mpiabi") {
            s.push("MPIX_Fast_path".to_string()); // MVAPICH-style extension
        }
        s
    } else if name == "openmpi" {
        vec![
            "MPI_Init".to_string(),
            "MPI_Send".to_string(),
            "MPI_Recv".to_string(),
            "MPI_Comm=ptr".to_string(),
        ]
    } else {
        vec![
            format!("_ZN{}{}3apiEv", name.len(), name),
            format!("_ZN{}{}7versionEv_{}", name.len(), name, node.version),
        ]
    };
    Artifact::build(&own, &deps, symbols).to_bytes().to_vec()
}

/// Concretize every RADIUSS root from source (no reuse) and cache the
/// results with artifacts: the paper's *local buildcache* (~200 specs).
/// MPI-dependent roots are cached in both provider configurations
/// (mpich and openmpi), mirroring a CI cache holding multiple stack
/// configurations.
///
/// Concretizations run in parallel (one solver per thread).
pub fn local_cache(repo: &Repository) -> BuildCache {
    let mpi = Sym::intern("mpi");
    let mut goals: Vec<String> = RADIUSS_ROOTS.iter().map(|r| r.to_string()).collect();
    for r in RADIUSS_ROOTS {
        if repo.possible_closure(&[Sym::intern(r)]).contains(&mpi) {
            goals.push(format!("{r} ^openmpi"));
        }
    }
    let goal_refs: Vec<&str> = goals.iter().map(|s| s.as_str()).collect();
    let specs = concretize_roots_parallel(repo, &goal_refs);
    let mut cache = BuildCache::new();
    for spec in &specs {
        cache.add_spec_with(spec, farm_artifact);
    }
    cache
}

/// Concretize the given root names in parallel and return their specs.
pub fn concretize_roots_parallel(repo: &Repository, roots: &[&str]) -> Vec<ConcreteSpec> {
    let nthreads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(roots.len().max(1));
    let mut out: Vec<Option<ConcreteSpec>> = vec![None; roots.len()];
    let chunks: Vec<Vec<usize>> = (0..nthreads)
        .map(|t| (0..roots.len()).filter(|i| i % nthreads == t).collect())
        .collect();
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for chunk in &chunks {
            handles.push(s.spawn(move |_| {
                let mut results = Vec::new();
                for &i in chunk {
                    let c = Concretizer::new(repo)
                        .with_config(ConcretizerConfig::splice_spack_disabled());
                    let spec = parse_spec(roots[i]).expect("root names are valid specs");
                    let sol = c
                        .concretize(&spec)
                        .unwrap_or_else(|e| panic!("concretizing {}: {e}", roots[i]));
                    results.push((i, sol.specs.into_iter().next().expect("one root")));
                }
                results
            }));
        }
        for h in handles {
            for (i, spec) in h.join().expect("worker thread") {
                out[i] = Some(spec);
            }
        }
    })
    .expect("crossbeam scope");
    out.into_iter().map(|o| o.expect("all roots resolved")).collect()
}

/// Generate the *public buildcache*: `n_dags` synthesized configurations
/// of RADIUSS roots (and their sub-DAGs, each a reusable entry). The
/// resulting entry count is typically several times `n_dags`. Generation
/// parallelizes across threads; `seed` makes it reproducible.
pub fn public_cache(repo: &Repository, n_dags: usize, seed: u64) -> BuildCache {
    let nthreads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(n_dags.max(1));
    let per = n_dags.div_ceil(nthreads);
    let specs: Vec<ConcreteSpec> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..nthreads {
            handles.push(s.spawn(move |_| {
                let cfg = SynthConfig::default();
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64));
                let mut specs = Vec::new();
                let count = per.min(n_dags.saturating_sub(t * per));
                for _ in 0..count {
                    let root = RADIUSS_ROOTS[rng.gen_range(0..RADIUSS_ROOTS.len())];
                    if let Some(spec) = synth_spec(repo, Sym::intern(root), &cfg, &mut rng) {
                        specs.push(spec);
                    }
                }
                specs
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread"))
            .collect()
    })
    .expect("crossbeam scope");

    let mut cache = BuildCache::new();
    for spec in &specs {
        // Index-only entries: the public-cache experiments measure the
        // concretizer, not the installer, and empty artifacts keep the
        // cache cheap to build at bench setup.
        cache.add_spec(spec);
    }
    cache
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::radiuss_repo;

    #[test]
    fn public_cache_scales_and_is_reproducible() {
        let repo = radiuss_repo();
        let small = public_cache(&repo, 20, 1);
        assert!(small.len() >= 20, "cache should contain sub-DAG entries");
        let again = public_cache(&repo, 20, 1);
        assert_eq!(small.len(), again.len());
        let bigger = public_cache(&repo, 60, 1);
        assert!(bigger.len() > small.len());
    }

    #[test]
    fn farm_artifacts_parse() {
        let repo = radiuss_repo();
        let mut rng = StdRng::seed_from_u64(3);
        let spec = synth_spec(
            &repo,
            Sym::intern("hypre"),
            &SynthConfig::default(),
            &mut rng,
        )
        .unwrap();
        let bytes = farm_artifact(&spec);
        let art = Artifact::from_bytes(&bytes).unwrap();
        assert!(art.own_prefix().starts_with(FARM_ROOT));
        assert!(!art.dep_prefixes().is_empty());
    }
}

#[cfg(test)]
mod abi_discovery_tests {
    use super::*;
    use crate::mpi::with_mpiabi;
    use crate::stack::radiuss_repo;
    use spackle_buildcache::suggest_splices;
    use spackle_core::Concretizer;
    use spackle_spec::parse_spec;

    #[test]
    fn discovery_recovers_the_declared_splice() {
        // Build hypre^mpich and mpiabi, then let ABI discovery find the
        // compatibility the mock declares via can_splice — the paper's
        // future-work loop, closed.
        let repo = with_mpiabi(&radiuss_repo());
        let mut cache = BuildCache::new();
        for goal in ["hypre ^mpich", "mpiabi"] {
            let sol = Concretizer::new(&repo)
                .concretize(&parse_spec(goal).unwrap())
                .unwrap();
            cache.add_spec_with(sol.spec(), farm_artifact);
        }
        let suggestions = suggest_splices(&cache).unwrap();
        assert!(
            suggestions.iter().any(|s| {
                s.replacement.as_str() == "mpiabi" && s.target.as_str() == "mpich"
            }),
            "expected mpiabi->mpich, got {suggestions:?}"
        );
        // The reverse direction must NOT be suggested (mpich lacks the
        // MPIX extension mpiabi exports).
        assert!(!suggestions
            .iter()
            .any(|s| s.replacement.as_str() == "mpich" && s.target.as_str() == "mpiabi"));
    }
}
