//! Generative concretization: fast synthesis of *valid* concrete specs
//! without running the solver. Used to populate the large "public"
//! buildcache (paper §6.1.3: ~20k specs of varied configurations) in
//! seconds rather than hours.
//!
//! The generator resolves a package greedily: pick a version (biased to
//! newest), variant values (biased to defaults), then recursively
//! resolve the dependencies whose `when` conditions hold, honoring the
//! dependency specs' version/variant constraints. Virtual dependencies
//! resolve to a per-DAG provider choice. The result respects every
//! directive of the repository, so the solver can reuse it without
//! contradiction.

use rand::Rng;
use spackle_repo::{package::when_matches, Repository};
use spackle_spec::spec::ConcreteSpecBuilder;
use spackle_spec::{
    ConcreteSpec, Os, Sym, Target, VariantValue, Version, VersionReq,
};
use std::collections::BTreeMap;

/// Tuning knobs for spec synthesis.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// OS for all nodes.
    pub os: Os,
    /// Targets to draw from (e.g. the requested target and its
    /// ancestors); the first is the most likely.
    pub targets: Vec<Target>,
    /// Probability of picking the newest satisfying version.
    pub p_newest: f64,
    /// Probability of keeping a variant's default value.
    pub p_default: f64,
    /// Probability the first-declared provider serves a virtual.
    pub p_first_provider: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            os: Os::new("linux"),
            targets: vec![Target::new("x86_64")],
            p_newest: 0.7,
            p_default: 0.75,
            p_first_provider: 0.8,
        }
    }
}

struct Chosen {
    version: Version,
    variants: BTreeMap<Sym, VariantValue>,
}

/// Synthesize one concrete spec rooted at `root`.
///
/// Returns `None` if constraint resolution hits a dead end (conflicting
/// version requirements from two dependents) — rare with this stack and
/// simply skipped by callers.
pub fn synth_spec(
    repo: &Repository,
    root: Sym,
    cfg: &SynthConfig,
    rng: &mut impl Rng,
) -> Option<ConcreteSpec> {
    // Per-DAG choices.
    let target = if cfg.targets.len() > 1 && rng.gen_bool(0.3) {
        cfg.targets[rng.gen_range(1..cfg.targets.len())]
    } else {
        cfg.targets[0]
    };
    let mut providers: BTreeMap<Sym, Sym> = BTreeMap::new();
    let mut chosen: BTreeMap<Sym, Chosen> = BTreeMap::new();

    // Pass 1: resolve configurations, worklist with constraints.
    let mut work: Vec<(Sym, VersionReq, BTreeMap<Sym, VariantValue>)> =
        vec![(root, VersionReq::Any, BTreeMap::new())];
    while let Some((name, req, want_variants)) = work.pop() {
        let name = if repo.is_virtual(name) {
            *providers.entry(name).or_insert_with(|| {
                let provs = repo.providers_of(name);
                if provs.len() > 1 && !rng.gen_bool(cfg.p_first_provider) {
                    provs[rng.gen_range(1..provs.len())]
                } else {
                    provs[0]
                }
            })
        } else {
            name
        };
        let pkg = repo.get(name)?;
        let entry = chosen.entry(name);
        use std::collections::btree_map::Entry;
        let c = match entry {
            Entry::Occupied(o) => {
                let c = o.into_mut();
                // Verify new constraints against the existing choice.
                if !req.satisfies(&c.version) {
                    return None; // conflicting dependents
                }
                for (vn, vv) in &want_variants {
                    match c.variants.get(vn) {
                        Some(have) if have.satisfies(vv) => {}
                        _ => return None,
                    }
                }
                continue; // deps already enqueued on first resolution
            }
            Entry::Vacant(vac) => {
                // Version: newest satisfying, or a random satisfying one.
                let satisfying: Vec<&Version> = pkg
                    .versions
                    .iter()
                    .filter(|v| req.satisfies(v))
                    .collect();
                if satisfying.is_empty() {
                    return None;
                }
                let version = if satisfying.len() == 1 || rng.gen_bool(cfg.p_newest) {
                    satisfying[0].clone()
                } else {
                    satisfying[rng.gen_range(0..satisfying.len())].clone()
                };
                // Variants: constrained values win; otherwise default or
                // random candidate.
                let mut variants = BTreeMap::new();
                for (vn, kind) in &pkg.variants {
                    if let Some(v) = want_variants.get(vn) {
                        variants.insert(*vn, v.clone());
                        continue;
                    }
                    let value = if rng.gen_bool(cfg.p_default) {
                        kind.default_value()
                    } else {
                        let cands = kind.candidate_values();
                        cands[rng.gen_range(0..cands.len())].clone()
                    };
                    variants.insert(*vn, value);
                }
                vac.insert(Chosen { version, variants })
            }
        };
        // Enqueue dependencies whose conditions hold.
        let version = c.version.clone();
        let variants = c.variants.clone();
        for dep in &pkg.depends {
            if !when_matches(&dep.when, &version, &variants) {
                continue;
            }
            let dname = dep.spec.name.expect("validated");
            work.push((dname, dep.spec.version.clone(), dep.spec.variants.clone()));
        }
    }

    // Pass 2: build the DAG from the final configurations.
    let mut b = ConcreteSpecBuilder::new();
    let mut ids: BTreeMap<Sym, usize> = BTreeMap::new();
    for (name, c) in &chosen {
        let id = b.node_full(
            name.as_str(),
            c.version.clone(),
            c.variants.clone(),
            cfg.os,
            target,
        );
        ids.insert(*name, id);
    }
    for (name, c) in &chosen {
        let pkg = repo.get(*name).expect("resolved above");
        for dep in &pkg.depends {
            if !when_matches(&dep.when, &c.version, &c.variants) {
                continue;
            }
            let mut dname = dep.spec.name.expect("validated");
            if repo.is_virtual(dname) {
                dname = *providers.get(&dname)?;
            }
            let did = *ids.get(&dname)?;
            b.edge(ids[name], did, dep.types);
        }
    }
    b.build(ids[&root]).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{radiuss_repo, RADIUSS_ROOTS};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spackle_repo::package::when_matches as wm;

    #[test]
    fn synthesizes_all_roots() {
        let repo = radiuss_repo();
        let cfg = SynthConfig::default();
        let mut rng = StdRng::seed_from_u64(42);
        for root in RADIUSS_ROOTS {
            let spec = synth_spec(&repo, Sym::intern(root), &cfg, &mut rng)
                .unwrap_or_else(|| panic!("failed to synthesize {root}"));
            assert_eq!(spec.root().name.as_str(), root);
        }
    }

    #[test]
    fn synthesized_specs_respect_directives() {
        let repo = radiuss_repo();
        let cfg = SynthConfig::default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let root = RADIUSS_ROOTS[rng.gen_range(0..RADIUSS_ROOTS.len())];
            let Some(spec) = synth_spec(&repo, Sym::intern(root), &cfg, &mut rng) else {
                continue;
            };
            for node in spec.nodes() {
                let pkg = repo.get(node.name).expect("known package");
                // Version is declared.
                assert!(pkg.versions.contains(&node.version), "{}", node.name);
                // Every active conditional dep is present (as some node).
                for dep in &pkg.depends {
                    if wm(&dep.when, &node.version, &node.variants) {
                        let dn = dep.spec.name.unwrap();
                        if repo.is_virtual(dn) {
                            // Provider present instead.
                            assert!(
                                repo.providers_of(dn)
                                    .iter()
                                    .any(|p| spec.find(*p).is_some()),
                                "virtual {dn} unresolved in {}",
                                node.name
                            );
                        } else {
                            assert!(
                                spec.find(dn).is_some(),
                                "dep {dn} of {} missing",
                                node.name
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn variety_across_seeds() {
        let repo = radiuss_repo();
        let cfg = SynthConfig::default();
        let mut hashes = std::collections::BTreeSet::new();
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            if let Some(s) = synth_spec(&repo, Sym::intern("hypre"), &cfg, &mut rng) {
                hashes.insert(s.dag_hash());
            }
        }
        assert!(hashes.len() > 5, "expected variety, got {}", hashes.len());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let repo = radiuss_repo();
        let cfg = SynthConfig::default();
        let a = synth_spec(
            &repo,
            Sym::intern("mfem"),
            &cfg,
            &mut StdRng::seed_from_u64(123),
        )
        .unwrap();
        let b = synth_spec(
            &repo,
            Sym::intern("mfem"),
            &cfg,
            &mut StdRng::seed_from_u64(123),
        )
        .unwrap();
        assert_eq!(a.dag_hash(), b.dag_hash());
    }
}
