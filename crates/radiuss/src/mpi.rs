//! The `mpiabi` mock package and its replicas (paper §6.1.2, §6.4).
//!
//! `mpiabi` is modeled on MVAPICH: a single-version MPI implementation
//! that declares itself ABI-compatible with `mpich@3.4.3` via
//! `can_splice`. The replica generator produces N copies differing only
//! in name, used to scale the number of splice candidates (RQ4).

use spackle_repo::{PackageBuilder, PackageDef, Repository};

/// The version of mpich that mpiabi declares ABI compatibility with.
pub const SPLICE_TARGET: &str = "mpich@3.4.3";

/// Build the `mpiabi` mock package.
pub fn mpiabi() -> PackageDef {
    named_mpiabi("mpiabi")
}

/// An mpiabi clone with a custom name (for replicas).
pub fn named_mpiabi(name: &str) -> PackageDef {
    PackageBuilder::new(name)
        .version("1.0")
        .provides("mpi")
        .depends_on("hwloc")
        .can_splice(SPLICE_TARGET, "")
        .build()
        .expect("static package definition")
}

/// `n` replicas named `mpiabi0 .. mpiabi{n-1}`, each able to splice into
/// `mpich@3.4.3` (paper §6.4's 100 copies "differing only in name").
pub fn mpiabi_replicas(n: usize) -> Vec<PackageDef> {
    (0..n).map(|i| named_mpiabi(&format!("mpiabi{i}"))).collect()
}

/// Clone `repo` and add the single `mpiabi` mock.
pub fn with_mpiabi(repo: &Repository) -> Repository {
    let mut r = repo.clone();
    r.add(mpiabi()).expect("mpiabi not already present");
    r.validate().expect("still consistent");
    r
}

/// Clone `repo` and add `n` mpiabi replicas.
pub fn with_replicas(repo: &Repository, n: usize) -> Repository {
    let mut r = repo.clone();
    for p in mpiabi_replicas(n) {
        r.add(p).expect("replica names unique");
    }
    r.validate().expect("still consistent");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::radiuss_repo;
    use spackle_spec::Sym;

    #[test]
    fn mpiabi_declares_splice() {
        let p = mpiabi();
        assert_eq!(p.can_splice.len(), 1);
        assert_eq!(
            p.can_splice[0].target.name.unwrap().as_str(),
            "mpich"
        );
        assert!(p.provides_virtual(Sym::intern("mpi")));
    }

    #[test]
    fn replicas_differ_only_in_name() {
        let reps = mpiabi_replicas(5);
        assert_eq!(reps.len(), 5);
        let names: Vec<&str> = reps.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["mpiabi0", "mpiabi1", "mpiabi2", "mpiabi3", "mpiabi4"]);
        for r in &reps {
            assert_eq!(r.versions, reps[0].versions);
            assert_eq!(r.can_splice.len(), 1);
        }
    }

    #[test]
    fn repo_extension() {
        let repo = radiuss_repo();
        let with = with_mpiabi(&repo);
        assert_eq!(with.len(), repo.len() + 1);
        assert_eq!(with.providers_of(Sym::intern("mpi")).len(), 3);

        let with100 = with_replicas(&repo, 100);
        assert_eq!(with100.len(), repo.len() + 100);
        assert_eq!(with100.providers_of(Sym::intern("mpi")).len(), 102);
    }
}
