#![warn(missing_docs)]

//! # spackle-radiuss
//!
//! The paper's experimental substrate (§6.1): a synthetic RADIUSS
//! software stack with 32 top-level packages over a common HPC
//! substrate, MPI as a virtual dependency with `mpich`/`openmpi`
//! providers, the `mpiabi` mock (modeled on MVAPICH, ABI-compatible with
//! `mpich@3.4.3`) and its replicas, and generators for the local
//! (~200-spec) and public (many-thousand-spec) buildcaches.

pub mod cachegen;
pub mod mpi;
pub mod stack;
pub mod synth;
pub mod workload;

pub use cachegen::{farm_artifact, local_cache, public_cache};
pub use mpi::{mpiabi, mpiabi_replicas, with_mpiabi, with_replicas};
pub use stack::{radiuss_repo, RADIUSS_ROOTS};
pub use synth::{synth_spec, SynthConfig};
pub use workload::ExperimentEnv;
