//! Diagnostic: per-phase timing and solver stats per encoding.
fn main() {
    use spackle_core::{Concretizer, ConcretizerConfig};
    let env = spackle_radiuss::ExperimentEnv::setup(0, 42);
    for root in ["ascent", "conduit", "caliper", "variorum", "sundials", "spot"] {
        let spec = spackle_spec::parse_spec(root).unwrap();
        for (label, cfg) in [
            ("old", ConcretizerConfig::old_spack()),
            ("new", ConcretizerConfig::splice_spack_disabled()),
        ] {
            let sol = Concretizer::new(&env.repo_plain)
                .with_config(cfg)
                .with_reusable(env.local.clone())
                .concretize(&spec)
                .unwrap();
            let s = &sol.stats;
            println!(
                "{root:8} {label}: total={:>8.2?} ground={:>8.2?} solve={:>8.2?} parse={:>7.2?} \
                 atoms={} rules={} vars={} conflicts={} probes={} cegar={}",
                s.total_time, s.solver.ground_time, s.solver.solve_time, s.parse_time,
                s.solver.ground_atoms, s.solver.ground_rules, s.solver.sat_vars,
                s.solver.conflicts, s.solver.optimize_probes, s.solver.stability_restarts
            );
        }
    }
}
