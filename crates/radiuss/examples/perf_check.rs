//! Performance smoke: times representative concretizations in each
//! paper configuration against local and public caches.
fn main() {
    use std::time::Instant;
    use spackle_core::{Concretizer, ConcretizerConfig};
    use spackle_buildcache::CacheSource;
    use std::sync::Arc;
    let t0 = Instant::now();
    let env = spackle_radiuss::ExperimentEnv::setup(500, 42);
    let local: Arc<dyn CacheSource> = Arc::new(env.local.clone());
    let public: Arc<dyn CacheSource> = Arc::new(env.public.clone());
    println!(
        "setup: {:?} local={} public={}",
        t0.elapsed(),
        env.local.len(),
        env.public.len()
    );
    // Encoding-only configs (fig 5 shape).
    for root in ["hypre", "visit", "py-shroud"] {
        let spec = spackle_spec::parse_spec(root).unwrap();
        for (label, cache) in [("local", &local), ("public", &public)] {
            for (cfgname, cfg) in [
                ("old", ConcretizerConfig::old_spack()),
                ("new", ConcretizerConfig::splice_spack_disabled()),
            ] {
                let t = Instant::now();
                let sol = Concretizer::new(&env.repo_plain)
                    .with_config(cfg)
                    .with_reusable(cache)
                    .concretize(&spec)
                    .unwrap();
                println!(
                    "{root:10} {label:6} {cfgname}: {:>10.3?} reused={} built={} reusable={}",
                    t.elapsed(),
                    sol.reused.len(),
                    sol.built.len(),
                    sol.stats.reusable_specs
                );
            }
        }
    }
    // Splice config (fig 6 shape): root ^mpiabi.
    for root in ["hypre", "mfem"] {
        let spec = spackle_spec::parse_spec(&format!("{root} ^mpiabi")).unwrap();
        for (label, cache) in [("local", &local), ("public", &public)] {
            let t = Instant::now();
            let sol = Concretizer::new(&env.repo_mpiabi)
                .with_config(ConcretizerConfig::splice_spack())
                .with_reusable(cache)
                .concretize(&spec)
                .unwrap();
            println!(
                "{root:10} {label:6} splice: {:>10.3?} reused={} built={} spliced={}",
                t.elapsed(),
                sol.reused.len(),
                sol.built.len(),
                sol.spliced.len()
            );
        }
    }
}
