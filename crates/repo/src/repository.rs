//! The package repository: the universe of packages the concretizer
//! reasons over, with a virtual-provider index.

use crate::package::PackageDef;
use spackle_spec::Sym;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors raised by repository construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepoError {
    /// A second package with the same name was added.
    Duplicate(String),
    /// A directive references a package that is neither defined nor
    /// provided as a virtual.
    UnknownPackage {
        /// The package whose directive is at fault.
        package: String,
        /// The missing referent.
        referenced: String,
    },
    /// A package name collides with a virtual name.
    VirtualCollision(String),
    /// A lookup named a virtual provided by several packages, with no way
    /// to pick one. Lists *every* matching provider so callers (the
    /// concretizer's goal resolution and `spackle audit`) can report the
    /// full candidate set.
    AmbiguousVirtual {
        /// The virtual name looked up.
        virtual_name: String,
        /// Every package providing it, in declaration order.
        providers: Vec<String>,
    },
    /// A lookup named something that is neither a package nor a virtual.
    NoSuchPackage(String),
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::Duplicate(n) => write!(f, "duplicate package: {n}"),
            RepoError::UnknownPackage {
                package,
                referenced,
            } => write!(f, "package {package} references unknown package {referenced}"),
            RepoError::VirtualCollision(n) => {
                write!(f, "{n} is both a concrete package and a virtual")
            }
            RepoError::AmbiguousVirtual {
                virtual_name,
                providers,
            } => write!(
                f,
                "virtual {virtual_name} is ambiguous: provided by {}",
                providers.join(", ")
            ),
            RepoError::NoSuchPackage(n) => write!(f, "no such package: {n}"),
        }
    }
}

impl std::error::Error for RepoError {}

/// An immutable collection of package definitions plus derived indexes.
#[derive(Clone, Debug, Default)]
pub struct Repository {
    packages: BTreeMap<Sym, PackageDef>,
    providers: BTreeMap<Sym, Vec<Sym>>, // virtual -> providers
    /// Process-unique revision stamp; see [`Repository::revision`].
    revision: u64,
}

/// Process-global revision counter backing [`Repository::revision`].
/// Starts at 1 so the default (empty) repository keeps revision 0.
static NEXT_REVISION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl Repository {
    /// Empty repository.
    pub fn new() -> Repository {
        Repository::default()
    }

    /// Build from a list of package definitions.
    pub fn from_packages(pkgs: impl IntoIterator<Item = PackageDef>) -> Result<Repository, RepoError> {
        let mut repo = Repository::new();
        for p in pkgs {
            repo.add(p)?;
        }
        Ok(repo)
    }

    /// Add one package.
    pub fn add(&mut self, pkg: PackageDef) -> Result<(), RepoError> {
        if self.packages.contains_key(&pkg.name) {
            return Err(RepoError::Duplicate(pkg.name.as_str().to_string()));
        }
        for p in &pkg.provides {
            self.providers
                .entry(p.virtual_name)
                .or_default()
                .push(pkg.name);
        }
        self.packages.insert(pkg.name, pkg);
        self.revision = NEXT_REVISION.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// Insert `pkg`, replacing any existing definition with the same
    /// name. This is the *delta* primitive for long-lived services: a
    /// new version of one package lands and the resident repository is
    /// cloned, upserted, and republished while content-fingerprinted
    /// caches retain every entry whose segments did not change.
    ///
    /// When the replaced definition's `provides` set is unchanged the
    /// provider index — whose per-virtual ordering is declaration order
    /// and feeds `provider_weight` facts — is left untouched. Otherwise
    /// the package is removed from every provider list and re-appended
    /// for its new virtuals (new provides rank last).
    pub fn upsert(&mut self, pkg: PackageDef) {
        let same_provides = self
            .packages
            .get(&pkg.name)
            .is_some_and(|old| old.provides == pkg.provides);
        if !same_provides {
            for provs in self.providers.values_mut() {
                provs.retain(|p| *p != pkg.name);
            }
            self.providers.retain(|_, provs| !provs.is_empty());
            for p in &pkg.provides {
                self.providers
                    .entry(p.virtual_name)
                    .or_default()
                    .push(pkg.name);
            }
        }
        self.packages.insert(pkg.name, pkg);
        self.revision = NEXT_REVISION.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Content fingerprint of one package's *segment*: the definition
    /// itself plus its rank in every provider list it appears in (the
    /// rank feeds `provider_weight` facts, so a reordering must change
    /// the fingerprint even when the definition does not). `None` when
    /// the package is not defined. Deterministic within a process build:
    /// hashes the `Debug` rendering of the definition, which spells out
    /// versions, variants, and directives in declaration order.
    pub fn package_fingerprint(&self, name: Sym) -> Option<u64> {
        use std::hash::{Hash, Hasher};
        let pkg = self.packages.get(&name)?;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{pkg:?}").hash(&mut h);
        for p in &pkg.provides {
            let rank = self
                .providers_of(p.virtual_name)
                .iter()
                .position(|x| *x == name);
            (p.virtual_name.as_str(), rank).hash(&mut h);
        }
        Some(h.finish())
    }

    /// A process-unique revision stamp for this repository's contents:
    /// bumped on every successful [`Repository::add`], shared by clones
    /// until one of them is mutated. Equal revisions imply identical
    /// package sets (the converse does not hold — two independently
    /// built repositories always differ), which is exactly the
    /// conservative guarantee ground-program memoization needs.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Force a fresh revision stamp without changing contents.
    ///
    /// This is the *reload* primitive for long-lived services: swapping
    /// in a re-read (possibly byte-identical) repository must move every
    /// downstream revision-keyed cache — ground-program memoization in
    /// particular — onto a new key space, so `spackled`'s `invalidate`
    /// request clones the resident repository, bumps the clone, and
    /// publishes it while in-flight solves finish on the old snapshot.
    pub fn bump_revision(&mut self) {
        self.revision = NEXT_REVISION.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Look up a package definition.
    pub fn get(&self, name: Sym) -> Option<&PackageDef> {
        self.packages.get(&name)
    }

    /// Resolve `name` to a concrete package definition: a package by that
    /// name, or — when `name` is a virtual — its sole provider. A virtual
    /// with several providers is ambiguous; the error carries the full
    /// provider list so callers report every candidate, not just the
    /// first.
    pub fn lookup(&self, name: Sym) -> Result<&PackageDef, RepoError> {
        if let Some(pkg) = self.packages.get(&name) {
            return Ok(pkg);
        }
        match self.providers.get(&name).map(Vec::as_slice) {
            Some([sole]) => Ok(self
                .packages
                .get(sole)
                .expect("provider index refers to an added package")),
            Some(provs) => Err(RepoError::AmbiguousVirtual {
                virtual_name: name.as_str().to_string(),
                providers: provs.iter().map(|p| p.as_str().to_string()).collect(),
            }),
            None => Err(RepoError::NoSuchPackage(name.as_str().to_string())),
        }
    }

    /// All package definitions, in name order.
    pub fn packages(&self) -> impl Iterator<Item = &PackageDef> {
        self.packages.values()
    }

    /// Number of packages.
    pub fn len(&self) -> usize {
        self.packages.len()
    }

    /// True when the repository holds no packages.
    pub fn is_empty(&self) -> bool {
        self.packages.is_empty()
    }

    /// Is `name` a virtual (provided by someone, not itself a package)?
    pub fn is_virtual(&self, name: Sym) -> bool {
        self.providers.contains_key(&name) && !self.packages.contains_key(&name)
    }

    /// Packages providing virtual `name` (empty if none), in declaration
    /// order.
    pub fn providers_of(&self, name: Sym) -> &[Sym] {
        self.providers.get(&name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Validate cross-package references: every `depends_on` target must
    /// be a defined package or a virtual with at least one provider, and
    /// no name may be both concrete and virtual.
    pub fn validate(&self) -> Result<(), RepoError> {
        for v in self.providers.keys() {
            if self.packages.contains_key(v) {
                return Err(RepoError::VirtualCollision(v.as_str().to_string()));
            }
        }
        for pkg in self.packages.values() {
            for dep in &pkg.depends {
                let name = dep.spec.name.expect("validated at build");
                if !self.packages.contains_key(&name) && !self.providers.contains_key(&name) {
                    return Err(RepoError::UnknownPackage {
                        package: pkg.name.as_str().to_string(),
                        referenced: name.as_str().to_string(),
                    });
                }
            }
            for cs in &pkg.can_splice {
                let name = cs.target.name.expect("validated at build");
                if !self.packages.contains_key(&name) {
                    return Err(RepoError::UnknownPackage {
                        package: pkg.name.as_str().to_string(),
                        referenced: name.as_str().to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// The set of packages possibly needed to concretize `roots`:
    /// transitive closure over `depends_on` targets, expanding virtuals
    /// to all of their providers. Used to filter reusable-spec facts so
    /// the solver only sees relevant cache entries.
    pub fn possible_closure(&self, roots: &[Sym]) -> BTreeSet<Sym> {
        let mut seen: BTreeSet<Sym> = BTreeSet::new();
        let mut stack: Vec<Sym> = roots.to_vec();
        while let Some(name) = stack.pop() {
            if !seen.insert(name) {
                continue;
            }
            if let Some(pkg) = self.packages.get(&name) {
                for dep in &pkg.depends {
                    let dname = dep.spec.name.expect("validated");
                    if let Some(provs) = self.providers.get(&dname) {
                        seen.insert(dname);
                        stack.extend(provs.iter().copied());
                    } else {
                        stack.push(dname);
                    }
                }
            }
        }
        seen
    }

    /// All `can_splice` directives in the repository, as
    /// `(replacing package, directive index)` pairs.
    pub fn all_splice_directives(&self) -> Vec<(Sym, usize)> {
        let mut out = Vec::new();
        for pkg in self.packages.values() {
            for i in 0..pkg.can_splice.len() {
                out.push((pkg.name, i));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::PackageBuilder;

    fn mini_repo() -> Repository {
        let zlib = PackageBuilder::new("zlib")
            .version("1.3")
            .version("1.2.11")
            .build()
            .unwrap();
        let mpich = PackageBuilder::new("mpich")
            .version("3.4.3")
            .provides("mpi")
            .build()
            .unwrap();
        let openmpi = PackageBuilder::new("openmpi")
            .version("4.1.5")
            .provides("mpi")
            .build()
            .unwrap();
        let hdf5 = PackageBuilder::new("hdf5")
            .version("1.14.5")
            .variant_bool("mpi", true)
            .depends_on("zlib")
            .depends_on_when("mpi", "+mpi")
            .build()
            .unwrap();
        Repository::from_packages([zlib, mpich, openmpi, hdf5]).unwrap()
    }

    #[test]
    fn lookup_and_len() {
        let r = mini_repo();
        assert_eq!(r.len(), 4);
        assert!(r.get(Sym::intern("hdf5")).is_some());
        assert!(r.get(Sym::intern("nonexistent")).is_none());
    }

    #[test]
    fn virtual_index() {
        let r = mini_repo();
        let mpi = Sym::intern("mpi");
        assert!(r.is_virtual(mpi));
        assert!(!r.is_virtual(Sym::intern("zlib")));
        let provs: Vec<&str> = r.providers_of(mpi).iter().map(|s| s.as_str()).collect();
        assert_eq!(provs, vec!["mpich", "openmpi"]);
    }

    #[test]
    fn lookup_resolves_sole_provider_and_reports_all_ambiguous() {
        let r = mini_repo();
        // Concrete package resolves to itself.
        assert_eq!(
            r.lookup(Sym::intern("zlib")).unwrap().name.as_str(),
            "zlib"
        );
        // An ambiguous virtual reports every provider, in order.
        match r.lookup(Sym::intern("mpi")) {
            Err(RepoError::AmbiguousVirtual {
                virtual_name,
                providers,
            }) => {
                assert_eq!(virtual_name, "mpi");
                assert_eq!(providers, vec!["mpich", "openmpi"]);
            }
            other => panic!("expected AmbiguousVirtual, got {other:?}"),
        }
        // Unknown names are distinct from ambiguity.
        assert!(matches!(
            r.lookup(Sym::intern("ghost")),
            Err(RepoError::NoSuchPackage(_))
        ));
        // A single-provider virtual resolves to that provider.
        let blas = PackageBuilder::new("openblas")
            .version("0.3")
            .provides("blas")
            .build()
            .unwrap();
        let solo = Repository::from_packages([blas]).unwrap();
        assert_eq!(
            solo.lookup(Sym::intern("blas")).unwrap().name.as_str(),
            "openblas"
        );
    }

    #[test]
    fn duplicates_rejected() {
        let mut r = mini_repo();
        let dup = PackageBuilder::new("zlib").version("9.9").build().unwrap();
        assert!(matches!(r.add(dup), Err(RepoError::Duplicate(_))));
    }

    #[test]
    fn validate_catches_unknown_deps() {
        let lonely = PackageBuilder::new("lonely")
            .version("1.0")
            .depends_on("ghost")
            .build()
            .unwrap();
        let r = Repository::from_packages([lonely]).unwrap();
        assert!(matches!(
            r.validate(),
            Err(RepoError::UnknownPackage { .. })
        ));
    }

    #[test]
    fn validate_ok_for_mini_repo() {
        assert!(mini_repo().validate().is_ok());
    }

    #[test]
    fn closure_expands_virtuals() {
        let r = mini_repo();
        let closure = r.possible_closure(&[Sym::intern("hdf5")]);
        let names: Vec<&str> = closure.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["hdf5", "mpi", "mpich", "openmpi", "zlib"]);
    }

    #[test]
    fn closure_is_minimal_for_leaf() {
        let r = mini_repo();
        let closure = r.possible_closure(&[Sym::intern("zlib")]);
        assert_eq!(closure.len(), 1);
    }

    #[test]
    fn virtual_collision_detected() {
        let mpi_pkg = PackageBuilder::new("mpi").version("1.0").build().unwrap();
        let mpich = PackageBuilder::new("mpich")
            .version("3.4.3")
            .provides("mpi")
            .build()
            .unwrap();
        let r = Repository::from_packages([mpi_pkg, mpich]).unwrap();
        assert!(matches!(r.validate(), Err(RepoError::VirtualCollision(_))));
    }

    #[test]
    fn upsert_replaces_and_fingerprints_track_content() {
        let mut r = mini_repo();
        let zlib = Sym::intern("zlib");
        let hdf5 = Sym::intern("hdf5");
        let fp_zlib = r.package_fingerprint(zlib).unwrap();
        let fp_hdf5 = r.package_fingerprint(hdf5).unwrap();
        let rev = r.revision();

        // Upserting a changed definition replaces it, bumps the
        // revision, and moves only that package's fingerprint.
        let newer = PackageBuilder::new("zlib")
            .version("1.3")
            .version("1.2.11")
            .version("1.1.0")
            .build()
            .unwrap();
        r.upsert(newer);
        assert_eq!(r.len(), 4);
        assert!(r.revision() > rev);
        assert_ne!(r.package_fingerprint(zlib).unwrap(), fp_zlib);
        assert_eq!(r.package_fingerprint(hdf5).unwrap(), fp_hdf5);
        assert_eq!(r.get(zlib).unwrap().versions.len(), 3);

        // Provider order is preserved when provides are unchanged.
        let provs: Vec<&str> = r
            .providers_of(Sym::intern("mpi"))
            .iter()
            .map(|s| s.as_str())
            .collect();
        assert_eq!(provs, vec!["mpich", "openmpi"]);

        // Re-upserting an identical definition restores the fingerprint.
        let same = PackageBuilder::new("zlib")
            .version("1.3")
            .version("1.2.11")
            .build()
            .unwrap();
        r.upsert(same);
        assert_eq!(r.package_fingerprint(zlib).unwrap(), fp_zlib);
        assert!(r.package_fingerprint(Sym::intern("ghost")).is_none());
    }

    #[test]
    fn upsert_reindexes_providers_when_provides_change() {
        let mut r = mini_repo();
        // mpich stops providing mpi; openmpi becomes the sole provider.
        let mpich = PackageBuilder::new("mpich").version("3.4.3").build().unwrap();
        let fp_openmpi = r.package_fingerprint(Sym::intern("openmpi")).unwrap();
        r.upsert(mpich);
        let provs: Vec<&str> = r
            .providers_of(Sym::intern("mpi"))
            .iter()
            .map(|s| s.as_str())
            .collect();
        assert_eq!(provs, vec!["openmpi"]);
        // openmpi's provider rank changed, so its segment fingerprint
        // must move even though its definition did not.
        assert_ne!(
            r.package_fingerprint(Sym::intern("openmpi")).unwrap(),
            fp_openmpi
        );
    }

    #[test]
    fn splice_directive_enumeration() {
        let mpiabi = PackageBuilder::new("mpiabi")
            .version("1.0")
            .provides("mpi")
            .can_splice("mpich@3.4.3", "")
            .build()
            .unwrap();
        let mpich = PackageBuilder::new("mpich")
            .version("3.4.3")
            .provides("mpi")
            .build()
            .unwrap();
        let r = Repository::from_packages([mpiabi, mpich]).unwrap();
        r.validate().unwrap();
        assert_eq!(r.all_splice_directives().len(), 1);
    }
}
