//! Package definitions and the builder DSL mirroring Spack's `package.py`
//! directives (paper §3.2, Fig 1).

use crate::directive::{CanSplice, Conflict, DependsOn, Provides};
use spackle_spec::{
    parse_spec, AbstractSpec, DepTypes, SpecError, Sym, VariantKind, VariantValue, Version,
};
use std::collections::{BTreeMap, BTreeSet};

/// A fully declared package: the configuration space the concretizer
/// explores.
#[derive(Clone, Debug)]
pub struct PackageDef {
    /// Package name.
    pub name: Sym,
    /// Declared versions, sorted newest-first. The index doubles as the
    /// concretizer's version-preference penalty (0 = most preferred).
    pub versions: Vec<Version>,
    /// Declared variants with their kinds and defaults.
    pub variants: BTreeMap<Sym, VariantKind>,
    /// Conditional dependencies.
    pub depends: Vec<DependsOn>,
    /// Conditional conflicts.
    pub conflicts: Vec<Conflict>,
    /// Virtual interfaces this package provides.
    pub provides: Vec<Provides>,
    /// ABI-compatibility (splice) declarations.
    pub can_splice: Vec<CanSplice>,
}

impl PackageDef {
    /// Preference penalty of `v`: its index in the newest-first version
    /// list.
    pub fn version_penalty(&self, v: &Version) -> Option<usize> {
        self.versions.iter().position(|x| x == v)
    }

    /// Does this package (under some condition) provide `virtual_name`?
    pub fn provides_virtual(&self, virtual_name: Sym) -> bool {
        self.provides.iter().any(|p| p.virtual_name == virtual_name)
    }

    /// Names of all packages this one might ever depend on (across all
    /// conditions). Virtual names are returned as-is.
    pub fn possible_dependencies(&self) -> BTreeSet<Sym> {
        self.depends
            .iter()
            .filter_map(|d| d.spec.name)
            .collect()
    }
}

/// Builder for [`PackageDef`] — the Rust face of the packaging DSL.
pub struct PackageBuilder {
    name: Sym,
    versions: Vec<Version>,
    variants: BTreeMap<Sym, VariantKind>,
    depends: Vec<DependsOn>,
    conflicts: Vec<Conflict>,
    provides: Vec<Provides>,
    can_splice: Vec<CanSplice>,
    error: Option<SpecError>,
}

impl PackageBuilder {
    /// Start a package definition.
    pub fn new(name: &str) -> PackageBuilder {
        PackageBuilder {
            name: Sym::intern(name),
            versions: Vec::new(),
            variants: BTreeMap::new(),
            depends: Vec::new(),
            conflicts: Vec::new(),
            provides: Vec::new(),
            can_splice: Vec::new(),
            error: None,
        }
    }

    fn record_err(&mut self, e: SpecError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    fn parse(&mut self, s: &str) -> Option<AbstractSpec> {
        match parse_spec(s) {
            Ok(sp) => Some(sp),
            Err(e) => {
                self.record_err(e);
                None
            }
        }
    }

    /// `version("1.1.0")` — declare an available version. Declaration
    /// order is irrelevant; versions are sorted newest-first at build.
    pub fn version(mut self, v: &str) -> Self {
        match Version::parse(v) {
            Ok(v) => self.versions.push(v),
            Err(e) => self.record_err(e),
        }
        self
    }

    /// `variant("bzip", default=True)` — a boolean variant.
    pub fn variant_bool(mut self, name: &str, default: bool) -> Self {
        self.variants
            .insert(Sym::intern(name), VariantKind::Bool { default });
        self
    }

    /// `variant("api", default="default", values=[...])` — single-valued.
    pub fn variant_single(mut self, name: &str, default: &str, allowed: &[&str]) -> Self {
        self.variants.insert(
            Sym::intern(name),
            VariantKind::Single {
                default: Sym::intern(default),
                allowed: allowed.iter().map(|s| Sym::intern(s)).collect(),
            },
        );
        self
    }

    /// Multi-valued variant with a default subset.
    pub fn variant_multi(mut self, name: &str, default: &[&str], allowed: &[&str]) -> Self {
        self.variants.insert(
            Sym::intern(name),
            VariantKind::Multi {
                default: default.iter().map(|s| Sym::intern(s)).collect(),
                allowed: allowed.iter().map(|s| Sym::intern(s)).collect(),
            },
        );
        self
    }

    /// `depends_on("zlib@1.3")` — unconditional link-run dependency.
    pub fn depends_on(self, spec: &str) -> Self {
        self.depends_on_full(spec, "", DepTypes::LINK_RUN)
    }

    /// `depends_on("zlib@1.2", when="@1.0.0")` — conditional link-run
    /// dependency.
    pub fn depends_on_when(self, spec: &str, when: &str) -> Self {
        self.depends_on_full(spec, when, DepTypes::LINK_RUN)
    }

    /// `depends_on("cmake", type="build")` — unconditional build dep.
    pub fn build_depends_on(self, spec: &str) -> Self {
        self.depends_on_full(spec, "", DepTypes::BUILD)
    }

    /// Conditional build dependency.
    pub fn build_depends_on_when(self, spec: &str, when: &str) -> Self {
        self.depends_on_full(spec, when, DepTypes::BUILD)
    }

    /// Fully general dependency directive.
    pub fn depends_on_full(mut self, spec: &str, when: &str, types: DepTypes) -> Self {
        let Some(spec) = self.parse(spec) else {
            return self;
        };
        let when = if when.is_empty() {
            AbstractSpec::anonymous()
        } else {
            match self.parse(when) {
                Some(w) => w,
                None => return self,
            }
        };
        if spec.name.is_none() {
            self.record_err(SpecError::Parse {
                offset: 0,
                message: "depends_on spec must name a package".into(),
            });
            return self;
        }
        self.depends.push(DependsOn { spec, types, when });
        self
    }

    /// `provides("mpi")` — unconditional virtual provider.
    pub fn provides(self, virtual_name: &str) -> Self {
        self.provides_when(virtual_name, "")
    }

    /// `provides("mpi", when="@2:")` — conditional virtual provider.
    pub fn provides_when(mut self, virtual_name: &str, when: &str) -> Self {
        let when = if when.is_empty() {
            AbstractSpec::anonymous()
        } else {
            match self.parse(when) {
                Some(w) => w,
                None => return self,
            }
        };
        self.provides.push(Provides {
            virtual_name: Sym::intern(virtual_name),
            when,
        });
        self
    }

    /// `conflicts("+cuda", when="+rocm")`.
    pub fn conflicts_when(mut self, spec: &str, when: &str) -> Self {
        let Some(spec) = self.parse(spec) else {
            return self;
        };
        let when = if when.is_empty() {
            AbstractSpec::anonymous()
        } else {
            match self.parse(when) {
                Some(w) => w,
                None => return self,
            }
        };
        self.conflicts.push(Conflict {
            spec,
            when,
            msg: None,
        });
        self
    }

    /// `can_splice("mpich@3.4.3", when="@1.0")` — the §5.2 directive:
    /// configurations of *this* package matching `when` may replace
    /// installed specs matching `target`.
    pub fn can_splice(mut self, target: &str, when: &str) -> Self {
        let Some(target) = self.parse(target) else {
            return self;
        };
        if target.name.is_none() {
            self.record_err(SpecError::Parse {
                offset: 0,
                message: "can_splice target must name a package".into(),
            });
            return self;
        }
        let when = if when.is_empty() {
            AbstractSpec::anonymous()
        } else {
            match self.parse(when) {
                Some(w) => w,
                None => return self,
            }
        };
        self.can_splice.push(CanSplice { target, when });
        self
    }

    /// Finalize the definition. Errors accumulated from any directive are
    /// reported here, as are structural problems (no versions, variant
    /// constraints referencing undeclared variants, etc.).
    pub fn build(self) -> Result<PackageDef, SpecError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.versions.is_empty() {
            return Err(SpecError::Parse {
                offset: 0,
                message: format!("package {} declares no versions", self.name),
            });
        }
        let mut versions = self.versions;
        versions.sort_by(|a, b| b.cmp(a)); // newest first
        versions.dedup();

        let def = PackageDef {
            name: self.name,
            versions,
            variants: self.variants,
            depends: self.depends,
            conflicts: self.conflicts,
            provides: self.provides,
            can_splice: self.can_splice,
        };

        // Validate that `when` clauses over this package's own variants
        // reference declared variants with acceptable values.
        let check_when = |when: &AbstractSpec| -> Result<(), SpecError> {
            for (vname, vval) in &when.variants {
                match def.variants.get(vname) {
                    Some(kind) if kind.accepts(vval) => {}
                    Some(_) => {
                        return Err(SpecError::Conflict(format!(
                            "package {}: when-clause value {} not allowed for variant {}",
                            def.name, vval, vname
                        )));
                    }
                    None => {
                        return Err(SpecError::Conflict(format!(
                            "package {}: when-clause references undeclared variant {}",
                            def.name, vname
                        )));
                    }
                }
            }
            Ok(())
        };
        for d in &def.depends {
            check_when(&d.when)?;
        }
        for p in &def.provides {
            check_when(&p.when)?;
        }
        for c in &def.can_splice {
            check_when(&c.when)?;
        }
        Ok(def)
    }
}

/// Evaluate whether a chosen package configuration (version + variants)
/// satisfies an anonymous `when` constraint. Dependencies inside `when`
/// clauses are not supported at the package level (the concretizer
/// handles whole-DAG conditions).
pub fn when_matches(
    when: &AbstractSpec,
    version: &Version,
    variants: &BTreeMap<Sym, VariantValue>,
) -> bool {
    if !when.version.satisfies(version) {
        return false;
    }
    for (name, want) in &when.variants {
        match variants.get(name) {
            Some(have) if have.satisfies(want) => {}
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> PackageDef {
        PackageBuilder::new("example")
            .version("1.1.0")
            .version("1.0.0")
            .variant_bool("bzip", true)
            .depends_on_when("bzip2", "+bzip")
            .depends_on_when("zlib@1.2", "@1.0.0")
            .depends_on_when("zlib@1.3", "@1.1.0")
            .depends_on("mpi")
            .can_splice("example@1.0.0", "@1.1.0")
            .can_splice("example-ng@2.3.2+compat", "@1.1.0+bzip")
            .build()
            .unwrap()
    }

    #[test]
    fn fig1_package_builds() {
        let p = example();
        assert_eq!(p.name.as_str(), "example");
        assert_eq!(p.versions.len(), 2);
        assert_eq!(p.depends.len(), 4);
        assert_eq!(p.can_splice.len(), 2);
    }

    #[test]
    fn versions_sorted_newest_first() {
        let p = PackageBuilder::new("z")
            .version("1.2")
            .version("1.10")
            .version("1.9")
            .build()
            .unwrap();
        let strs: Vec<String> = p.versions.iter().map(|v| v.to_string()).collect();
        assert_eq!(strs, vec!["1.10", "1.9", "1.2"]);
        assert_eq!(p.version_penalty(&Version::parse("1.10").unwrap()), Some(0));
        assert_eq!(p.version_penalty(&Version::parse("1.2").unwrap()), Some(2));
    }

    #[test]
    fn duplicate_versions_dedupe() {
        let p = PackageBuilder::new("z")
            .version("1.0")
            .version("1.0")
            .build()
            .unwrap();
        assert_eq!(p.versions.len(), 1);
    }

    #[test]
    fn no_versions_rejected() {
        assert!(PackageBuilder::new("empty").build().is_err());
    }

    #[test]
    fn bad_spec_reported_at_build() {
        let r = PackageBuilder::new("x")
            .version("1.0")
            .depends_on("zlib@@@")
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn when_referencing_undeclared_variant_rejected() {
        let r = PackageBuilder::new("x")
            .version("1.0")
            .depends_on_when("zlib", "+nonexistent")
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn provides_and_virtual_query() {
        let p = PackageBuilder::new("mpich")
            .version("3.4.3")
            .provides("mpi")
            .build()
            .unwrap();
        assert!(p.provides_virtual(Sym::intern("mpi")));
        assert!(!p.provides_virtual(Sym::intern("blas")));
    }

    #[test]
    fn when_matches_semantics() {
        let p = example();
        let v11 = Version::parse("1.1.0").unwrap();
        let v10 = Version::parse("1.0.0").unwrap();
        let mut vars = BTreeMap::new();
        vars.insert(Sym::intern("bzip"), VariantValue::Bool(true));

        let dep_zlib13 = &p.depends[2]; // zlib@1.3 when @1.1.0
        assert!(when_matches(&dep_zlib13.when, &v11, &vars));
        assert!(!when_matches(&dep_zlib13.when, &v10, &vars));

        let dep_bzip2 = &p.depends[0]; // bzip2 when +bzip
        assert!(when_matches(&dep_bzip2.when, &v11, &vars));
        vars.insert(Sym::intern("bzip"), VariantValue::Bool(false));
        assert!(!when_matches(&dep_bzip2.when, &v11, &vars));
    }

    #[test]
    fn possible_dependencies() {
        let p = example();
        let deps = p.possible_dependencies();
        let names: Vec<&str> = deps.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["bzip2", "mpi", "zlib"]);
    }

    #[test]
    fn single_variant_validation() {
        let p = PackageBuilder::new("mpich")
            .version("3.1")
            .variant_single("pmi", "pmix", &["pmix", "pmi2", "off"])
            .build()
            .unwrap();
        let kind = p.variants.get(&Sym::intern("pmi")).unwrap();
        assert!(kind.accepts(&VariantValue::Single(Sym::intern("pmi2"))));
        assert!(!kind.accepts(&VariantValue::Single(Sym::intern("bogus"))));
    }
}
