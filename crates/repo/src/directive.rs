//! Directive payloads: the typed form of `depends_on`, `provides`,
//! `conflicts`, and the paper's new `can_splice` (§5.2).

use spackle_spec::{AbstractSpec, DepTypes, Sym};

/// `depends_on("zlib@1.2", when="@1.0.0")` — a conditional dependency
/// constraint. The `when` spec is anonymous (applies to the declaring
/// package's own configuration).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DependsOn {
    /// Constraint on the dependency (may name a virtual like `mpi`).
    pub spec: AbstractSpec,
    /// Edge types this dependency contributes.
    pub types: DepTypes,
    /// Condition on the declaring package for the dependency to apply.
    pub when: AbstractSpec,
}

/// `conflicts("^mpich", when="+rocm")` — configurations that must not
/// concretize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conflict {
    /// The conflicting constraint.
    pub spec: AbstractSpec,
    /// Condition under which the conflict applies.
    pub when: AbstractSpec,
    /// Optional human-readable explanation.
    pub msg: Option<String>,
}

/// `provides("mpi")` — the declaring package implements a virtual
/// interface, optionally only for some of its configurations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provides {
    /// The virtual package name (e.g. `mpi`).
    pub virtual_name: Sym,
    /// Condition on the provider.
    pub when: AbstractSpec,
}

/// `can_splice("example-ng@2.3.2+compat", when="@1.1.0+bzip")` — the
/// paper's §5.2 directive: configurations of the declaring package
/// matching `when` are ABI-compatible replacements for installed specs
/// matching `target`.
///
/// Note the inversion the paper emphasizes: the *replacing* package
/// declares what it can replace (developers of an ABI-compatible
/// implementation know the reference ABI; the reference cannot know all
/// its imitators).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanSplice {
    /// Constraint on the spec being replaced (the splice target).
    pub target: AbstractSpec,
    /// Constraint on the declaring package for the splice to be valid.
    pub when: AbstractSpec,
}

#[cfg(test)]
mod tests {
    use super::*;
    use spackle_spec::parse_spec;

    #[test]
    fn directives_carry_specs() {
        let d = DependsOn {
            spec: parse_spec("zlib@1.2").unwrap(),
            types: DepTypes::LINK_RUN,
            when: parse_spec("@1.0.0").unwrap(),
        };
        assert_eq!(d.spec.name.unwrap().as_str(), "zlib");
        assert!(d.when.name.is_none());

        let cs = CanSplice {
            target: parse_spec("example-ng@2.3.2+compat").unwrap(),
            when: parse_spec("@1.1.0+bzip").unwrap(),
        };
        assert_eq!(cs.target.name.unwrap().as_str(), "example-ng");
    }
}
