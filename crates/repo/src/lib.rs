#![warn(missing_docs)]

//! # spackle-repo
//!
//! Package definitions and the package repository (paper §3.2, §5.2).
//!
//! A Spack package is a *conditional* description of a combinatorial
//! build-configuration space, written as a set of **directives**. This
//! crate reproduces the directives the paper relies on as a typed Rust
//! builder DSL, mirroring the `package.py` of Fig 1:
//!
//! ```
//! use spackle_repo::PackageBuilder;
//!
//! let example = PackageBuilder::new("example")
//!     // This package provides two versions
//!     .version("1.1.0")
//!     .version("1.0.0")
//!     // Optional bzip support
//!     .variant_bool("bzip", true)
//!     // Depends on bzip2 when bzip support is enabled
//!     .depends_on_when("bzip2", "+bzip")
//!     // Version 1.0.0 depends on an older version of zlib
//!     .depends_on_when("zlib@1.2", "@1.0.0")
//!     // Version 1.1.0 depends on a newer version of zlib
//!     .depends_on_when("zlib@1.3", "@1.1.0")
//!     // Depends on some implementation of MPI
//!     .depends_on("mpi")
//!     // example@1.1.0 can be spliced in for example@1.0.0
//!     .can_splice("example@1.0.0", "@1.1.0")
//!     // example@1.1.0+bzip can be spliced in for example-ng@2.3.2+compat
//!     .can_splice("example-ng@2.3.2+compat", "@1.1.0+bzip")
//!     .build()
//!     .unwrap();
//! assert_eq!(example.versions.len(), 2);
//! assert_eq!(example.can_splice.len(), 2);
//! ```

pub mod directive;
pub mod package;
pub mod repository;

pub use directive::{CanSplice, Conflict, DependsOn, Provides};
pub use package::{PackageBuilder, PackageDef};
pub use repository::{RepoError, Repository};
