//! Property tests for the package builder and repository indexes.

use proptest::prelude::*;
use spackle_repo::{PackageBuilder, Repository};
use spackle_spec::{Sym, Version};

fn version_text() -> impl Strategy<Value = String> {
    (1u64..20, 0u64..30, prop::option::of(0u64..10))
        .prop_map(|(a, b, c)| match c {
            Some(c) => format!("{a}.{b}.{c}"),
            None => format!("{a}.{b}"),
        })
}

proptest! {
    #[test]
    fn versions_always_sorted_newest_first(
        versions in prop::collection::vec(version_text(), 1..8)
    ) {
        let mut b = PackageBuilder::new("pkg");
        for v in &versions {
            b = b.version(v);
        }
        let p = b.build().unwrap();
        // Sorted descending, deduplicated.
        for w in p.versions.windows(2) {
            prop_assert!(w[0] > w[1], "{} !> {}", w[0], w[1]);
        }
        // Every input version present exactly once.
        for v in &versions {
            let parsed = Version::parse(v).unwrap();
            prop_assert_eq!(
                p.versions.iter().filter(|x| **x == parsed).count(),
                1
            );
        }
        // Penalty index consistent with position.
        for (i, v) in p.versions.iter().enumerate() {
            prop_assert_eq!(p.version_penalty(v), Some(i));
        }
    }

    #[test]
    fn provider_order_is_declaration_order(n in 2usize..6) {
        let mut pkgs = Vec::new();
        for i in 0..n {
            pkgs.push(
                PackageBuilder::new(&format!("impl{i}"))
                    .version("1.0")
                    .provides("iface")
                    .build()
                    .unwrap(),
            );
        }
        let repo = Repository::from_packages(pkgs).unwrap();
        let provs = repo.providers_of(Sym::intern("iface"));
        prop_assert_eq!(provs.len(), n);
        for (i, p) in provs.iter().enumerate() {
            prop_assert_eq!(p.as_str(), format!("impl{i}"));
        }
    }

    #[test]
    fn closure_is_monotone_under_root_union(
        split in 1usize..4
    ) {
        // chain p0 -> p1 -> p2 -> p3; closure(p0) ⊇ closure(p_split).
        let mut pkgs = Vec::new();
        for i in 0..4 {
            let mut b = PackageBuilder::new(&format!("p{i}")).version("1.0");
            if i < 3 {
                b = b.depends_on(&format!("p{}", i + 1));
            }
            pkgs.push(b.build().unwrap());
        }
        let repo = Repository::from_packages(pkgs).unwrap();
        let full = repo.possible_closure(&[Sym::intern("p0")]);
        let sub = repo.possible_closure(&[Sym::intern(&format!("p{split}"))]);
        prop_assert!(sub.is_subset(&full));
        prop_assert_eq!(full.len(), 4);
        prop_assert_eq!(sub.len(), 4 - split);
    }
}

#[test]
fn builder_accumulates_first_error_only() {
    let err = PackageBuilder::new("x")
        .version("1.0")
        .depends_on("bad@@spec")
        .depends_on("also@@bad")
        .build()
        .unwrap_err();
    // One coherent error, not a panic or a pile.
    let msg = err.to_string();
    assert!(!msg.is_empty());
}

#[test]
fn can_splice_without_target_name_rejected() {
    assert!(PackageBuilder::new("x")
        .version("1.0")
        .can_splice("@1.0", "")
        .build()
        .is_err());
}
