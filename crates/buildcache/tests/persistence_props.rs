//! Property tests for the cache's JSON persistence and the artifact
//! wire format: round-trips are lossless, and arbitrary corruption is
//! rejected with an error — never a panic.

use proptest::prelude::*;
use spackle_buildcache::{Artifact, BuildCache};
use spackle_spec::spec::{ConcreteSpecBuilder, DepTypes};
use spackle_spec::{ConcreteSpec, Version};

/// A small random concrete DAG: a root depending on a random subset of
/// `n_deps` leaves, each with a random version.
fn arb_spec() -> impl Strategy<Value = ConcreteSpec> {
    (
        prop::sample::select(vec!["hdf5", "hypre", "mfem", "app"]),
        prop::collection::vec(("[a-z]{3,8}", 1u32..20, 0u32..10), 0..5),
        1u32..20,
    )
        .prop_map(|(root, deps, rv)| {
            let mut b = ConcreteSpecBuilder::new();
            let mut ids = Vec::new();
            let mut used = std::collections::BTreeSet::new();
            for (name, maj, min) in &deps {
                // Concrete DAGs hold one configuration per package name.
                if name == root || !used.insert(name.clone()) {
                    continue;
                }
                ids.push(b.node(name, Version::parse(&format!("{maj}.{min}")).unwrap()));
            }
            let r = b.node(root, Version::parse(&format!("{rv}.0")).unwrap());
            for id in ids {
                b.edge(r, id, DepTypes::LINK_RUN);
            }
            b.build(r).unwrap()
        })
}

fn arb_artifact() -> impl Strategy<Value = Artifact> {
    (
        "/[a-z/]{1,30}",
        prop::collection::vec("/[a-z/]{1,30}".prop_map(String::from), 0..4),
        prop::collection::vec("[A-Za-z_=]{1,20}", 0..6),
    )
        .prop_map(|(own, deps, symbols)| Artifact::build(&own, &deps, symbols))
}

proptest! {
    #[test]
    fn cache_json_roundtrip_is_lossless(specs in prop::collection::vec(arb_spec(), 1..6)) {
        let mut cache = BuildCache::new();
        for spec in &specs {
            cache.add_spec_with(spec, |sub| {
                Artifact::build(
                    &format!("/opt/{}", sub.root().name),
                    &[],
                    vec![format!("{}_api", sub.root().name)],
                )
                .to_bytes()
            });
        }
        let back = BuildCache::from_json(&cache.to_json()).unwrap();
        prop_assert_eq!(back.len(), cache.len());
        for spec in &specs {
            for id in spec.all_ids() {
                let hash = spec.node(id).hash;
                let (a, b) = (cache.get(hash).unwrap(), back.get(hash).unwrap());
                prop_assert_eq!(a.spec.dag_hash(), b.spec.dag_hash());
                prop_assert_eq!(&a.artifact, &b.artifact);
            }
        }
    }

    #[test]
    fn artifact_roundtrip_is_identity(art in arb_artifact()) {
        let back = Artifact::from_bytes(&art.to_bytes()).unwrap();
        prop_assert_eq!(art, back);
    }

    #[test]
    fn truncated_artifacts_error_not_panic(art in arb_artifact(), frac in 0.0f64..1.0) {
        let bytes = art.to_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(Artifact::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn flipped_cache_json_never_panics(spec in arb_spec(), idx in 0usize..4096, bit in 0u8..8) {
        // from_json on arbitrarily corrupted JSON must return (Ok or
        // Err), never panic; when it parses, the index stays consistent.
        let mut cache = BuildCache::new();
        cache.add_spec(&spec);
        let mut json = cache.to_json().into_bytes();
        let i = idx % json.len();
        json[i] ^= 1 << bit;
        if let Ok(s) = std::str::from_utf8(&json) {
            if let Ok(back) = BuildCache::from_json(s) {
                for e in back.entries() {
                    prop_assert!(back.contains(e.spec.dag_hash()));
                }
            }
        }
    }

    #[test]
    fn garbage_is_rejected(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Random bytes essentially never form a valid artifact; either
        // way, no panics.
        let _ = Artifact::from_bytes(&bytes);
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = BuildCache::from_json(s);
        }
    }
}
