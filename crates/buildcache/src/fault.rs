//! Deterministic fault injection behind the [`CacheSource`] seam.
//!
//! [`FaultInjector`] wraps any source and, driven by a seeded splitmix64
//! stream over its own call counter, injects the three failure classes a
//! remote mirror exhibits in production:
//!
//! * **errors** — transient or permanent [`CacheError`]s, at a
//!   configurable rate or across a hard outage window of call indices;
//! * **latency** — injected sleeps, for exercising deadlines and
//!   backoff behavior;
//! * **corruption** — point lookups answered with a deterministic junk
//!   entry whose spec does not hash to the requested key (the class of
//!   fault integrity validation must catch), and index reads
//!   ([`CacheSource::iter`]) answered with [`CacheError::Corrupt`] (a
//!   tampered index is rejected at load, mirroring
//!   [`BuildCache::from_json`](crate::BuildCache::from_json)).
//!
//! Schedules are a pure function of `(seed, call index)`: the same seed
//! over the same call sequence injects the same faults, which is what
//! makes the chaos differential suite replayable. The injector is not a
//! test-only type — it is the reference implementation of a *failing*
//! backend, and the retry/breaker machinery in
//! [`ChainedCache`](crate::ChainedCache) is developed against it.

use crate::cache::{CacheEntry, CacheError};
use crate::source::{splitmix64, CacheSource, IntoCacheSource, SourceFaultStats};
use spackle_spec::spec::ConcreteSpecBuilder;
use spackle_spec::{SpecHash, Sym, Version};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fault schedule for one [`FaultInjector`]. All rates are probabilities
/// in `[0, 1]` evaluated per call against independent seeded draws;
/// `Default` injects nothing.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed of the fault schedule (same seed → same schedule).
    pub seed: u64,
    /// Probability a call fails with a backend error.
    pub error_rate: f64,
    /// Of injected errors, the fraction that are transient (the rest
    /// are permanent).
    pub transient_ratio: f64,
    /// Probability a point lookup (`get`/`candidates_for`) answers with
    /// a corrupted entry, and an index read (`iter`/`fingerprint`) fails
    /// with [`CacheError::Corrupt`].
    pub corrupt_rate: f64,
    /// Probability a call sleeps for [`FaultConfig::latency`] first.
    pub latency_rate: f64,
    /// Injected sleep duration.
    pub latency: Duration,
    /// Hard outage: calls whose index falls in this range fail with a
    /// transient error regardless of `error_rate` (models a backend
    /// that is down for a while, then recovers).
    pub fail_calls: Option<Range<u64>>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            error_rate: 0.0,
            transient_ratio: 1.0,
            corrupt_rate: 0.0,
            latency_rate: 0.0,
            latency: Duration::from_millis(1),
            fail_calls: None,
        }
    }
}

impl FaultConfig {
    /// A backend that always fails with a transient error.
    pub fn down() -> FaultConfig {
        FaultConfig {
            error_rate: 1.0,
            transient_ratio: 1.0,
            ..FaultConfig::default()
        }
    }

    /// A backend that always fails permanently.
    pub fn hard_down() -> FaultConfig {
        FaultConfig {
            error_rate: 1.0,
            transient_ratio: 0.0,
            ..FaultConfig::default()
        }
    }

    /// A backend that transiently fails a fraction `rate` of calls under
    /// `seed`.
    pub fn flaky(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig {
            seed,
            error_rate: rate,
            transient_ratio: 1.0,
            ..FaultConfig::default()
        }
    }

    /// A backend that sleeps `latency` on every call.
    pub fn slow(latency: Duration) -> FaultConfig {
        FaultConfig {
            latency_rate: 1.0,
            latency,
            ..FaultConfig::default()
        }
    }
}

/// Live injected-fault counters.
#[derive(Debug, Default)]
struct InjectorCounters {
    injected: AtomicU64,
    transient: AtomicU64,
    permanent: AtomicU64,
    corrupt: AtomicU64,
}

/// A [`CacheSource`] wrapper that deterministically injects errors,
/// latency, and corruption into every lookup (see the module docs).
pub struct FaultInjector {
    inner: Arc<dyn CacheSource>,
    label: String,
    cfg: FaultConfig,
    calls: AtomicU64,
    counters: InjectorCounters,
    /// The deterministic junk entry served on corrupted point lookups:
    /// a synthetic one-node spec no repository declares, whose DAG hash
    /// matches no real key — integrity validation must reject it.
    junk: CacheEntry,
}

/// What the schedule says one call should do.
enum Fault {
    None,
    Transient,
    Permanent,
    Corrupt,
}

impl FaultInjector {
    /// Wrap `inner` under `label` with a no-fault configuration
    /// (configure with [`FaultInjector::with_config`]).
    pub fn new(inner: impl IntoCacheSource, label: impl Into<String>) -> FaultInjector {
        let mut b = ConcreteSpecBuilder::new();
        let n = b.node("xcorrupt", Version::parse("0.0.0").expect("static version"));
        let junk_spec = b.build(n).expect("one-node junk spec builds");
        FaultInjector {
            inner: inner.into_cache_source(),
            label: label.into(),
            cfg: FaultConfig::default(),
            calls: AtomicU64::new(0),
            counters: InjectorCounters::default(),
            junk: CacheEntry {
                spec: junk_spec,
                artifact: Vec::new(),
            },
        }
    }

    /// Set the fault schedule.
    pub fn with_config(mut self, cfg: FaultConfig) -> FaultInjector {
        self.cfg = cfg;
        self
    }

    /// Calls observed so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// A uniform draw in `[0, 1)` from stream `lane` at `call`.
    fn draw(&self, call: u64, lane: u64) -> f64 {
        let z = splitmix64(self.cfg.seed ^ call.wrapping_mul(0x9e37_79b9) ^ (lane << 56));
        z as f64 / (u64::MAX as f64 + 1.0)
    }

    /// Evaluate the schedule for one call: maybe sleep, then decide the
    /// call's fate.
    fn schedule(&self) -> Fault {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.draw(call, 1) < self.cfg.latency_rate {
            self.counters.injected.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.cfg.latency);
        }
        if let Some(window) = &self.cfg.fail_calls {
            if window.contains(&call) {
                return Fault::Transient;
            }
        }
        if self.draw(call, 2) < self.cfg.error_rate {
            if self.draw(call, 3) < self.cfg.transient_ratio {
                return Fault::Transient;
            }
            return Fault::Permanent;
        }
        if self.draw(call, 4) < self.cfg.corrupt_rate {
            return Fault::Corrupt;
        }
        Fault::None
    }

    /// Turn a scheduled fault into its error, counting it. `Corrupt`
    /// here is the *index-read* form (an unloadable index).
    fn error_for(&self, fault: &Fault, what: &str) -> CacheError {
        self.counters.injected.fetch_add(1, Ordering::Relaxed);
        match fault {
            Fault::Transient => {
                self.counters.transient.fetch_add(1, Ordering::Relaxed);
                CacheError::transient(&self.label, format!("injected transient fault ({what})"))
            }
            Fault::Permanent => {
                self.counters.permanent.fetch_add(1, Ordering::Relaxed);
                CacheError::permanent(&self.label, format!("injected permanent fault ({what})"))
            }
            Fault::Corrupt => {
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                CacheError::corrupt(&self.label, format!("injected index corruption ({what})"))
            }
            Fault::None => unreachable!("no error for a healthy call"),
        }
    }
}

impl CacheSource for FaultInjector {
    fn get(&self, hash: SpecHash) -> Result<Option<&CacheEntry>, CacheError> {
        match self.schedule() {
            Fault::None => self.inner.get(hash),
            Fault::Corrupt => {
                // Serve a wrong entry instead of erroring: the caller's
                // integrity validation is what must catch this.
                self.counters.injected.fetch_add(1, Ordering::Relaxed);
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                Ok(Some(&self.junk))
            }
            fault => Err(self.error_for(&fault, "get")),
        }
    }

    fn candidates_for(&self, name: Sym) -> Result<Vec<&CacheEntry>, CacheError> {
        match self.schedule() {
            Fault::None => self.inner.candidates_for(name),
            Fault::Corrupt => {
                self.counters.injected.fetch_add(1, Ordering::Relaxed);
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                Ok(vec![&self.junk])
            }
            fault => Err(self.error_for(&fault, "candidates_for")),
        }
    }

    fn iter(&self) -> Result<Box<dyn Iterator<Item = &CacheEntry> + '_>, CacheError> {
        match self.schedule() {
            Fault::None => self.inner.iter(),
            fault => Err(self.error_for(&fault, "iter")),
        }
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn fault_stats(&self) -> SourceFaultStats {
        let own = SourceFaultStats {
            injected_faults: self.counters.injected.load(Ordering::Relaxed),
            transient_errors: self.counters.transient.load(Ordering::Relaxed),
            permanent_errors: self.counters.permanent.load(Ordering::Relaxed),
            corrupt_entries: self.counters.corrupt.load(Ordering::Relaxed),
            ..SourceFaultStats::default()
        };
        own.merge(self.inner.fault_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::BuildCache;
    use spackle_spec::spec::ConcreteSpecBuilder;

    fn seeded_cache() -> (BuildCache, SpecHash) {
        let mut b = ConcreteSpecBuilder::new();
        let n = b.node("zlib", Version::parse("1.3").unwrap());
        let spec = b.build(n).unwrap();
        let mut cache = BuildCache::new();
        cache.add_spec(&spec);
        (cache, spec.dag_hash())
    }

    #[test]
    fn no_faults_is_transparent() {
        let (cache, hash) = seeded_cache();
        let inj = FaultInjector::new(cache, "mirror");
        assert!(inj.get(hash).unwrap().is_some());
        assert_eq!(inj.iter().unwrap().count(), 1);
        assert_eq!(inj.fault_stats(), SourceFaultStats::default());
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let (cache, hash) = seeded_cache();
        let run = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::new(cache.clone(), "mirror")
                .with_config(FaultConfig::flaky(seed, 0.5));
            (0..64).map(|_| inj.get(hash).is_ok()).collect()
        };
        assert_eq!(run(9), run(9), "same seed, same schedule");
        assert_ne!(run(9), run(10), "different seeds diverge");
    }

    #[test]
    fn outage_window_recovers() {
        let (cache, hash) = seeded_cache();
        let inj = FaultInjector::new(cache, "mirror").with_config(FaultConfig {
            fail_calls: Some(0..5),
            ..FaultConfig::default()
        });
        for _ in 0..5 {
            assert!(inj.get(hash).is_err());
        }
        assert!(inj.get(hash).unwrap().is_some(), "recovered after window");
    }

    #[test]
    fn corruption_serves_a_mismatched_entry() {
        let (cache, hash) = seeded_cache();
        let inj = FaultInjector::new(cache, "mirror").with_config(FaultConfig {
            corrupt_rate: 1.0,
            ..FaultConfig::default()
        });
        let entry = inj.get(hash).unwrap().expect("corrupt lookup answers");
        assert_ne!(entry.spec.dag_hash(), hash, "junk must not hash to the key");
        assert!(inj.iter().is_err(), "index reads fail instead of lying");
        assert!(inj.fault_stats().corrupt_entries >= 2);
    }
}
