//! The multi-backend cache seam: [`CacheSource`] and [`ChainedCache`].
//!
//! Everything downstream of the cache — reuse fact injection in the
//! concretizer, install planning, binary execution, ABI audits — only
//! ever needs three lookups: by exact hash, by package name, and full
//! iteration. [`CacheSource`] captures exactly that surface as an
//! object-safe trait, so those layers accept `&dyn CacheSource` and
//! never learn whether they are talking to one in-memory index, a chain
//! of local + public caches, or (later) a remote mirror.
//!
//! Every lookup is **fallible**: a backend may time out, refuse, or
//! serve corrupt data, so each read returns `Result<_, CacheError>` with
//! transient/permanent/corrupt provenance (see
//! [`CacheError`](crate::CacheError)). In-memory sources simply always
//! return `Ok`; the [`FaultInjector`](crate::FaultInjector) wrapper and
//! real remote backends exercise the error paths.
//!
//! [`ChainedCache`] is the first combinator over the seam: an ordered
//! overlay of sources with first-hit-wins lookup, mirroring Spack's
//! ordered mirror list. It owns the fault-handling policy for its
//! sources — bounded retries with deterministic-jitter exponential
//! backoff and a per-source circuit breaker ([`RetryPolicy`]) — and
//! verifies that fetched entries hash to the key they were fetched
//! under, so a corrupt mirror can never serve a wrong binary. A source
//! that stays down past its retry budget surfaces as a structured
//! `CacheError` with the failing backend's label; graceful degradation
//! (dropping the source and proceeding source-only) is the *caller's*
//! decision — the concretizer implements it and flags the solve
//! `degraded`.
//!
//! Sources are **shared, not borrowed**: long-lived consumers (the
//! `spackled` concretization service, benchmark harnesses, worker
//! threads) hold `Arc<dyn CacheSource>` handles, so one in-memory index
//! can back any number of concurrent solves without a lifetime tying it
//! to a single stack frame. [`IntoCacheSource`] keeps short-lived
//! callers ergonomic: passing an owned source, an `Arc`, or a `&source`
//! (cloned) all work at the same call site.

use crate::cache::{BuildCache, CacheEntry, CacheError};
use rustc_hash::FxHashSet;
use spackle_spec::{SpecHash, Sym};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Cumulative fault-handling counters for one cache source.
///
/// Plain `Copy` data: sources keep the live values in atomics and
/// snapshot them here. Composite sources ([`ChainedCache`]) report their
/// own counters [`merged`](SourceFaultStats::merge) with every
/// sub-source's, so injected-fault and retry counts flow up to whoever
/// holds the outermost handle (daemon telemetry, the chaos harness).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SourceFaultStats {
    /// Reads re-attempted after a retryable failure.
    pub retries: u64,
    /// Transient backend failures observed (before retry).
    pub transient_errors: u64,
    /// Permanent backend failures observed.
    pub permanent_errors: u64,
    /// Integrity-check failures (corrupt entries / corrupt index reads).
    pub corrupt_entries: u64,
    /// Circuit-breaker open transitions.
    pub breaker_opens: u64,
    /// Calls failed fast because a breaker was open.
    pub breaker_skips: u64,
    /// Faults deliberately injected (fault-injection wrappers only).
    pub injected_faults: u64,
}

impl SourceFaultStats {
    /// Field-wise sum of two snapshots.
    pub fn merge(self, other: SourceFaultStats) -> SourceFaultStats {
        SourceFaultStats {
            retries: self.retries + other.retries,
            transient_errors: self.transient_errors + other.transient_errors,
            permanent_errors: self.permanent_errors + other.permanent_errors,
            corrupt_entries: self.corrupt_entries + other.corrupt_entries,
            breaker_opens: self.breaker_opens + other.breaker_opens,
            breaker_skips: self.breaker_skips + other.breaker_skips,
            injected_faults: self.injected_faults + other.injected_faults,
        }
    }

    /// Field-wise saturating difference (`self - earlier`); the per-solve
    /// delta the concretizer reports in its stats.
    pub fn saturating_sub(self, earlier: SourceFaultStats) -> SourceFaultStats {
        SourceFaultStats {
            retries: self.retries.saturating_sub(earlier.retries),
            transient_errors: self.transient_errors.saturating_sub(earlier.transient_errors),
            permanent_errors: self.permanent_errors.saturating_sub(earlier.permanent_errors),
            corrupt_entries: self.corrupt_entries.saturating_sub(earlier.corrupt_entries),
            breaker_opens: self.breaker_opens.saturating_sub(earlier.breaker_opens),
            breaker_skips: self.breaker_skips.saturating_sub(earlier.breaker_skips),
            injected_faults: self.injected_faults.saturating_sub(earlier.injected_faults),
        }
    }
}

/// Read access to a collection of reusable specs and their binaries.
///
/// Object-safe on purpose: planners and solvers hold `&dyn CacheSource`
/// or `Arc<dyn CacheSource>` so new backends never force an API break.
/// `Send + Sync` is part of the contract: every source must tolerate
/// concurrent readers, because one cache instance backs many solver
/// threads in the shared-state concretizer API. Implementations must be
/// internally consistent — every entry reachable from [`iter`] must also
/// be reachable via [`get`] under its spec's DAG hash.
///
/// Every lookup returns `Result<_, CacheError>`: in-memory sources are
/// infallible in practice (always `Ok`), but the signature is the seam
/// that lets remote mirrors, flaky disks, and the deterministic
/// [`FaultInjector`](crate::FaultInjector) sit behind the same trait
/// object.
///
/// [`iter`]: CacheSource::iter
/// [`get`]: CacheSource::get
pub trait CacheSource: Send + Sync {
    /// Exact-hash lookup.
    fn get(&self, hash: SpecHash) -> Result<Option<&CacheEntry>, CacheError>;

    /// Entries whose root package is `name`, best candidate first.
    fn candidates_for(&self, name: Sym) -> Result<Vec<&CacheEntry>, CacheError>;

    /// Iterate every entry, deterministically.
    fn iter(&self) -> Result<Box<dyn Iterator<Item = &CacheEntry> + '_>, CacheError>;

    /// Number of distinct entries (best effort: composite sources report
    /// 0 when every backend is unreadable).
    fn len(&self) -> usize;

    /// A short human label naming this source in error provenance and
    /// telemetry (`"local"`, `"public"`, `"chain"`, ...).
    fn label(&self) -> &str {
        "cache"
    }

    /// Is a spec with this hash available?
    fn contains(&self, hash: SpecHash) -> Result<bool, CacheError> {
        Ok(self.get(hash)?.is_some())
    }

    /// Does the source hold no entries?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An order-sensitive fingerprint of the reusable-spec set: the DAG
    /// hash of every entry, in [`iter`] order. Two sources with the same
    /// fingerprint inject the same reuse facts into the concretizer, so
    /// this is the cache-identity input to ground-program memoization.
    /// Valid within one process only (it uses the default `Hasher`);
    /// never persist it. Fallible because it reads the full index: a
    /// down backend cannot be fingerprinted, which is exactly what keeps
    /// a degraded solve from reusing a ground program memoized against
    /// the healthy source set.
    ///
    /// [`iter`]: CacheSource::iter
    fn fingerprint(&self) -> Result<u64, CacheError> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        let mut n = 0usize;
        for e in self.iter()? {
            e.spec.dag_hash().0.hash(&mut h);
            n += 1;
        }
        n.hash(&mut h);
        Ok(h.finish())
    }

    /// Snapshot of this source's cumulative fault-handling counters.
    /// Plain sources have none; retry/breaker combinators and fault
    /// injectors report theirs (merged with their children's).
    fn fault_stats(&self) -> SourceFaultStats {
        SourceFaultStats::default()
    }
}

impl CacheSource for BuildCache {
    fn get(&self, hash: SpecHash) -> Result<Option<&CacheEntry>, CacheError> {
        Ok(BuildCache::get(self, hash))
    }

    fn candidates_for(&self, name: Sym) -> Result<Vec<&CacheEntry>, CacheError> {
        Ok(BuildCache::candidates_for(self, name))
    }

    fn iter(&self) -> Result<Box<dyn Iterator<Item = &CacheEntry> + '_>, CacheError> {
        Ok(Box::new(self.entries()))
    }

    fn len(&self) -> usize {
        BuildCache::len(self)
    }

    fn label(&self) -> &str {
        "buildcache"
    }

    fn contains(&self, hash: SpecHash) -> Result<bool, CacheError> {
        Ok(BuildCache::contains(self, hash))
    }
}

/// A relabeling wrapper: delegates every lookup to its inner source and
/// only overrides [`CacheSource::label`]. Provenance in a multi-mirror
/// deployment ("public mirror down, proceeding on local") needs each
/// backend to carry a stable operator-facing name.
pub struct Labeled {
    inner: Arc<dyn CacheSource>,
    label: String,
}

impl Labeled {
    /// Wrap `inner` under `label`.
    pub fn new(inner: impl IntoCacheSource, label: impl Into<String>) -> Labeled {
        Labeled {
            inner: inner.into_cache_source(),
            label: label.into(),
        }
    }
}

impl CacheSource for Labeled {
    fn get(&self, hash: SpecHash) -> Result<Option<&CacheEntry>, CacheError> {
        self.inner.get(hash)
    }

    fn candidates_for(&self, name: Sym) -> Result<Vec<&CacheEntry>, CacheError> {
        self.inner.candidates_for(name)
    }

    fn iter(&self) -> Result<Box<dyn Iterator<Item = &CacheEntry> + '_>, CacheError> {
        self.inner.iter()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn fingerprint(&self) -> Result<u64, CacheError> {
        self.inner.fingerprint()
    }

    fn fault_stats(&self) -> SourceFaultStats {
        self.inner.fault_stats()
    }
}

/// Conversion into a shared cache-source handle.
///
/// This is the argument seam of the owned concretizer API: any of the
/// following work where an `impl IntoCacheSource` is expected —
///
/// * an owned source (`BuildCache`, `ChainedCache`, a custom backend) —
///   moved into a fresh `Arc`; pass `cache.clone()` to keep using the
///   original (the clone is explicit on purpose — it is a real copy);
/// * `Arc<dyn CacheSource>` / `&Arc<dyn CacheSource>` — shared verbatim,
///   the zero-copy form long-lived and hot-path callers should use so
///   every solve reads one index instead of copying it.
///
/// Clones share the original's [`CacheSource::fingerprint`] (it is
/// content-derived), so ground-program memoization keys are unaffected
/// by which conversion a call site picks. (Coherence keeps this trait
/// from also accepting `&source` or `Arc<ConcreteType>` directly: a
/// downstream crate may implement `CacheSource` for its own references
/// or `Arc` wrappers, which would make those blanket impls ambiguous.
/// Coerce once — `let c: Arc<dyn CacheSource> = Arc::new(source);` —
/// and share `&c` from then on.)
pub trait IntoCacheSource {
    /// Produce the shared handle.
    fn into_cache_source(self) -> Arc<dyn CacheSource>;
}

impl<T: CacheSource + 'static> IntoCacheSource for T {
    fn into_cache_source(self) -> Arc<dyn CacheSource> {
        Arc::new(self)
    }
}

impl IntoCacheSource for Arc<dyn CacheSource> {
    fn into_cache_source(self) -> Arc<dyn CacheSource> {
        self
    }
}

impl IntoCacheSource for &Arc<dyn CacheSource> {
    fn into_cache_source(self) -> Arc<dyn CacheSource> {
        Arc::clone(self)
    }
}

/// Fault-handling policy for a [`ChainedCache`]: bounded retries with
/// capped exponential backoff and deterministic jitter, plus a
/// per-source circuit breaker.
///
/// Backoff for attempt *k* (1-based retry count) sleeps
/// `base_backoff * 2^(k-1)`, capped at `max_backoff`, scaled by a jitter
/// factor in `[0.5, 1.0)` drawn from a splitmix64 stream seeded by
/// (`jitter_seed`, call counter, attempt) — fully deterministic for a
/// fixed seed and call order, which is what lets the chaos suite replay
/// schedules bit-for-bit.
///
/// The breaker counts *consecutive* failed calls (a call = one lookup
/// after exhausting its retries) per source; at `breaker_threshold` it
/// opens and the next `breaker_cooldown` calls to that source fail fast
/// with a transient "circuit breaker open" error instead of touching the
/// backend. After the cooldown, one trial call passes through: success
/// closes the breaker, failure re-opens it. Cooldown is measured in
/// calls, not wall time, so behavior is deterministic under test.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts per lookup (min 1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
    /// Consecutive failed calls that open a source's breaker
    /// (0 disables the breaker).
    pub breaker_threshold: u32,
    /// Calls a source's breaker stays open before a trial call.
    pub breaker_cooldown: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 0x5bac_cafe,
            breaker_threshold: 3,
            breaker_cooldown: 8,
        }
    }
}

impl RetryPolicy {
    /// No retries, no breaker: every backend error propagates on first
    /// occurrence. (Backoff fields are irrelevant at one attempt.)
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            breaker_threshold: 0,
            ..RetryPolicy::default()
        }
    }

    /// The jittered backoff before retry `attempt` (1-based) of call
    /// number `call`.
    fn backoff(&self, call: u64, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(16));
        let capped = exp.min(self.max_backoff);
        // Jitter factor in [0.5, 1.0): half the window is deterministic
        // headroom, the rest is seed-driven spread.
        let z = splitmix64(self.jitter_seed ^ (call << 8) ^ u64::from(attempt));
        let factor = 0.5 + 0.5 * (z as f64 / (u64::MAX as f64 + 1.0));
        capped.mul_f64(factor)
    }
}

/// The splitmix64 mixer: the deterministic randomness primitive behind
/// jitter and fault schedules (same construction the test RNGs use).
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-source circuit-breaker state (shared across chain clones).
#[derive(Debug, Default)]
struct Breaker {
    consecutive_failures: AtomicU32,
    /// Chain call-counter value until which the breaker is open;
    /// 0 = closed.
    open_until: AtomicU64,
}

/// Live counters behind [`ChainedCache::fault_stats`].
#[derive(Debug, Default)]
struct ChainCounters {
    retries: AtomicU64,
    transient: AtomicU64,
    permanent: AtomicU64,
    corrupt: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_skips: AtomicU64,
}

/// An ordered overlay of cache sources with first-hit-wins lookup.
///
/// Earlier sources shadow later ones: `get` returns the first source's
/// entry for a hash, and `candidates_for`/`iter` deduplicate by DAG hash
/// in source order. Chains nest — a `ChainedCache` is itself a
/// `CacheSource`.
///
/// The chain is also the fault boundary for its sources: every lookup
/// runs under a [`RetryPolicy`] (retries + backoff + per-source circuit
/// breaker), `get` verifies the fetched entry hashes to the requested
/// key (a corrupt mirror surfaces as [`CacheError::Corrupt`], never as a
/// wrong binary), and errors that outlive the retry budget propagate
/// with the failing backend's label. The chain never silently skips a
/// failing source — whether to degrade is the caller's call.
///
/// The chain owns shared handles to its sources (`Arc<dyn CacheSource>`),
/// so it is `'static`, cheaply cloneable, and safe to hand to worker
/// threads — a chain built once at daemon startup serves every request.
/// Clones share breaker state and fault counters with the original.
#[derive(Clone, Default)]
pub struct ChainedCache {
    sources: Vec<Arc<dyn CacheSource>>,
    breakers: Vec<Arc<Breaker>>,
    policy: RetryPolicy,
    /// Monotonic per-chain call counter: the breaker's logical clock and
    /// the jitter stream's call index.
    calls: Arc<AtomicU64>,
    counters: Arc<ChainCounters>,
}

impl ChainedCache {
    /// An empty chain (resolves nothing).
    pub fn new() -> ChainedCache {
        ChainedCache::default()
    }

    /// A chain over `sources`, highest priority first.
    pub fn with<I, S>(sources: I) -> ChainedCache
    where
        I: IntoIterator<Item = S>,
        S: IntoCacheSource,
    {
        let mut chain = ChainedCache::new();
        for s in sources {
            chain.push(s);
        }
        chain
    }

    /// Replace the fault-handling policy (retries, backoff, breaker).
    pub fn with_policy(mut self, policy: RetryPolicy) -> ChainedCache {
        self.policy = policy;
        self
    }

    /// Append a source at the lowest priority.
    pub fn push(&mut self, source: impl IntoCacheSource) {
        self.sources.push(source.into_cache_source());
        self.breakers.push(Arc::new(Breaker::default()));
    }

    /// The chained sources, highest priority first.
    pub fn sources(&self) -> &[Arc<dyn CacheSource>] {
        &self.sources
    }

    /// The active fault-handling policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Labels of sources whose circuit breaker is currently open.
    pub fn open_breakers(&self) -> Vec<String> {
        let now = self.calls.load(Ordering::Relaxed);
        self.sources
            .iter()
            .zip(&self.breakers)
            .filter(|(_, b)| b.open_until.load(Ordering::Relaxed) > now)
            .map(|(s, _)| s.label().to_string())
            .collect()
    }

    /// Record an error of `err`'s class in the chain counters.
    fn count_error(&self, err: &CacheError) {
        match err {
            CacheError::Transient { .. } => &self.counters.transient,
            CacheError::Corrupt { .. } => &self.counters.corrupt,
            _ => &self.counters.permanent,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Run one lookup against source `idx` under the retry policy and
    /// its breaker. `f` is re-invoked on each attempt.
    fn call_source<'a, T>(
        &'a self,
        idx: usize,
        f: impl Fn(&'a dyn CacheSource) -> Result<T, CacheError>,
    ) -> Result<T, CacheError> {
        let source = &self.sources[idx];
        let breaker = &self.breakers[idx];
        let call = self.calls.fetch_add(1, Ordering::Relaxed);

        if breaker.open_until.load(Ordering::Relaxed) > call {
            self.counters.breaker_skips.fetch_add(1, Ordering::Relaxed);
            return Err(CacheError::transient(
                source.label(),
                "circuit breaker open (source down past its retry budget)",
            ));
        }

        let attempts = self.policy.max_attempts.max(1);
        let mut last_err: Option<CacheError> = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                let pause = self.policy.backoff(call, attempt - 1);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
            match f(&**source) {
                Ok(v) => {
                    breaker.consecutive_failures.store(0, Ordering::Relaxed);
                    breaker.open_until.store(0, Ordering::Relaxed);
                    return Ok(v);
                }
                Err(e) => {
                    self.count_error(&e);
                    let retryable = e.is_retryable();
                    last_err = Some(e);
                    if !retryable {
                        break;
                    }
                }
            }
        }

        // The whole call failed; charge the breaker.
        let failures = breaker.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if self.policy.breaker_threshold > 0 && failures >= self.policy.breaker_threshold {
            let until = self
                .calls
                .load(Ordering::Relaxed)
                .saturating_add(u64::from(self.policy.breaker_cooldown));
            breaker.open_until.store(until, Ordering::Relaxed);
            breaker.consecutive_failures.store(0, Ordering::Relaxed);
            self.counters.breaker_opens.fetch_add(1, Ordering::Relaxed);
        }
        Err(last_err.expect("at least one attempt ran"))
    }
}

impl CacheSource for ChainedCache {
    fn get(&self, hash: SpecHash) -> Result<Option<&CacheEntry>, CacheError> {
        for idx in 0..self.sources.len() {
            let hit = self.call_source(idx, |s| match s.get(hash)? {
                Some(e) if e.spec.dag_hash() != hash => Err(CacheError::corrupt(
                    s.label(),
                    format!(
                        "entry fetched under /{} hashes to /{}",
                        hash.short(),
                        e.spec.dag_hash().short()
                    ),
                )),
                other => Ok(other),
            })?;
            if hit.is_some() {
                return Ok(hit);
            }
        }
        Ok(None)
    }

    fn candidates_for(&self, name: Sym) -> Result<Vec<&CacheEntry>, CacheError> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for idx in 0..self.sources.len() {
            let entries = self.call_source(idx, |s| {
                let found = s.candidates_for(name)?;
                if let Some(bad) = found.iter().find(|e| e.spec.root().name != name) {
                    return Err(CacheError::corrupt(
                        s.label(),
                        format!(
                            "candidate for {name} roots {} instead",
                            bad.spec.root().name
                        ),
                    ));
                }
                Ok(found)
            })?;
            for e in entries {
                if seen.insert(e.spec.dag_hash()) {
                    out.push(e);
                }
            }
        }
        Ok(out)
    }

    fn iter(&self) -> Result<Box<dyn Iterator<Item = &CacheEntry> + '_>, CacheError> {
        // Eager per source: each backend read runs under the retry
        // policy as one call, and the dedup is by first occurrence in
        // source order (same order as the infallible chain had).
        let mut seen = FxHashSet::default();
        let mut out: Vec<&CacheEntry> = Vec::new();
        for idx in 0..self.sources.len() {
            let entries =
                self.call_source(idx, |s| s.iter().map(Iterator::collect::<Vec<_>>))?;
            for e in entries {
                if seen.insert(e.spec.dag_hash()) {
                    out.push(e);
                }
            }
        }
        Ok(Box::new(out.into_iter()))
    }

    fn len(&self) -> usize {
        self.iter().map_or(0, Iterator::count)
    }

    fn label(&self) -> &str {
        "chain"
    }

    fn contains(&self, hash: SpecHash) -> Result<bool, CacheError> {
        Ok(self.get(hash)?.is_some())
    }

    fn fault_stats(&self) -> SourceFaultStats {
        let own = SourceFaultStats {
            retries: self.counters.retries.load(Ordering::Relaxed),
            transient_errors: self.counters.transient.load(Ordering::Relaxed),
            permanent_errors: self.counters.permanent.load(Ordering::Relaxed),
            corrupt_entries: self.counters.corrupt.load(Ordering::Relaxed),
            breaker_opens: self.counters.breaker_opens.load(Ordering::Relaxed),
            breaker_skips: self.counters.breaker_skips.load(Ordering::Relaxed),
            injected_faults: 0,
        };
        self.sources
            .iter()
            .fold(own, |acc, s| acc.merge(s.fault_stats()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Artifact;
    use crate::fault::{FaultConfig, FaultInjector};
    use spackle_spec::spec::{ConcreteSpecBuilder, DepTypes};
    use spackle_spec::Version;

    fn v(s: &str) -> Version {
        Version::parse(s).unwrap()
    }

    fn single(name: &str, ver: &str) -> spackle_spec::ConcreteSpec {
        let mut b = ConcreteSpecBuilder::new();
        let n = b.node(name, v(ver));
        b.build(n).unwrap()
    }

    fn pair(root: &str, dep: &str) -> spackle_spec::ConcreteSpec {
        let mut b = ConcreteSpecBuilder::new();
        let d = b.node(dep, v("1.0"));
        let r = b.node(root, v("2.0"));
        b.edge(r, d, DepTypes::LINK_RUN);
        b.build(r).unwrap()
    }

    /// A test policy with zero backoff so retry tests run instantly.
    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn chain_is_first_hit_wins() {
        let spec = single("zlib", "1.3");
        let hash = spec.dag_hash();
        let mut front = BuildCache::new();
        front.add_spec_with(&spec, |_| Artifact::build("/front", &[], vec![]).to_bytes());
        let mut back = BuildCache::new();
        back.add_spec_with(&spec, |_| Artifact::build("/back", &[], vec![]).to_bytes());

        let chain = ChainedCache::with(vec![front, back]);
        let hit = chain.get(hash).unwrap().expect("resolves");
        assert_eq!(hit.artifact().unwrap().own_prefix(), "/front");
        assert_eq!(chain.len(), 1, "shadowed entries count once");
    }

    #[test]
    fn chain_unions_distinct_entries() {
        let mut a = BuildCache::new();
        a.add_spec(&single("zlib", "1.2"));
        let mut b = BuildCache::new();
        b.add_spec(&single("zlib", "1.3"));
        b.add_spec(&pair("hdf5", "zlib"));

        let chain = ChainedCache::with(vec![a, b]);
        assert_eq!(chain.len(), 4); // zlib@1.2, zlib@1.3, zlib@1.0, hdf5
        assert_eq!(chain.candidates_for(Sym::intern("zlib")).unwrap().len(), 3);
        assert!(chain.contains(single("zlib", "1.2").dag_hash()).unwrap());
        assert!(chain.contains(pair("hdf5", "zlib").dag_hash()).unwrap());
        assert!(!chain.contains(single("zlib", "9.9").dag_hash()).unwrap());
    }

    #[test]
    fn chains_nest() {
        let mut a = BuildCache::new();
        a.add_spec(&single("zlib", "1.2"));
        let mut b = BuildCache::new();
        b.add_spec(&single("zlib", "1.3"));
        let inner = ChainedCache::with(vec![a]);
        let mut outer = ChainedCache::with(vec![inner]);
        outer.push(b);
        assert_eq!(outer.len(), 2);
        assert!(outer.contains(single("zlib", "1.2").dag_hash()).unwrap());
    }

    #[test]
    fn empty_chain_resolves_nothing() {
        let chain = ChainedCache::new();
        assert!(chain.is_empty());
        assert_eq!(chain.candidates_for(Sym::intern("zlib")).unwrap().len(), 0);
        assert!(chain.get(single("zlib", "1.3").dag_hash()).unwrap().is_none());
    }

    #[test]
    fn retries_recover_from_transient_faults() {
        let mut cache = BuildCache::new();
        let spec = single("zlib", "1.3");
        cache.add_spec(&spec);
        // Fail every other call: with 3 attempts per lookup, every
        // lookup eventually succeeds.
        let flaky = FaultInjector::new(cache, "flaky-mirror")
            .with_config(FaultConfig {
                seed: 7,
                error_rate: 0.5,
                transient_ratio: 1.0,
                ..FaultConfig::default()
            });
        // Enough attempts that no lookup in this fixed schedule exhausts
        // its budget; breaker off so every lookup reaches the backend.
        let chain = ChainedCache::with(vec![flaky]).with_policy(RetryPolicy {
            max_attempts: 12,
            breaker_threshold: 0,
            ..fast_policy()
        });
        for _ in 0..20 {
            assert!(chain.get(spec.dag_hash()).unwrap().is_some());
        }
        let stats = chain.fault_stats();
        assert!(stats.retries > 0, "some lookups must have retried: {stats:?}");
        assert!(stats.transient_errors > 0);
        assert_eq!(stats.permanent_errors, 0);
    }

    #[test]
    fn permanent_faults_do_not_retry() {
        let mut cache = BuildCache::new();
        let spec = single("zlib", "1.3");
        cache.add_spec(&spec);
        let down = FaultInjector::new(cache, "dead-mirror").with_config(FaultConfig {
            error_rate: 1.0,
            transient_ratio: 0.0,
            ..FaultConfig::default()
        });
        let chain = ChainedCache::with(vec![down]).with_policy(fast_policy());
        let err = chain.get(spec.dag_hash()).unwrap_err();
        assert!(matches!(err, CacheError::Permanent { .. }), "{err}");
        assert_eq!(err.backend(), Some("dead-mirror"));
        assert_eq!(chain.fault_stats().retries, 0, "permanent errors fail fast");
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_recovers() {
        let mut cache = BuildCache::new();
        let spec = single("zlib", "1.3");
        cache.add_spec(&spec);
        // Down for the first 10 inner calls, healthy afterwards.
        let outage = FaultInjector::new(cache, "mirror").with_config(FaultConfig {
            fail_calls: Some(0..10),
            ..FaultConfig::default()
        });
        let policy = RetryPolicy {
            max_attempts: 1,
            breaker_threshold: 2,
            breaker_cooldown: 4,
            ..fast_policy()
        };
        let chain = ChainedCache::with(vec![outage]).with_policy(policy);

        let mut skipped = 0u64;
        let mut recovered = false;
        for _ in 0..100 {
            match chain.get(spec.dag_hash()) {
                Ok(Some(_)) => {
                    recovered = true;
                    break;
                }
                Ok(None) => panic!("entry vanished"),
                Err(_) => {}
            }
            skipped = chain.fault_stats().breaker_skips;
        }
        assert!(recovered, "source must recover after the outage window");
        let stats = chain.fault_stats();
        assert!(stats.breaker_opens >= 1, "breaker must have opened: {stats:?}");
        assert!(skipped >= 1, "open breaker must fail calls fast");
        // Once recovered, the breaker stays closed.
        assert!(chain.get(spec.dag_hash()).unwrap().is_some());
        assert!(chain.open_breakers().is_empty());
    }

    #[test]
    fn corrupt_entries_are_detected_not_served() {
        let mut cache = BuildCache::new();
        let spec = single("zlib", "1.3");
        cache.add_spec(&spec);
        let corrupting = FaultInjector::new(cache, "bitrot").with_config(FaultConfig {
            corrupt_rate: 1.0,
            ..FaultConfig::default()
        });
        let chain = ChainedCache::with(vec![corrupting])
            .with_policy(RetryPolicy::no_retries());
        let err = chain.get(spec.dag_hash()).unwrap_err();
        assert!(matches!(err, CacheError::Corrupt { .. }), "{err}");
        assert!(chain.fault_stats().corrupt_entries >= 1);
    }

    #[test]
    fn labeled_wrapper_renames_without_changing_lookups() {
        let mut cache = BuildCache::new();
        let spec = single("zlib", "1.3");
        cache.add_spec(&spec);
        let labeled = Labeled::new(cache, "local");
        assert_eq!(labeled.label(), "local");
        assert!(labeled.get(spec.dag_hash()).unwrap().is_some());
        assert_eq!(labeled.len(), 1);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(16),
            ..RetryPolicy::default()
        };
        for call in 0..64u64 {
            for attempt in 1..4u32 {
                let a = p.backoff(call, attempt);
                let b = p.backoff(call, attempt);
                assert_eq!(a, b, "same (seed, call, attempt) → same backoff");
                assert!(a <= Duration::from_millis(16));
                assert!(a >= Duration::from_millis(2), "jitter floor is half the step");
            }
        }
    }
}
