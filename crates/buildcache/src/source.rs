//! The multi-backend cache seam: [`CacheSource`] and [`ChainedCache`].
//!
//! Everything downstream of the cache — reuse fact injection in the
//! concretizer, install planning, binary execution, ABI audits — only
//! ever needs three lookups: by exact hash, by package name, and full
//! iteration. [`CacheSource`] captures exactly that surface as an
//! object-safe trait, so those layers accept `&dyn CacheSource` and
//! never learn whether they are talking to one in-memory index, a chain
//! of local + public caches, or (later) a remote mirror.
//!
//! [`ChainedCache`] is the first combinator over the seam: an ordered
//! overlay of sources with first-hit-wins lookup, mirroring Spack's
//! ordered mirror list. A spliced install can therefore find a spec's
//! *run* binary in the local cache and its *build-spec* binary in the
//! public one without any caller-side plumbing.
//!
//! Sources are **shared, not borrowed**: long-lived consumers (the
//! `spackled` concretization service, benchmark harnesses, worker
//! threads) hold `Arc<dyn CacheSource>` handles, so one in-memory index
//! can back any number of concurrent solves without a lifetime tying it
//! to a single stack frame. [`IntoCacheSource`] keeps short-lived
//! callers ergonomic: passing an owned source, an `Arc`, or a `&source`
//! (cloned) all work at the same call site.

use crate::cache::{BuildCache, CacheEntry};
use rustc_hash::FxHashSet;
use spackle_spec::{SpecHash, Sym};
use std::sync::Arc;

/// Read access to a collection of reusable specs and their binaries.
///
/// Object-safe on purpose: planners and solvers hold `&dyn CacheSource`
/// or `Arc<dyn CacheSource>` so new backends never force an API break.
/// `Send + Sync` is part of the contract: every source must tolerate
/// concurrent readers, because one cache instance backs many solver
/// threads in the shared-state concretizer API. Implementations must be
/// internally consistent — every entry reachable from [`iter`] must also
/// be reachable via [`get`] under its spec's DAG hash.
///
/// [`iter`]: CacheSource::iter
/// [`get`]: CacheSource::get
pub trait CacheSource: Send + Sync {
    /// Exact-hash lookup.
    fn get(&self, hash: SpecHash) -> Option<&CacheEntry>;

    /// Entries whose root package is `name`, best candidate first.
    fn candidates_for(&self, name: Sym) -> Vec<&CacheEntry>;

    /// Iterate every entry, deterministically.
    fn iter(&self) -> Box<dyn Iterator<Item = &CacheEntry> + '_>;

    /// Number of distinct entries.
    fn len(&self) -> usize;

    /// Is a spec with this hash available?
    fn contains(&self, hash: SpecHash) -> bool {
        self.get(hash).is_some()
    }

    /// Does the source hold no entries?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An order-sensitive fingerprint of the reusable-spec set: the DAG
    /// hash of every entry, in [`iter`] order. Two sources with the same
    /// fingerprint inject the same reuse facts into the concretizer, so
    /// this is the cache-identity input to ground-program memoization.
    /// Valid within one process only (it uses the default `Hasher`);
    /// never persist it.
    ///
    /// [`iter`]: CacheSource::iter
    fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.len().hash(&mut h);
        for e in self.iter() {
            e.spec.dag_hash().0.hash(&mut h);
        }
        h.finish()
    }
}

impl CacheSource for BuildCache {
    fn get(&self, hash: SpecHash) -> Option<&CacheEntry> {
        BuildCache::get(self, hash)
    }

    fn candidates_for(&self, name: Sym) -> Vec<&CacheEntry> {
        BuildCache::candidates_for(self, name)
    }

    fn iter(&self) -> Box<dyn Iterator<Item = &CacheEntry> + '_> {
        Box::new(self.entries())
    }

    fn len(&self) -> usize {
        BuildCache::len(self)
    }

    fn contains(&self, hash: SpecHash) -> bool {
        BuildCache::contains(self, hash)
    }
}

/// Conversion into a shared cache-source handle.
///
/// This is the argument seam of the owned concretizer API: any of the
/// following work where an `impl IntoCacheSource` is expected —
///
/// * an owned source (`BuildCache`, `ChainedCache`, a custom backend) —
///   moved into a fresh `Arc`; pass `cache.clone()` to keep using the
///   original (the clone is explicit on purpose — it is a real copy);
/// * `Arc<dyn CacheSource>` / `&Arc<dyn CacheSource>` — shared verbatim,
///   the zero-copy form long-lived and hot-path callers should use so
///   every solve reads one index instead of copying it.
///
/// Clones share the original's [`CacheSource::fingerprint`] (it is
/// content-derived), so ground-program memoization keys are unaffected
/// by which conversion a call site picks. (Coherence keeps this trait
/// from also accepting `&source` or `Arc<ConcreteType>` directly: a
/// downstream crate may implement `CacheSource` for its own references
/// or `Arc` wrappers, which would make those blanket impls ambiguous.
/// Coerce once — `let c: Arc<dyn CacheSource> = Arc::new(source);` —
/// and share `&c` from then on.)
pub trait IntoCacheSource {
    /// Produce the shared handle.
    fn into_cache_source(self) -> Arc<dyn CacheSource>;
}

impl<T: CacheSource + 'static> IntoCacheSource for T {
    fn into_cache_source(self) -> Arc<dyn CacheSource> {
        Arc::new(self)
    }
}

impl IntoCacheSource for Arc<dyn CacheSource> {
    fn into_cache_source(self) -> Arc<dyn CacheSource> {
        self
    }
}

impl IntoCacheSource for &Arc<dyn CacheSource> {
    fn into_cache_source(self) -> Arc<dyn CacheSource> {
        Arc::clone(self)
    }
}

/// An ordered overlay of cache sources with first-hit-wins lookup.
///
/// Earlier sources shadow later ones: `get` returns the first source's
/// entry for a hash, and `candidates_for`/`iter` deduplicate by DAG hash
/// in source order. Chains nest — a `ChainedCache` is itself a
/// `CacheSource`.
///
/// The chain owns shared handles to its sources (`Arc<dyn CacheSource>`),
/// so it is `'static`, cheaply cloneable, and safe to hand to worker
/// threads — a chain built once at daemon startup serves every request.
#[derive(Default, Clone)]
pub struct ChainedCache {
    sources: Vec<Arc<dyn CacheSource>>,
}

impl ChainedCache {
    /// An empty chain (resolves nothing).
    pub fn new() -> ChainedCache {
        ChainedCache::default()
    }

    /// A chain over `sources`, highest priority first.
    pub fn with<I, S>(sources: I) -> ChainedCache
    where
        I: IntoIterator<Item = S>,
        S: IntoCacheSource,
    {
        ChainedCache {
            sources: sources.into_iter().map(IntoCacheSource::into_cache_source).collect(),
        }
    }

    /// Append a source at the lowest priority.
    pub fn push(&mut self, source: impl IntoCacheSource) {
        self.sources.push(source.into_cache_source());
    }

    /// The chained sources, highest priority first.
    pub fn sources(&self) -> &[Arc<dyn CacheSource>] {
        &self.sources
    }
}

impl CacheSource for ChainedCache {
    fn get(&self, hash: SpecHash) -> Option<&CacheEntry> {
        self.sources.iter().find_map(|s| s.get(hash))
    }

    fn candidates_for(&self, name: Sym) -> Vec<&CacheEntry> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for s in &self.sources {
            for e in s.candidates_for(name) {
                if seen.insert(e.spec.dag_hash()) {
                    out.push(e);
                }
            }
        }
        out
    }

    fn iter(&self) -> Box<dyn Iterator<Item = &CacheEntry> + '_> {
        let mut seen = FxHashSet::default();
        Box::new(
            self.sources
                .iter()
                .flat_map(|s| s.iter())
                .filter(move |e| seen.insert(e.spec.dag_hash())),
        )
    }

    fn len(&self) -> usize {
        self.iter().count()
    }

    fn contains(&self, hash: SpecHash) -> bool {
        self.sources.iter().any(|s| s.contains(hash))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Artifact;
    use spackle_spec::spec::{ConcreteSpecBuilder, DepTypes};
    use spackle_spec::Version;

    fn v(s: &str) -> Version {
        Version::parse(s).unwrap()
    }

    fn single(name: &str, ver: &str) -> spackle_spec::ConcreteSpec {
        let mut b = ConcreteSpecBuilder::new();
        let n = b.node(name, v(ver));
        b.build(n).unwrap()
    }

    fn pair(root: &str, dep: &str) -> spackle_spec::ConcreteSpec {
        let mut b = ConcreteSpecBuilder::new();
        let d = b.node(dep, v("1.0"));
        let r = b.node(root, v("2.0"));
        b.edge(r, d, DepTypes::LINK_RUN);
        b.build(r).unwrap()
    }

    #[test]
    fn chain_is_first_hit_wins() {
        let spec = single("zlib", "1.3");
        let hash = spec.dag_hash();
        let mut front = BuildCache::new();
        front.add_spec_with(&spec, |_| Artifact::build("/front", &[], vec![]).to_bytes());
        let mut back = BuildCache::new();
        back.add_spec_with(&spec, |_| Artifact::build("/back", &[], vec![]).to_bytes());

        let chain = ChainedCache::with(vec![front, back]);
        let hit = chain.get(hash).expect("resolves");
        assert_eq!(hit.artifact().unwrap().own_prefix(), "/front");
        assert_eq!(chain.len(), 1, "shadowed entries count once");
    }

    #[test]
    fn chain_unions_distinct_entries() {
        let mut a = BuildCache::new();
        a.add_spec(&single("zlib", "1.2"));
        let mut b = BuildCache::new();
        b.add_spec(&single("zlib", "1.3"));
        b.add_spec(&pair("hdf5", "zlib"));

        let chain = ChainedCache::with(vec![a, b]);
        assert_eq!(chain.len(), 4); // zlib@1.2, zlib@1.3, zlib@1.0, hdf5
        assert_eq!(chain.candidates_for(Sym::intern("zlib")).len(), 3);
        assert!(chain.contains(single("zlib", "1.2").dag_hash()));
        assert!(chain.contains(pair("hdf5", "zlib").dag_hash()));
        assert!(!chain.contains(single("zlib", "9.9").dag_hash()));
    }

    #[test]
    fn chains_nest() {
        let mut a = BuildCache::new();
        a.add_spec(&single("zlib", "1.2"));
        let mut b = BuildCache::new();
        b.add_spec(&single("zlib", "1.3"));
        let inner = ChainedCache::with(vec![a]);
        let mut outer = ChainedCache::with(vec![inner]);
        outer.push(b);
        assert_eq!(outer.len(), 2);
        assert!(outer.contains(single("zlib", "1.2").dag_hash()));
    }

    #[test]
    fn empty_chain_resolves_nothing() {
        let chain = ChainedCache::new();
        assert!(chain.is_empty());
        assert_eq!(chain.candidates_for(Sym::intern("zlib")).len(), 0);
        assert!(chain.get(single("zlib", "1.3").dag_hash()).is_none());
    }
}
