//! The content-addressed buildcache index (paper §6.1.3).
//!
//! A [`BuildCache`] maps [`SpecHash`]es to [`CacheEntry`]s — a concrete
//! spec (the full sub-DAG it roots) plus the serialized binary artifact
//! built for it. Registering a spec registers **every node** of its DAG:
//! each sub-DAG is a reusable spec in its own right, which is what lets
//! the concretizer reuse `zlib` out of a cached `hdf5` build.
//!
//! Secondary indexes by package name and by `(name, version)` serve the
//! [`CacheSource::candidates_for`](crate::CacheSource::candidates_for)
//! lookups without scanning; the primary index is an ordered map so
//! iteration, JSON output, and `spackle list` are deterministic.
//!
//! Persistence is a versioned JSON document (`CACHE_SCHEMA_VERSION`).
//! Corrupt, truncated, or wrong-version input is rejected with a
//! [`CacheError`] — never a panic — and every entry's key is verified
//! against its spec's DAG hash on load, so a tampered index cannot serve
//! mismatched binaries.

use crate::artifact::{Artifact, ArtifactError};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use spackle_spec::{ConcreteSpec, SpecHash, Sym, Version};
use std::collections::BTreeMap;
use std::fmt;

/// Current JSON schema version written by [`BuildCache::to_json`].
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// Errors loading a persisted cache index or reading a cache backend.
///
/// The first three variants are index-load failures (local, permanent by
/// nature). The last three form the runtime fault taxonomy of the
/// fallible [`CacheSource`](crate::CacheSource) seam: `Transient` reads
/// may succeed on retry, `Permanent` ones will not, and `Corrupt` marks
/// a backend that answered with data failing an integrity check. Each
/// carries the *backend* label where the fault originated, so a failure
/// deep inside a chained mirror list keeps its provenance all the way up
/// to daemon telemetry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheError {
    /// The document is not valid JSON for the cache schema (syntax
    /// errors, missing fields, malformed hashes or specs).
    Parse(String),
    /// The document's schema version is not readable by this library.
    WrongSchemaVersion {
        /// Version found in the document.
        found: u32,
        /// Newest version this library understands.
        supported: u32,
    },
    /// An entry's key does not match its spec's DAG hash (a tampered or
    /// inconsistent index).
    HashMismatch {
        /// The key the entry was filed under (short form).
        key: String,
        /// The hash its spec actually has (short form).
        actual: String,
    },
    /// A backend read failed in a way a retry may fix (timeout, reset
    /// connection, throttling, a mirror mid-sync).
    Transient {
        /// Label of the failing backend.
        backend: String,
        /// What went wrong.
        detail: String,
    },
    /// A backend read failed in a way no retry will fix (missing index,
    /// authorization failure, unsupported protocol).
    Permanent {
        /// Label of the failing backend.
        backend: String,
        /// What went wrong.
        detail: String,
    },
    /// A backend answered, but the data failed an integrity check (an
    /// entry whose spec hashes differently than the key it was fetched
    /// under, an unreadable index page). Retryable: a flaky mirror may
    /// serve a good copy next time.
    Corrupt {
        /// Label of the offending backend.
        backend: String,
        /// What the integrity check found.
        detail: String,
    },
}

impl CacheError {
    /// A [`CacheError::Transient`] with the given provenance.
    pub fn transient(backend: impl Into<String>, detail: impl Into<String>) -> CacheError {
        CacheError::Transient {
            backend: backend.into(),
            detail: detail.into(),
        }
    }

    /// A [`CacheError::Permanent`] with the given provenance.
    pub fn permanent(backend: impl Into<String>, detail: impl Into<String>) -> CacheError {
        CacheError::Permanent {
            backend: backend.into(),
            detail: detail.into(),
        }
    }

    /// A [`CacheError::Corrupt`] with the given provenance.
    pub fn corrupt(backend: impl Into<String>, detail: impl Into<String>) -> CacheError {
        CacheError::Corrupt {
            backend: backend.into(),
            detail: detail.into(),
        }
    }

    /// May a retry of the same read succeed? True for `Transient` and
    /// `Corrupt` (a flaky backend can serve a good copy next attempt),
    /// false for everything else.
    pub fn is_retryable(&self) -> bool {
        matches!(self, CacheError::Transient { .. } | CacheError::Corrupt { .. })
    }

    /// The backend the fault originated at, when known.
    pub fn backend(&self) -> Option<&str> {
        match self {
            CacheError::Transient { backend, .. }
            | CacheError::Permanent { backend, .. }
            | CacheError::Corrupt { backend, .. } => Some(backend),
            _ => None,
        }
    }
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Parse(m) => write!(f, "invalid cache index: {m}"),
            CacheError::WrongSchemaVersion { found, supported } => write!(
                f,
                "cache schema version {found} unsupported (this library reads up to {supported})"
            ),
            CacheError::HashMismatch { key, actual } => write!(
                f,
                "cache entry /{key} holds a spec whose DAG hash is /{actual}"
            ),
            CacheError::Transient { backend, detail } => {
                write!(f, "transient cache failure ({backend}): {detail}")
            }
            CacheError::Permanent { backend, detail } => {
                write!(f, "permanent cache failure ({backend}): {detail}")
            }
            CacheError::Corrupt { backend, detail } => {
                write!(f, "corrupt cache data ({backend}): {detail}")
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// One reusable spec and its (possibly empty) binary artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The concrete spec, carrying its full dependency closure.
    pub spec: ConcreteSpec,
    /// Serialized [`Artifact`] bytes; empty for index-only entries
    /// (reusable for concretization but not installable as a binary).
    #[serde(default)]
    pub artifact: Vec<u8>,
}

impl CacheEntry {
    /// Parse the stored artifact bytes.
    pub fn artifact(&self) -> Result<Artifact, ArtifactError> {
        Artifact::from_bytes(&self.artifact)
    }

    /// Does this entry carry binary bytes (vs. index-only)?
    pub fn has_artifact(&self) -> bool {
        !self.artifact.is_empty()
    }
}

/// A content-addressed index of reusable specs and their binaries.
#[derive(Clone, Debug, Default)]
pub struct BuildCache {
    /// Primary index: DAG hash → entry, ordered for deterministic
    /// iteration and serialization.
    entries: BTreeMap<SpecHash, CacheEntry>,
    /// Secondary index: root package name → hashes, in insertion order.
    by_name: FxHashMap<Sym, Vec<SpecHash>>,
    /// Secondary index: (root package name, root version) → hashes.
    by_version: FxHashMap<(Sym, Version), Vec<SpecHash>>,
}

/// On-disk schema (kept private so the wire format can evolve
/// independently of the in-memory representation).
#[derive(Serialize, Deserialize)]
struct CacheFile {
    version: u32,
    entries: BTreeMap<SpecHash, CacheEntry>,
}

impl BuildCache {
    /// Empty cache.
    pub fn new() -> BuildCache {
        BuildCache::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Exact-hash lookup.
    pub fn get(&self, hash: SpecHash) -> Option<&CacheEntry> {
        self.entries.get(&hash)
    }

    /// Is a spec with this hash cached?
    pub fn contains(&self, hash: SpecHash) -> bool {
        self.entries.contains_key(&hash)
    }

    /// Iterate entries in hash order (deterministic).
    pub fn entries(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.values()
    }

    /// Iterate `(hash, entry)` pairs in hash order.
    pub fn iter_hashed(&self) -> impl Iterator<Item = (SpecHash, &CacheEntry)> {
        self.entries.iter().map(|(h, e)| (*h, e))
    }

    /// Entries whose *root* package is `name`, in insertion order.
    pub fn candidates_for(&self, name: Sym) -> Vec<&CacheEntry> {
        self.by_name
            .get(&name)
            .map(|hashes| {
                hashes
                    .iter()
                    .map(|h| self.entries.get(h).expect("index consistent"))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Entries whose root is exactly `name@version`, in insertion order.
    pub fn candidates_for_version(&self, name: Sym, version: &Version) -> Vec<&CacheEntry> {
        self.by_version
            .get(&(name, version.clone()))
            .map(|hashes| {
                hashes
                    .iter()
                    .map(|h| self.entries.get(h).expect("index consistent"))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Register every node of `spec`'s DAG as an index-only entry (no
    /// artifact bytes). Already-present hashes are left untouched.
    pub fn add_spec(&mut self, spec: &ConcreteSpec) {
        self.add_spec_with(spec, |_| Vec::new());
    }

    /// Register every node of `spec`'s DAG, synthesizing artifact bytes
    /// for each newly added sub-DAG with `make_artifact` (called with the
    /// sub-spec rooted at that node).
    pub fn add_spec_with(
        &mut self,
        spec: &ConcreteSpec,
        mut make_artifact: impl FnMut(&ConcreteSpec) -> Vec<u8>,
    ) {
        for id in spec.all_ids() {
            let hash = spec.node(id).hash;
            if self.entries.contains_key(&hash) {
                continue;
            }
            let sub = spec.subdag(id);
            debug_assert_eq!(sub.dag_hash(), hash, "node hash covers its sub-DAG");
            let artifact = make_artifact(&sub);
            self.insert_entry(CacheEntry { spec: sub, artifact });
        }
    }

    /// Copy every entry of `other` not already present.
    pub fn merge(&mut self, other: &BuildCache) {
        for (hash, entry) in &other.entries {
            if !self.entries.contains_key(hash) {
                self.insert_entry(entry.clone());
            }
        }
    }

    /// Insert a single entry and maintain the secondary indexes. The key
    /// is derived from the entry's spec (content addressing: the caller
    /// cannot file an entry under a wrong hash).
    fn insert_entry(&mut self, entry: CacheEntry) {
        let hash = entry.spec.dag_hash();
        let root = entry.spec.root();
        let (name, version) = (root.name, root.version.clone());
        if self.entries.insert(hash, entry).is_none() {
            self.by_name.entry(name).or_default().push(hash);
            self.by_version.entry((name, version)).or_default().push(hash);
        }
    }

    /// Serialize to the versioned JSON schema.
    pub fn to_json(&self) -> String {
        let file = CacheFile {
            version: CACHE_SCHEMA_VERSION,
            entries: self.entries.clone(),
        };
        serde_json::to_string(&file).expect("cache serialization cannot fail")
    }

    /// Load from the versioned JSON schema, validating the schema
    /// version and every entry's content address.
    pub fn from_json(s: &str) -> Result<BuildCache, CacheError> {
        let file: CacheFile =
            serde_json::from_str(s).map_err(|e| CacheError::Parse(e.to_string()))?;
        if file.version != CACHE_SCHEMA_VERSION {
            return Err(CacheError::WrongSchemaVersion {
                found: file.version,
                supported: CACHE_SCHEMA_VERSION,
            });
        }
        let mut cache = BuildCache::new();
        for (key, entry) in file.entries {
            // Serde checks field shapes, not graph invariants: reject
            // dangling node indices before any traversal can index out
            // of bounds.
            validate_structure(&entry.spec)
                .map_err(|e| CacheError::Parse(format!("entry /{}: {e}", key.short())))?;
            // Recompute the content hash rather than trusting the stored
            // one: a tampered index cannot launder a mismatched spec by
            // rewriting both the key and the embedded hash.
            let mut check = entry.spec.clone();
            check
                .rehash()
                .map_err(|e| CacheError::Parse(format!("entry /{}: {e}", key.short())))?;
            let actual = check.dag_hash();
            if actual != key || entry.spec.dag_hash() != key {
                return Err(CacheError::HashMismatch {
                    key: key.short(),
                    actual: actual.short(),
                });
            }
            cache.insert_entry(entry);
        }
        Ok(cache)
    }
}

/// Check that a deserialized spec's node indices are all in bounds
/// (including nested build-spec provenance) so graph traversals cannot
/// panic on hostile input.
fn validate_structure(spec: &ConcreteSpec) -> Result<(), String> {
    let n = spec.nodes().len();
    if n == 0 {
        return Err("spec has no nodes".into());
    }
    if spec.root_id() >= n {
        return Err(format!("root index {} out of bounds ({n} nodes)", spec.root_id()));
    }
    for (id, node) in spec.nodes().iter().enumerate() {
        for &(dep, _) in &node.deps {
            if dep >= n {
                return Err(format!("node {id} depends on index {dep} out of bounds ({n} nodes)"));
            }
        }
        if let Some(bs) = &node.build_spec {
            validate_structure(bs).map_err(|e| format!("node {id} build spec: {e}"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spackle_spec::spec::{ConcreteSpecBuilder, DepTypes};

    fn v(s: &str) -> Version {
        Version::parse(s).unwrap()
    }

    fn diamond() -> ConcreteSpec {
        let mut b = ConcreteSpecBuilder::new();
        let z = b.node("zlib", v("1.3"));
        let la = b.node("liba", v("2.0"));
        let lb = b.node("libb", v("3.1"));
        let app = b.node("app", v("1.0"));
        b.edge(la, z, DepTypes::LINK_RUN);
        b.edge(lb, z, DepTypes::LINK_RUN);
        b.edge(app, la, DepTypes::LINK_RUN);
        b.edge(app, lb, DepTypes::LINK_RUN);
        b.build(app).unwrap()
    }

    #[test]
    fn add_spec_registers_every_node() {
        let mut cache = BuildCache::new();
        cache.add_spec(&diamond());
        assert_eq!(cache.len(), 4);
        let spec = diamond();
        for id in spec.all_ids() {
            assert!(cache.contains(spec.node(id).hash));
        }
    }

    #[test]
    fn add_spec_with_sees_each_subdag_once() {
        let mut cache = BuildCache::new();
        let mut roots_seen = Vec::new();
        cache.add_spec_with(&diamond(), |sub| {
            roots_seen.push(sub.root().name.as_str().to_string());
            sub.root().name.as_str().as_bytes().to_vec()
        });
        roots_seen.sort();
        assert_eq!(roots_seen, ["app", "liba", "libb", "zlib"]);
        // Re-adding the same spec synthesizes nothing new.
        cache.add_spec_with(&diamond(), |_| panic!("already cached"));
    }

    #[test]
    fn name_and_version_indexes() {
        let mut cache = BuildCache::new();
        cache.add_spec(&diamond());
        let zlib = cache.candidates_for(Sym::intern("zlib"));
        assert_eq!(zlib.len(), 1);
        assert_eq!(zlib[0].spec.root().version, v("1.3"));
        assert!(cache.candidates_for(Sym::intern("nope")).is_empty());
        assert_eq!(
            cache.candidates_for_version(Sym::intern("zlib"), &v("1.3")).len(),
            1
        );
        assert!(cache
            .candidates_for_version(Sym::intern("zlib"), &v("9.9"))
            .is_empty());
    }

    #[test]
    fn merge_deduplicates() {
        let mut a = BuildCache::new();
        a.add_spec(&diamond());
        let mut b = BuildCache::new();
        b.add_spec(&diamond());
        let mut zb = ConcreteSpecBuilder::new();
        let z = zb.node("zlib", v("1.2"));
        b.add_spec(&zb.build(z).unwrap());
        a.merge(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.candidates_for(Sym::intern("zlib")).len(), 2);
    }

    #[test]
    fn json_roundtrip_preserves_entries_and_indexes() {
        let mut cache = BuildCache::new();
        cache.add_spec_with(&diamond(), |sub| {
            Artifact::build(&format!("/opt/{}", sub.root().name), &[], vec![]).to_bytes()
        });
        let back = BuildCache::from_json(&cache.to_json()).unwrap();
        assert_eq!(back.len(), cache.len());
        for (h, e) in cache.iter_hashed() {
            let b = back.get(h).expect("entry survives");
            assert_eq!(b.spec.dag_hash(), e.spec.dag_hash());
            assert_eq!(b.artifact, e.artifact);
        }
        assert_eq!(back.candidates_for(Sym::intern("zlib")).len(), 1);
    }

    #[test]
    fn wrong_schema_version_rejected() {
        let mut cache = BuildCache::new();
        cache.add_spec(&diamond());
        let json = cache.to_json().replacen("\"version\":1", "\"version\":999", 1);
        assert!(matches!(
            BuildCache::from_json(&json),
            Err(CacheError::WrongSchemaVersion { found: 999, .. })
        ));
    }

    #[test]
    fn tampered_key_rejected() {
        let mut cache = BuildCache::new();
        let mut zb = ConcreteSpecBuilder::new();
        let z = zb.node("zlib", v("1.3"));
        let spec = zb.build(z).unwrap();
        cache.add_spec(&spec);
        let real = spec.dag_hash().to_base32();
        let fake = SpecHash([7u8; 32]).to_base32();
        let json = cache.to_json().replace(&real, &fake);
        // Rewriting both the key and the embedded hash is still caught:
        // the hash is recomputed from the spec's content on load.
        assert!(matches!(
            BuildCache::from_json(&json),
            Err(CacheError::HashMismatch { .. })
        ));
    }
}
