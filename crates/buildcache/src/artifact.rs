//! The synthetic binary artifact format (paper §6.1.3).
//!
//! Real Spack buildcaches hold compiled ELF/Mach-O objects whose RPATHs
//! embed absolute install prefixes. This reproduction models exactly the
//! properties the paper's mechanisms manipulate:
//!
//! * **NUL-padded path slots** standing in for RPATH entries — slot 0 is
//!   the artifact's own install prefix, the rest are its direct link-run
//!   dependency prefixes in sorted-name order. Relocation (`§3.4`)
//!   rewrites a slot in place when the new path fits its capacity and
//!   grows it otherwise (the `patchelf` lengthening fallback); rewiring
//!   (`§4.2`) redirects dependency slots across a splice.
//! * **A symbol table** standing in for the exported ABI surface.
//!   Entries of the form `Name=layout` are type-layout markers (the
//!   paper's §2.1 `MPI_Comm` problem); everything else is a plain
//!   exported symbol. ABI discovery (`crate::abi`) compares these.
//!
//! The encoding is fully deterministic: building the same artifact twice
//! yields byte-identical output, which is what makes cache entries
//! content-addressable and installs reproducible.

use std::fmt;

/// Current artifact wire-format version.
pub const ARTIFACT_FORMAT_VERSION: u16 = 1;

/// Fresh padding granted to a path slot at build time and when a slot is
/// lengthened: room for the next relocation to patch in place.
pub const SLOT_HEADROOM: usize = 16;

const MAGIC: &[u8; 4] = b"SPKL";

/// Errors parsing or validating artifact bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactError {
    /// The bytes are not a well-formed artifact (bad magic, truncation,
    /// inconsistent lengths, invalid UTF-8, trailing garbage).
    Corrupt(String),
    /// The bytes carry a format version this library cannot read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Newest version this library understands.
        supported: u16,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Corrupt(m) => write!(f, "corrupt artifact: {m}"),
            ArtifactError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported artifact format version {found} (this library reads up to {supported})"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// A parsed synthetic binary.
///
/// `paths[0]` is the own install prefix; `paths[1..]` are dependency
/// prefixes. Each slot records its byte capacity alongside the current
/// path so relocation can decide between in-place patching and
/// lengthening.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Artifact {
    /// Path slots as `(slot capacity, current path)` pairs.
    pub paths: Vec<(usize, String)>,
    /// Exported symbols and type-layout markers (`Name=layout`).
    pub symbols: Vec<String>,
}

impl Artifact {
    /// Synthesize the artifact a build at `own_prefix` against
    /// `dep_prefixes` would produce, exporting `symbols`. Every path
    /// slot gets [`SLOT_HEADROOM`] bytes of padding beyond its initial
    /// content.
    pub fn build(own_prefix: &str, dep_prefixes: &[String], symbols: Vec<String>) -> Artifact {
        let mut paths = Vec::with_capacity(1 + dep_prefixes.len());
        paths.push((own_prefix.len() + SLOT_HEADROOM, own_prefix.to_string()));
        for d in dep_prefixes {
            paths.push((d.len() + SLOT_HEADROOM, d.clone()));
        }
        Artifact { paths, symbols }
    }

    /// The install prefix this artifact believes it lives at.
    pub fn own_prefix(&self) -> &str {
        self.paths.first().map(|(_, p)| p.as_str()).unwrap_or("")
    }

    /// The embedded dependency prefixes, in slot order.
    pub fn dep_prefixes(&self) -> Vec<&str> {
        self.paths.iter().skip(1).map(|(_, p)| p.as_str()).collect()
    }

    /// Serialize to the deterministic wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let path_bytes: usize = self.paths.iter().map(|(slot, _)| 8 + slot).sum();
        let sym_bytes: usize = self.symbols.iter().map(|s| 4 + s.len()).sum();
        let mut out = Vec::with_capacity(4 + 2 + 8 + path_bytes + sym_bytes);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&ARTIFACT_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.paths.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.symbols.len() as u32).to_le_bytes());
        for (slot, path) in &self.paths {
            debug_assert!(path.len() <= *slot, "path overflows its slot");
            out.extend_from_slice(&(*slot as u32).to_le_bytes());
            out.extend_from_slice(&(path.len() as u32).to_le_bytes());
            out.extend_from_slice(path.as_bytes());
            out.resize(out.len() + (slot - path.len()), 0); // NUL padding
        }
        for sym in &self.symbols {
            out.extend_from_slice(&(sym.len() as u32).to_le_bytes());
            out.extend_from_slice(sym.as_bytes());
        }
        out
    }

    /// Parse the wire format back into an artifact.
    pub fn from_bytes(bytes: &[u8]) -> Result<Artifact, ArtifactError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(4, "magic")?;
        if magic != MAGIC {
            return Err(ArtifactError::Corrupt("bad magic".into()));
        }
        let version = u16::from_le_bytes(r.take(2, "format version")?.try_into().expect("len 2"));
        if version != ARTIFACT_FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                found: version,
                supported: ARTIFACT_FORMAT_VERSION,
            });
        }
        let n_paths = r.u32("path count")? as usize;
        let n_syms = r.u32("symbol count")? as usize;
        if n_paths == 0 {
            return Err(ArtifactError::Corrupt("artifact has no own-prefix slot".into()));
        }
        let mut paths = Vec::with_capacity(n_paths.min(1024));
        for i in 0..n_paths {
            let slot = r.u32(&format!("slot {i} capacity"))? as usize;
            let plen = r.u32(&format!("slot {i} path length"))? as usize;
            if plen > slot {
                return Err(ArtifactError::Corrupt(format!(
                    "slot {i}: path length {plen} exceeds capacity {slot}"
                )));
            }
            let raw = r.take(slot, &format!("slot {i} contents"))?;
            let path = std::str::from_utf8(&raw[..plen])
                .map_err(|_| ArtifactError::Corrupt(format!("slot {i}: path is not UTF-8")))?;
            paths.push((slot, path.to_string()));
        }
        let mut symbols = Vec::with_capacity(n_syms.min(1024));
        for i in 0..n_syms {
            let len = r.u32(&format!("symbol {i} length"))? as usize;
            let raw = r.take(len, &format!("symbol {i}"))?;
            let sym = std::str::from_utf8(raw)
                .map_err(|_| ArtifactError::Corrupt(format!("symbol {i} is not UTF-8")))?;
            symbols.push(sym.to_string());
        }
        if r.pos != bytes.len() {
            return Err(ArtifactError::Corrupt(format!(
                "{} trailing bytes after symbol table",
                bytes.len() - r.pos
            )));
        }
        Ok(Artifact { paths, symbols })
    }
}

/// Bounds-checked cursor over the wire format.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ArtifactError> {
        if self.bytes.len() - self.pos < n {
            return Err(ArtifactError::Corrupt(format!(
                "truncated reading {what}: need {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self, what: &str) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("len 4")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        Artifact::build(
            "/opt/hdf5-1.14.5-abcdefg",
            &["/opt/zlib-1.3-hijklmn".to_string(), "/opt/mpich-3.4.3-opqrstu".to_string()],
            vec!["MPI_Init".to_string(), "MPI_Comm=int32".to_string()],
        )
    }

    #[test]
    fn roundtrip_is_identity() {
        let art = sample();
        let back = Artifact::from_bytes(&art.to_bytes()).unwrap();
        assert_eq!(art, back);
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_bytes(), sample().to_bytes());
    }

    #[test]
    fn accessors() {
        let art = sample();
        assert_eq!(art.own_prefix(), "/opt/hdf5-1.14.5-abcdefg");
        assert_eq!(
            art.dep_prefixes(),
            vec!["/opt/zlib-1.3-hijklmn", "/opt/mpich-3.4.3-opqrstu"]
        );
    }

    #[test]
    fn truncation_at_every_boundary_is_corrupt() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                matches!(Artifact::from_bytes(&bytes[..cut]), Err(ArtifactError::Corrupt(_))),
                "cut at {cut} must be corrupt"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            Artifact::from_bytes(b"not an artifact"),
            Err(ArtifactError::Corrupt(_))
        ));
    }

    #[test]
    fn future_version_rejected_distinctly() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 0xff; // bump the version field
        assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(ArtifactError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(ArtifactError::Corrupt(_))
        ));
    }

    #[test]
    fn path_overflowing_slot_rejected() {
        let art = sample();
        let mut bytes = art.to_bytes();
        // First slot's path length field sits after magic+version+counts.
        let plen_off = 4 + 2 + 4 + 4 + 4;
        bytes[plen_off..plen_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Artifact::from_bytes(&bytes),
            Err(ArtifactError::Corrupt(_))
        ));
    }

    #[test]
    fn padding_is_nul_and_invisible() {
        // Shrinking a path inside its slot must not change semantics.
        let mut art = sample();
        art.paths[0].1 = "/o".to_string();
        let back = Artifact::from_bytes(&art.to_bytes()).unwrap();
        assert_eq!(back.own_prefix(), "/o");
        assert_eq!(back.paths[0].0, art.paths[0].0, "capacity preserved");
    }
}
