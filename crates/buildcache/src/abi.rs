//! Automated ABI discovery over a buildcache (paper §8 future work).
//!
//! The paper closes by asking whether `can_splice` declarations could be
//! *discovered* instead of hand-written. This module implements the
//! binary-interface half of that loop over the synthetic artifact
//! format:
//!
//! * [`abi_compatible`] decides whether one binary can stand in for
//!   another — the replacement must export a superset of the target's
//!   plain symbols (API direction), and every type-layout marker
//!   (`Name=layout`, modeling §2.1's `MPI_Comm` problem) they share must
//!   agree.
//! * [`suggest_splices`] scans a whole cache and reports the replacement
//!   pairs an `abi-audit` would propose as `can_splice` directives.

use crate::artifact::Artifact;
use crate::cache::CacheError;
use crate::source::CacheSource;
use spackle_spec::{Sym, Version};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why one binary cannot replace another.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbiIncompatibility {
    /// The replacement does not export these symbols the target does.
    MissingSymbols(Vec<String>),
    /// These types are laid out differently by the two binaries
    /// (e.g. `MPI_Comm` as a 32-bit int vs. a struct pointer).
    LayoutMismatch(Vec<String>),
}

impl fmt::Display for AbiIncompatibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbiIncompatibility::MissingSymbols(s) => {
                write!(f, "replacement is missing symbols: {}", s.join(", "))
            }
            AbiIncompatibility::LayoutMismatch(t) => {
                write!(f, "type layouts disagree: {}", t.join(", "))
            }
        }
    }
}

/// Split an artifact's symbol table into plain exported symbols and
/// type-layout markers (`Name=layout`).
fn interface(art: &Artifact) -> (BTreeSet<&str>, BTreeMap<&str, &str>) {
    let mut plain = BTreeSet::new();
    let mut layouts = BTreeMap::new();
    for sym in &art.symbols {
        match sym.split_once('=') {
            Some((name, layout)) => {
                layouts.insert(name, layout);
            }
            None => {
                plain.insert(sym.as_str());
            }
        }
    }
    (plain, layouts)
}

/// Can `replacement` stand in for `target` at the binary level?
///
/// Holds when the replacement exports every plain symbol and defines
/// every type the target does, and all types both define share a layout.
/// Layout disagreement is reported in preference to missing symbols: a
/// binary that links but miscommunicates is the more dangerous failure
/// (§2.1).
pub fn abi_compatible(
    replacement: &Artifact,
    target: &Artifact,
) -> Result<(), AbiIncompatibility> {
    let (r_plain, r_layouts) = interface(replacement);
    let (t_plain, t_layouts) = interface(target);

    let clashes: Vec<String> = t_layouts
        .iter()
        .filter(|(name, layout)| r_layouts.get(*name).is_some_and(|r| r != *layout))
        .map(|(name, _)| name.to_string())
        .collect();
    if !clashes.is_empty() {
        return Err(AbiIncompatibility::LayoutMismatch(clashes));
    }

    let mut missing: Vec<String> = t_plain.difference(&r_plain).map(|s| s.to_string()).collect();
    missing.extend(
        t_layouts
            .keys()
            .filter(|name| !r_layouts.contains_key(*name))
            .map(|name| name.to_string()),
    );
    if !missing.is_empty() {
        missing.sort();
        return Err(AbiIncompatibility::MissingSymbols(missing));
    }
    Ok(())
}

/// A replacement pair discovered by [`suggest_splices`]: installs of
/// `target` could be rewired onto builds of `replacement`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpliceSuggestion {
    /// Package whose binary can stand in.
    pub replacement: Sym,
    /// The replacement version the audit inspected.
    pub replacement_version: Version,
    /// Package being replaced.
    pub target: Sym,
    /// The target version the audit inspected.
    pub target_version: Version,
}

impl SpliceSuggestion {
    /// Render as the `can_splice` directive the replacement's package
    /// definition would carry.
    pub fn directive(&self) -> String {
        format!(
            "{}: can_splice(\"{}@{}\", when=\"@{}\")",
            self.replacement, self.target, self.target_version, self.replacement_version
        )
    }
}

/// Scan every binary in `cache` and report which packages could replace
/// which others, judged purely from their exported interfaces.
///
/// Entries are grouped by root package; identical interfaces within a
/// package are audited once (a cache holds many configurations of the
/// same package with the same ABI). Index-only entries (no artifact
/// bytes) and unparseable artifacts are skipped — the audit only trusts
/// binaries it can read. Output is deterministic: suggestions are sorted
/// by (replacement, target, versions). Fails only when the cache itself
/// cannot be read (a down or corrupt backend surfaces its `CacheError`
/// instead of being audited as empty).
pub fn suggest_splices(cache: &dyn CacheSource) -> Result<Vec<SpliceSuggestion>, CacheError> {
    // name → distinct (version, artifact) representatives, keyed by the
    // serialized symbol table so each ABI is compared once.
    let mut by_name: BTreeMap<Sym, BTreeMap<Vec<String>, (Version, Artifact)>> = BTreeMap::new();
    for entry in cache.iter()? {
        if !entry.has_artifact() {
            continue;
        }
        let Ok(art) = entry.artifact() else { continue };
        let root = entry.spec.root();
        by_name
            .entry(root.name)
            .or_default()
            .entry(art.symbols.clone())
            .or_insert_with(|| (root.version.clone(), art));
    }

    let mut out = Vec::new();
    for (r_name, r_abis) in &by_name {
        for (t_name, t_abis) in &by_name {
            if r_name == t_name {
                continue;
            }
            for (r_version, r_art) in r_abis.values() {
                for (t_version, t_art) in t_abis.values() {
                    if abi_compatible(r_art, t_art).is_ok() {
                        out.push(SpliceSuggestion {
                            replacement: *r_name,
                            replacement_version: r_version.clone(),
                            target: *t_name,
                            target_version: t_version.clone(),
                        });
                    }
                }
            }
        }
    }
    out.sort_by(|a, b| {
        (a.replacement, &a.replacement_version, a.target, &a.target_version)
            .cmp(&(b.replacement, &b.replacement_version, b.target, &b.target_version))
    });
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::BuildCache;
    use spackle_spec::spec::ConcreteSpecBuilder;

    fn art(symbols: &[&str]) -> Artifact {
        Artifact::build("/opt/x", &[], symbols.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn superset_with_agreeing_layouts_is_compatible() {
        let mpich = art(&["MPI_Init", "MPI_Send", "MPI_Comm=int32"]);
        let mpiabi = art(&["MPI_Init", "MPI_Send", "MPIX_Fast_path", "MPI_Comm=int32"]);
        assert_eq!(abi_compatible(&mpiabi, &mpich), Ok(()));
        assert_eq!(
            abi_compatible(&mpich, &mpiabi),
            Err(AbiIncompatibility::MissingSymbols(vec![
                "MPIX_Fast_path".to_string()
            ]))
        );
    }

    #[test]
    fn layout_mismatch_beats_missing_symbols() {
        // openmpi vs mpich: same API, different MPI_Comm layout — and
        // the mismatch must be reported even when symbols also differ.
        let mpich = art(&["MPI_Init", "MPI_Bonus", "MPI_Comm=int32"]);
        let openmpi = art(&["MPI_Init", "MPI_Comm=ptr"]);
        assert_eq!(
            abi_compatible(&openmpi, &mpich),
            Err(AbiIncompatibility::LayoutMismatch(vec![
                "MPI_Comm".to_string()
            ]))
        );
    }

    #[test]
    fn absent_layout_marker_is_a_missing_symbol() {
        let with_marker = art(&["f", "T=int32"]);
        let without = art(&["f"]);
        assert_eq!(
            abi_compatible(&without, &with_marker),
            Err(AbiIncompatibility::MissingSymbols(vec!["T".to_string()]))
        );
        // The other direction is fine: extra markers don't hurt.
        assert_eq!(abi_compatible(&with_marker, &without), Ok(()));
    }

    #[test]
    fn suggestions_are_directional_and_deterministic() {
        let mut cache = BuildCache::new();
        let mut add = |name: &str, symbols: &[&str]| {
            let mut b = ConcreteSpecBuilder::new();
            let n = b.node(name, Version::parse("1.0").unwrap());
            let spec = b.build(n).unwrap();
            let bytes = art(symbols).to_bytes();
            cache.add_spec_with(&spec, |_| bytes.clone());
        };
        add("mpich", &["MPI_Init", "MPI_Comm=int32"]);
        add("mpiabi", &["MPI_Init", "MPIX_Fast_path", "MPI_Comm=int32"]);
        add("openmpi", &["MPI_Init", "MPI_Comm=ptr"]);
        add("zlib", &["_ZN4zlib3apiEv"]);

        let suggestions = suggest_splices(&cache).unwrap();
        let pairs: Vec<(&str, &str)> = suggestions
            .iter()
            .map(|s| (s.replacement.as_str(), s.target.as_str()))
            .collect();
        assert_eq!(pairs, vec![("mpiabi", "mpich")]);
        assert_eq!(
            suggestions[0].directive(),
            "mpiabi: can_splice(\"mpich@1.0\", when=\"@1.0\")"
        );
        // Index-only entries never produce suggestions.
        let empty_armed = suggest_splices(&BuildCache::new()).unwrap();
        assert!(empty_armed.is_empty());
    }
}
