#![warn(missing_docs)]

//! # spackle-buildcache
//!
//! The binary side of the paper's bridge (§6.1.3): a content-addressed
//! store of reusable concrete specs and the synthetic binaries built
//! for them, behind the multi-backend [`CacheSource`] seam.
//!
//! * [`Artifact`] — the deterministic synthetic-binary format. Path
//!   slots model RPATH entries (relocation and rewiring patch them);
//!   the symbol table models the exported ABI surface (splice discovery
//!   compares them).
//! * [`BuildCache`] — the index: [`SpecHash`](spackle_spec::SpecHash) →
//!   [`CacheEntry`], with name/version secondary indexes and versioned
//!   JSON persistence. Registering a concrete spec registers every node
//!   of its DAG, so each sub-DAG becomes independently reusable.
//! * [`CacheSource`] / [`ChainedCache`] — the object-safe lookup trait
//!   the concretizer's reuse pass and the installer's planner/executor
//!   consume, and its first combinator: an ordered local+public overlay.
//! * [`abi_compatible`] / [`suggest_splices`] — automated ABI discovery
//!   (§8): audit a cache's binaries for replacement pairs worth a
//!   `can_splice` directive.
//!
//! ```
//! use spackle_buildcache::{Artifact, BuildCache, CacheSource, ChainedCache};
//! use spackle_spec::spec::ConcreteSpecBuilder;
//! use spackle_spec::Version;
//!
//! let mut b = ConcreteSpecBuilder::new();
//! let z = b.node("zlib", Version::parse("1.3").unwrap());
//! let spec = b.build(z).unwrap();
//!
//! let mut local = BuildCache::new();
//! local.add_spec_with(&spec, |sub| {
//!     Artifact::build(&format!("/opt/{}", sub.root().name), &[], vec![]).to_bytes()
//! });
//! let public = BuildCache::new();
//!
//! let json = local.to_json();
//! assert_eq!(BuildCache::from_json(&json).unwrap().len(), local.len());
//!
//! // Sources are owned (or Arc'd) — a chain shares them across threads.
//! // Lookups are fallible: a backend may be down or corrupt, so every
//! // read returns a Result (in-memory sources always answer Ok).
//! let chain = ChainedCache::with(vec![local, public]);
//! assert!(chain.contains(spec.dag_hash()).unwrap());
//! ```

pub mod abi;
pub mod artifact;
pub mod cache;
pub mod fault;
pub mod source;

pub use abi::{abi_compatible, suggest_splices, AbiIncompatibility, SpliceSuggestion};
pub use artifact::{Artifact, ArtifactError, ARTIFACT_FORMAT_VERSION, SLOT_HEADROOM};
pub use cache::{BuildCache, CacheEntry, CacheError, CACHE_SCHEMA_VERSION};
pub use fault::{FaultConfig, FaultInjector};
pub use source::{
    CacheSource, ChainedCache, IntoCacheSource, Labeled, RetryPolicy, SourceFaultStats,
};
