//! The concretizer's logic program (paper §3.3, §5.1, §5.3, §5.4),
//! written in the ASP fragment `spackle-asp` implements. The encoder
//! (see [`crate::encode`]) appends compiled facts and per-directive
//! rules; these constants carry the program's invariant semantics.

/// Core concretization semantics: node derivation, one-version /
/// one-variant-value / one-os / one-target per node, virtual providers,
/// link-run reachability, reuse selection, the `impose` machinery, and
/// the optimization objectives.
pub const BASE_PROGRAM: &str = r#"
% ------------------------------------------------------------------
% Node derivation: roots plus everything depended on.
% ------------------------------------------------------------------
attr("node", node(P)) :- attr("root", node(P)).
attr("node", node(D)) :- attr("depends_on", node(P), node(D), T).

% ------------------------------------------------------------------
% Every node resolves exactly one declared version (paper 5.1).
% ------------------------------------------------------------------
1 { attr("version", node(P), V) : pkg_fact(P, version_declared(V, I)) } 1 :-
    attr("node", node(P)).

% Every declared variant takes exactly one allowed value.
1 { attr("variant", node(P), VN, Val) : pkg_fact(P, variant_value(VN, Val)) } 1 :-
    attr("node", node(P)), pkg_fact(P, variant(VN)).

% Exactly one operating system and microarchitecture target per node.
1 { attr("node_os", node(P), O) : os_declared(O) } 1 :- attr("node", node(P)).
1 { attr("node_target", node(P), T) : target_declared(T) } 1 :- attr("node", node(P)).

% All nodes run on the requesting machine: same OS, and a target whose
% binaries the requested microarchitecture executes.
:- attr("node_os", node(P), O), requested_os(RO), O != RO.
:- attr("node_target", node(P), T), requested_target(RT), not target_runs(RT, T).

% ------------------------------------------------------------------
% Virtual dependencies: one provider per needed virtual, and at most
% one provider of a virtual anywhere in the DAG (Spack's single
% implementation rule, the premise of trivial ABI consistency in 1).
% ------------------------------------------------------------------
virtual_needed(V) :- attr("virtual_dep", node(P), V).
1 { virtual_chosen(V, Prov) : provider_decl(Prov, V) } 1 :- virtual_needed(V).
attr("depends_on", node(P), node(Prov), "link-run") :-
    attr("virtual_dep", node(P), V), virtual_chosen(V, Prov).
virtual_used(V) :- virtual_chosen(V, Prov).
% A provider present in the DAG (e.g. imposed by a reused or spliced
% spec) also counts as the virtual being in use.
virtual_used(V) :- provider_decl(P, V), attr("node", node(P)).
:- provider_decl(P1, V), provider_decl(P2, V), attr("node", node(P1)),
   attr("node", node(P2)), P1 != P2.

% ------------------------------------------------------------------
% Link-run reachability, for ^-style constraints.
% ------------------------------------------------------------------
reach(P, D) :- attr("depends_on", node(P), node(D), "link-run").
reach(P, E) :- reach(P, D), attr("depends_on", node(D), node(E), "link-run").

% ------------------------------------------------------------------
% Reuse (paper 5.1.2): choose at most one installed spec per node;
% anything not reused must be built.
% ------------------------------------------------------------------
{ attr("hash", node(P), H) : installed_hash(P, H) } 1 :- attr("node", node(P)).
reused(P) :- attr("hash", node(P), H).
build(P) :- attr("node", node(P)), not reused(P).
impose(H) :- attr("hash", node(P), H), installed_hash(P, H).

% Imposition machinery: reusing a spec imposes all of its attributes.
attr("version", node(P), V) :- impose(H), imposed_constraint(H, "version", P, V).
attr("node_os", node(P), O) :- impose(H), imposed_constraint(H, "node_os", P, O).
attr("node_target", node(P), T) :- impose(H), imposed_constraint(H, "node_target", P, T).
attr("variant", node(P), VN, Val) :- impose(H), imposed_constraint(H, "variant", P, VN, Val).
attr("depends_on", node(P), node(D), "link-run") :-
    impose(H), imposed_constraint(H, "depends_on", P, D).
attr("hash", node(D), CH) :- impose(H), imposed_constraint(H, "hash", D, CH).

% ------------------------------------------------------------------
% Optimization (highest priority first), using Spack's build-priority
% band scheme: attribute criteria for *built* nodes rank above the
% build count (so the solver never strips defaults just to skip a
% dependency), while the build count ranks above attribute criteria
% for reused nodes (so reuse is never sacrificed to fix an attribute).
%
%   250: version penalty, built nodes
%   240: non-default variant values, built nodes
%   230: target distance, built nodes
%   150: number of builds (the paper's top objective)
%   140: prefer plain reuse over splicing
%    50: version penalty, all nodes
%    40: non-default variant values, all nodes
%    30: target distance, all nodes
%    20: prefer earlier-declared virtual providers
% ------------------------------------------------------------------
variant_on_default(P, VN) :-
    attr("variant", node(P), VN, Val), pkg_fact(P, variant_default(VN, Val)).

#minimize { I@250,P : attr("version", node(P), V),
            pkg_fact(P, version_declared(V, I)), build(P) }.
#minimize { 1@240,P,VN : attr("node", node(P)), pkg_fact(P, variant(VN)),
            not variant_on_default(P, VN), build(P) }.
#minimize { Pen@230,P : attr("node_target", node(P), T),
            target_penalty(T, Pen), build(P) }.
#minimize { 100@150,P : build(P) }.
#minimize { 1@140,PH,C : splice_chosen(PH, C) }.
#minimize { I@50,P : attr("version", node(P), V), pkg_fact(P, version_declared(V, I)) }.
#minimize { 1@40,P,VN : attr("node", node(P)), pkg_fact(P, variant(VN)),
            not variant_on_default(P, VN) }.
#minimize { Pen@30,P : attr("node_target", node(P), T), target_penalty(T, Pen) }.
#minimize { W@20,V : virtual_chosen(V, Prov), provider_weight(V, Prov, W) }.
"#;

/// The *old* encoding of reusable specs (paper §5.1.2): the encoder emits
/// `imposed_constraint(...)` facts directly, so no bridge rules are
/// needed. This constant exists for symmetry and documentation.
pub const REUSE_DIRECT: &str = r#"
% Old encoding: imposed_constraint/3..5 are emitted directly as facts.
% Splicing is structurally impossible here: every reused spec drags in
% exactly the dependencies it was built with.
"#;

/// The *new* encoding (paper §5.3, Fig 3b): reusable specs are emitted as
/// `hash_attr(...)` facts, and bridge rules recover `imposed_constraint`.
/// The `hash` and `depends_on` tuples are the splice hook: they are
/// imposed only when the child is **not** spliced.
pub const REUSE_INDIRECT: &str = r#"
imposed_constraint(H, A, N) :- hash_attr(H, A, N).
imposed_constraint(H, A, N, V) :-
    hash_attr(H, A, N, V), A != "depends_on", A != "hash".
imposed_constraint(H, A, N, V1, V2) :- hash_attr(H, A, N, V1, V2).
imposed_constraint(PH, "hash", C, CH) :-
    hash_attr(PH, "hash", C, CH),
    not splice_chosen(PH, C).
imposed_constraint(PH, "depends_on", P, C) :-
    hash_attr(PH, "depends_on", P, C),
    hash_attr(PH, "hash", C, CH),
    not splice_chosen(PH, C).
"#;

/// Automatic splicing (paper §5.4, Fig 4b): when reusing a spec whose
/// child has declared ABI-compatible replacements, the solver may divert
/// the dependency to a replacement node instead of imposing the original
/// child. `splicer_decl(N, C)` (package N declares it can replace specs
/// of package C) and `splice_relevant(C)` are emitted from `can_splice`
/// directives; the `can_splice/3` validity rules are compiled
/// per-directive by the encoder (Fig 4a).
pub const SPLICE_FRAGMENT: &str = r#"
% For each reused spec child that has potential replacements, choose at
% most one replacement package to splice in.
{ splice_to(PH, C, N) : splicer_decl(N, C) } 1 :-
    impose(PH), hash_attr(PH, "hash", C, CH), splice_relevant(C).
splice_chosen(PH, C) :- splice_to(PH, C, N).

% The replacement node becomes part of the solution...
attr("node", node(N)) :- splice_to(PH, C, N).

% ...and must actually be a valid ABI-compatible replacement for the
% child being spliced out.
:- splice_to(PH, C, N), hash_attr(PH, "hash", C, CH),
   not can_splice(node(N), C, CH).

% The parent's dependency is rewired to the replacement (the original
% child's imposition is suppressed in the bridge rules above).
imposed_constraint(PH, "depends_on", P, N) :-
    splice_to(PH, C, N), hash_attr(PH, "depends_on", P, C).
"#;

/// In configurations without the splice fragment, `splice_chosen` and
/// `splice_to` have no deriving rules; this stub keeps the shared
/// `#minimize` statement and bridge-rule negations well-defined without
/// enabling any splices.
pub const NO_SPLICE_STUB: &str = r#"
% Splicing disabled: no rules derive splice_chosen/splice_to.
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use spackle_asp::parse_program;

    #[test]
    fn base_program_parses() {
        let p = parse_program(BASE_PROGRAM).unwrap();
        assert!(p.rules.len() > 15);
        assert_eq!(p.minimize.len(), 9);
    }

    #[test]
    fn reuse_indirect_parses() {
        let p = parse_program(REUSE_INDIRECT).unwrap();
        assert_eq!(p.rules.len(), 5);
    }

    #[test]
    fn splice_fragment_parses() {
        let p = parse_program(SPLICE_FRAGMENT).unwrap();
        assert_eq!(p.rules.len(), 5);
    }

    #[test]
    fn stubs_parse() {
        assert!(parse_program(REUSE_DIRECT).unwrap().rules.is_empty());
        assert!(parse_program(NO_SPLICE_STUB).unwrap().rules.is_empty());
    }
}
