//! Provenance-mapped UNSAT explanations.
//!
//! When a goal cannot concretize, [`Concretizer::explain_goal`] re-runs
//! the solve through the ASP engine's assumption-based core extractor
//! ([`spackle_asp::explain`]) and maps every clause of the minimized
//! unsat core back through two provenance layers:
//!
//! 1. the grounder's `rule_src` tables — ground rule → parsed rule
//!    index → byte offset in the generated program text (via
//!    [`spackle_asp::parse_program_spanned`]);
//! 2. the encoder's [`EncodeOrigin`] ledger — byte offset → the source
//!    construct (a `depends_on`/`conflicts`/`provides` directive, a goal
//!    constraint, a cache entry, a logic fragment) that emitted it.
//!
//! The result is an [`Explanation`]: a small set of source-level
//! directives that are *jointly* unsatisfiable, such that dropping any
//! one of them (when the core is minimal) makes the goal concretizable.
//!
//! [`Concretizer::explain_goal`]: crate::Concretizer::explain_goal

use crate::encode::EncodeOrigin;
use std::time::Duration;

/// One member of an unsat core, mapped back to its source construct.
#[derive(Clone, Debug)]
pub struct ExplainEntry {
    /// The source-level construct that emitted the rule, when the clause
    /// traces to a program rule covered by the encoder's ledger. `None`
    /// for purely derived clauses (e.g. a completion clause recording
    /// that nothing can derive an atom).
    pub origin: Option<EncodeOrigin>,
    /// 1-based line of the originating rule in the generated program
    /// text (the text [`Concretizer::program_text`] returns), when known.
    ///
    /// [`Concretizer::program_text`]: crate::Concretizer::program_text
    pub line: Option<usize>,
    /// Rendering of the ground rule / constraint / completion this core
    /// member asserts.
    pub rule: String,
}

/// Why a goal cannot concretize: a provenance-mapped unsat core.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// Core members in canonical (clause-origin) order.
    pub entries: Vec<ExplainEntry>,
    /// Whether deletion-based minimization ran to completion. When
    /// `false` (probe budget, timeout, or cancellation hit first) the
    /// core is still a correct conflict — every member participates —
    /// but some members might be removable.
    pub minimal: bool,
    /// Core size straight out of final-conflict analysis, before
    /// deletion-based minimization.
    pub core_initial: usize,
    /// Deletion probes (full SAT solves) spent minimizing.
    pub probes: u64,
    /// Wall time for the whole explanation (encode through minimize).
    pub time: Duration,
}

impl Explanation {
    /// Entries that trace to a package directive or goal constraint —
    /// the actionable subset renderers lead with.
    pub fn directive_entries(&self) -> impl Iterator<Item = &ExplainEntry> {
        self.entries.iter().filter(|e| {
            matches!(
                e.origin,
                Some(
                    EncodeOrigin::DependsOn { .. }
                        | EncodeOrigin::Conflict { .. }
                        | EncodeOrigin::Provides { .. }
                        | EncodeOrigin::CanSplice { .. }
                        | EncodeOrigin::GoalRoot { .. }
                        | EncodeOrigin::Forbidden { .. }
                )
            )
        })
    }
}

/// 1-based line number of byte `off` in `text`.
pub(crate) fn line_of(text: &str, off: usize) -> usize {
    text.as_bytes()[..off.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}
