#![warn(missing_docs)]

//! # spackle-core
//!
//! The Spackle concretizer — the paper's primary contribution. It
//! resolves abstract specs to concrete dependency DAGs by compiling the
//! package repository, the user goal, and reusable buildcache specs into
//! an answer-set program (solved by `spackle-asp`), then interpreting the
//! optimal model back into [`spackle_spec::ConcreteSpec`]s — including
//! automatically *spliced* specs with full build provenance.
//!
//! Three emulation modes reproduce the paper's experimental axes:
//!
//! * [`ConcretizerConfig::old_spack`] — the direct `imposed_constraint`
//!   encoding of reusable specs; splicing impossible.
//! * [`ConcretizerConfig::splice_spack_disabled`] — the new `hash_attr`
//!   encoding with the splice fragment off (Fig 5 / RQ1).
//! * [`ConcretizerConfig::splice_spack`] — full automatic splicing
//!   (Fig 6, Fig 7 / RQ2–RQ4).

pub mod concretizer;
pub mod encode;
pub mod explain;
pub mod ground_cache;
pub mod interpret;
pub mod logic;
pub mod segment;

pub use concretizer::{ConcretizeStats, Concretizer, ConcretizerConfig, SkippedSource, Solution};
pub use encode::{EncodeConfig, EncodeOrigin, Encoded, Encoding, Goal};
pub use explain::{ExplainEntry, Explanation};
pub use ground_cache::{
    DeltaReport, GroundCache, GroundCacheStats, ModelMemo, PreparedProgram, SHARD_COUNT,
};
pub use interpret::SpliceReport;
pub use segment::{repo_delta, SegmentDelta, SegmentSet};

use std::fmt;

/// Concretization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The goal is malformed (unknown package, anonymous root, ...).
    BadGoal(String),
    /// The concretizer configuration is internally inconsistent (e.g.
    /// splicing requested under the direct encoding). Surfaced as a
    /// structured error so remote clients of a concretization service
    /// can diagnose it, instead of being silently normalized into a
    /// different solve. See [`ConcretizerConfig::normalize`] for the
    /// explicit repair.
    Config(String),
    /// A repository feature this reproduction does not model.
    Unsupported(String),
    /// The underlying ASP engine failed.
    Solve(String),
    /// A reusable-spec source failed past its retry budget. `source` is
    /// the index of the failing top-level source on the concretizer,
    /// `backend` its human-readable label — the provenance a degraded
    /// solve records when it proceeds without the source.
    Cache {
        /// Index of the failing source in the concretizer's source list.
        source: usize,
        /// Backend label of the failing source (e.g. `"public"`).
        backend: String,
        /// The underlying cache error, rendered.
        detail: String,
    },
    /// The solve was cancelled; `deadline` is true when a wall-clock
    /// deadline (request timeout) fired rather than an explicit cancel.
    Cancelled {
        /// Whether a wall-clock deadline triggered the cancellation.
        deadline: bool,
    },
    /// The solver exhausted its conflict budget — a bounded "gave up",
    /// distinguishable from [`CoreError::Unsatisfiable`]. Carries the
    /// search effort spent so services can ship it over the wire.
    BudgetExhausted {
        /// CDCL conflicts at the point of giving up.
        conflicts: u64,
        /// CDCL decisions at the point of giving up.
        decisions: u64,
        /// CDCL literal propagations at the point of giving up.
        propagations: u64,
        /// CDCL restarts at the point of giving up.
        restarts: u64,
    },
    /// No concretization satisfies the constraints.
    Unsatisfiable,
    /// The optimal model could not be decoded (an encoder/solver bug).
    Interpret(String),
}

impl CoreError {
    /// A short machine-readable tag for each variant — what services
    /// put in a wire protocol's `error_kind` field so clients can
    /// dispatch without parsing rendered messages.
    pub fn kind(&self) -> &'static str {
        match self {
            CoreError::BadGoal(_) => "bad_goal",
            CoreError::Config(_) => "config",
            CoreError::Unsupported(_) => "unsupported",
            CoreError::Solve(_) => "solve",
            CoreError::Cache { .. } => "cache",
            CoreError::Cancelled { deadline: true } => "timeout",
            CoreError::Cancelled { deadline: false } => "cancelled",
            CoreError::BudgetExhausted { .. } => "budget",
            CoreError::Unsatisfiable => "unsat",
            CoreError::Interpret(_) => "interpret",
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadGoal(m) => write!(f, "bad goal: {m}"),
            CoreError::Config(m) => write!(f, "configuration: {m}"),
            CoreError::Unsupported(m) => write!(f, "unsupported: {m}"),
            CoreError::Solve(m) => write!(f, "solver: {m}"),
            CoreError::Cache {
                source,
                backend,
                detail,
            } => write!(f, "cache source #{source} ({backend}) failed: {detail}"),
            CoreError::Cancelled { deadline } => {
                if *deadline {
                    write!(f, "concretization deadline exceeded")
                } else {
                    write!(f, "concretization cancelled")
                }
            }
            CoreError::BudgetExhausted {
                conflicts,
                decisions,
                propagations,
                restarts,
            } => write!(
                f,
                "solver: conflict budget exhausted after {conflicts} conflicts, \
                 {decisions} decisions, {propagations} propagations, {restarts} restarts"
            ),
            CoreError::Unsatisfiable => write!(f, "no satisfying concretization exists"),
            CoreError::Interpret(m) => write!(f, "interpretation: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}
