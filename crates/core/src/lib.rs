#![warn(missing_docs)]

//! # spackle-core
//!
//! The Spackle concretizer — the paper's primary contribution. It
//! resolves abstract specs to concrete dependency DAGs by compiling the
//! package repository, the user goal, and reusable buildcache specs into
//! an answer-set program (solved by `spackle-asp`), then interpreting the
//! optimal model back into [`spackle_spec::ConcreteSpec`]s — including
//! automatically *spliced* specs with full build provenance.
//!
//! Three emulation modes reproduce the paper's experimental axes:
//!
//! * [`ConcretizerConfig::old_spack`] — the direct `imposed_constraint`
//!   encoding of reusable specs; splicing impossible.
//! * [`ConcretizerConfig::splice_spack_disabled`] — the new `hash_attr`
//!   encoding with the splice fragment off (Fig 5 / RQ1).
//! * [`ConcretizerConfig::splice_spack`] — full automatic splicing
//!   (Fig 6, Fig 7 / RQ2–RQ4).

pub mod concretizer;
pub mod encode;
pub mod ground_cache;
pub mod interpret;
pub mod logic;

pub use concretizer::{ConcretizeStats, Concretizer, ConcretizerConfig, Solution};
pub use encode::{EncodeConfig, Encoded, Encoding, Goal};
pub use ground_cache::{GroundCache, GroundCacheStats, PreparedProgram, SHARD_COUNT};
pub use interpret::SpliceReport;

use std::fmt;

/// Concretization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The goal is malformed (unknown package, anonymous root, ...).
    BadGoal(String),
    /// The concretizer configuration is internally inconsistent (e.g.
    /// splicing requested under the direct encoding). Surfaced as a
    /// structured error so remote clients of a concretization service
    /// can diagnose it, instead of being silently normalized into a
    /// different solve. See [`ConcretizerConfig::normalize`] for the
    /// explicit repair.
    Config(String),
    /// A repository feature this reproduction does not model.
    Unsupported(String),
    /// The underlying ASP engine failed.
    Solve(String),
    /// No concretization satisfies the constraints.
    Unsatisfiable,
    /// The optimal model could not be decoded (an encoder/solver bug).
    Interpret(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadGoal(m) => write!(f, "bad goal: {m}"),
            CoreError::Config(m) => write!(f, "configuration: {m}"),
            CoreError::Unsupported(m) => write!(f, "unsupported: {m}"),
            CoreError::Solve(m) => write!(f, "solver: {m}"),
            CoreError::Unsatisfiable => write!(f, "no satisfying concretization exists"),
            CoreError::Interpret(m) => write!(f, "interpretation: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}
