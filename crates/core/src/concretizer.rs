//! The public concretizer API: compile → ground/solve → interpret.
//!
//! The concretizer is **owned and shareable**: it holds `Arc` handles to
//! its repository, its reusable-spec sources, and (optionally) a warm
//! [`GroundCache`], so it is `Clone + Send + Sync + 'static`. A
//! long-lived service builds one set of handles at startup and stamps
//! out a cheap per-request `Concretizer` per worker thread; a one-shot
//! CLI call passes plain references and lets the conversion traits copy
//! what little state there is.

use crate::encode::{
    cache_error, encode, goal_scope, EncodeConfig, EncodeOrigin, Encoded, Encoding, Goal,
};
use crate::explain::{ExplainEntry, Explanation};
use crate::ground_cache::{GroundCache, PreparedProgram};
use crate::interpret::{interpret, Interpretation, SpliceReport};
use crate::segment::SegmentSet;
use crate::CoreError;
use spackle_asp::{
    parse_program, parse_program_spanned, AspError, CancelToken, ExplainConfig, ExplainOutcome,
    SolveOutcome, SolveStats, Solver, SolverConfig,
};
use spackle_buildcache::{CacheSource, IntoCacheSource, SourceFaultStats};
use spackle_repo::Repository;
use spackle_spec::{AbstractSpec, ConcreteSpec, Os, Sym, Target};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concretizer configuration: which Spack variant to emulate.
#[derive(Clone, Debug)]
pub struct ConcretizerConfig {
    /// Reusable-spec encoding (the RQ1 axis: `Direct` = old spack,
    /// `Indirect` = splice spack).
    pub encoding: Encoding,
    /// Consider spliced solutions (requires `Indirect`; the RQ2/3 axis).
    pub splicing: bool,
    /// Requesting machine OS.
    pub os: Os,
    /// Requesting machine microarchitecture.
    pub target: Target,
    /// Restrict facts to the goal's possible dependency closure
    /// (default true; `false` is the scope-filter ablation).
    pub filter_irrelevant: bool,
    /// Statically prune rules that can never fire (and rules irrelevant
    /// to the solution predicates) before grounding, via
    /// [`spackle_asp::Program::prune_unreachable`]. Off by default; the
    /// `spackle-audit` analyses back its soundness.
    pub prune_dead: bool,
    /// Graceful degradation (default `true`): when a reusable-spec
    /// source fails past its retry budget, drop that source, re-solve
    /// source-only over the survivors, and flag the solution
    /// [`ConcretizeStats::degraded`] with skipped-source provenance —
    /// instead of failing the request. Set `false` to surface
    /// [`CoreError::Cache`] directly.
    pub degrade_on_cache_failure: bool,
    /// Underlying ASP solver configuration.
    pub solver: SolverConfig,
}

impl Default for ConcretizerConfig {
    fn default() -> Self {
        ConcretizerConfig {
            encoding: Encoding::Indirect,
            splicing: true,
            os: Os::new("linux"),
            target: Target::new("x86_64"),
            filter_irrelevant: true,
            prune_dead: false,
            degrade_on_cache_failure: true,
            solver: SolverConfig::default(),
        }
    }
}

impl ConcretizerConfig {
    /// Emulate *old spack*: direct encoding, no splicing.
    pub fn old_spack() -> Self {
        ConcretizerConfig {
            encoding: Encoding::Direct,
            splicing: false,
            ..Default::default()
        }
    }

    /// Emulate *splice spack* with automatic splicing disabled (the new
    /// `hash_attr` encoding only — the paper's Fig 5 configuration).
    pub fn splice_spack_disabled() -> Self {
        ConcretizerConfig {
            encoding: Encoding::Indirect,
            splicing: false,
            ..Default::default()
        }
    }

    /// Emulate *splice spack* with automatic splicing enabled.
    pub fn splice_spack() -> Self {
        ConcretizerConfig {
            encoding: Encoding::Indirect,
            splicing: true,
            ..Default::default()
        }
    }

    /// Is this configuration internally consistent? Splicing requires
    /// the indirect (`hash_attr`) encoding: the direct encoding fixes a
    /// reused spec's whole closure, leaving nothing to splice.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.splicing && self.encoding == Encoding::Direct {
            return Err(CoreError::Config(
                "splicing requires the indirect (hash_attr) encoding; the direct encoding \
                 imposes a reused spec's full closure, so nothing can be spliced — disable \
                 splicing, switch to Encoding::Indirect, or call \
                 ConcretizerConfig::normalize() to resolve the conflict explicitly"
                    .to_string(),
            ));
        }
        Ok(())
    }

    /// Resolve inconsistent axis combinations in the documented
    /// direction: under the direct encoding splicing is structurally
    /// impossible, so it is switched off. This is the **explicit** form
    /// of a normalization older releases applied silently inside
    /// `with_config`; the concretizer now rejects inconsistent
    /// configurations with [`CoreError::Config`] instead, so service
    /// clients get a diagnosable error rather than a quietly different
    /// solve.
    pub fn normalize(mut self) -> Self {
        if self.encoding == Encoding::Direct {
            self.splicing = false;
        }
        self
    }
}

/// Provenance for a reusable-spec source a degraded solve proceeded
/// without: which backend failed and the error that took it out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SkippedSource {
    /// Backend label of the dropped source.
    pub backend: String,
    /// Rendered error that exhausted the source's retry budget.
    pub error: String,
}

/// Timing and size measurements for one concretization.
#[derive(Clone, Debug, Default)]
pub struct ConcretizeStats {
    /// Wall time for fact/rule compilation.
    pub encode_time: Duration,
    /// Wall time for parsing the generated program.
    pub parse_time: Duration,
    /// Wall time for ground + solve + optimize (from the ASP engine).
    pub solve_time: Duration,
    /// Wall time for model interpretation.
    pub interpret_time: Duration,
    /// End-to-end wall time.
    pub total_time: Duration,
    /// Number of reusable specs the solver considered.
    pub reusable_specs: usize,
    /// Generated program size in bytes.
    pub program_bytes: usize,
    /// Non-ground rules removed by static pruning before grounding
    /// (0 unless [`ConcretizerConfig::prune_dead`] is set).
    pub pruned_rules: usize,
    /// Whether this solve reused a memoized ground program (always
    /// `false` without [`Concretizer::with_ground_cache`]).
    pub ground_cache_hit: bool,
    /// Whether this solve replayed a memoized optimal model (skipping
    /// the SAT search entirely): a ground-cache hit whose entry already
    /// solved under the same search configuration. The replayed model
    /// is bit-identical to what a fresh search would return — the
    /// engine is deterministic per search config.
    pub model_memo_hit: bool,
    /// Cumulative hits on the attached [`GroundCache`] *as of this
    /// solve's lookup* — taken from the counter update itself, so the
    /// value is exact even when many threads share the cache.
    pub ground_cache_hits: u64,
    /// Cumulative misses on the attached [`GroundCache`] as of this
    /// solve's lookup (same atomic-snapshot guarantee as
    /// [`ConcretizeStats::ground_cache_hits`]).
    pub ground_cache_misses: u64,
    /// True when one or more reusable-spec sources failed past their
    /// retry budget and the solve proceeded without them (see
    /// [`ConcretizerConfig::degrade_on_cache_failure`]). A degraded
    /// solution is bit-identical to a fresh solve over the surviving
    /// sources — only the source set shrank.
    pub degraded: bool,
    /// Which sources a degraded solve skipped, in the order they were
    /// dropped. Empty when `degraded` is false.
    pub skipped_sources: Vec<SkippedSource>,
    /// Cache-source retries performed during this solve (delta of the
    /// sources' cumulative [`SourceFaultStats`] across the call).
    pub cache_retries: u64,
    /// Transient cache-source errors observed during this solve.
    pub cache_transient_errors: u64,
    /// Permanent cache-source errors observed during this solve.
    pub cache_permanent_errors: u64,
    /// Corrupt cache entries detected (and refused) during this solve.
    pub cache_corrupt_entries: u64,
    /// Circuit-breaker opens during this solve.
    pub cache_breaker_opens: u64,
    /// Faults injected by [`spackle_buildcache::FaultInjector`] wrappers
    /// during this solve (zero outside chaos testing).
    pub cache_injected_faults: u64,
    /// ASP engine statistics.
    pub solver: SolveStats,
}

/// A successful concretization.
#[derive(Debug)]
pub struct Solution {
    /// One concrete spec per requested root, in request order.
    pub specs: Vec<ConcreteSpec>,
    /// Packages reused from caches.
    pub reused: Vec<Sym>,
    /// Packages to build from source.
    pub built: Vec<Sym>,
    /// Executed splices.
    pub spliced: Vec<SpliceReport>,
    /// Lexicographic cost vector of the optimal model, `(priority,
    /// cost)` pairs highest priority first. Co-optimal models can
    /// differ across solver configurations (the solver breaks ties by
    /// search order), but this vector is identical for all of them —
    /// it is the equivalence the engine guarantees.
    pub cost: Vec<(i64, i64)>,
    /// Measurements.
    pub stats: ConcretizeStats,
}

impl Solution {
    /// Convenience: the single root spec (panics when the request had
    /// multiple roots).
    pub fn spec(&self) -> &ConcreteSpec {
        assert_eq!(self.specs.len(), 1, "multi-root solution");
        &self.specs[0]
    }
}

/// The concretizer: resolves abstract specs against a repository and
/// reusable binaries.
///
/// Owned and cloneable: the repository, the cache sources, and the
/// optional ground cache are all `Arc` handles, so a `Concretizer` (or a
/// clone of one) can move to a worker thread, and N concretizers can
/// share one warm [`GroundCache`] and one set of reusable-spec indexes.
#[derive(Clone)]
pub struct Concretizer {
    repo: Arc<Repository>,
    caches: Vec<Arc<dyn CacheSource>>,
    config: ConcretizerConfig,
    ground_cache: Option<Arc<GroundCache>>,
}

impl Concretizer {
    /// Concretizer over a borrowed `repo` with default (splice spack)
    /// configuration. The repository is **cloned** into a shared handle
    /// (clones keep the original's [`Repository::revision`], so
    /// ground-cache keys still match across concretizers built from the
    /// same repository). For long-lived or multi-threaded use, build the
    /// handle once and use [`Concretizer::shared`].
    pub fn new(repo: &Repository) -> Self {
        Concretizer::shared(Arc::new(repo.clone()))
    }

    /// Concretizer over an already-shared repository handle — the
    /// zero-copy constructor services and worker pools use.
    pub fn shared(repo: Arc<Repository>) -> Self {
        Concretizer {
            repo,
            caches: Vec::new(),
            config: ConcretizerConfig::default(),
            ground_cache: None,
        }
    }

    /// The repository this concretizer resolves against.
    pub fn repository(&self) -> &Arc<Repository> {
        &self.repo
    }

    /// Use the given configuration, **verbatim**.
    ///
    /// Inconsistent axis combinations (splicing under the direct
    /// encoding) are *not* silently repaired here; they surface as
    /// [`CoreError::Config`] from the solve entry points, so remote
    /// callers see an actionable error instead of a quietly different
    /// answer. Call [`ConcretizerConfig::normalize`] first to opt into
    /// the repair explicitly.
    pub fn with_config(mut self, config: ConcretizerConfig) -> Self {
        self.config = config;
        self
    }

    /// Add a source of reusable specs (may be called repeatedly; e.g.
    /// local then public). Any [`CacheSource`] works — a [`BuildCache`],
    /// a [`ChainedCache`], or a custom backend — passed as an owned
    /// value, an `Arc`, or a `&source` (cloned; see [`IntoCacheSource`]
    /// for the exact conversions).
    ///
    /// [`BuildCache`]: spackle_buildcache::BuildCache
    /// [`ChainedCache`]: spackle_buildcache::ChainedCache
    pub fn with_reusable(mut self, cache: impl IntoCacheSource) -> Self {
        self.caches.push(cache.into_cache_source());
        self
    }

    /// Install a cooperative cancellation token (a request deadline or
    /// an explicit kill switch) on the underlying solver. Shorthand for
    /// setting [`SolverConfig::cancel`]; checked both in the CDCL search
    /// loop and at pipeline stage boundaries.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.config.solver.cancel = cancel;
        self
    }

    /// Memoize prepared ground programs in `cache`. Repeated solves of
    /// the same (repository revision, reusable-spec set, goal, encode
    /// config) skip encode + parse + ground + CNF translation entirely
    /// and go straight to [`spackle_asp::Solver::solve_translated`]; the
    /// engine's determinism makes the cached result identical to an
    /// uncached solve. The cache is a shared handle: one warm
    /// [`GroundCache`] may back every concretizer and every thread in a
    /// process — that is the `spackled` service's entire fast path.
    pub fn with_ground_cache(mut self, cache: Arc<GroundCache>) -> Self {
        self.ground_cache = Some(cache);
        self
    }

    /// Concretize a single abstract spec.
    pub fn concretize(&self, spec: &AbstractSpec) -> Result<Solution, CoreError> {
        self.concretize_goal(&Goal::single(spec.clone()))
    }

    /// The encode-relevant view of the configuration, after validation.
    fn encode_config(&self) -> Result<EncodeConfig, CoreError> {
        self.config.validate()?;
        Ok(EncodeConfig {
            encoding: self.config.encoding,
            splicing: self.config.splicing,
            os: self.config.os,
            target: self.config.target,
            filter_irrelevant: self.config.filter_irrelevant,
        })
    }

    /// Compile a goal into the complete ASP program text this
    /// concretizer would solve (facts, directive rules, and logic
    /// fragments), plus the root package names and the number of
    /// reusable specs encoded. This is the exact input handed to the
    /// solver by [`Concretizer::concretize_goal`], exposed so external
    /// verification layers (the `spackle-oracle` differential harness)
    /// can re-solve and certificate-check the same program.
    pub fn program_text(&self, goal: &Goal) -> Result<Encoded, CoreError> {
        self.program_text_for(goal, &self.caches)
    }

    /// [`Concretizer::program_text`] over an explicit source set — the
    /// degraded-mode entry point, where the active sources are a subset
    /// of the configured ones.
    fn program_text_for(
        &self,
        goal: &Goal,
        sources: &[Arc<dyn CacheSource>],
    ) -> Result<Encoded, CoreError> {
        let enc_cfg = self.encode_config()?;
        let mut enc = encode(&self.repo, sources, goal, &enc_cfg)?;
        let frag = |enc: &mut Encoded, label: &'static str, text: &str| {
            enc.ledger
                .push((enc.program.len(), EncodeOrigin::Logic { fragment: label }));
            enc.program.push_str(text);
        };
        frag(&mut enc, "base", crate::logic::BASE_PROGRAM);
        match enc_cfg.encoding {
            Encoding::Direct => frag(&mut enc, "reuse-direct", crate::logic::REUSE_DIRECT),
            Encoding::Indirect => frag(&mut enc, "reuse-indirect", crate::logic::REUSE_INDIRECT),
        }
        if enc_cfg.splicing {
            frag(&mut enc, "splice", crate::logic::SPLICE_FRAGMENT);
        } else {
            frag(&mut enc, "no-splice", crate::logic::NO_SPLICE_STUB);
        }
        Ok(enc)
    }

    /// The memoization key for `goal` under this concretizer: a
    /// fingerprint of every input that determines the prepared ground
    /// program — the goal's package-segment fingerprints (see
    /// [`Concretizer::segment_key`]), the reusable-spec fingerprints in
    /// cache order, the goal, the encode-relevant configuration, the
    /// grounding limits, and the CNF preprocessing configuration (the
    /// cached entry holds the *preprocessed* pristine SAT instance).
    /// Solver search knobs (`ground_threads`, `conflict_budget`,
    /// `max_stability_loops`, `sat`, `incremental_bnb`) are deliberately
    /// excluded: they never change the prepared program — search config
    /// is re-applied per solve. Process-local; never persist it.
    ///
    /// Fallible because fingerprinting a remote source reads its index;
    /// a failure here is degradable like any other cache failure.
    pub fn ground_key(&self, goal: &Goal) -> Result<u64, CoreError> {
        Ok(self.segment_key_for(goal, &self.caches)?.0)
    }

    /// The composed memoization key for `goal` plus the [`SegmentSet`]
    /// it is composed from: one fingerprint per package in the goal's
    /// encode closure (computed by the same `goal_scope` the encoder
    /// uses, so the segment boundary can never drift from the fact
    /// base) and one per reusable-spec source partition. The key is
    /// **content-addressed**: it contains no repository revision, so a
    /// delta that leaves every referenced segment untouched leaves the
    /// key — and the cached entry's validity — untouched too.
    pub fn segment_key(&self, goal: &Goal) -> Result<(u64, Arc<SegmentSet>), CoreError> {
        self.segment_key_for(goal, &self.caches)
    }

    /// [`Concretizer::segment_key`] over an explicit source set.
    /// Degraded solves key on the *surviving* sources' fingerprints, so
    /// they can never alias a full-fleet entry (or each other) in the
    /// ground cache.
    fn segment_key_for(
        &self,
        goal: &Goal,
        sources: &[Arc<dyn CacheSource>],
    ) -> Result<(u64, Arc<SegmentSet>), CoreError> {
        use std::hash::{Hash, Hasher};
        let enc_cfg = self.encode_config()?;
        let scope = goal_scope(&self.repo, goal, &enc_cfg)?;
        let mut segments = SegmentSet::default();
        for &name in &scope.closure {
            // Virtual names carry no definition; the provider packages
            // in the closure (whose fingerprints include their provider
            // rank) cover them.
            if let Some(fp) = self.repo.package_fingerprint(name) {
                segments.packages.push((name, fp));
            }
        }
        for (ci, c) in sources.iter().enumerate() {
            let fp = c
                .fingerprint()
                .map_err(|e| cache_error(ci, c.as_ref(), e))?;
            segments.sources.push((ci, fp));
        }

        let mut h = std::collections::hash_map::DefaultHasher::new();
        segments.packages.hash(&mut h);
        segments.sources.hash(&mut h);
        // Goal and the config axes derive Debug deterministically; their
        // renderings are injective enough for a conservative key (a
        // collision between distinct renderings would require two
        // different goals printing identically, which the derived
        // formatting rules out).
        format!("{goal:?}").hash(&mut h);
        format!(
            "{:?}|{}|{:?}|{:?}|{}|{}",
            self.config.encoding,
            self.config.splicing,
            self.config.os,
            self.config.target,
            self.config.filter_irrelevant,
            self.config.prune_dead,
        )
        .hash(&mut h);
        self.config.solver.limits.max_atoms.hash(&mut h);
        self.config.solver.limits.max_rules.hash(&mut h);
        format!("{:?}", self.config.solver.preprocess).hash(&mut h);
        Ok((h.finish(), Arc::new(segments)))
    }

    /// Fingerprint of the solver knobs that steer the *search* (and can
    /// therefore steer which co-optimal model is found): the model memo
    /// key. `ground_threads` and the cancellation token are excluded —
    /// neither changes the model the deterministic engine returns.
    fn search_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.config.solver.conflict_budget.hash(&mut h);
        self.config.solver.max_stability_loops.hash(&mut h);
        self.config.solver.incremental_bnb.hash(&mut h);
        format!("{:?}", self.config.solver.sat).hash(&mut h);
        h.finish()
    }

    /// Run the pre-solve pipeline — encode, parse, optionally prune,
    /// ground — returning the prepared program plus the encode / parse /
    /// ground wall times.
    ///
    /// When `salvage` holds a ground cache with parked translations
    /// (delta-dropped entries), the freshly grounded program's content
    /// fingerprint is checked against the pool: a hit means this
    /// re-ground is bit-identical to a dropped entry's, so its retained
    /// CNF translation — and memoized models — are spliced back in
    /// instead of re-translating. `AtomId` interning is deterministic
    /// for identical programs, so the salvaged translation's atom
    /// numbering matches the fresh grounding exactly.
    fn prepare(
        &self,
        goal: &Goal,
        solver: &Solver,
        sources: &[Arc<dyn CacheSource>],
        salvage: Option<&GroundCache>,
    ) -> Result<(PreparedProgram, Duration, Duration, Duration), CoreError> {
        let t0 = Instant::now();
        let Encoded {
            program: text,
            root_names,
            reusable_count,
            ledger: _,
        } = self.program_text_for(goal, sources)?;
        let encode_time = t0.elapsed();

        let t1 = Instant::now();
        let mut program = parse_program(&text)
            .map_err(|e| CoreError::Solve(format!("generated program invalid: {e}")))?;
        let mut pruned_rules = 0usize;
        if self.config.prune_dead {
            // The interpreter reads exactly `attr` and `splice_to` from
            // the model; constraints, choices, and costs are always kept.
            let goals = [Sym::intern("attr"), Sym::intern("splice_to")];
            let (pruned, report) = program.prune_unreachable(&goals);
            program = pruned;
            pruned_rules = report.dropped_rules();
        }
        let parse_time = t1.elapsed();

        // Ground and CNF-translate together: both are skipped on a cache
        // hit, so `ground_time` covers the whole prepared-program cost
        // beyond encode + parse.
        let t2 = Instant::now();
        let ground = solver.ground(&program).map_err(solve_error)?;
        let salvaged = salvage
            .filter(|gc| gc.has_salvage())
            .and_then(|gc| gc.take_salvaged(ground.content_fingerprint()));
        let (translated, models) = match salvaged {
            Some((program, models)) => (program, models),
            None => (
                Arc::new(solver.translate_ground(ground)),
                PreparedProgram::fresh_memo(),
            ),
        };
        let ground_time = t2.elapsed();

        Ok((
            PreparedProgram {
                program: translated,
                root_names,
                reusable_count,
                program_bytes: text.len(),
                pruned_rules,
                models,
            },
            encode_time,
            parse_time,
            ground_time,
        ))
    }

    /// Concretize a goal (possibly multiple roots, possibly with
    /// forbidden packages).
    ///
    /// This is the fault boundary for reusable-spec sources: when a
    /// source fails past its retry budget and
    /// [`ConcretizerConfig::degrade_on_cache_failure`] is set (the
    /// default), the failing source is dropped, the solve re-runs over
    /// the survivors, and the solution is flagged
    /// [`ConcretizeStats::degraded`] with per-source provenance in
    /// [`ConcretizeStats::skipped_sources`]. The degraded answer is
    /// bit-identical to a fresh solve that never had the failed source.
    pub fn concretize_goal(&self, goal: &Goal) -> Result<Solution, CoreError> {
        // Validate before touching any cache so a misconfigured request
        // fails identically with and without a ground cache attached.
        self.config.validate()?;
        let fault_before = self.merged_fault_stats();
        let mut active: Vec<Arc<dyn CacheSource>> = self.caches.clone();
        let mut skipped: Vec<SkippedSource> = Vec::new();
        loop {
            if let Some(deadline) = self.config.solver.cancel.check() {
                return Err(CoreError::Cancelled { deadline });
            }
            match self.concretize_with_sources(goal, &active) {
                Ok(mut solution) => {
                    solution.stats.degraded = !skipped.is_empty();
                    solution.stats.skipped_sources = std::mem::take(&mut skipped);
                    let delta = self.merged_fault_stats().saturating_sub(fault_before);
                    solution.stats.cache_retries = delta.retries;
                    solution.stats.cache_transient_errors = delta.transient_errors;
                    solution.stats.cache_permanent_errors = delta.permanent_errors;
                    solution.stats.cache_corrupt_entries = delta.corrupt_entries;
                    solution.stats.cache_breaker_opens = delta.breaker_opens;
                    solution.stats.cache_injected_faults = delta.injected_faults;
                    return Ok(solution);
                }
                Err(CoreError::Cache {
                    source,
                    backend,
                    detail,
                }) if self.config.degrade_on_cache_failure && source < active.len() => {
                    active.remove(source);
                    skipped.push(SkippedSource {
                        backend,
                        error: detail,
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Explain why `goal` cannot concretize — or report that it can.
    ///
    /// Returns `Ok(None)` when the goal is satisfiable (concretize it
    /// normally for the actual solution), or `Ok(Some(explanation))`
    /// with a provenance-mapped unsat core: a small set of source-level
    /// directives and goal constraints that are jointly unsatisfiable
    /// (see [`Explanation`]).
    ///
    /// This path deliberately differs from [`Concretizer::concretize_goal`]:
    ///
    /// * **No dead-rule pruning and no ground cache.** Provenance needs
    ///   the identity mapping from parsed-rule index to the grounder's
    ///   `*_src` tables, and explanation is an off-path diagnostic — it
    ///   must never pollute or depend on the hot solve pipeline.
    /// * **Canonical solver configuration.** Core extraction runs under
    ///   the engine's fixed internal search/preprocess settings
    ///   regardless of [`SolverConfig`] tuning, so the reported core is
    ///   stable across solver-knob changes. Only grounding limits and
    ///   the cancellation token carry over; the configured
    ///   `conflict_budget` bounds each deletion probe so a configured
    ///   budget still limits total explain effort.
    ///
    /// Cancellation (an explicit kill or a request deadline installed
    /// via [`Concretizer::with_cancel`]) is honored between probes: the
    /// call returns promptly with a *partial* core
    /// ([`Explanation::minimal`]` == false`) if at least one UNSAT
    /// answer was reached, or [`CoreError::Cancelled`] otherwise.
    pub fn explain_goal(&self, goal: &Goal) -> Result<Option<Explanation>, CoreError> {
        self.config.validate()?;
        let t0 = Instant::now();
        let enc = self.program_text(goal)?;
        let (program, rule_offsets) = parse_program_spanned(&enc.program)
            .map_err(|e| CoreError::Solve(format!("generated program invalid: {e}")))?;
        let solver = Solver::with_config(self.config.solver.clone());
        let gp = solver.ground(&program).map_err(solve_error)?;
        let cfg = ExplainConfig {
            cancel: self.config.solver.cancel.clone(),
            probe_conflict_budget: self.config.solver.conflict_budget.min(1 << 20),
            ..ExplainConfig::default()
        };
        let (outcome, stats) = solver.explain_ground(&gp, &cfg).map_err(solve_error)?;
        match outcome {
            ExplainOutcome::Satisfiable => Ok(None),
            ExplainOutcome::Unsat(core) => {
                let entries = core
                    .members
                    .iter()
                    .map(|m| {
                        let (line, origin) = match m
                            .src_rule
                            .and_then(|ri| rule_offsets.get(ri as usize).copied())
                        {
                            Some(off) => (
                                Some(crate::explain::line_of(&enc.program, off)),
                                enc.origin_at(off).cloned(),
                            ),
                            None => (None, None),
                        };
                        ExplainEntry {
                            origin,
                            line,
                            rule: m.text.clone(),
                        }
                    })
                    .collect();
                Ok(Some(Explanation {
                    entries,
                    minimal: core.minimal,
                    core_initial: stats.explain_core_initial,
                    probes: stats.explain_probes,
                    time: t0.elapsed(),
                }))
            }
        }
    }

    /// Cumulative fault statistics merged over every configured source
    /// (not just the currently active subset) — the basis for the
    /// per-solve deltas in [`ConcretizeStats`] and for service-level
    /// absolute totals.
    pub fn merged_fault_stats(&self) -> SourceFaultStats {
        let mut total = SourceFaultStats::default();
        for c in &self.caches {
            total = total.merge(c.fault_stats());
        }
        total
    }

    /// One solve attempt over an explicit source set — everything from
    /// ground-cache lookup through interpretation.
    fn concretize_with_sources(
        &self,
        goal: &Goal,
        sources: &[Arc<dyn CacheSource>],
    ) -> Result<Solution, CoreError> {
        let t_total = Instant::now();
        let solver = Solver::with_config(self.config.solver.clone());

        let mut ground_cache_hit = false;
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let (prepared, encode_time, parse_time, ground_time) = match &self.ground_cache {
            Some(cache) => {
                let (key, segments) = self.segment_key_for(goal, sources)?;
                let (found, hits, misses) = cache.lookup_counted(key);
                cache_hits = hits;
                cache_misses = misses;
                match found {
                    Some(prepared) => {
                        ground_cache_hit = true;
                        (prepared, Duration::ZERO, Duration::ZERO, Duration::ZERO)
                    }
                    None => {
                        let (prepared, et, pt, gt) =
                            self.prepare(goal, &solver, sources, Some(cache))?;
                        cache.insert(key, self.repo.revision(), segments, prepared.clone());
                        (prepared, et, pt, gt)
                    }
                }
            }
            None => self.prepare(goal, &solver, sources, None)?,
        };
        // Stage boundary: catch an expired deadline here even when the
        // search itself would be too quick to poll its token — slow
        // backends (injected or real latency) spend the budget during
        // prepare, and the request must still time out deterministically.
        if let Some(deadline) = self.config.solver.cancel.check() {
            return Err(CoreError::Cancelled { deadline });
        }
        let PreparedProgram {
            program: translated,
            root_names,
            reusable_count,
            program_bytes,
            pruned_rules,
            models,
        } = prepared;

        // Model memo: a warm entry that already solved under this search
        // configuration replays the memoized model instead of searching.
        // Keyed per search config because co-optimal models can differ
        // across configs; within one config the engine is deterministic,
        // so the replay is bit-identical to a fresh search (and was
        // certificate-checked when first produced).
        let search_key = self.search_fingerprint();
        let memoized = models.read().get(&search_key).cloned();
        let mut model_memo_hit = false;
        let (model, mut solver_stats) = match memoized {
            Some((model, stats)) => {
                model_memo_hit = true;
                let mut stats = stats;
                // The memo hit does no search or grounding *now*; keep
                // the search counters (they describe the model's
                // provenance) but report zero wall time for this solve.
                stats.solve_time = Duration::ZERO;
                (model, stats)
            }
            None => {
                let (outcome, stats) =
                    solver.solve_translated(&translated).map_err(solve_error)?;
                let model = match outcome {
                    SolveOutcome::Unsat => return Err(CoreError::Unsatisfiable),
                    SolveOutcome::Optimal(m) => Arc::new(m),
                };

                // Debug builds certificate-check the optimal model
                // against its ground program (rule satisfaction, reduct
                // minimality, cost honesty) before interpreting it into
                // specs. A failure here is a solver bug, never a user
                // error.
                #[cfg(debug_assertions)]
                if let Err(e) = spackle_asp::certify::certify_model(&model) {
                    return Err(CoreError::Solve(format!(
                        "solver emitted an uncertifiable model: {e}"
                    )));
                }

                models
                    .write()
                    .entry(search_key)
                    .or_insert_with(|| (model.clone(), stats));
                (model, stats)
            }
        };
        // `solve_translated` cannot know grounding cost; restore the
        // stats convention that `solver.ground_time` covers this solve's
        // ground + translate work (zero on a cache hit — that is the
        // point).
        solver_stats.ground_time = ground_time;

        let t2 = Instant::now();
        let Interpretation {
            specs,
            reused,
            built,
            spliced,
        } = interpret(&model, sources, &root_names)?;
        let interpret_time = t2.elapsed();

        Ok(Solution {
            specs,
            reused,
            built,
            spliced,
            cost: model.cost.clone(),
            stats: ConcretizeStats {
                encode_time,
                parse_time,
                solve_time: solver_stats.ground_time + solver_stats.solve_time,
                interpret_time,
                total_time: t_total.elapsed(),
                reusable_specs: reusable_count,
                program_bytes,
                pruned_rules,
                ground_cache_hit,
                model_memo_hit,
                ground_cache_hits: cache_hits,
                ground_cache_misses: cache_misses,
                solver: solver_stats,
                // Degradation and fault-delta fields are filled in by
                // the `concretize_goal` fault boundary, which sees the
                // whole retry history rather than one attempt.
                ..Default::default()
            },
        })
    }
}

/// Lift an ASP engine error into the typed [`CoreError`] taxonomy:
/// budget exhaustion and cancellation stay structured (they must be
/// distinguishable over the wire), everything else renders as a solver
/// failure.
fn solve_error(e: AspError) -> CoreError {
    match e {
        AspError::BudgetExhausted {
            conflicts,
            decisions,
            propagations,
            restarts,
        } => CoreError::BudgetExhausted {
            conflicts,
            decisions,
            propagations,
            restarts,
        },
        AspError::Cancelled { deadline } => CoreError::Cancelled { deadline },
        other => CoreError::Solve(other.to_string()),
    }
}

// A concretizer clone must be able to move to any worker thread; this
// is the load-bearing bound of the shared-state API.
const _: fn() = || {
    fn assert_send_sync_clone<T: Send + Sync + Clone>() {}
    assert_send_sync_clone::<Concretizer>();
};
