//! Compilation of packages, goals, and buildcaches into ASP facts and
//! per-directive rules (paper §5.1–§5.3).
//!
//! Directive conditions are compiled to *specialized rules* (the style
//! Fig 4a uses for `can_splice`), rather than the generic
//! `condition_requirement` machinery — semantically equivalent and a
//! better fit for a from-scratch engine. Reusable specs use either the
//! **direct** `imposed_constraint` fact encoding (old Spack) or the
//! **indirect** `hash_attr` encoding (splice Spack), selected by
//! [`EncodeConfig::encoding`] — the paper's RQ1 ablation.

use crate::CoreError;
use spackle_buildcache::{CacheError, CacheSource};
use spackle_repo::Repository;
use spackle_spec::{
    AbstractSpec, ConcreteSpec, Os, Sym, Target, VariantValue, Version, VersionReq,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write;

/// Which reusable-spec encoding to emit (the RQ1 axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Encoding {
    /// Old Spack: `imposed_constraint` facts emitted directly.
    Direct,
    /// Splice Spack: `hash_attr` facts with bridge rules (Fig 3).
    Indirect,
}

/// Encoder configuration.
#[derive(Clone, Debug)]
pub struct EncodeConfig {
    /// Reusable-spec encoding.
    pub encoding: Encoding,
    /// Whether the splice fragment and `can_splice` rules are emitted.
    /// Only meaningful with [`Encoding::Indirect`].
    pub splicing: bool,
    /// The requesting machine's OS.
    pub os: Os,
    /// The requesting machine's microarchitecture.
    pub target: Target,
    /// Restrict package facts and reusable specs to the goal's possible
    /// dependency closure. On by default; turning it off is an ablation
    /// that feeds the solver every cache entry (how much the filter
    /// matters grows with cache size).
    pub filter_irrelevant: bool,
}

/// A concretization request: one or more root specs concretized jointly,
/// plus packages that must not appear in the solution (used by the
/// paper's Fig 7 experiment to exclude `mpich`).
#[derive(Clone, Debug)]
pub struct Goal {
    /// Root specs (must name real packages).
    pub roots: Vec<AbstractSpec>,
    /// Packages forbidden from the solution DAG.
    pub forbidden: Vec<Sym>,
}

impl Goal {
    /// Single-root goal.
    pub fn single(spec: AbstractSpec) -> Goal {
        Goal {
            roots: vec![spec],
            forbidden: Vec::new(),
        }
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn q(s: &str) -> String {
    format!("\"{}\"", esc(s))
}

/// Canonical key for a version requirement, used to link constraint
/// occurrences with `version_satisfies` facts.
fn req_key(req: &VersionReq) -> String {
    req.to_string()
}

/// Collects, per package, every version constraint that appears anywhere,
/// so `version_satisfies` facts can be emitted for exactly those.
#[derive(Default)]
struct ConstraintTable {
    per_pkg: BTreeMap<Sym, BTreeSet<String>>,
    reqs: BTreeMap<String, VersionReq>,
}

impl ConstraintTable {
    fn note(&mut self, pkg: Sym, req: &VersionReq) -> Option<String> {
        if matches!(req, VersionReq::Any) {
            return None;
        }
        let key = req_key(req);
        self.per_pkg.entry(pkg).or_default().insert(key.clone());
        self.reqs.insert(key.clone(), req.clone());
        Some(key)
    }
}

/// Where a region of the encoded program text came from — the
/// source-level construct (package directive, goal constraint, cache
/// entry, logic fragment) that emitted it. The encoder's
/// [`Encoded::ledger`] records one entry per region; mapping any byte
/// offset of the program back to its origin is a binary search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncodeOrigin {
    /// Environment facts (OS/target universe), version/variant
    /// universes, and other derived facts with no single directive.
    Environment,
    /// The `index`-th `depends_on` directive of `package`.
    DependsOn {
        /// Declaring package.
        package: Sym,
        /// Directive index within the package's `depends` list.
        index: usize,
    },
    /// The `index`-th `provides` directive of `package`.
    Provides {
        /// Declaring package.
        package: Sym,
        /// Directive index within the package's `provides` list.
        index: usize,
    },
    /// The `index`-th `conflicts` directive of `package`.
    Conflict {
        /// Declaring package.
        package: Sym,
        /// Directive index within the package's `conflicts` list.
        index: usize,
    },
    /// The `index`-th `can_splice` directive of `package`.
    CanSplice {
        /// Declaring package.
        package: Sym,
        /// Directive index within the package's `can_splice` list.
        index: usize,
    },
    /// Provider preference weights (repository declaration order).
    ProviderWeights,
    /// The goal root `root`: its `attr("root", ...)` fact and every
    /// constraint the request placed on it.
    GoalRoot {
        /// Root package name.
        root: Sym,
    },
    /// A `--forbid` exclusion from the goal.
    Forbidden {
        /// Excluded package name.
        package: Sym,
    },
    /// One reusable buildcache entry.
    Reusable {
        /// Root package of the cached spec.
        package: Sym,
        /// DAG hash of the cached spec (base32).
        hash: String,
    },
    /// A static logic fragment appended after the encoded facts/rules
    /// (the base program, reuse fragment, splice fragment).
    Logic {
        /// Fragment label, e.g. `"base"`, `"reuse"`, `"splice"`.
        fragment: &'static str,
    },
}

/// Everything the interpreter needs to map the model back to specs.
pub struct Encoded {
    /// The complete program text (facts + rules + logic fragments).
    pub program: String,
    /// Root package names in goal order.
    pub root_names: Vec<Sym>,
    /// Number of reusable-spec entries encoded.
    pub reusable_count: usize,
    /// Provenance ledger: `(byte_offset, origin)` pairs in ascending
    /// offset order. Each entry covers the program text from its offset
    /// up to the next entry's. [`Encoded::origin_at`] resolves offsets.
    pub ledger: Vec<(usize, EncodeOrigin)>,
}

impl Encoded {
    /// The origin of the program text at `offset`, via binary search
    /// over the ledger.
    pub fn origin_at(&self, offset: usize) -> Option<&EncodeOrigin> {
        match self.ledger.binary_search_by_key(&offset, |&(o, _)| o) {
            Ok(i) => Some(&self.ledger[i].1),
            Err(0) => None,
            Err(i) => Some(&self.ledger[i - 1].1),
        }
    }
}

/// Lift a backend failure into [`CoreError::Cache`], preserving which
/// top-level source failed (by index and label) so the concretizer's
/// degraded mode can drop exactly that source and record why.
pub(crate) fn cache_error(idx: usize, source: &dyn CacheSource, e: CacheError) -> CoreError {
    CoreError::Cache {
        source: idx,
        backend: e.backend().unwrap_or_else(|| source.label()).to_string(),
        detail: e.to_string(),
    }
}

/// The goal-relevant scope of an encoding: the resolved root specs plus
/// the package closure whose facts the encoder will emit.
///
/// This is the *segment boundary* computation: the fact base decomposes
/// into one segment per closure package (plus one per reusable-spec
/// source), so the exact same closure must back both the encoder and the
/// ground-cache segment keys — a key computed over a different closure
/// would retain entries whose fact base silently changed. Keep this the
/// single source of truth for both.
pub(crate) struct GoalScope {
    /// Root package names, in request order.
    pub root_names: Vec<Sym>,
    /// Root specs with virtual roots resolved to their sole provider.
    pub resolved_roots: Vec<AbstractSpec>,
    /// Every package (and virtual) name whose facts are in scope.
    pub closure: BTreeSet<Sym>,
}

/// Resolve `goal`'s roots against `repo` and compute the package closure
/// the encoding covers (see [`GoalScope`]).
pub(crate) fn goal_scope(
    repo: &Repository,
    goal: &Goal,
    cfg: &EncodeConfig,
) -> Result<GoalScope, CoreError> {
    let mut root_names: Vec<Sym> = Vec::new();
    let mut roots: Vec<Sym> = Vec::new();
    let mut resolved_roots: Vec<AbstractSpec> = Vec::new();
    for r in &goal.roots {
        let name = r.name.ok_or_else(|| {
            CoreError::BadGoal("root specs must name a package".into())
        })?;
        // Resolve through the repository: a virtual root with a sole
        // provider concretizes that provider; an ambiguous one reports
        // every candidate (matching `spackle audit`'s diagnostics).
        let pkg = repo
            .lookup(name)
            .map_err(|e| CoreError::BadGoal(e.to_string()))?;
        root_names.push(pkg.name);
        roots.push(pkg.name);
        let mut resolved = r.clone();
        resolved.name = Some(pkg.name);
        resolved_roots.push(resolved);
        for d in &r.deps {
            if let Some(dn) = d.spec.name {
                if repo.is_virtual(dn) {
                    roots.extend(repo.providers_of(dn).iter().copied());
                } else {
                    roots.push(dn);
                }
            }
        }
    }
    let mut closure = if cfg.filter_irrelevant {
        repo.possible_closure(&roots)
    } else {
        // Ablation: the whole repository is in scope.
        repo.packages().map(|p| p.name).collect()
    };
    if cfg.splicing {
        // Splice candidates enter the solution without being dependencies:
        // include every package that declares it can replace a closure
        // member, then re-close.
        loop {
            let mut added: Vec<Sym> = Vec::new();
            for pkg in repo.packages() {
                if closure.contains(&pkg.name) {
                    continue;
                }
                if pkg
                    .can_splice
                    .iter()
                    .any(|cs| closure.contains(&cs.target.name.expect("validated")))
                {
                    added.push(pkg.name);
                }
            }
            if added.is_empty() {
                break;
            }
            for a in &added {
                closure.extend(repo.possible_closure(&[*a]));
            }
        }
    }
    Ok(GoalScope {
        root_names,
        resolved_roots,
        closure,
    })
}

/// Compile everything into one ASP program. Caches are shared handles
/// so the same slice the owned [`Concretizer`] holds can be passed down
/// without reborrowing gymnastics.
///
/// [`Concretizer`]: crate::Concretizer
pub fn encode(
    repo: &Repository,
    caches: &[std::sync::Arc<dyn CacheSource>],
    goal: &Goal,
    cfg: &EncodeConfig,
) -> Result<Encoded, CoreError> {
    let mut out = String::with_capacity(1 << 16);
    let mut ct = ConstraintTable::default();
    // Provenance ledger halves: facts land in `out`, directive rules in
    // `rules`; the two marker lists are merged (with the rules offsets
    // shifted) at the final concatenation.
    let mut out_marks: Vec<(usize, EncodeOrigin)> = Vec::new();
    let mut rule_marks: Vec<(usize, EncodeOrigin)> = Vec::new();

    // ---- determine the relevant package closure ----
    let GoalScope {
        root_names,
        resolved_roots,
        closure,
    } = goal_scope(repo, goal, cfg)?;

    // ---- version universes (declared + cached) ----
    let mut cache_versions: BTreeMap<Sym, BTreeSet<Version>> = BTreeMap::new();
    let mut cache_targets: BTreeSet<Target> = BTreeSet::new();
    let mut cache_oses: BTreeSet<Os> = BTreeSet::new();
    let mut cache_variant_values: BTreeMap<(Sym, Sym), BTreeSet<VariantValue>> = BTreeMap::new();
    let relevant_entry = |spec: &ConcreteSpec| -> bool {
        spec.nodes().iter().all(|n| closure.contains(&n.name))
    };
    let mut reusable_count = 0usize;
    for (ci, cache) in caches.iter().enumerate() {
        let entries = cache.iter().map_err(|e| cache_error(ci, cache.as_ref(), e))?;
        for entry in entries {
            if !relevant_entry(&entry.spec) {
                continue;
            }
            reusable_count += 1;
            let root = entry.spec.root();
            cache_versions
                .entry(root.name)
                .or_default()
                .insert(root.version.clone());
            cache_targets.insert(root.target);
            cache_oses.insert(root.os);
            for (vn, vv) in &root.variants {
                cache_variant_values
                    .entry((root.name, *vn))
                    .or_default()
                    .insert(vv.clone());
            }
        }
    }

    let version_universe = |pkg: Sym| -> Vec<Version> {
        let mut vs: Vec<Version> = repo
            .get(pkg)
            .map(|p| p.versions.clone())
            .unwrap_or_default();
        if let Some(extra) = cache_versions.get(&pkg) {
            for v in extra {
                if !vs.contains(v) {
                    vs.push(v.clone());
                }
            }
        }
        vs
    };

    // ---- environment facts ----
    out_marks.push((out.len(), EncodeOrigin::Environment));
    writeln!(out, "requested_os({}).", q(cfg.os.name().as_str())).ok();
    writeln!(out, "requested_target({}).", q(cfg.target.name().as_str())).ok();
    let mut targets: BTreeSet<Target> = cache_targets;
    targets.insert(cfg.target);
    for a in cfg.target.ancestors() {
        targets.insert(a);
    }
    let mut oses: BTreeSet<Os> = cache_oses;
    oses.insert(cfg.os);
    for o in &oses {
        writeln!(out, "os_declared({}).", q(o.name().as_str())).ok();
    }
    for t in &targets {
        writeln!(out, "target_declared({}).", q(t.name().as_str())).ok();
    }
    for machine in &targets {
        for built in &targets {
            if machine.runs_binary_built_for(*built) {
                writeln!(
                    out,
                    "target_runs({}, {}).",
                    q(machine.name().as_str()),
                    q(built.name().as_str())
                )
                .ok();
            }
        }
    }
    for t in &targets {
        let pen = if cfg.target.runs_binary_built_for(*t) {
            cfg.target.depth().saturating_sub(t.depth()) as i64
        } else {
            100
        };
        writeln!(out, "target_penalty({}, {}).", q(t.name().as_str()), pen).ok();
    }

    // ---- package facts and directive rules ----
    // First pass registers version constraints; a second emits the
    // version_satisfies facts (constraints are discovered during rule
    // generation).
    let mut rules = String::with_capacity(1 << 14);
    for &pname in &closure {
        let Some(pkg) = repo.get(pname) else {
            continue; // virtual names in the closure have no package
        };
        emit_package(&mut rules, &mut rule_marks, repo, pkg, cfg, &mut ct)?;
    }

    // ---- provider preference weights (repository declaration order) ----
    {
        rule_marks.push((rules.len(), EncodeOrigin::ProviderWeights));
        let mut virtuals: BTreeSet<Sym> = BTreeSet::new();
        for &pname in &closure {
            if let Some(pkg) = repo.get(pname) {
                for p in &pkg.provides {
                    virtuals.insert(p.virtual_name);
                }
            }
        }
        for v in virtuals {
            for (i, prov) in repo.providers_of(v).iter().enumerate() {
                if closure.contains(prov) {
                    writeln!(
                        rules,
                        "provider_weight({vq}, {pq}, {i}).",
                        vq = q(v.as_str()),
                        pq = q(prov.as_str())
                    )
                    .ok();
                }
            }
        }
    }

    // ---- goal ----
    for root in &resolved_roots {
        rule_marks.push((
            rules.len(),
            EncodeOrigin::GoalRoot {
                root: root.name.expect("resolved above"),
            },
        ));
        emit_goal_root(&mut rules, repo, root, &mut ct)?;
    }
    for f in &goal.forbidden {
        rule_marks.push((rules.len(), EncodeOrigin::Forbidden { package: *f }));
        writeln!(rules, ":- attr(\"node\", node({})).", q(f.as_str())).ok();
    }

    // ---- reusable specs ----
    for (ci, cache) in caches.iter().enumerate() {
        let entries = cache.iter().map_err(|e| cache_error(ci, cache.as_ref(), e))?;
        for entry in entries {
            if !relevant_entry(&entry.spec) {
                continue;
            }
            out_marks.push((
                out.len(),
                EncodeOrigin::Reusable {
                    package: entry.spec.root().name,
                    hash: entry.spec.dag_hash().to_base32(),
                },
            ));
            emit_reusable(&mut out, &entry.spec, cfg);
        }
    }

    // ---- declared-version + version_satisfies facts ----
    out_marks.push((out.len(), EncodeOrigin::Environment));
    for &pname in &closure {
        if repo.get(pname).is_none() {
            continue;
        }
        let universe = version_universe(pname);
        for (i, v) in universe.iter().enumerate() {
            writeln!(
                out,
                "pkg_fact({}, version_declared({}, {})).",
                q(pname.as_str()),
                q(&v.to_string()),
                i
            )
            .ok();
        }
        if let Some(keys) = ct.per_pkg.get(&pname) {
            for key in keys {
                let req = &ct.reqs[key];
                for v in &universe {
                    if req.satisfies(v) {
                        writeln!(
                            out,
                            "pkg_fact({}, version_satisfies({}, {})).",
                            q(pname.as_str()),
                            q(key),
                            q(&v.to_string())
                        )
                        .ok();
                    }
                }
            }
        }
    }

    // ---- variant universes ----
    for &pname in &closure {
        let Some(pkg) = repo.get(pname) else { continue };
        for (vn, kind) in &pkg.variants {
            writeln!(
                out,
                "pkg_fact({}, variant({})).",
                q(pname.as_str()),
                q(vn.as_str())
            )
            .ok();
            writeln!(
                out,
                "pkg_fact({}, variant_default({}, {})).",
                q(pname.as_str()),
                q(vn.as_str()),
                q(&kind.default_value().canonical())
            )
            .ok();
            let mut values: BTreeSet<String> = kind
                .candidate_values()
                .iter()
                .map(|v| v.canonical())
                .collect();
            if let Some(extra) = cache_variant_values.get(&(pname, *vn)) {
                for v in extra {
                    values.insert(v.canonical());
                }
            }
            for v in values {
                writeln!(
                    out,
                    "pkg_fact({}, variant_value({}, {})).",
                    q(pname.as_str()),
                    q(vn.as_str()),
                    q(&v)
                )
                .ok();
            }
        }
    }

    let shift = out.len();
    out.push_str(&rules);
    let mut ledger = out_marks;
    ledger.extend(rule_marks.into_iter().map(|(o, g)| (o + shift, g)));
    Ok(Encoded {
        program: out,
        root_names,
        reusable_count,
        ledger,
    })
}

/// Render the body fragment testing an anonymous `when` constraint
/// against the node for package `p`. Returns the conjunction pieces
/// (without the leading `attr("node", ...)`, which callers always add).
fn when_fragments(
    p: Sym,
    when: &AbstractSpec,
    var_tag: &str,
    ct: &mut ConstraintTable,
) -> Result<Vec<String>, CoreError> {
    let mut parts = Vec::new();
    if let Some(key) = ct.note(p, &when.version) {
        parts.push(format!(
            "attr(\"version\", node({p}), V{var_tag})",
            p = q(p.as_str())
        ));
        parts.push(format!(
            "pkg_fact({p}, version_satisfies({c}, V{var_tag}))",
            p = q(p.as_str()),
            c = q(&key)
        ));
    }
    for (vn, vv) in &when.variants {
        parts.push(format!(
            "attr(\"variant\", node({p}), {vn}, {vv})",
            p = q(p.as_str()),
            vn = q(vn.as_str()),
            vv = q(&vv.canonical())
        ));
    }
    if let Some(os) = when.os {
        parts.push(format!(
            "attr(\"node_os\", node({p}), {o})",
            p = q(p.as_str()),
            o = q(os.name().as_str())
        ));
    }
    if let Some(t) = when.target {
        parts.push(format!(
            "attr(\"node_target\", node({p}), {t})",
            p = q(p.as_str()),
            t = q(t.name().as_str())
        ));
    }
    if !when.deps.is_empty() {
        return Err(CoreError::Unsupported(
            "dependency clauses inside when= conditions".into(),
        ));
    }
    Ok(parts)
}

fn emit_package(
    rules: &mut String,
    marks: &mut Vec<(usize, EncodeOrigin)>,
    repo: &Repository,
    pkg: &spackle_repo::PackageDef,
    cfg: &EncodeConfig,
    ct: &mut ConstraintTable,
) -> Result<(), CoreError> {
    let pq = q(pkg.name.as_str());

    // depends_on directives. Guarded by build(P): a *reused* node's
    // dependencies come exclusively from its imposed (possibly spliced)
    // constraints — the stored spec is trusted, directives only shape
    // what gets built (Spack's reuse semantics).
    for (di, dep) in pkg.depends.iter().enumerate() {
        marks.push((
            rules.len(),
            EncodeOrigin::DependsOn {
                package: pkg.name,
                index: di,
            },
        ));
        let dname = dep.spec.name.expect("validated at build");
        let mut body = vec![
            format!("attr(\"node\", node({pq}))"),
            format!("build({pq})"),
        ];
        body.extend(when_fragments(pkg.name, &dep.when, &format!("w{di}"), ct)?);
        let body_s = body.join(", ");

        if repo.is_virtual(dname) {
            if !matches!(dep.spec.version, VersionReq::Any) || !dep.spec.variants.is_empty() {
                return Err(CoreError::Unsupported(format!(
                    "constraints on virtual dependency {dname} of {}",
                    pkg.name
                )));
            }
            writeln!(
                rules,
                "attr(\"virtual_dep\", node({pq}), {d}) :- {body_s}.",
                d = q(dname.as_str())
            )
            .ok();
        } else {
            let types: &[&str] = if dep.types.is_build() && dep.types.is_link_run() {
                &["build", "link-run"]
            } else if dep.types.is_build() {
                &["build"]
            } else {
                &["link-run"]
            };
            for t in types {
                writeln!(
                    rules,
                    "attr(\"depends_on\", node({pq}), node({d}), {t}) :- {body_s}.",
                    d = q(dname.as_str()),
                    t = q(t)
                )
                .ok();
            }
            // Constraints the dependency spec imposes on the dep node.
            if let Some(key) = ct.note(dname, &dep.spec.version) {
                writeln!(
                    rules,
                    ":- {body_s}, attr(\"version\", node({d}), Vd{di}), \
                     not pkg_fact({d}, version_satisfies({c}, Vd{di})).",
                    d = q(dname.as_str()),
                    c = q(&key)
                )
                .ok();
            }
            for (vn, vv) in &dep.spec.variants {
                writeln!(
                    rules,
                    ":- {body_s}, attr(\"node\", node({d})), \
                     not attr(\"variant\", node({d}), {vn}, {vv}).",
                    d = q(dname.as_str()),
                    vn = q(vn.as_str()),
                    vv = q(&vv.canonical())
                )
                .ok();
            }
        }
    }

    // provides directives. (Provider *weights* are emitted globally by
    // `encode`, ordered by repository declaration order.)
    for (pi, prov) in pkg.provides.iter().enumerate() {
        marks.push((
            rules.len(),
            EncodeOrigin::Provides {
                package: pkg.name,
                index: pi,
            },
        ));
        writeln!(
            rules,
            "provider_decl({pq}, {v}).",
            v = q(prov.virtual_name.as_str())
        )
        .ok();
        if !prov.when.is_empty() {
            let mut body = vec![format!("attr(\"node\", node({pq}))")];
            body.extend(when_fragments(pkg.name, &prov.when, &format!("p{pi}"), ct)?);
            writeln!(
                rules,
                "provides_ok({pq}, {v}) :- {body}.",
                v = q(prov.virtual_name.as_str()),
                body = body.join(", ")
            )
            .ok();
            writeln!(
                rules,
                ":- virtual_chosen({v}, {pq}), not provides_ok({pq}, {v}).",
                v = q(prov.virtual_name.as_str())
            )
            .ok();
        }
    }

    // conflicts directives.
    for (ci, conf) in pkg.conflicts.iter().enumerate() {
        marks.push((
            rules.len(),
            EncodeOrigin::Conflict {
                package: pkg.name,
                index: ci,
            },
        ));
        let mut body = vec![format!("attr(\"node\", node({pq}))")];
        body.extend(when_fragments(pkg.name, &conf.when, &format!("cw{ci}"), ct)?);
        // The conflicting condition itself (node-local parts).
        let mut c_local = conf.spec.clone();
        let c_deps = std::mem::take(&mut c_local.deps);
        c_local.name = None;
        body.extend(when_fragments(pkg.name, &c_local, &format!("cs{ci}"), ct)?);
        for (k, d) in c_deps.iter().enumerate() {
            let dn = d.spec.name.ok_or_else(|| {
                CoreError::Unsupported("anonymous dep in conflicts spec".into())
            })?;
            body.push(format!("reach({pq}, {d})", d = q(dn.as_str())));
            if let Some(key) = ct.note(dn, &d.spec.version) {
                body.push(format!(
                    "attr(\"version\", node({d}), Vc{ci}_{k})",
                    d = q(dn.as_str())
                ));
                body.push(format!(
                    "pkg_fact({d}, version_satisfies({c}, Vc{ci}_{k}))",
                    d = q(dn.as_str()),
                    c = q(&key)
                ));
            }
        }
        writeln!(rules, ":- {}.", body.join(", ")).ok();
    }

    // can_splice directives (Fig 4a), only in splicing configurations.
    if cfg.splicing {
        for (si, cs) in pkg.can_splice.iter().enumerate() {
            marks.push((
                rules.len(),
                EncodeOrigin::CanSplice {
                    package: pkg.name,
                    index: si,
                },
            ));
            let target_name = cs.target.name.expect("validated at build");
            let tq = q(target_name.as_str());
            let mut body = vec![format!("installed_hash({tq}, Hash)")];
            if let Some(key) = ct.note(target_name, &cs.target.version) {
                body.push(format!(
                    "hash_attr(Hash, \"version\", {tq}, TV{si})"
                ));
                body.push(format!(
                    "pkg_fact({tq}, version_satisfies({c}, TV{si}))",
                    c = q(&key)
                ));
            }
            for (vn, vv) in &cs.target.variants {
                body.push(format!(
                    "hash_attr(Hash, \"variant\", {tq}, {vn}, {vv})",
                    vn = q(vn.as_str()),
                    vv = q(&vv.canonical())
                ));
            }
            body.push(format!("attr(\"node\", node({pq}))"));
            body.extend(when_fragments(pkg.name, &cs.when, &format!("s{si}"), ct)?);
            writeln!(
                rules,
                "can_splice(node({pq}), {tq}, Hash) :- {body}.",
                body = body.join(", ")
            )
            .ok();
            writeln!(rules, "splicer_decl({pq}, {tq}).").ok();
            writeln!(rules, "splice_relevant({tq}).").ok();
        }
    }

    Ok(())
}

fn emit_goal_root(
    rules: &mut String,
    repo: &Repository,
    root: &AbstractSpec,
    ct: &mut ConstraintTable,
) -> Result<(), CoreError> {
    let g = root.name.expect("checked in encode");
    let gq = q(g.as_str());
    writeln!(rules, "attr(\"root\", node({gq})).").ok();
    if let Some(key) = ct.note(g, &root.version) {
        writeln!(
            rules,
            ":- attr(\"version\", node({gq}), V), not pkg_fact({gq}, version_satisfies({c}, V)).",
            c = q(&key)
        )
        .ok();
    }
    for (vn, vv) in &root.variants {
        writeln!(
            rules,
            ":- not attr(\"variant\", node({gq}), {vn}, {vv}).",
            vn = q(vn.as_str()),
            vv = q(&vv.canonical())
        )
        .ok();
    }
    if let Some(os) = root.os {
        writeln!(
            rules,
            ":- not attr(\"node_os\", node({gq}), {o}).",
            o = q(os.name().as_str())
        )
        .ok();
    }
    if let Some(t) = root.target {
        writeln!(
            rules,
            ":- not attr(\"node_target\", node({gq}), {t}).",
            t = q(t.name().as_str())
        )
        .ok();
    }
    for (k, dep) in root.deps.iter().enumerate() {
        let dn = dep.spec.name.ok_or_else(|| {
            CoreError::BadGoal("goal dependencies must name a package".into())
        })?;
        if repo.is_virtual(dn) {
            if !matches!(dep.spec.version, VersionReq::Any) || !dep.spec.variants.is_empty() {
                return Err(CoreError::Unsupported(
                    "constraints on virtual goal dependencies".into(),
                ));
            }
            writeln!(rules, ":- not virtual_used({}).", q(dn.as_str())).ok();
        } else {
            writeln!(
                rules,
                ":- not reach({gq}, {d}).",
                d = q(dn.as_str())
            )
            .ok();
            if let Some(key) = ct.note(dn, &dep.spec.version) {
                writeln!(
                    rules,
                    ":- attr(\"version\", node({d}), Vg{k}), \
                     not pkg_fact({d}, version_satisfies({c}, Vg{k})).",
                    d = q(dn.as_str()),
                    c = q(&key)
                )
                .ok();
            }
            for (vn, vv) in &dep.spec.variants {
                writeln!(
                    rules,
                    ":- attr(\"node\", node({d})), not attr(\"variant\", node({d}), {vn}, {vv}).",
                    d = q(dn.as_str()),
                    vn = q(vn.as_str()),
                    vv = q(&vv.canonical())
                )
                .ok();
            }
        }
    }
    Ok(())
}

/// Emit one reusable spec in the configured encoding.
fn emit_reusable(out: &mut String, spec: &ConcreteSpec, cfg: &EncodeConfig) {
    let root = spec.root();
    let h = q(&spec.dag_hash().to_base32());
    let name = q(root.name.as_str());
    let pred = match cfg.encoding {
        Encoding::Direct => "imposed_constraint",
        Encoding::Indirect => "hash_attr",
    };
    writeln!(out, "installed_hash({name}, {h}).").ok();
    writeln!(
        out,
        "{pred}({h}, \"version\", {name}, {v}).",
        v = q(&root.version.to_string())
    )
    .ok();
    writeln!(
        out,
        "{pred}({h}, \"node_os\", {name}, {o}).",
        o = q(root.os.name().as_str())
    )
    .ok();
    writeln!(
        out,
        "{pred}({h}, \"node_target\", {name}, {t}).",
        t = q(root.target.name().as_str())
    )
    .ok();
    for (vn, vv) in &root.variants {
        writeln!(
            out,
            "{pred}({h}, \"variant\", {name}, {vn}, {vv}).",
            vn = q(vn.as_str()),
            vv = q(&vv.canonical())
        )
        .ok();
    }
    for &(dep, types) in &root.deps {
        if !types.is_link_run() {
            continue;
        }
        let dnode = spec.node(dep);
        writeln!(
            out,
            "{pred}({h}, \"depends_on\", {name}, {d}).",
            d = q(dnode.name.as_str())
        )
        .ok();
        writeln!(
            out,
            "{pred}({h}, \"hash\", {d}, {dh}).",
            d = q(dnode.name.as_str()),
            dh = q(&dnode.hash.to_base32())
        )
        .ok();
    }
}
