//! Ground-program memoization: skip encode + parse + ground + CNF
//! translation on repeated solves.
//!
//! The radiuss workloads solve dozens of near-identical goals against one
//! repository and one reusable-spec set; encoding, grounding, and
//! translation dominate their latency. A [`GroundCache`] keys a fully
//! prepared [`spackle_asp::TranslatedProgram`] by a fingerprint of
//! everything that determines it — the goal's package-segment
//! fingerprints, the reusable-spec sets (in cache order), the goal, the
//! encode configuration, and the grounding limits — so a repeated solve
//! goes straight to [`spackle_asp::Solver::solve_translated`], which
//! clones the pristine pre-search SAT instance and searches. The engine
//! is deterministic, so a cached re-solve returns a bit-identical model
//! (and therefore identical specs and DAG hashes) to an uncached one.
//!
//! On top of that, each [`PreparedProgram`] carries a **model memo**: the
//! optimal model per search configuration, so a warm hit under an
//! already-seen search config skips the SAT search too and goes straight
//! to interpretation. Memoized models are keyed by a search-config
//! fingerprint because co-optimal models may differ *across* search
//! configs (only the cost vector is guaranteed equal); within one config
//! the engine is deterministic, so replaying the memo is bit-identical.
//!
//! ## Concurrency
//!
//! One cache backs *many* threads: the `spackled` concretization service
//! shares a single warm `GroundCache` across every in-flight request.
//! The table is therefore **sharded** — keys are distributed over
//! [`SHARD_COUNT`] independent read-mostly [`parking_lot::RwLock`]
//! maps, so the hot path (a warm hit) takes one shard's read lock and
//! never serializes against hits on other shards or against inserts
//! into other shards. Hit/miss counters are atomics; use
//! [`GroundCache::lookup_counted`] to get the counter values that
//! include *this* lookup as one atomic read-modify-write, which is what
//! per-solve statistics must report when other threads are hammering the
//! same cache.
//!
//! ## Segment-keyed partial invalidation
//!
//! Every entry records the [`SegmentSet`] it was prepared over — one
//! fingerprint per closure package plus one per reusable-spec source
//! partition. A repository or buildcache delta becomes a
//! [`SegmentDelta`]; [`GroundCache::apply_delta`] drops exactly the
//! entries whose segments moved and **retains the rest** (their keys are
//! content-composed, so they keep hitting after the delta). Dropped
//! entries' translations are parked in a bounded *salvage* pool keyed by
//! the ground program's content fingerprint: if a re-ground after the
//! delta reproduces a bit-identical ground program (the mutation was in
//! the closure but encoding-irrelevant), the retained CNF translation —
//! and its memoized models — are spliced back in instead of being
//! rebuilt.
//!
//! Stale-segment rejection under concurrency: `apply_delta` publishes
//! the post-delta fingerprints to a *retired* table **before** sweeping
//! the shards, and [`GroundCache::insert`] checks that table while
//! holding the target shard's write lock. An in-flight solve that
//! prepared against pre-delta content therefore either inserts before
//! the sweep (and is swept) or after the retire publication (and is
//! rejected) — a stale program can never survive a delta.
//!
//! ## Revision-keyed invalidation
//!
//! The revision floor remains the *reload* primitive: when a service
//! swaps in a wholesale re-read repository it calls
//! [`GroundCache::invalidate_below`] with the new
//! [`Repository::revision`]; entries prepared against older revisions
//! are dropped, and — because the floor is sticky — stragglers inserted
//! by solves still in flight on the old snapshot are rejected on
//! arrival. In-flight solves themselves are untouched: they own `Arc`
//! handles to their snapshot's repository and translated program, so
//! they finish (and stay bit-identical) while new requests re-ground
//! against the fresh revision.
//!
//! Fingerprints use the process-default hasher, so a cache is only
//! meaningful within one process — exactly the scope a long-lived
//! service needs. Never persist the keys.
//!
//! [`Repository::revision`]: spackle_repo::Repository::revision

use crate::segment::{SegmentDelta, SegmentSet};
use parking_lot::RwLock;
use rustc_hash::FxHashMap;
use spackle_asp::{Model, SolveStats, TranslatedProgram};
use spackle_spec::Sym;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independent shards. A power of two so shard selection is a
/// mask; 16 keeps lock contention negligible for the worker-thread
/// counts a one-box service runs (requests far outnumber cores).
pub const SHARD_COUNT: usize = 16;

/// Maximum parked translations in the salvage pool. Salvage hits come
/// from the handful of goals a delta re-grounds, so a small pool
/// suffices; overflow clears the pool rather than growing unboundedly.
const SALVAGE_CAP: usize = 128;

/// Shared memo of optimal models per search-config fingerprint. Lives on
/// the [`PreparedProgram`] behind an `Arc`, so every clone handed out by
/// cache lookups writes into (and reads from) the same memo.
pub type ModelMemo = Arc<RwLock<FxHashMap<u64, (Arc<Model>, SolveStats)>>>;

/// Everything the concretizer needs to resume after the ground and
/// translate steps: the translated program plus the encode-time
/// byproducts that feed model interpretation and statistics.
#[derive(Clone)]
pub struct PreparedProgram {
    /// The grounded + CNF-translated program, shareable across solves.
    pub program: Arc<TranslatedProgram>,
    /// Root package names, in request order (interpretation input).
    pub root_names: Vec<Sym>,
    /// Reusable specs encoded into the program.
    pub reusable_count: usize,
    /// Generated program text size in bytes.
    pub program_bytes: usize,
    /// Non-ground rules removed by static pruning before grounding.
    pub pruned_rules: usize,
    /// Memoized optimal models, one per search-config fingerprint (see
    /// module docs). Shared across every clone of this entry.
    pub models: ModelMemo,
}

impl PreparedProgram {
    /// An empty, shareable model memo (the state every fresh
    /// preparation starts with).
    pub fn fresh_memo() -> ModelMemo {
        Arc::new(RwLock::new(FxHashMap::default()))
    }
}

/// A cached entry: the prepared program tagged with the repository
/// revision it was prepared against (the reload invalidation key) and
/// the segment fingerprints it was prepared over (the delta
/// invalidation key).
struct Entry {
    revision: u64,
    segments: Arc<SegmentSet>,
    prepared: PreparedProgram,
}

/// A dropped entry's reusable remains: the CNF translation and the
/// model memo, both valid for any bit-identical re-ground.
struct Salvaged {
    program: Arc<TranslatedProgram>,
    models: ModelMemo,
}

/// What one [`GroundCache::apply_delta`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Entries dropped because a segment they depend on moved.
    pub invalidated: usize,
    /// Entries retained (no referenced segment moved).
    pub retained: usize,
}

/// A coherent point-in-time view of the cache counters, taken with
/// plain atomic loads. Counters only ever grow (except via nothing —
/// [`GroundCache::clear`] keeps them), so deltas between two snapshots
/// are meaningful even while other threads keep solving.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroundCacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped by revision or delta invalidation (including
    /// stale stragglers rejected at insert time).
    pub invalidated: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// [`GroundCache::apply_delta`] calls observed.
    pub delta_updates: u64,
    /// Cumulative entries dropped by deltas (their segments moved).
    pub segments_invalidated: u64,
    /// Cumulative entries retained across deltas (no referenced
    /// segment moved).
    pub segments_retained: u64,
    /// Re-grounds that reproduced a dropped entry's exact ground
    /// program and spliced its retained CNF translation back in
    /// instead of re-translating.
    pub salvaged_translations: u64,
}

impl GroundCacheStats {
    /// Hits as a fraction of all lookups (0.0 when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A process-local memo table from solve fingerprints to prepared ground
/// programs, sharded for concurrent access, with atomic hit/miss
/// counters, segment-keyed partial invalidation, and revision-keyed
/// reload invalidation. One cache may back an entire service — every
/// worker thread, every session — through a shared [`Arc<GroundCache>`].
pub struct GroundCache {
    shards: [RwLock<FxHashMap<u64, Entry>>; SHARD_COUNT],
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    /// Sticky minimum revision: inserts tagged below it are rejected,
    /// so solves finishing on a pre-reload snapshot cannot repopulate
    /// the cache with stale programs.
    floor: AtomicU64,
    /// Post-delta segment fingerprints (`None` = segment removed):
    /// inserts referencing a retired fingerprint are rejected. Written
    /// *before* the shard sweep in [`GroundCache::apply_delta`] and read
    /// under the shard write lock in [`GroundCache::insert`] — see the
    /// module docs for why that ordering closes the concurrent-insert
    /// race.
    retired_packages: RwLock<FxHashMap<Sym, Option<u64>>>,
    /// Post-delta source-partition fingerprints, by source index.
    retired_sources: RwLock<FxHashMap<usize, Option<u64>>>,
    /// Parked translations of delta-dropped entries, keyed by ground
    /// program content fingerprint (see module docs).
    salvage: RwLock<FxHashMap<u128, Salvaged>>,
    delta_updates: AtomicU64,
    segments_invalidated: AtomicU64,
    segments_retained: AtomicU64,
    salvaged_translations: AtomicU64,
}

impl Default for GroundCache {
    fn default() -> GroundCache {
        GroundCache {
            shards: std::array::from_fn(|_| RwLock::new(FxHashMap::default())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            retired_packages: RwLock::new(FxHashMap::default()),
            retired_sources: RwLock::new(FxHashMap::default()),
            salvage: RwLock::new(FxHashMap::default()),
            delta_updates: AtomicU64::new(0),
            segments_invalidated: AtomicU64::new(0),
            segments_retained: AtomicU64::new(0),
            salvaged_translations: AtomicU64::new(0),
        }
    }
}

impl GroundCache {
    /// An empty cache.
    pub fn new() -> GroundCache {
        GroundCache::default()
    }

    /// An empty cache behind a shared handle — the shape every
    /// multi-threaded consumer wants.
    pub fn shared() -> Arc<GroundCache> {
        Arc::new(GroundCache::new())
    }

    fn shard(&self, key: u64) -> &RwLock<FxHashMap<u64, Entry>> {
        // Key bits are hasher output, so any bit range is uniform; the
        // low bits pick the shard.
        &self.shards[(key as usize) & (SHARD_COUNT - 1)]
    }

    /// Look up `key`, counting a hit or a miss.
    pub fn lookup(&self, key: u64) -> Option<PreparedProgram> {
        self.lookup_counted(key).0
    }

    /// Look up `key`, returning the cumulative hit and miss counts *as
    /// of this lookup* (i.e. including it). The counts come from the
    /// atomic update itself, so a solve's reported counters are exact
    /// even when other threads interleave lookups — reading
    /// [`GroundCache::hits`] after the fact cannot promise that.
    pub fn lookup_counted(&self, key: u64) -> (Option<PreparedProgram>, u64, u64) {
        let found = self
            .shard(key)
            .read()
            .get(&key)
            .map(|e| e.prepared.clone());
        match &found {
            Some(_) => {
                let hits = self.hits.fetch_add(1, Ordering::Relaxed) + 1;
                (found, hits, self.misses.load(Ordering::Relaxed))
            }
            None => {
                let misses = self.misses.fetch_add(1, Ordering::Relaxed) + 1;
                (None, self.hits.load(Ordering::Relaxed), misses)
            }
        }
    }

    /// Does `segments` reference a retired fingerprint — i.e. was it
    /// computed over pre-delta content for a segment a delta has since
    /// moved? Must be called with the target shard's write lock held
    /// (see module docs).
    fn is_stale(&self, segments: &SegmentSet) -> bool {
        {
            let retired = self.retired_packages.read();
            if segments
                .packages
                .iter()
                .any(|(name, fp)| retired.get(name).is_some_and(|cur| *cur != Some(*fp)))
            {
                return true;
            }
        }
        let retired = self.retired_sources.read();
        segments
            .sources
            .iter()
            .any(|(idx, fp)| retired.get(idx).is_some_and(|cur| *cur != Some(*fp)))
    }

    /// Store the prepared program for `key`, tagged with the repository
    /// `revision` and the [`SegmentSet`] it was prepared over (last
    /// writer wins; entries for one key are interchangeable because the
    /// preparation pipeline is deterministic). Inserts below the
    /// invalidation floor, or referencing a segment fingerprint a delta
    /// has retired, are dropped: a solve that raced a repository reload
    /// or delta update cannot resurrect a stale program.
    pub fn insert(
        &self,
        key: u64,
        revision: u64,
        segments: Arc<SegmentSet>,
        prepared: PreparedProgram,
    ) {
        if revision < self.floor.load(Ordering::Acquire) {
            self.invalidated.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut shard = self.shard(key).write();
        // The stale check must happen under the shard lock: apply_delta
        // publishes retirements before sweeping, so an insert that
        // misses the retirement here commits before the sweep and is
        // swept, and one that sees it is rejected. No interleaving lets
        // a stale program survive.
        if self.is_stale(&segments) {
            self.invalidated.fetch_add(1, Ordering::Relaxed);
            return;
        }
        shard.insert(
            key,
            Entry {
                revision,
                segments,
                prepared,
            },
        );
    }

    /// Apply a segment delta: drop exactly the entries whose recorded
    /// segments moved, retain the rest, and park the dropped entries'
    /// translations in the salvage pool for bit-identical re-grounds.
    /// Future inserts referencing a pre-delta fingerprint of a moved
    /// segment are rejected (stale-straggler protection, same contract
    /// as the revision floor). Returns what was dropped vs retained.
    pub fn apply_delta(&self, delta: &SegmentDelta) -> DeltaReport {
        // Publish retirements FIRST (see insert's ordering argument).
        {
            let mut retired = self.retired_packages.write();
            for (name, fp) in &delta.packages {
                retired.insert(*name, *fp);
            }
        }
        {
            let mut retired = self.retired_sources.write();
            for (idx, fp) in &delta.sources {
                retired.insert(*idx, *fp);
            }
        }
        let mut report = DeltaReport::default();
        for shard in &self.shards {
            let mut map = shard.write();
            let stale: Vec<u64> = map
                .iter()
                .filter(|(_, e)| e.segments.hit_by(delta))
                .map(|(k, _)| *k)
                .collect();
            for k in stale {
                let e = map.remove(&k).expect("key collected under this lock");
                self.park(e);
                report.invalidated += 1;
            }
            report.retained += map.len();
        }
        self.delta_updates.fetch_add(1, Ordering::Relaxed);
        self.invalidated
            .fetch_add(report.invalidated as u64, Ordering::Relaxed);
        self.segments_invalidated
            .fetch_add(report.invalidated as u64, Ordering::Relaxed);
        self.segments_retained
            .fetch_add(report.retained as u64, Ordering::Relaxed);
        report
    }

    /// Park a dropped entry's translation for possible salvage.
    fn park(&self, e: Entry) {
        let fp = e.prepared.program.ground().content_fingerprint();
        let mut pool = self.salvage.write();
        if pool.len() >= SALVAGE_CAP {
            pool.clear();
        }
        pool.insert(
            fp,
            Salvaged {
                program: e.prepared.program,
                models: e.prepared.models,
            },
        );
    }

    /// Is there anything in the salvage pool? Callers use this to skip
    /// the (linear) content fingerprint of a fresh ground program when
    /// salvage cannot possibly hit.
    pub fn has_salvage(&self) -> bool {
        !self.salvage.read().is_empty()
    }

    /// Take the parked translation for a ground program with content
    /// fingerprint `fp`, if any. A hit means the caller's fresh
    /// re-ground is bit-identical to the dropped entry's, so the parked
    /// CNF translation (and memoized models) are valid verbatim.
    pub fn take_salvaged(
        &self,
        fp: u128,
    ) -> Option<(Arc<TranslatedProgram>, ModelMemo)> {
        let taken = self.salvage.write().remove(&fp);
        taken.map(|s| {
            self.salvaged_translations.fetch_add(1, Ordering::Relaxed);
            (s.program, s.models)
        })
    }

    /// Drop every entry prepared against a repository revision older
    /// than `revision`, and reject future inserts below it. Returns the
    /// number of entries dropped. Idempotent; the floor is monotonic
    /// (calling with a lower revision than a previous call is a no-op
    /// for the floor but still sweeps). The salvage pool and retirement
    /// tables are cleared too — a reload supersedes any pending delta
    /// bookkeeping.
    ///
    /// This is the graceful-reload primitive: in-flight solves keep
    /// their `Arc` snapshots and finish untouched, new solves against
    /// the reloaded repository re-ground and repopulate.
    pub fn invalidate_below(&self, revision: u64) -> usize {
        self.floor.fetch_max(revision, Ordering::AcqRel);
        let mut dropped = 0;
        for shard in &self.shards {
            let mut map = shard.write();
            let before = map.len();
            map.retain(|_, e| e.revision >= revision);
            dropped += before - map.len();
        }
        self.salvage.write().clear();
        self.retired_packages.write().clear();
        self.retired_sources.write().clear();
        self.invalidated.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// A point-in-time counter snapshot (see [`GroundCacheStats`]).
    pub fn stats(&self) -> GroundCacheStats {
        GroundCacheStats {
            hits: self.hits(),
            misses: self.misses(),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            entries: self.len(),
            delta_updates: self.delta_updates.load(Ordering::Relaxed),
            segments_invalidated: self.segments_invalidated.load(Ordering::Relaxed),
            segments_retained: self.segments_retained.load(Ordering::Relaxed),
            salvaged_translations: self.salvaged_translations.load(Ordering::Relaxed),
        }
    }

    /// Number of cached ground programs.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Drop all entries (counters are kept; they describe lookups, not
    /// contents).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
        self.salvage.write().clear();
    }
}

// One shared cache serves many solver threads; these bounds are the
// contract the whole shared-state API rests on, so failing them must be
// a compile error here rather than at a distant use site.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GroundCache>();
    assert_send_sync::<PreparedProgram>();
};

#[cfg(test)]
mod tests {
    use super::*;

    // PreparedProgram requires a TranslatedProgram, which only the
    // solver can make; unit tests here cover the counter, floor, and
    // retirement logic via the public surface exercised by integration
    // tests.
    #[test]
    fn floor_is_monotonic_and_counts() {
        let gc = GroundCache::new();
        assert_eq!(gc.invalidate_below(5), 0);
        assert_eq!(gc.invalidate_below(3), 0); // lower floor: no-op
        assert_eq!(gc.floor.load(Ordering::Relaxed), 5);
        assert_eq!(gc.stats().entries, 0);
    }

    #[test]
    fn empty_cache_misses_coherently() {
        let gc = GroundCache::new();
        let (found, hits, misses) = gc.lookup_counted(42);
        assert!(found.is_none());
        assert_eq!((hits, misses), (0, 1));
        assert_eq!(gc.stats().hit_rate(), 0.0);
    }

    #[test]
    fn empty_delta_retains_everything_and_counts() {
        let gc = GroundCache::new();
        let report = gc.apply_delta(&SegmentDelta::default());
        assert_eq!(report, DeltaReport::default());
        let stats = gc.stats();
        assert_eq!(stats.delta_updates, 1);
        assert_eq!(stats.segments_invalidated, 0);
        assert!(!gc.has_salvage());
    }

    #[test]
    fn retirement_table_marks_pre_delta_fingerprints_stale() {
        let gc = GroundCache::new();
        let zlib = Sym::intern("zlib-gc-test");
        gc.apply_delta(&SegmentDelta {
            packages: vec![(zlib, Some(2))],
            sources: vec![(0, Some(9))],
        });
        // Pre-delta fingerprints are stale; post-delta ones are not.
        let stale = SegmentSet {
            packages: vec![(zlib, 1)],
            sources: vec![],
        };
        let fresh = SegmentSet {
            packages: vec![(zlib, 2)],
            sources: vec![(0, 9)],
        };
        let stale_src = SegmentSet {
            packages: vec![],
            sources: vec![(0, 8)],
        };
        assert!(gc.is_stale(&stale));
        assert!(!gc.is_stale(&fresh));
        assert!(gc.is_stale(&stale_src));
        // A reload supersedes delta bookkeeping entirely.
        gc.invalidate_below(1);
        assert!(!gc.is_stale(&stale));
    }
}
