//! Ground-program memoization: skip encode + parse + ground + CNF
//! translation on repeated solves.
//!
//! The radiuss workloads solve dozens of near-identical goals against one
//! repository and one reusable-spec set; encoding, grounding, and
//! translation dominate their latency. A [`GroundCache`] keys a fully
//! prepared [`spackle_asp::TranslatedProgram`] by a fingerprint of
//! everything that determines it — repository revision, the reusable-spec
//! sets (in cache order), the goal, the encode configuration, and the
//! grounding limits — so a repeated solve goes straight to
//! [`spackle_asp::Solver::solve_translated`], which clones the pristine
//! pre-search SAT instance and searches. The engine is deterministic, so
//! a cached re-solve returns a bit-identical model (and therefore
//! identical specs and DAG hashes) to an uncached one.
//!
//! ## Concurrency
//!
//! One cache backs *many* threads: the `spackled` concretization service
//! shares a single warm `GroundCache` across every in-flight request.
//! The table is therefore **sharded** — keys are distributed over
//! [`SHARD_COUNT`] independent read-mostly [`parking_lot::RwLock`]
//! maps, so the hot path (a warm hit) takes one shard's read lock and
//! never serializes against hits on other shards or against inserts
//! into other shards. Hit/miss counters are atomics; use
//! [`GroundCache::lookup_counted`] to get the counter values that
//! include *this* lookup as one atomic read-modify-write, which is what
//! per-solve statistics must report when other threads are hammering the
//! same cache.
//!
//! ## Revision-keyed invalidation
//!
//! Every entry records the [`Repository::revision`] it was prepared
//! against. When a service reloads its repository it calls
//! [`GroundCache::invalidate_below`] with the *new* revision: entries
//! prepared against older revisions are dropped, and — because the
//! floor is sticky — stragglers inserted by solves still in flight on
//! the old snapshot are rejected on arrival. In-flight solves themselves
//! are untouched: they own `Arc` handles to their snapshot's repository
//! and translated program, so they finish (and stay bit-identical)
//! while new requests re-ground against the fresh revision.
//!
//! Fingerprints use the process-default hasher plus [`Repository::revision`]
//! (a process-unique stamp), so a cache is only meaningful within one
//! process — exactly the scope a long-lived service needs. Never persist
//! the keys.
//!
//! [`Repository::revision`]: spackle_repo::Repository::revision

use parking_lot::RwLock;
use rustc_hash::FxHashMap;
use spackle_asp::TranslatedProgram;
use spackle_spec::Sym;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independent shards. A power of two so shard selection is a
/// mask; 16 keeps lock contention negligible for the worker-thread
/// counts a one-box service runs (requests far outnumber cores).
pub const SHARD_COUNT: usize = 16;

/// Everything the concretizer needs to resume after the ground and
/// translate steps: the translated program plus the encode-time
/// byproducts that feed model interpretation and statistics.
#[derive(Clone)]
pub struct PreparedProgram {
    /// The grounded + CNF-translated program, shareable across solves.
    pub program: Arc<TranslatedProgram>,
    /// Root package names, in request order (interpretation input).
    pub root_names: Vec<Sym>,
    /// Reusable specs encoded into the program.
    pub reusable_count: usize,
    /// Generated program text size in bytes.
    pub program_bytes: usize,
    /// Non-ground rules removed by static pruning before grounding.
    pub pruned_rules: usize,
}

/// A cached entry: the prepared program tagged with the repository
/// revision it was prepared against (the invalidation key).
struct Entry {
    revision: u64,
    prepared: PreparedProgram,
}

/// A coherent point-in-time view of the cache counters, taken with
/// plain atomic loads. Counters only ever grow (except via nothing —
/// [`GroundCache::clear`] keeps them), so deltas between two snapshots
/// are meaningful even while other threads keep solving.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroundCacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped by revision invalidation (including stragglers
    /// rejected at insert time).
    pub invalidated: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl GroundCacheStats {
    /// Hits as a fraction of all lookups (0.0 when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A process-local memo table from solve fingerprints to prepared ground
/// programs, sharded for concurrent access, with atomic hit/miss
/// counters and revision-keyed invalidation. One cache may back an
/// entire service — every worker thread, every session — through a
/// shared [`Arc<GroundCache>`].
pub struct GroundCache {
    shards: [RwLock<FxHashMap<u64, Entry>>; SHARD_COUNT],
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    /// Sticky minimum revision: inserts tagged below it are rejected,
    /// so solves finishing on a pre-reload snapshot cannot repopulate
    /// the cache with stale programs.
    floor: AtomicU64,
}

impl Default for GroundCache {
    fn default() -> GroundCache {
        GroundCache {
            shards: std::array::from_fn(|_| RwLock::new(FxHashMap::default())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            floor: AtomicU64::new(0),
        }
    }
}

impl GroundCache {
    /// An empty cache.
    pub fn new() -> GroundCache {
        GroundCache::default()
    }

    /// An empty cache behind a shared handle — the shape every
    /// multi-threaded consumer wants.
    pub fn shared() -> Arc<GroundCache> {
        Arc::new(GroundCache::new())
    }

    fn shard(&self, key: u64) -> &RwLock<FxHashMap<u64, Entry>> {
        // Key bits are hasher output, so any bit range is uniform; the
        // low bits pick the shard.
        &self.shards[(key as usize) & (SHARD_COUNT - 1)]
    }

    /// Look up `key`, counting a hit or a miss.
    pub fn lookup(&self, key: u64) -> Option<PreparedProgram> {
        self.lookup_counted(key).0
    }

    /// Look up `key`, returning the cumulative hit and miss counts *as
    /// of this lookup* (i.e. including it). The counts come from the
    /// atomic update itself, so a solve's reported counters are exact
    /// even when other threads interleave lookups — reading
    /// [`GroundCache::hits`] after the fact cannot promise that.
    pub fn lookup_counted(&self, key: u64) -> (Option<PreparedProgram>, u64, u64) {
        let found = self
            .shard(key)
            .read()
            .get(&key)
            .map(|e| e.prepared.clone());
        match &found {
            Some(_) => {
                let hits = self.hits.fetch_add(1, Ordering::Relaxed) + 1;
                (found, hits, self.misses.load(Ordering::Relaxed))
            }
            None => {
                let misses = self.misses.fetch_add(1, Ordering::Relaxed) + 1;
                (None, self.hits.load(Ordering::Relaxed), misses)
            }
        }
    }

    /// Store the prepared program for `key`, tagged with the repository
    /// `revision` it was prepared against (last writer wins; entries for
    /// one key are interchangeable because the preparation pipeline is
    /// deterministic). Inserts below the invalidation floor are dropped:
    /// a solve that raced a repository reload cannot resurrect a stale
    /// program.
    pub fn insert(&self, key: u64, revision: u64, prepared: PreparedProgram) {
        if revision < self.floor.load(Ordering::Acquire) {
            self.invalidated.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.shard(key)
            .write()
            .insert(key, Entry { revision, prepared });
    }

    /// Drop every entry prepared against a repository revision older
    /// than `revision`, and reject future inserts below it. Returns the
    /// number of entries dropped. Idempotent; the floor is monotonic
    /// (calling with a lower revision than a previous call is a no-op
    /// for the floor but still sweeps).
    ///
    /// This is the graceful-reload primitive: in-flight solves keep
    /// their `Arc` snapshots and finish untouched, new solves against
    /// the reloaded repository re-ground and repopulate.
    pub fn invalidate_below(&self, revision: u64) -> usize {
        self.floor.fetch_max(revision, Ordering::AcqRel);
        let mut dropped = 0;
        for shard in &self.shards {
            let mut map = shard.write();
            let before = map.len();
            map.retain(|_, e| e.revision >= revision);
            dropped += before - map.len();
        }
        self.invalidated.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// A point-in-time counter snapshot (see [`GroundCacheStats`]).
    pub fn stats(&self) -> GroundCacheStats {
        GroundCacheStats {
            hits: self.hits(),
            misses: self.misses(),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Number of cached ground programs.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Drop all entries (counters are kept; they describe lookups, not
    /// contents).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }
}

// One shared cache serves many solver threads; these bounds are the
// contract the whole shared-state API rests on, so failing them must be
// a compile error here rather than at a distant use site.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GroundCache>();
    assert_send_sync::<PreparedProgram>();
};

#[cfg(test)]
mod tests {
    use super::*;

    // PreparedProgram requires a TranslatedProgram, which only the
    // solver can make; unit tests here cover the counter and floor
    // logic via the public surface exercised by integration tests.
    #[test]
    fn floor_is_monotonic_and_counts() {
        let gc = GroundCache::new();
        assert_eq!(gc.invalidate_below(5), 0);
        assert_eq!(gc.invalidate_below(3), 0); // lower floor: no-op
        assert_eq!(gc.floor.load(Ordering::Relaxed), 5);
        assert_eq!(gc.stats().entries, 0);
    }

    #[test]
    fn empty_cache_misses_coherently() {
        let gc = GroundCache::new();
        let (found, hits, misses) = gc.lookup_counted(42);
        assert!(found.is_none());
        assert_eq!((hits, misses), (0, 1));
        assert_eq!(gc.stats().hit_rate(), 0.0);
    }
}
