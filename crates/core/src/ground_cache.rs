//! Ground-program memoization: skip encode + parse + ground + CNF
//! translation on repeated solves.
//!
//! The radiuss workloads solve dozens of near-identical goals against one
//! repository and one reusable-spec set; encoding, grounding, and
//! translation dominate their latency. A [`GroundCache`] keys a fully
//! prepared [`spackle_asp::TranslatedProgram`] by a fingerprint of
//! everything that determines it — repository revision, the reusable-spec
//! sets (in cache order), the goal, the encode configuration, and the
//! grounding limits — so a repeated solve goes straight to
//! [`spackle_asp::Solver::solve_translated`], which clones the pristine
//! pre-search SAT instance and searches. The engine is deterministic, so
//! a cached re-solve returns a bit-identical model (and therefore
//! identical specs and DAG hashes) to an uncached one.
//!
//! Fingerprints use the process-default hasher plus [`Repository::revision`]
//! (a process-unique stamp), so a cache is only meaningful within one
//! process — exactly the scope the paper's repeated-concretization
//! workloads need. Never persist the keys.
//!
//! [`Repository::revision`]: spackle_repo::Repository::revision

use rustc_hash::FxHashMap;
use spackle_asp::TranslatedProgram;
use spackle_spec::Sym;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Everything the concretizer needs to resume after the ground and
/// translate steps: the translated program plus the encode-time
/// byproducts that feed model interpretation and statistics.
#[derive(Clone)]
pub struct PreparedProgram {
    /// The grounded + CNF-translated program, shareable across solves.
    pub program: Arc<TranslatedProgram>,
    /// Root package names, in request order (interpretation input).
    pub root_names: Vec<Sym>,
    /// Reusable specs encoded into the program.
    pub reusable_count: usize,
    /// Generated program text size in bytes.
    pub program_bytes: usize,
    /// Non-ground rules removed by static pruning before grounding.
    pub pruned_rules: usize,
}

/// A process-local memo table from solve fingerprints to prepared ground
/// programs, with hit/miss counters. Interior-mutable and thread-safe,
/// so one cache can back an entire benchmark run (or a long-lived
/// service) through a shared reference.
#[derive(Default)]
pub struct GroundCache {
    entries: Mutex<FxHashMap<u64, PreparedProgram>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl GroundCache {
    /// An empty cache.
    pub fn new() -> GroundCache {
        GroundCache::default()
    }

    /// Look up `key`, counting a hit or a miss.
    pub fn lookup(&self, key: u64) -> Option<PreparedProgram> {
        let found = self
            .entries
            .lock()
            .expect("ground cache poisoned")
            .get(&key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store the prepared program for `key` (last writer wins; entries
    /// for one key are interchangeable because the preparation pipeline
    /// is deterministic).
    pub fn insert(&self, key: u64, prepared: PreparedProgram) {
        self.entries
            .lock()
            .expect("ground cache poisoned")
            .insert(key, prepared);
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached ground programs.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("ground cache poisoned").len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries (counters are kept; they describe lookups, not
    /// contents).
    pub fn clear(&self) {
        self.entries.lock().expect("ground cache poisoned").clear();
    }
}
