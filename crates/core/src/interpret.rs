//! Interpretation of optimal models back into concrete specs (the third
//! stage of §3.3), including reconstruction of spliced specs with full
//! build provenance via `ConcreteSpec::splice` (§5.4's output mapping).

use crate::encode::cache_error;
use crate::CoreError;
use rustc_hash::FxHashMap;
use spackle_buildcache::{CacheError, CacheSource};
use spackle_spec::spec::ConcreteSpecBuilder;
use spackle_spec::{
    ConcreteSpec, DepTypes, Os, SpecHash, Sym, Target, VariantValue, Version,
};
use spackle_asp::Model;
use std::collections::BTreeMap;

/// One executed splice, reported in the solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpliceReport {
    /// Package whose reused spec had a dependency replaced.
    pub parent: Sym,
    /// The replaced dependency's package.
    pub replaced: Sym,
    /// The replacement package.
    pub replacement: Sym,
}

/// Decoded per-package model attributes.
struct NodeInfo {
    version: Version,
    variants: BTreeMap<Sym, VariantValue>,
    os: Os,
    target: Target,
    hash: Option<SpecHash>,
    deps: Vec<(Sym, DepTypes)>,
}

/// The interpreted solution.
pub struct Interpretation {
    /// Concrete specs for each requested root, in request order.
    pub specs: Vec<ConcreteSpec>,
    /// Packages reused from caches (hash-selected).
    pub reused: Vec<Sym>,
    /// Packages that must be built from source.
    pub built: Vec<Sym>,
    /// Executed splices.
    pub spliced: Vec<SpliceReport>,
}

/// Decode the model into concrete specs.
pub fn interpret(
    model: &Model,
    caches: &[std::sync::Arc<dyn CacheSource>],
    root_names: &[Sym],
) -> Result<Interpretation, CoreError> {
    let mut nodes: BTreeMap<Sym, NodeInfo> = BTreeMap::new();
    let node_name = |t| -> Option<Sym> {
        let (f, args) = model.as_func(t)?;
        (f == "node" && args.len() == 1)
            .then(|| model.as_str(args[0]))
            .flatten()
            .map(Sym::intern)
    };

    // Pass 1: create node entries.
    for args in model.atoms_of("attr") {
        if model.as_str(args[0]) == Some("node") {
            if let Some(n) = node_name(args[1]) {
                nodes.entry(n).or_insert_with(|| NodeInfo {
                    version: Version::parse("0").expect("literal"),
                    variants: BTreeMap::new(),
                    os: Os::new("unknown"),
                    target: Target::new("unknown"),
                    hash: None,
                    deps: Vec::new(),
                });
            }
        }
    }

    // Pass 2: attributes and edges.
    for args in model.atoms_of("attr") {
        let Some(aname) = model.as_str(args[0]) else { continue };
        let Some(n) = node_name(args[1]) else { continue };
        let Some(info) = nodes.get_mut(&n) else { continue };
        match aname {
            "version" => {
                let v = model
                    .as_str(args[2])
                    .ok_or_else(|| CoreError::Interpret("version not a string".into()))?;
                info.version = Version::parse(v)
                    .map_err(|e| CoreError::Interpret(format!("bad version {v}: {e}")))?;
            }
            "node_os" => {
                let o = model
                    .as_str(args[2])
                    .ok_or_else(|| CoreError::Interpret("os not a string".into()))?;
                info.os = Os::new(o);
            }
            "node_target" => {
                let t = model
                    .as_str(args[2])
                    .ok_or_else(|| CoreError::Interpret("target not a string".into()))?;
                info.target = Target::new(t);
            }
            "variant" => {
                let vn = model
                    .as_str(args[2])
                    .ok_or_else(|| CoreError::Interpret("variant name not a string".into()))?;
                let vv = model
                    .as_str(args[3])
                    .ok_or_else(|| CoreError::Interpret("variant value not a string".into()))?;
                info.variants
                    .insert(Sym::intern(vn), VariantValue::parse(vv));
            }
            "hash" => {
                let h = model
                    .as_str(args[2])
                    .ok_or_else(|| CoreError::Interpret("hash not a string".into()))?;
                info.hash = Some(SpecHash::from_base32(h).ok_or_else(|| {
                    CoreError::Interpret(format!("malformed hash {h}"))
                })?);
            }
            "depends_on" => {
                let Some(d) = node_name(args[2]) else { continue };
                let t = model
                    .as_str(args[3])
                    .ok_or_else(|| CoreError::Interpret("edge type not a string".into()))?;
                let types = match t {
                    "build" => DepTypes::BUILD,
                    "link-run" => DepTypes::LINK_RUN,
                    other => {
                        return Err(CoreError::Interpret(format!("bad edge type {other}")))
                    }
                };
                if let Some(existing) = info.deps.iter_mut().find(|(dn, _)| *dn == d) {
                    existing.1 = existing.1.union(types);
                } else {
                    info.deps.push((d, types));
                }
            }
            _ => {}
        }
    }

    // Splice decisions: splice_to(ParentHash, ChildName, NewName).
    let mut splices: FxHashMap<SpecHash, Vec<(Sym, Sym)>> = FxHashMap::default();
    for args in model.atoms_of("splice_to") {
        let h = model
            .as_str(args[0])
            .and_then(SpecHash::from_base32)
            .ok_or_else(|| CoreError::Interpret("splice_to parent hash malformed".into()))?;
        let c = model
            .as_str(args[1])
            .ok_or_else(|| CoreError::Interpret("splice_to child not a string".into()))?;
        let n = model
            .as_str(args[2])
            .ok_or_else(|| CoreError::Interpret("splice_to target not a string".into()))?;
        splices
            .entry(h)
            .or_default()
            .push((Sym::intern(c), Sym::intern(n)));
    }

    // Topological order (dependencies first).
    let order = topo_packages(&nodes)?;

    // Cache lookup across all caches. Every source is consulted — a
    // failing or corrupt backend never masks a healthy one later in the
    // chain — and a served entry must hash to what was asked for (a
    // corrupt backend can return a well-formed but wrong entry; the
    // integrity check turns that into a structured error instead of a
    // silently wrong spec). Only when no source has a valid entry does a
    // recorded failure surface, and it surfaces as `CoreError::Cache` so
    // the concretizer's degraded mode can retry without that source.
    let find_cached = |h: SpecHash| -> Result<Option<&spackle_buildcache::CacheEntry>, CoreError> {
        let mut first_err: Option<CoreError> = None;
        for (ci, c) in caches.iter().enumerate() {
            match c.get(h) {
                Ok(Some(entry)) => {
                    if entry.spec.dag_hash() != h {
                        if first_err.is_none() {
                            first_err = Some(cache_error(
                                ci,
                                c.as_ref(),
                                CacheError::corrupt(
                                    c.label(),
                                    format!(
                                        "entry for {} hashes to {}",
                                        h.short(),
                                        entry.spec.dag_hash().short()
                                    ),
                                ),
                            ));
                        }
                        continue;
                    }
                    return Ok(Some(entry));
                }
                Ok(None) => {}
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(cache_error(ci, c.as_ref(), e));
                    }
                }
            }
        }
        first_err.map_or(Ok(None), Err)
    };

    let mut memo: BTreeMap<Sym, ConcreteSpec> = BTreeMap::new();
    let mut reused = Vec::new();
    let mut built = Vec::new();
    let mut spliced = Vec::new();

    for name in order {
        let info = &nodes[&name];
        if let Some(h) = info.hash {
            reused.push(name);
            let entry = find_cached(h)?.ok_or_else(|| {
                CoreError::Interpret(format!(
                    "model reuses {name}/{} but no cache has it",
                    h.short()
                ))
            })?;
            let cached = entry.spec.clone();
            // Replace any direct link-run child whose realized sub-spec
            // differs from what the binary was built with — either an
            // explicit cross-package splice (splice_to) or a transitively
            // modified child. Each replacement goes through
            // ConcreteSpec::splice, which records build provenance.
            let mut result = cached.clone();
            let this_splices = splices.get(&h).cloned().unwrap_or_default();
            for &(child_id, types) in &cached.root().deps {
                if !types.is_link_run() {
                    continue;
                }
                let child_name = cached.node(child_id).name;
                let child_hash = cached.node(child_id).hash;
                let replacement_name = this_splices
                    .iter()
                    .find(|(c, _)| *c == child_name)
                    .map(|&(_, n)| n);
                let realized_name = replacement_name.unwrap_or(child_name);
                let realized = memo.get(&realized_name).ok_or_else(|| {
                    CoreError::Interpret(format!(
                        "dependency {realized_name} of {name} interpreted out of order"
                    ))
                })?;
                if realized.dag_hash() == child_hash {
                    continue; // exactly as built
                }
                result = result
                    .splice_as(child_name, realized, true)
                    .map_err(|e| CoreError::Interpret(format!("splice failed: {e}")))?;
                spliced.push(SpliceReport {
                    parent: name,
                    replaced: child_name,
                    replacement: realized_name,
                });
            }
            memo.insert(name, result);
        } else {
            built.push(name);
            let mut b = ConcreteSpecBuilder::new();
            let id = b.node_full(
                name.as_str(),
                info.version.clone(),
                info.variants.clone(),
                info.os,
                info.target,
            );
            for (dname, types) in &info.deps {
                let dep_spec = memo.get(dname).ok_or_else(|| {
                    CoreError::Interpret(format!(
                        "dependency {dname} of {name} interpreted out of order"
                    ))
                })?;
                let did = b.import(dep_spec);
                b.edge(id, did, *types);
            }
            let spec = b
                .build(id)
                .map_err(|e| CoreError::Interpret(format!("assembling {name}: {e}")))?;
            memo.insert(name, spec);
        }
    }

    let mut specs = Vec::with_capacity(root_names.len());
    for r in root_names {
        let spec = memo.get(r).ok_or_else(|| {
            CoreError::Interpret(format!("root {r} missing from the solution"))
        })?;
        specs.push(spec.clone());
    }

    Ok(Interpretation {
        specs,
        reused,
        built,
        spliced,
    })
}

fn topo_packages(nodes: &BTreeMap<Sym, NodeInfo>) -> Result<Vec<Sym>, CoreError> {
    let mut order = Vec::with_capacity(nodes.len());
    let mut state: BTreeMap<Sym, u8> = BTreeMap::new();
    let names: Vec<Sym> = nodes.keys().copied().collect();
    for start in names {
        if state.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack: Vec<(Sym, usize)> = vec![(start, 0)];
        state.insert(start, 1);
        while let Some(&(name, next)) = stack.last() {
            let deps = &nodes[&name].deps;
            if next < deps.len() {
                stack.last_mut().expect("non-empty").1 += 1;
                let (d, _) = deps[next];
                // Edges may reference packages without node entries only
                // if the model is inconsistent; report rather than panic.
                if !nodes.contains_key(&d) {
                    return Err(CoreError::Interpret(format!(
                        "edge to {d} but no node({d}) in model"
                    )));
                }
                match state.get(&d).copied().unwrap_or(0) {
                    0 => {
                        state.insert(d, 1);
                        stack.push((d, 0));
                    }
                    1 => {
                        return Err(CoreError::Interpret(format!(
                            "dependency cycle through {d}"
                        )));
                    }
                    _ => {}
                }
            } else {
                state.insert(name, 2);
                order.push(name);
                stack.pop();
            }
        }
    }
    Ok(order)
}
