//! Segmented fact-base fingerprints and delta computation.
//!
//! The encoded fact base decomposes into independently fingerprinted
//! **segments**: one per package in the goal's encode closure (see
//! `encode::goal_scope`) plus one per reusable-spec source partition.
//! A cached [`PreparedProgram`](crate::PreparedProgram) records the
//! [`SegmentSet`] it was prepared over; when the world changes — a new
//! package version lands, a buildcache index refreshes — the change is
//! expressed as a [`SegmentDelta`] and applied with
//! [`GroundCache::apply_delta`](crate::GroundCache::apply_delta), which
//! drops exactly the entries whose segments moved and retains the rest.
//! This replaces the blanket revision-floor invalidation for content
//! deltas (the floor remains the *reload* primitive for wholesale
//! snapshot swaps).
//!
//! ## Why content addressing keeps delta solves bit-identical
//!
//! Cache keys are composed from the segment fingerprints themselves
//! (not the repository revision), so after a delta:
//!
//! * a goal whose closure avoids every changed segment computes the
//!   *same* key, hits its retained entry, and — the engine being
//!   deterministic — returns a model bit-identical to a cold solve of
//!   the identical program;
//! * a goal touching a changed segment computes a *different* key,
//!   misses, and re-encodes/re-grounds against the new world. Its old
//!   entry is dropped by `apply_delta` (or, for pure additions, becomes
//!   unreachable — no current key can ever alias it, because keys are
//!   recomputed from current content).
//!
//! Either way, a delta-updated solve is equal to a cold solve on the
//! post-delta world — the oracle differential suite
//! (`crates/oracle/tests/delta_reconcretize.rs`) enforces exactly this.

use spackle_repo::Repository;
use spackle_spec::Sym;

/// The fingerprinted segments one prepared program depends on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SegmentSet {
    /// `(package, fingerprint)` per closure package, sorted by name.
    /// Virtual names carry no definition and therefore no segment; the
    /// provider packages' fingerprints cover them (each fingerprint
    /// includes the provider's rank in the virtual's provider list).
    pub packages: Vec<(Sym, u64)>,
    /// `(source index, fingerprint)` per reusable-spec source partition,
    /// in cache order.
    pub sources: Vec<(usize, u64)>,
}

impl SegmentSet {
    /// Total number of segments recorded.
    pub fn len(&self) -> usize {
        self.packages.len() + self.sources.len()
    }

    /// True when no segments are recorded.
    pub fn is_empty(&self) -> bool {
        self.packages.is_empty() && self.sources.is_empty()
    }

    /// Does `delta` move any segment this set depends on? A package
    /// (source) hit is a delta entry for a referenced name (index) whose
    /// new fingerprint differs — `None` (removal) always differs.
    pub fn hit_by(&self, delta: &SegmentDelta) -> bool {
        self.packages.iter().any(|(name, fp)| {
            delta
                .packages
                .iter()
                .any(|(dn, dfp)| dn == name && *dfp != Some(*fp))
        }) || self.sources.iter().any(|(idx, fp)| {
            delta
                .sources
                .iter()
                .any(|(di, dfp)| di == idx && *dfp != Some(*fp))
        })
    }
}

/// A set of segment movements: which packages and source partitions now
/// have which fingerprints (`None` = removed).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SegmentDelta {
    /// Changed packages with their post-delta fingerprint (`None` when
    /// the package was removed). Additions appear with `Some(fp)`; they
    /// invalidate nothing directly (old entries never reference them)
    /// but shift the composed keys of every goal whose closure now
    /// includes them.
    pub packages: Vec<(Sym, Option<u64>)>,
    /// Changed source partitions (by source index) with their
    /// post-delta fingerprint.
    pub sources: Vec<(usize, Option<u64>)>,
}

impl SegmentDelta {
    /// True when nothing moved.
    pub fn is_empty(&self) -> bool {
        self.packages.is_empty() && self.sources.is_empty()
    }

    /// Total number of moved segments.
    pub fn len(&self) -> usize {
        self.packages.len() + self.sources.len()
    }
}

/// Compute the package-segment delta from `old` to `new`: every name
/// whose fingerprint changed, appeared, or disappeared, in name order.
/// Source partitions are not the repository's concern; callers tracking
/// buildcache indices extend [`SegmentDelta::sources`] themselves.
pub fn repo_delta(old: &Repository, new: &Repository) -> SegmentDelta {
    let mut names: std::collections::BTreeSet<Sym> = std::collections::BTreeSet::new();
    names.extend(old.packages().map(|p| p.name));
    names.extend(new.packages().map(|p| p.name));
    let packages = names
        .into_iter()
        .filter_map(|n| {
            let before = old.package_fingerprint(n);
            let after = new.package_fingerprint(n);
            (before != after).then_some((n, after))
        })
        .collect();
    SegmentDelta {
        packages,
        sources: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spackle_repo::{PackageBuilder, Repository};

    fn two_pkg_repo() -> Repository {
        let zlib = PackageBuilder::new("zlib").version("1.3").build().unwrap();
        let app = PackageBuilder::new("app")
            .version("1.0")
            .depends_on("zlib")
            .build()
            .unwrap();
        Repository::from_packages([zlib, app]).unwrap()
    }

    #[test]
    fn repo_delta_names_exactly_the_moved_segments() {
        let old = two_pkg_repo();
        let mut new = old.clone();
        assert!(repo_delta(&old, &new).is_empty());

        new.upsert(
            PackageBuilder::new("zlib")
                .version("1.4")
                .version("1.3")
                .build()
                .unwrap(),
        );
        let d = repo_delta(&old, &new);
        assert_eq!(d.packages.len(), 1);
        assert_eq!(d.packages[0].0.as_str(), "zlib");
        assert!(d.packages[0].1.is_some());

        // An addition appears with Some(fp); a removal with None.
        new.upsert(PackageBuilder::new("newpkg").version("0.1").build().unwrap());
        let d2 = repo_delta(&old, &new);
        assert!(d2
            .packages
            .iter()
            .any(|(n, fp)| n.as_str() == "newpkg" && fp.is_some()));
        let d3 = repo_delta(&new, &old);
        assert!(d3
            .packages
            .iter()
            .any(|(n, fp)| n.as_str() == "newpkg" && fp.is_none()));
    }

    #[test]
    fn hit_by_matches_only_moved_referenced_segments() {
        let zlib = Sym::intern("zlib");
        let app = Sym::intern("app");
        let set = SegmentSet {
            packages: vec![(app, 1), (zlib, 2)],
            sources: vec![(0, 7)],
        };
        // Unreferenced package: no hit.
        let d = SegmentDelta {
            packages: vec![(Sym::intern("other"), Some(9))],
            sources: vec![],
        };
        assert!(!set.hit_by(&d));
        // Referenced package, same fingerprint: no hit.
        let d = SegmentDelta {
            packages: vec![(zlib, Some(2))],
            sources: vec![],
        };
        assert!(!set.hit_by(&d));
        // Referenced package, moved fingerprint: hit.
        let d = SegmentDelta {
            packages: vec![(zlib, Some(3))],
            sources: vec![],
        };
        assert!(set.hit_by(&d));
        // Removal: hit.
        let d = SegmentDelta {
            packages: vec![(zlib, None)],
            sources: vec![],
        };
        assert!(set.hit_by(&d));
        // Source partition moved: hit.
        let d = SegmentDelta {
            packages: vec![],
            sources: vec![(0, Some(8))],
        };
        assert!(set.hit_by(&d));
        // Other source index: no hit.
        let d = SegmentDelta {
            packages: vec![],
            sources: vec![(1, Some(8))],
        };
        assert!(!set.hit_by(&d));
    }
}
