//! Unit tests for the fact/rule compiler: the generated ASP text has the
//! structure the paper's encoding describes, in both reusable-spec
//! encodings, and parses under the engine.

use spackle_asp::parse_program;
use spackle_buildcache::{BuildCache, CacheSource};
use spackle_core::encode::{encode, EncodeConfig, Goal};
use spackle_core::{Concretizer, Encoding};
use spackle_repo::{PackageBuilder, Repository};
use spackle_spec::{parse_spec, Os, Target};

fn cfg(encoding: Encoding, splicing: bool) -> EncodeConfig {
    EncodeConfig {
        encoding,
        splicing,
        os: Os::new("linux"),
        target: Target::new("x86_64"),
        filter_irrelevant: true,
    }
}

fn repo() -> Repository {
    Repository::from_packages([
        PackageBuilder::new("zlib")
            .version("1.3")
            .version("1.2.11")
            .variant_bool("pic", true)
            .build()
            .unwrap(),
        PackageBuilder::new("zlib-ng")
            .version("2.1")
            .can_splice("zlib@1.3", "@2.1")
            .build()
            .unwrap(),
        PackageBuilder::new("example")
            .version("1.1.0")
            .version("1.0.0")
            .variant_bool("bzip", true)
            .depends_on_when("zlib@1.2", "@1.0.0")
            .depends_on_when("zlib@1.3", "@1.1.0")
            .build()
            .unwrap(),
    ])
    .unwrap()
}

fn cached(repo: &Repository, goal: &str) -> BuildCache {
    let sol = Concretizer::new(repo)
        .concretize(&parse_spec(goal).unwrap())
        .unwrap();
    let mut c = BuildCache::new();
    c.add_spec(sol.spec());
    c
}

#[test]
fn generated_program_always_parses() {
    let repo = repo();
    let cache = cached(&repo, "example");
    for (enc, splice) in [
        (Encoding::Direct, false),
        (Encoding::Indirect, false),
        (Encoding::Indirect, true),
    ] {
        let out = encode(
            &repo,
            &[std::sync::Arc::new(cache.clone()) as std::sync::Arc<dyn CacheSource>],
            &Goal::single(parse_spec("example").unwrap()),
            &cfg(enc, splice),
        )
        .unwrap();
        parse_program(&out.program)
            .unwrap_or_else(|e| panic!("({enc:?},{splice}) generated invalid ASP: {e}"));
    }
}

#[test]
fn version_facts_carry_preference_indexes() {
    let repo = repo();
    let out = encode(
        &repo,
        &[],
        &Goal::single(parse_spec("example").unwrap()),
        &cfg(Encoding::Indirect, false),
    )
    .unwrap();
    // Newest first: index 0 for 1.1.0, 1 for 1.0.0 (paper 5.1's
    // version_declared facts, with our explicit penalty index).
    assert!(out
        .program
        .contains(r#"pkg_fact("example", version_declared("1.1.0", 0))"#));
    assert!(out
        .program
        .contains(r#"pkg_fact("example", version_declared("1.0.0", 1))"#));
}

#[test]
fn conditional_dependency_compiles_to_specialized_rule() {
    let repo = repo();
    let out = encode(
        &repo,
        &[],
        &Goal::single(parse_spec("example").unwrap()),
        &cfg(Encoding::Indirect, false),
    )
    .unwrap();
    // The @1.0.0-conditional zlib dependency mentions a version_satisfies
    // test on example and imposes a depends_on head.
    assert!(
        out.program.contains(
            r#"attr("depends_on", node("example"), node("zlib"), "link-run")"#
        ),
        "dependency rule head missing"
    );
    assert!(out
        .program
        .contains(r#"pkg_fact("example", version_satisfies("@1.0.0", "1.0.0"))"#));
    // Constraint on the dep's version (zlib@1.2 satisfied by 1.2.11 only).
    assert!(out
        .program
        .contains(r#"pkg_fact("zlib", version_satisfies("@1.2", "1.2.11"))"#));
    assert!(!out
        .program
        .contains(r#"pkg_fact("zlib", version_satisfies("@1.2", "1.3"))"#));
}

#[test]
fn direct_encoding_emits_imposed_constraints() {
    let repo = repo();
    let cache = cached(&repo, "example");
    let out = encode(
        &repo,
        &[std::sync::Arc::new(cache.clone()) as std::sync::Arc<dyn CacheSource>],
        &Goal::single(parse_spec("example").unwrap()),
        &cfg(Encoding::Direct, false),
    )
    .unwrap();
    assert!(out.program.contains("installed_hash(\"example\""));
    assert!(out.program.contains("imposed_constraint("));
    assert!(
        !out.program.contains("hash_attr("),
        "direct encoding must not emit hash_attr facts"
    );
    assert!(!out.program.contains("can_splice"));
}

#[test]
fn indirect_encoding_emits_hash_attr() {
    let repo = repo();
    let cache = cached(&repo, "example");
    let out = encode(
        &repo,
        &[std::sync::Arc::new(cache.clone()) as std::sync::Arc<dyn CacheSource>],
        &Goal::single(parse_spec("example").unwrap()),
        &cfg(Encoding::Indirect, false),
    )
    .unwrap();
    assert!(out.program.contains("hash_attr("));
    assert!(
        !out.program.contains("imposed_constraint("),
        "indirect encoding emits only hash_attr facts; the bridge rules \
         recovering imposed_constraint live in the logic fragment"
    );
}

#[test]
fn splice_rules_only_when_enabled() {
    let repo = repo();
    let cache = cached(&repo, "example");
    let goal = Goal::single(parse_spec("example").unwrap());

    let without = encode(&repo, &[std::sync::Arc::new(cache.clone()) as std::sync::Arc<dyn CacheSource>], &goal, &cfg(Encoding::Indirect, false)).unwrap();
    assert!(!without.program.contains("can_splice"));
    assert!(!without.program.contains("splicer_decl"));

    let with = encode(&repo, &[std::sync::Arc::new(cache.clone()) as std::sync::Arc<dyn CacheSource>], &goal, &cfg(Encoding::Indirect, true)).unwrap();
    // Fig 4a-style compiled rule for the zlib-ng directive.
    assert!(with.program.contains("can_splice(node(\"zlib-ng\"), \"zlib\", Hash)"));
    assert!(with.program.contains("splicer_decl(\"zlib-ng\", \"zlib\")"));
    assert!(with.program.contains("splice_relevant(\"zlib\")"));
    // The when-clause constrains the replacement's version.
    assert!(with
        .program
        .contains(r#"pkg_fact("zlib-ng", version_satisfies("@2.1", V"#));
}

#[test]
fn closure_filtering_excludes_unrelated_packages() {
    let pkgs = vec![
        PackageBuilder::new("app").version("1.0").build().unwrap(),
        PackageBuilder::new("unrelated")
            .version("9.0")
            .build()
            .unwrap(),
    ];
    let repo = Repository::from_packages(pkgs).unwrap();
    let goal = Goal::single(parse_spec("app").unwrap());

    let filtered = encode(&repo, &[], &goal, &cfg(Encoding::Indirect, false)).unwrap();
    assert!(!filtered.program.contains("\"unrelated\""));

    let mut unfiltered_cfg = cfg(Encoding::Indirect, false);
    unfiltered_cfg.filter_irrelevant = false;
    let unfiltered = encode(&repo, &[], &goal, &unfiltered_cfg).unwrap();
    assert!(unfiltered.program.contains("\"unrelated\""));
}

#[test]
fn forbidden_packages_become_constraints() {
    let repo = repo();
    let mut goal = Goal::single(parse_spec("example").unwrap());
    goal.forbidden.push(spackle_spec::Sym::intern("zlib"));
    let out = encode(&repo, &[], &goal, &cfg(Encoding::Indirect, false)).unwrap();
    assert!(out
        .program
        .contains(r#":- attr("node", node("zlib"))."#));
}

#[test]
fn goal_constraints_compile() {
    let repo = repo();
    let goal = Goal::single(parse_spec("example@1.0.0+bzip target=x86_64").unwrap());
    let out = encode(&repo, &[], &goal, &cfg(Encoding::Indirect, false)).unwrap();
    assert!(out.program.contains(r#"attr("root", node("example"))"#));
    assert!(out
        .program
        .contains(r#":- not attr("variant", node("example"), "bzip", "True")."#));
    assert!(out
        .program
        .contains(r#":- not attr("node_target", node("example"), "x86_64")."#));
}

#[test]
fn reusable_count_reflects_filtering() {
    let repo = repo();
    let cache = cached(&repo, "example"); // example + zlib entries
    let goal = Goal::single(parse_spec("zlib").unwrap());
    let out = encode(&repo, &[std::sync::Arc::new(cache.clone()) as std::sync::Arc<dyn CacheSource>], &goal, &cfg(Encoding::Indirect, false)).unwrap();
    // Only the zlib entry is within zlib's closure.
    assert_eq!(out.reusable_count, 1);
}
