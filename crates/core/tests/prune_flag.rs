//! The `prune_dead` concretizer flag: grounding input must get strictly
//! smaller while solutions stay identical; goal resolution must report
//! every provider of an ambiguous virtual root.

use spackle_core::{Concretizer, ConcretizerConfig, CoreError};
use spackle_repo::{PackageBuilder, Repository};
use spackle_spec::parse_spec;

fn demo_repo() -> Repository {
    Repository::from_packages([
        PackageBuilder::new("zlib")
            .version("1.3")
            .version("1.2.11")
            .build()
            .unwrap(),
        PackageBuilder::new("mpich")
            .version("3.4.3")
            .provides("mpi")
            .build()
            .unwrap(),
        PackageBuilder::new("openmpi")
            .version("4.1.5")
            .provides("mpi")
            .build()
            .unwrap(),
        PackageBuilder::new("app")
            .version("2.0")
            .version("1.0")
            .variant_bool("shared", true)
            .depends_on("zlib")
            .depends_on("mpi")
            .build()
            .unwrap(),
    ])
    .unwrap()
}

#[test]
fn pruned_concretization_matches_unpruned() {
    let repo = demo_repo();
    let goal = parse_spec("app+shared").unwrap();

    let plain = Concretizer::new(&repo).concretize(&goal).unwrap();
    assert_eq!(plain.stats.pruned_rules, 0);

    let pruned = Concretizer::new(&repo)
        .with_config(ConcretizerConfig {
            prune_dead: true,
            ..ConcretizerConfig::default()
        })
        .concretize(&goal)
        .unwrap();

    // With no reusable caches, the reuse/impose bridge rules (and more)
    // can never fire: the grounder's input program must shrink.
    assert!(
        pruned.stats.pruned_rules > 0,
        "expected dead rules to be pruned, report: {:?}",
        pruned.stats.pruned_rules
    );
    // And the answer is bit-identical.
    assert_eq!(plain.spec().dag_hash(), pruned.spec().dag_hash());
    assert_eq!(plain.built, pruned.built);
    assert_eq!(plain.reused, pruned.reused);
}

#[test]
fn ambiguous_virtual_root_lists_all_providers() {
    let repo = demo_repo();
    let err = Concretizer::new(&repo)
        .concretize(&parse_spec("mpi").unwrap())
        .unwrap_err();
    match err {
        CoreError::BadGoal(msg) => {
            assert!(msg.contains("mpich"), "missing first provider: {msg}");
            assert!(msg.contains("openmpi"), "missing second provider: {msg}");
        }
        other => panic!("expected BadGoal, got {other:?}"),
    }
}

#[test]
fn sole_provider_virtual_root_resolves() {
    let repo = Repository::from_packages([
        PackageBuilder::new("mpich")
            .version("3.4.3")
            .provides("mpi")
            .build()
            .unwrap(),
    ])
    .unwrap();
    let sol = Concretizer::new(&repo)
        .concretize(&parse_spec("mpi@3.4.3").unwrap())
        .unwrap();
    assert_eq!(sol.spec().root().name.as_str(), "mpich");
}

#[test]
fn unknown_root_is_a_bad_goal() {
    let repo = demo_repo();
    let err = Concretizer::new(&repo)
        .concretize(&parse_spec("ghost").unwrap())
        .unwrap_err();
    assert!(matches!(err, CoreError::BadGoal(_)));
}
