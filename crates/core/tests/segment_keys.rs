//! Segment-key composition and stale-segment rejection.
//!
//! The ground cache's partial-invalidation contract rests on two
//! properties checked here at the public-API level:
//!
//! * **composition** — the memo key is composed from exactly the
//!   content the prepared program depends on: one fingerprint per
//!   closure package, one per reusable-spec source partition, the goal,
//!   and the encode-shaping config axes. Nothing else (in particular,
//!   no repository revision) may leak in, or retained entries would
//!   stop hitting after unrelated deltas.
//! * **stale rejection** — a solve that raced a delta (started on the
//!   pre-delta snapshot, finished after `apply_delta`) must not be able
//!   to re-insert its stale program: the retirement tables reject the
//!   insert under the shard lock. Checked directly for a straggler and
//!   under a concurrent solver/mutator stress loop.

use spackle_buildcache::BuildCache;
use spackle_core::{repo_delta, Concretizer, ConcretizerConfig, Goal, GroundCache};
use spackle_repo::{PackageBuilder, Repository};
use spackle_spec::parse_spec;
use std::sync::Arc;

fn base_repo() -> Repository {
    Repository::from_packages([
        PackageBuilder::new("zlib")
            .version("1.3")
            .version("1.2")
            .build()
            .unwrap(),
        PackageBuilder::new("app")
            .version("1.0")
            .depends_on("zlib")
            .build()
            .unwrap(),
        // Outside app's closure on purpose.
        PackageBuilder::new("lua").version("5.4").build().unwrap(),
    ])
    .unwrap()
}

fn key_of(repo: &Repository, goal: &Goal) -> (u64, Arc<spackle_core::SegmentSet>) {
    Concretizer::new(repo).segment_key(goal).unwrap()
}

#[test]
fn key_is_composed_from_closure_package_fingerprints_only() {
    let mut repo = base_repo();
    let goal = Goal::single(parse_spec("app").unwrap());
    let (key, set) = key_of(&repo, &goal);

    // The set names exactly the closure packages, sorted, and no
    // sources (no reusable cache configured).
    let pkgs: Vec<&str> = set.packages.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(pkgs, ["app", "zlib"], "closure segments, name-sorted");
    assert!(set.sources.is_empty());

    // Mutating a non-closure package moves nothing the key depends on.
    repo.upsert(
        PackageBuilder::new("lua")
            .version("5.5")
            .version("5.4")
            .build()
            .unwrap(),
    );
    let (key2, set2) = key_of(&repo, &goal);
    assert_eq!(key, key2, "revision bumped, content unchanged: same key");
    assert_eq!(set, set2);

    // Mutating a closure package moves exactly its fingerprint — and
    // therefore the composed key.
    let zlib_fp = set.packages.iter().find(|(n, _)| n.as_str() == "zlib").unwrap().1;
    let app_fp = set.packages.iter().find(|(n, _)| n.as_str() == "app").unwrap().1;
    repo.upsert(
        PackageBuilder::new("zlib")
            .version("1.4")
            .version("1.3")
            .version("1.2")
            .build()
            .unwrap(),
    );
    let (key3, set3) = key_of(&repo, &goal);
    assert_ne!(key, key3, "closure content change must move the key");
    let zlib_fp3 = set3.packages.iter().find(|(n, _)| n.as_str() == "zlib").unwrap().1;
    let app_fp3 = set3.packages.iter().find(|(n, _)| n.as_str() == "app").unwrap().1;
    assert_ne!(zlib_fp, zlib_fp3, "mutated segment's fingerprint moves");
    assert_eq!(app_fp, app_fp3, "untouched segment's fingerprint stays");
}

#[test]
fn key_covers_sources_goal_and_config_axes() {
    let repo = base_repo();
    let goal = Goal::single(parse_spec("app").unwrap());
    let (bare_key, _) = key_of(&repo, &goal);

    // A reusable-spec source adds a source partition to the set; its
    // content is part of the key.
    let seeded = Concretizer::new(&repo)
        .concretize(&parse_spec("zlib@1.2").unwrap())
        .unwrap();
    let mut bc = BuildCache::new();
    bc.add_spec(seeded.spec());
    let with_bc = Concretizer::new(&repo).with_reusable(bc.clone());
    let (bc_key, bc_set) = with_bc.segment_key(&goal).unwrap();
    assert_ne!(bare_key, bc_key, "attaching a source must move the key");
    assert_eq!(bc_set.sources.len(), 1);

    // Growing the source's content moves its partition fingerprint.
    let src_fp = bc_set.sources[0].1;
    let zlib13 = Concretizer::new(&repo)
        .concretize(&parse_spec("zlib@1.3").unwrap())
        .unwrap();
    bc.add_spec(zlib13.spec());
    let (bc_key2, bc_set2) = Concretizer::new(&repo)
        .with_reusable(bc.clone())
        .segment_key(&goal)
        .unwrap();
    assert_ne!(bc_key, bc_key2, "source content change must move the key");
    assert_ne!(src_fp, bc_set2.sources[0].1);

    // The goal and the encode-shaping config axes are key inputs too.
    let (other_goal_key, _) = key_of(&repo, &Goal::single(parse_spec("app@1.0").unwrap()));
    assert_ne!(bare_key, other_goal_key, "distinct goal, distinct key");
    let pruned = Concretizer::new(&repo).with_config(ConcretizerConfig {
        prune_dead: true,
        ..Default::default()
    });
    let (pruned_key, _) = pruned.segment_key(&goal).unwrap();
    assert_ne!(bare_key, pruned_key, "config axis change, distinct key");
}

#[test]
fn stale_straggler_insert_is_rejected_after_delta() {
    let repo_old = base_repo();
    let mut repo_new = repo_old.clone();
    repo_new.upsert(
        PackageBuilder::new("zlib")
            .version("1.4")
            .version("1.3")
            .version("1.2")
            .build()
            .unwrap(),
    );

    let gc = GroundCache::shared();
    let goal = parse_spec("app").unwrap();

    // Warm on the old world, then apply the delta: the entry is dropped
    // and the old zlib fingerprint retired.
    Concretizer::new(&repo_old)
        .with_ground_cache(gc.clone())
        .concretize(&goal)
        .unwrap();
    assert_eq!(gc.len(), 1);
    let report = gc.apply_delta(&repo_delta(&repo_old, &repo_new));
    assert_eq!((report.invalidated, report.retained), (1, 0));
    assert_eq!(gc.len(), 0);

    // A straggler still holding the pre-delta snapshot re-solves: it
    // misses (entry gone) and its re-insert references the retired
    // fingerprint, so the cache must refuse to store it.
    let sol = Concretizer::new(&repo_old)
        .with_ground_cache(gc.clone())
        .concretize(&goal)
        .unwrap();
    assert!(!sol.stats.ground_cache_hit);
    assert_eq!(gc.len(), 0, "stale insert must be rejected");

    // ... and keeps being rejected: a second straggler misses again
    // rather than hitting a resurrected stale program.
    let sol = Concretizer::new(&repo_old)
        .with_ground_cache(gc.clone())
        .concretize(&goal)
        .unwrap();
    assert!(!sol.stats.ground_cache_hit, "no stale program to hit");
    assert_eq!(gc.len(), 0);

    // A post-delta solve carries the *current* fingerprint, which the
    // retirement table recognizes as fresh: stored normally.
    let sol = Concretizer::new(&repo_new)
        .with_ground_cache(gc.clone())
        .concretize(&goal)
        .unwrap();
    assert!(!sol.stats.ground_cache_hit);
    assert_eq!(gc.len(), 1, "fresh insert must land");
    let sol2 = Concretizer::new(&repo_new)
        .with_ground_cache(gc.clone())
        .concretize(&goal)
        .unwrap();
    assert!(sol2.stats.ground_cache_hit);
    assert_eq!(sol.spec().dag_hash(), sol2.spec().dag_hash());
}

/// Solver threads race a mutator applying successive version-add deltas.
/// Every solve — whichever snapshot it holds, however it interleaves
/// with `apply_delta` — must return the solution a cold solve of *its*
/// snapshot returns. Afterwards no stale program may be reachable.
#[test]
fn concurrent_solves_against_deltas_stay_bit_identical() {
    // Snapshot i declares zlib versions 2.0..2.i (most preferred
    // first), so each delta changes the chosen zlib and the expected
    // solution differs per snapshot.
    let snapshots: Vec<Arc<Repository>> = (0..6)
        .map(|i| {
            let mut zlib = PackageBuilder::new("zlib");
            for v in (0..=i).rev() {
                zlib = zlib.version(&format!("2.{v}"));
            }
            zlib = zlib.version("1.3").version("1.2");
            Arc::new(
                Repository::from_packages([
                    zlib.build().unwrap(),
                    PackageBuilder::new("app")
                        .version("1.0")
                        .depends_on("zlib")
                        .build()
                        .unwrap(),
                    PackageBuilder::new("lua").version("5.4").build().unwrap(),
                ])
                .unwrap(),
            )
        })
        .collect();

    // Cold reference solutions, computed without any cache.
    let goal = parse_spec("app").unwrap();
    let reference: Vec<String> = snapshots
        .iter()
        .map(|r| {
            let sol = Concretizer::new(r.as_ref()).concretize(&goal).unwrap();
            format!("{:?}|{:?}", sol.spec().dag_hash(), sol.cost)
        })
        .collect();
    assert_eq!(
        reference.iter().collect::<std::collections::BTreeSet<_>>().len(),
        snapshots.len(),
        "each snapshot must have a distinct solution for the race to bite"
    );

    let gc = GroundCache::shared();
    let solvers: Vec<_> = (0..4)
        .map(|t| {
            let snapshots = snapshots.clone();
            let reference = reference.clone();
            let gc = gc.clone();
            let goal = goal.clone();
            std::thread::spawn(move || {
                for round in 0..30usize {
                    let i = (round * 7 + t * 3) % snapshots.len();
                    let sol = Concretizer::new(snapshots[i].as_ref())
                        .with_ground_cache(gc.clone())
                        .concretize(&goal)
                        .unwrap();
                    let got = format!("{:?}|{:?}", sol.spec().dag_hash(), sol.cost);
                    assert_eq!(
                        got, reference[i],
                        "thread {t} round {round}: solve of snapshot {i} \
                         diverged from its cold reference"
                    );
                }
            })
        })
        .collect();

    // The mutator walks the delta chain while solvers are in flight.
    let mutator = {
        let snapshots = snapshots.clone();
        let gc = gc.clone();
        std::thread::spawn(move || {
            for w in snapshots.windows(2) {
                gc.apply_delta(&repo_delta(&w[0], &w[1]));
                std::thread::yield_now();
            }
        })
    };
    for th in solvers {
        th.join().unwrap();
    }
    mutator.join().unwrap();

    // Post-race: the final world's solve must be correct and, once
    // warmed, hit; every pre-final snapshot's zlib fingerprint is
    // retired, so stale stragglers still cannot repopulate the cache.
    let last = snapshots.len() - 1;
    let warm = Concretizer::new(snapshots[last].as_ref()).with_ground_cache(gc.clone());
    let sol = warm.concretize(&goal).unwrap();
    assert_eq!(
        format!("{:?}|{:?}", sol.spec().dag_hash(), sol.cost),
        reference[last]
    );
    let before = gc.len();
    Concretizer::new(snapshots[0].as_ref())
        .with_ground_cache(gc.clone())
        .concretize(&goal)
        .unwrap();
    assert_eq!(gc.len(), before, "stale straggler insert still rejected");
}
