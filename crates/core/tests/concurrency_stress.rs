//! Shared-state concurrency stress: many threads solving through one
//! `Arc<GroundCache>` and one `Arc<dyn CacheSource>` must produce
//! bit-identical results to single-threaded cold solves, with hit/miss
//! counters that add up exactly — including while another thread is
//! invalidating the cache under them (the `spackled` reload pattern).

use spackle_buildcache::{BuildCache, CacheSource};
use spackle_core::{Concretizer, GroundCache, Solution};
use spackle_repo::{PackageBuilder, Repository};
use spackle_spec::{parse_spec, AbstractSpec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

const THREADS: usize = 8;
const ROUNDS: usize = 4;

fn stress_repo() -> Repository {
    Repository::from_packages([
        PackageBuilder::new("zlib")
            .version("1.3")
            .version("1.2")
            .build()
            .unwrap(),
        PackageBuilder::new("bzip2").version("1.0.8").build().unwrap(),
        PackageBuilder::new("openssl")
            .version("3.0")
            .depends_on("zlib")
            .build()
            .unwrap(),
        PackageBuilder::new("curl")
            .version("8.5")
            .depends_on("openssl")
            .depends_on("zlib")
            .build()
            .unwrap(),
        PackageBuilder::new("cmake")
            .version("3.27")
            .depends_on("curl")
            .build()
            .unwrap(),
        PackageBuilder::new("app")
            .version("1.0")
            .depends_on("curl")
            .depends_on("bzip2")
            .build()
            .unwrap(),
    ])
    .unwrap()
}

fn goals() -> Vec<AbstractSpec> {
    ["app", "cmake", "curl", "openssl", "zlib@1.2", "bzip2"]
        .iter()
        .map(|g| parse_spec(g).unwrap())
        .collect()
}

/// Seed a buildcache with a couple of concretized sub-DAGs so the
/// reuse path (and its fingerprint in the ground key) is exercised.
fn seeded_cache(repo: &Repository) -> Arc<dyn CacheSource> {
    let mut bc = BuildCache::new();
    for g in ["zlib@1.3", "openssl"] {
        let sol = Concretizer::new(repo)
            .concretize(&parse_spec(g).unwrap())
            .unwrap();
        bc.add_spec(sol.spec());
    }
    Arc::new(bc)
}

fn fingerprint(sol: &Solution) -> (Vec<String>, Vec<String>, Vec<String>) {
    (
        sol.specs.iter().map(|s| s.dag_hash().to_string()).collect(),
        sol.reused.iter().map(|s| s.as_str().to_string()).collect(),
        sol.built.iter().map(|s| s.as_str().to_string()).collect(),
    )
}

/// N threads hammer the same warm cache with the same goal set: every
/// solve must be bit-identical to the single-threaded cold baseline,
/// and the atomic hit/miss counters must account for every lookup.
#[test]
fn warm_solves_bit_identical_across_threads() {
    let repo = Arc::new(stress_repo());
    let cache = seeded_cache(&repo);
    let goals = goals();

    // Cold baseline: no ground cache at all.
    let baseline: Vec<_> = goals
        .iter()
        .map(|g| {
            let sol = Concretizer::shared(Arc::clone(&repo))
                .with_reusable(&cache)
                .concretize(g)
                .unwrap();
            fingerprint(&sol)
        })
        .collect();

    let gc = GroundCache::shared();
    let conc = Concretizer::shared(Arc::clone(&repo))
        .with_reusable(&cache)
        .with_ground_cache(gc.clone());

    // Warm the cache once (every goal misses exactly once)...
    for g in &goals {
        assert!(!conc.concretize(g).unwrap().stats.ground_cache_hit);
    }

    // ...then fan out. The concretizer itself is Clone + Send + Sync.
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let conc = conc.clone();
            let goals = &goals;
            let baseline = &baseline;
            s.spawn(move || {
                for round in 0..ROUNDS {
                    for (i, g) in goals.iter().enumerate() {
                        let sol = conc.concretize(g).unwrap();
                        assert!(
                            sol.stats.ground_cache_hit,
                            "thread {t} round {round}: warm solve missed"
                        );
                        assert_eq!(
                            fingerprint(&sol),
                            baseline[i],
                            "thread {t} round {round} goal {i}: diverged from cold solve"
                        );
                    }
                }
            });
        }
    });

    let stats = gc.stats();
    let expected_hits = (THREADS * ROUNDS * goals.len()) as u64;
    assert_eq!(stats.misses, goals.len() as u64, "one miss per goal");
    assert_eq!(stats.hits, expected_hits, "every threaded solve hit");
    assert_eq!(stats.entries, goals.len());
    assert!(
        stats.hit_rate() >= 0.9,
        "warm hit rate {:.3} below 0.9",
        stats.hit_rate()
    );
}

/// Solver threads race an invalidator that repeatedly swaps in a
/// re-stamped repository snapshot and drops stale entries — the exact
/// pattern `spackled` uses for reloads. In-flight solves must finish on
/// their own snapshot, nothing may panic, every result must stay
/// bit-identical to the cold baseline, and the counters must balance.
#[test]
fn invalidation_interleaved_with_solves() {
    let slot = Arc::new(RwLock::new(Arc::new(stress_repo())));
    let cache = seeded_cache(&slot.read().unwrap());
    let goals = goals();

    let baseline: Vec<_> = goals
        .iter()
        .map(|g| {
            let sol = Concretizer::shared(Arc::clone(&slot.read().unwrap()))
                .with_reusable(&cache)
                .concretize(g)
                .unwrap();
            fingerprint(&sol)
        })
        .collect();

    let gc = GroundCache::shared();
    let solves = AtomicU64::new(0);
    let hits = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let slot = Arc::clone(&slot);
            let cache = Arc::clone(&cache);
            let gc = gc.clone();
            let goals = &goals;
            let baseline = &baseline;
            let solves = &solves;
            let hits = &hits;
            s.spawn(move || {
                for round in 0..ROUNDS * 2 {
                    for (i, g) in goals.iter().enumerate() {
                        // Snapshot the repository exactly like a server
                        // request would; an invalidate mid-solve leaves
                        // this Arc untouched.
                        let snapshot = Arc::clone(&slot.read().unwrap());
                        let sol = Concretizer::shared(snapshot)
                            .with_reusable(&cache)
                            .with_ground_cache(gc.clone())
                            .concretize(g)
                            .unwrap();
                        solves.fetch_add(1, Ordering::Relaxed);
                        if sol.stats.ground_cache_hit {
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                        assert_eq!(
                            fingerprint(&sol),
                            baseline[i],
                            "thread {t} round {round} goal {i}: diverged under invalidation"
                        );
                    }
                }
            });
        }

        // The invalidator: bump the revision, swap the snapshot, drop
        // stale entries — while solves are in flight.
        let slot = Arc::clone(&slot);
        let gc = gc.clone();
        s.spawn(move || {
            for _ in 0..6 {
                std::thread::sleep(std::time::Duration::from_millis(3));
                let new_revision = {
                    let mut guard = slot.write().unwrap();
                    let mut fresh = (**guard).clone();
                    fresh.bump_revision();
                    let rev = fresh.revision();
                    *guard = Arc::new(fresh);
                    rev
                };
                gc.invalidate_below(new_revision);
            }
        });
    });

    let total = solves.load(Ordering::Relaxed);
    let hit = hits.load(Ordering::Relaxed);
    assert_eq!(total, (THREADS * ROUNDS * 2 * goals.len()) as u64);

    let stats = gc.stats();
    assert_eq!(
        stats.hits + stats.misses,
        total,
        "every solve is exactly one counted lookup"
    );
    assert_eq!(stats.hits, hit, "per-solve flags agree with the cache");

    // The floor equals the final revision; nothing stale may remain,
    // and a fresh solve against the final snapshot still matches.
    let final_repo = Arc::clone(&slot.read().unwrap());
    let sol = Concretizer::shared(Arc::clone(&final_repo))
        .with_reusable(&cache)
        .with_ground_cache(gc.clone())
        .concretize(&goals[0])
        .unwrap();
    assert_eq!(fingerprint(&sol), baseline[0]);

    // And the warm path is restored: the same goal now hits.
    let again = Concretizer::shared(final_repo)
        .with_reusable(&cache)
        .with_ground_cache(gc.clone())
        .concretize(&goals[0])
        .unwrap();
    assert!(again.stats.ground_cache_hit, "cache re-warms after the dust settles");
}

/// A stale straggler — a solve that started before an invalidation —
/// must not repopulate the cache with its old-revision program.
#[test]
fn stale_insert_is_rejected_by_the_revision_floor() {
    let repo = stress_repo();
    let old_revision = repo.revision();
    let gc = GroundCache::shared();

    // Simulate the straggler: the invalidation lands *before* its
    // insert does.
    let mut bumped = repo.clone();
    bumped.bump_revision();
    let dropped = gc.invalidate_below(bumped.revision());
    assert_eq!(dropped, 0, "nothing cached yet");

    let stale = Concretizer::new(&repo); // still on the old snapshot
    let goal = parse_spec("app").unwrap();
    let gc_for_stale = gc.clone();
    let sol = stale
        .with_ground_cache(gc_for_stale)
        .concretize(&goal)
        .unwrap();
    assert!(!sol.stats.ground_cache_hit);
    assert_eq!(
        gc.len(),
        0,
        "insert keyed at revision {old_revision} must be rejected by the floor"
    );

    // A solve on the *new* snapshot does populate it.
    let fresh = Concretizer::new(&bumped)
        .with_ground_cache(gc.clone())
        .concretize(&goal)
        .unwrap();
    assert!(!fresh.stats.ground_cache_hit);
    assert_eq!(gc.len(), 1);
}
