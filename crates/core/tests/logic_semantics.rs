//! Semantic tests of the concretization logic program in isolation:
//! hand-written facts + the embedded `.lp` fragments, solved directly by
//! the ASP engine. This pins down the encoding's meaning independent of
//! the fact compiler.

use spackle_asp::{parse_program, Model, SolveOutcome, Solver};
use spackle_core::logic::{BASE_PROGRAM, NO_SPLICE_STUB, REUSE_INDIRECT, SPLICE_FRAGMENT};

/// Minimal environment facts every program needs.
const ENV: &str = r#"
requested_os("linux").
requested_target("x86_64").
os_declared("linux").
target_declared("x86_64").
target_runs("x86_64", "x86_64").
target_penalty("x86_64", 0).
"#;

fn solve(facts: &str, fragments: &[&str]) -> Option<Model> {
    let mut text = String::from(ENV);
    text.push_str(facts);
    for f in fragments {
        text.push_str(f);
    }
    let prog = parse_program(&text).unwrap_or_else(|e| panic!("program invalid: {e}"));
    match Solver::new().solve(&prog) {
        Ok((SolveOutcome::Optimal(m), _)) => Some(m),
        Ok((SolveOutcome::Unsat, _)) => None,
        Err(e) => panic!("solver error: {e}"),
    }
}

#[test]
fn version_choice_prefers_lowest_penalty() {
    let m = solve(
        r#"
        attr("root", node("a")).
        pkg_fact("a", version_declared("2.0", 0)).
        pkg_fact("a", version_declared("1.0", 1)).
        "#,
        &[BASE_PROGRAM, REUSE_INDIRECT, NO_SPLICE_STUB],
    )
    .expect("satisfiable");
    let versions = m
        .atoms_of("attr")
        .into_iter()
        .filter(|args| m.as_str(args[0]) == Some("version"))
        .count();
    assert_eq!(versions, 1, "exactly one version chosen");
    assert!(m
        .render()
        .contains(&r#"attr("version",node("a"),"2.0")"#.to_string()));
}

#[test]
fn dependency_derivation_and_reach() {
    let m = solve(
        r#"
        attr("root", node("a")).
        pkg_fact("a", version_declared("1.0", 0)).
        pkg_fact("b", version_declared("1.0", 0)).
        pkg_fact("c", version_declared("1.0", 0)).
        attr("depends_on", node("a"), node("b"), "link-run") :- attr("node", node("a")), build("a").
        attr("depends_on", node("b"), node("c"), "link-run") :- attr("node", node("b")), build("b").
        "#,
        &[BASE_PROGRAM, REUSE_INDIRECT, NO_SPLICE_STUB],
    )
    .expect("satisfiable");
    let rendered = m.render();
    assert!(rendered.contains(&r#"attr("node",node("c"))"#.to_string()));
    assert!(rendered.contains(&r#"reach("a","c")"#.to_string()), "transitive reach");
    assert!(rendered.contains(&"build(\"a\")".to_string()));
}

#[test]
fn reuse_imposition_recovers_attributes() {
    // One installed spec of "a" with a dependency on "b"; reusing it must
    // impose b's node, version, and hash.
    let m = solve(
        r#"
        attr("root", node("a")).
        pkg_fact("a", version_declared("1.0", 0)).
        pkg_fact("b", version_declared("1.0", 0)).
        installed_hash("a", "hasha").
        hash_attr("hasha", "version", "a", "1.0").
        hash_attr("hasha", "node_os", "a", "linux").
        hash_attr("hasha", "node_target", "a", "x86_64").
        hash_attr("hasha", "depends_on", "a", "b").
        hash_attr("hasha", "hash", "b", "hashb").
        installed_hash("b", "hashb").
        hash_attr("hashb", "version", "b", "1.0").
        hash_attr("hashb", "node_os", "b", "linux").
        hash_attr("hashb", "node_target", "b", "x86_64").
        "#,
        &[BASE_PROGRAM, REUSE_INDIRECT, NO_SPLICE_STUB],
    )
    .expect("satisfiable");
    let rendered = m.render();
    // Reuse is optimal (zero builds beats two).
    assert!(rendered.contains(&r#"attr("hash",node("a"),"hasha")"#.to_string()));
    assert!(rendered.contains(&r#"attr("hash",node("b"),"hashb")"#.to_string()));
    assert!(rendered.contains(&r#"attr("node",node("b"))"#.to_string()));
    assert!(!rendered.contains(&"build(\"a\")".to_string()));
    assert!(!rendered.contains(&"build(\"b\")".to_string()));
}

#[test]
fn splice_fragment_diverts_dependency() {
    // Installed a->b; package "c" (also installed, e.g. a system MPI) can
    // splice b's hash; b is forbidden on this machine. The zero-build
    // solution reuses a and c and splices — strictly better than
    // rebuilding a (which would cost one build).
    let m = solve(
        r#"
        attr("root", node("a")).
        pkg_fact("a", version_declared("1.0", 0)).
        pkg_fact("b", version_declared("1.0", 0)).
        pkg_fact("c", version_declared("1.0", 0)).
        installed_hash("a", "hasha").
        hash_attr("hasha", "version", "a", "1.0").
        hash_attr("hasha", "node_os", "a", "linux").
        hash_attr("hasha", "node_target", "a", "x86_64").
        hash_attr("hasha", "depends_on", "a", "b").
        hash_attr("hasha", "hash", "b", "hashb").
        installed_hash("b", "hashb").
        hash_attr("hashb", "version", "b", "1.0").
        hash_attr("hashb", "node_os", "b", "linux").
        hash_attr("hashb", "node_target", "b", "x86_64").
        installed_hash("c", "hashc").
        hash_attr("hashc", "version", "c", "1.0").
        hash_attr("hashc", "node_os", "c", "linux").
        hash_attr("hashc", "node_target", "c", "x86_64").
        % Fig 4a-style compiled rule:
        can_splice(node("c"), "b", Hash) :-
            installed_hash("b", Hash), attr("node", node("c")).
        splicer_decl("c", "b").
        splice_relevant("b").
        % The deployment target lacks b:
        :- attr("node", node("b")).
        "#,
        &[BASE_PROGRAM, REUSE_INDIRECT, SPLICE_FRAGMENT],
    )
    .expect("satisfiable via splice");
    let rendered = m.render();
    assert!(
        rendered.contains(&r#"splice_to("hasha","b","c")"#.to_string()),
        "splice decision missing: {rendered:?}"
    );
    // a is still reused; c joined the DAG; b is gone.
    assert!(rendered.contains(&r#"attr("hash",node("a"),"hasha")"#.to_string()));
    assert!(rendered.contains(&r#"attr("node",node("c"))"#.to_string()));
    assert!(!rendered.contains(&r#"attr("node",node("b"))"#.to_string()));
    // The diverted dependency edge exists.
    assert!(rendered.contains(
        &r#"attr("depends_on",node("a"),node("c"),"link-run")"#.to_string()
    ));
}

#[test]
fn without_splice_fragment_forbidding_b_forces_rebuild() {
    // Same facts, no splice fragment: reusing a imposes b, which is
    // forbidden — so a must be built; since "a"'s build has no directive
    // rules here, a alone satisfies (no deps derived for built nodes in
    // this synthetic setup).
    let m = solve(
        r#"
        attr("root", node("a")).
        pkg_fact("a", version_declared("1.0", 0)).
        pkg_fact("b", version_declared("1.0", 0)).
        installed_hash("a", "hasha").
        hash_attr("hasha", "version", "a", "1.0").
        hash_attr("hasha", "node_os", "a", "linux").
        hash_attr("hasha", "node_target", "a", "x86_64").
        hash_attr("hasha", "depends_on", "a", "b").
        hash_attr("hasha", "hash", "b", "hashb").
        installed_hash("b", "hashb").
        hash_attr("hashb", "version", "b", "1.0").
        hash_attr("hashb", "node_os", "b", "linux").
        hash_attr("hashb", "node_target", "b", "x86_64").
        :- attr("node", node("b")).
        "#,
        &[BASE_PROGRAM, REUSE_INDIRECT, NO_SPLICE_STUB],
    )
    .expect("satisfiable by building");
    let rendered = m.render();
    assert!(rendered.contains(&"build(\"a\")".to_string()));
    assert!(!rendered.contains(&r#"attr("hash",node("a"),"hasha")"#.to_string()));
}

#[test]
fn single_provider_constraint() {
    let result = solve(
        r#"
        attr("root", node("a")).
        pkg_fact("a", version_declared("1.0", 0)).
        pkg_fact("p1", version_declared("1.0", 0)).
        pkg_fact("p2", version_declared("1.0", 0)).
        provider_decl("p1", "v").
        provider_decl("p2", "v").
        provider_weight("v", "p1", 0).
        provider_weight("v", "p2", 1).
        attr("virtual_dep", node("a"), "v") :- attr("node", node("a")), build("a").
        % Force both providers present: must be UNSAT.
        :- not attr("node", node("p1")).
        :- not attr("node", node("p2")).
        attr("depends_on", node("a"), node("p2"), "link-run") :- attr("node", node("a")), build("a").
        "#,
        &[BASE_PROGRAM, REUSE_INDIRECT, NO_SPLICE_STUB],
    );
    assert!(result.is_none(), "two providers of one virtual must conflict");
}

#[test]
fn provider_weight_breaks_ties() {
    let m = solve(
        r#"
        attr("root", node("a")).
        pkg_fact("a", version_declared("1.0", 0)).
        pkg_fact("p1", version_declared("1.0", 0)).
        pkg_fact("p2", version_declared("1.0", 0)).
        provider_decl("p1", "v").
        provider_decl("p2", "v").
        provider_weight("v", "p1", 0).
        provider_weight("v", "p2", 1).
        attr("virtual_dep", node("a"), "v") :- attr("node", node("a")), build("a").
        "#,
        &[BASE_PROGRAM, REUSE_INDIRECT, NO_SPLICE_STUB],
    )
    .expect("satisfiable");
    let rendered = m.render();
    assert!(rendered.contains(&r#"virtual_chosen("v","p1")"#.to_string()));
    assert!(!rendered.contains(&r#"attr("node",node("p2"))"#.to_string()));
}

#[test]
fn incompatible_target_blocks_reuse() {
    // The cached spec was built for icelake; the requesting machine is
    // plain x86_64 and cannot run it: rebuild.
    let m = solve(
        r#"
        attr("root", node("a")).
        pkg_fact("a", version_declared("1.0", 0)).
        target_declared("icelake").
        target_penalty("icelake", 100).
        installed_hash("a", "hasha").
        hash_attr("hasha", "version", "a", "1.0").
        hash_attr("hasha", "node_os", "a", "linux").
        hash_attr("hasha", "node_target", "a", "icelake").
        "#,
        &[BASE_PROGRAM, REUSE_INDIRECT, NO_SPLICE_STUB],
    )
    .expect("satisfiable by building for x86_64");
    let rendered = m.render();
    assert!(rendered.contains(&"build(\"a\")".to_string()));
    assert!(rendered.contains(&r#"attr("node_target",node("a"),"x86_64")"#.to_string()));
}
