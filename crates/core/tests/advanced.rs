//! Advanced concretizer scenarios: microarchitecture compatibility,
//! conflicts, conditional provides, deep splice chains, constrained
//! `can_splice` targets (the Fig 1 `example`/`example-ng` case), and
//! cache filtering.

use spackle_buildcache::BuildCache;
use spackle_core::{Concretizer, ConcretizerConfig, CoreError, Encoding};
use spackle_repo::{PackageBuilder, Repository};
use spackle_spec::{parse_spec, Os, Sym, Target, Version};

fn v(s: &str) -> Version {
    Version::parse(s).unwrap()
}

// ---------------------------------------------------------------------
// Target / microarchitecture behavior
// ---------------------------------------------------------------------

fn tiny_repo() -> Repository {
    Repository::from_packages([
        PackageBuilder::new("zlib").version("1.3").build().unwrap(),
        PackageBuilder::new("app")
            .version("1.0")
            .depends_on("zlib")
            .build()
            .unwrap(),
    ])
    .unwrap()
}

fn config_on(target: &str) -> ConcretizerConfig {
    ConcretizerConfig {
        target: Target::new(target),
        ..ConcretizerConfig::splice_spack_disabled()
    }
}

#[test]
fn generic_binaries_reused_on_newer_microarch() {
    let repo = tiny_repo();
    // Cache built on a generic x86_64 machine.
    let farm = Concretizer::new(&repo)
        .with_config(config_on("x86_64"))
        .concretize(&parse_spec("app").unwrap())
        .unwrap();
    let mut cache = BuildCache::new();
    cache.add_spec(farm.spec());

    // An icelake machine can run them: full reuse, nodes keep their
    // build target.
    let sol = Concretizer::new(&repo)
        .with_config(config_on("icelake"))
        .with_reusable(cache.clone())
        .concretize(&parse_spec("app").unwrap())
        .unwrap();
    assert!(sol.built.is_empty(), "built: {:?}", sol.built);
    assert_eq!(sol.spec().root().target, Target::new("x86_64"));
}

#[test]
fn newer_binaries_not_reused_on_older_microarch() {
    let repo = tiny_repo();
    // Cache built for icelake.
    let farm = Concretizer::new(&repo)
        .with_config(config_on("icelake"))
        .concretize(&parse_spec("app target=icelake").unwrap())
        .unwrap();
    assert_eq!(farm.spec().root().target, Target::new("icelake"));
    let mut cache = BuildCache::new();
    cache.add_spec(farm.spec());

    // A haswell machine cannot execute icelake binaries: rebuild.
    let sol = Concretizer::new(&repo)
        .with_config(config_on("haswell"))
        .with_reusable(cache.clone())
        .concretize(&parse_spec("app").unwrap())
        .unwrap();
    assert_eq!(sol.built.len(), 2, "must rebuild: {:?}", sol.reused);
    assert_eq!(sol.spec().root().target, Target::new("haswell"));
}

#[test]
fn cross_family_binaries_rejected() {
    let repo = tiny_repo();
    let farm = Concretizer::new(&repo)
        .with_config(config_on("neoverse_v1"))
        .concretize(&parse_spec("app").unwrap())
        .unwrap();
    let mut cache = BuildCache::new();
    cache.add_spec(farm.spec());
    let sol = Concretizer::new(&repo)
        .with_config(config_on("skylake"))
        .with_reusable(cache.clone())
        .concretize(&parse_spec("app").unwrap())
        .unwrap();
    assert_eq!(sol.built.len(), 2);
}

#[test]
fn requested_target_preferred_for_builds() {
    let repo = tiny_repo();
    let sol = Concretizer::new(&repo)
        .with_config(config_on("icelake"))
        .concretize(&parse_spec("app").unwrap())
        .unwrap();
    // With no cache, built nodes get the requested target exactly.
    for n in sol.spec().nodes() {
        assert_eq!(n.target, Target::new("icelake"));
    }
}

#[test]
fn mismatched_os_cache_not_reused() {
    let repo = tiny_repo();
    let farm = Concretizer::new(&repo)
        .with_config(ConcretizerConfig {
            os: Os::new("centos8"),
            ..ConcretizerConfig::splice_spack_disabled()
        })
        .concretize(&parse_spec("app").unwrap())
        .unwrap();
    let mut cache = BuildCache::new();
    cache.add_spec(farm.spec());
    let sol = Concretizer::new(&repo)
        .with_config(ConcretizerConfig {
            os: Os::new("ubuntu22.04"),
            ..ConcretizerConfig::splice_spack_disabled()
        })
        .with_reusable(cache.clone())
        .concretize(&parse_spec("app").unwrap())
        .unwrap();
    assert_eq!(sol.built.len(), 2);
}

// ---------------------------------------------------------------------
// Conflicts and conditional provides
// ---------------------------------------------------------------------

#[test]
fn conflicts_directive_excludes_combination() {
    let repo = Repository::from_packages([
        PackageBuilder::new("zlib")
            .version("2.0")
            .version("1.3")
            .build()
            .unwrap(),
        PackageBuilder::new("app")
            .version("1.0")
            .variant_bool("legacy", false)
            .depends_on("zlib")
            // legacy mode cannot use zlib 2.x
            .conflicts_when("^zlib@2:", "+legacy")
            .build()
            .unwrap(),
    ])
    .unwrap();
    let c = Concretizer::new(&repo);
    // Default (~legacy): newest zlib fine.
    let sol = c.concretize(&parse_spec("app").unwrap()).unwrap();
    let z = sol.spec().find(Sym::intern("zlib")).unwrap();
    assert_eq!(sol.spec().node(z).version, v("2.0"));
    // +legacy: forced down to zlib 1.3.
    let sol = c.concretize(&parse_spec("app+legacy").unwrap()).unwrap();
    let z = sol.spec().find(Sym::intern("zlib")).unwrap();
    assert_eq!(sol.spec().node(z).version, v("1.3"));
    // +legacy with explicit zlib@2 is unsatisfiable.
    let err = c
        .concretize(&parse_spec("app+legacy ^zlib@2.0").unwrap())
        .unwrap_err();
    assert!(matches!(err, CoreError::Unsatisfiable));
}

#[test]
fn conditional_provides_respected() {
    // old-mpi only provides mpi from version 2 on.
    let repo = Repository::from_packages([
        PackageBuilder::new("old-mpi")
            .version("2.0")
            .version("1.0")
            .provides_when("mpi", "@2:")
            .build()
            .unwrap(),
        PackageBuilder::new("app")
            .version("1.0")
            .depends_on("mpi")
            .build()
            .unwrap(),
    ])
    .unwrap();
    let sol = Concretizer::new(&repo)
        .concretize(&parse_spec("app").unwrap())
        .unwrap();
    let m = sol.spec().find(Sym::intern("old-mpi")).unwrap();
    assert_eq!(sol.spec().node(m).version, v("2.0"));

    // Forcing the provider below 2.0 is unsatisfiable.
    let err = Concretizer::new(&repo)
        .concretize(&parse_spec("app ^old-mpi@1.0").unwrap())
        .unwrap_err();
    assert!(matches!(err, CoreError::Unsatisfiable), "{err}");
}

// ---------------------------------------------------------------------
// Splicing depth and constrained targets
// ---------------------------------------------------------------------

fn chain_repo() -> Repository {
    // app -> solver -> mpich ; mpiabi can splice mpich@3.4.3 only.
    Repository::from_packages([
        PackageBuilder::new("mpich")
            .version("3.4.3")
            .version("3.1")
            .provides("mpi")
            .build()
            .unwrap(),
        PackageBuilder::new("mpiabi")
            .version("1.0")
            .provides("mpi")
            .can_splice("mpich@3.4.3", "")
            .build()
            .unwrap(),
        PackageBuilder::new("solver")
            .version("2.0")
            .depends_on("mpi")
            .build()
            .unwrap(),
        PackageBuilder::new("app")
            .version("1.0")
            .depends_on("solver")
            .depends_on("mpi")
            .build()
            .unwrap(),
    ])
    .unwrap()
}

#[test]
fn splice_propagates_through_reused_chain() {
    let repo = chain_repo();
    let farm = Concretizer::new(&repo)
        .concretize(&parse_spec("app ^mpich@3.4.3").unwrap())
        .unwrap();
    let mut cache = BuildCache::new();
    cache.add_spec(farm.spec());

    let sol = Concretizer::new(&repo)
        .with_config(ConcretizerConfig::splice_spack())
        .with_reusable(cache.clone())
        .concretize(&parse_spec("app ^mpiabi").unwrap())
        .unwrap();
    // Only mpiabi builds; app AND solver both reused although their MPI
    // changed (solver directly spliced, app transitively).
    assert_eq!(
        sol.built.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        vec!["mpiabi"]
    );
    let spec = sol.spec();
    let app = spec.node(spec.find(Sym::intern("app")).unwrap());
    let solver = spec.node(spec.find(Sym::intern("solver")).unwrap());
    assert!(app.is_spliced(), "app relinked transitively");
    assert!(solver.is_spliced(), "solver relinked directly");
    // Provenance chains back to the original farm builds.
    assert_eq!(
        app.build_spec.as_ref().unwrap().dag_hash(),
        farm.spec().dag_hash()
    );
}

#[test]
fn can_splice_version_constraint_limits_targets() {
    let repo = chain_repo();
    // Cache built against mpich@3.1 — NOT the declared splice target.
    let farm = Concretizer::new(&repo)
        .concretize(&parse_spec("app ^mpich@3.1").unwrap())
        .unwrap();
    let mut cache = BuildCache::new();
    cache.add_spec(farm.spec());

    let sol = Concretizer::new(&repo)
        .with_config(ConcretizerConfig::splice_spack())
        .with_reusable(cache.clone())
        .concretize(&parse_spec("app ^mpiabi").unwrap())
        .unwrap();
    // No valid splice: mpiabi only replaces mpich@3.4.3. Everything
    // MPI-dependent rebuilds.
    assert!(sol.spliced.is_empty());
    assert!(sol.built.iter().any(|s| s.as_str() == "app"));
    assert!(sol.built.iter().any(|s| s.as_str() == "solver"));
}

#[test]
fn fig1_cross_package_splice_with_when_clause() {
    // example@1.1.0+bzip can splice in for example-ng@2.3.2+compat.
    let repo = Repository::from_packages([
        PackageBuilder::new("example-ng")
            .version("2.3.2")
            .variant_bool("compat", true)
            .build()
            .unwrap(),
        PackageBuilder::new("example")
            .version("1.1.0")
            .version("1.0.0")
            .variant_bool("bzip", true)
            .can_splice("example-ng@2.3.2+compat", "@1.1.0+bzip")
            .build()
            .unwrap(),
        PackageBuilder::new("consumer")
            .version("1.0")
            .depends_on("example-ng")
            .build()
            .unwrap(),
    ])
    .unwrap();
    let farm = Concretizer::new(&repo)
        .concretize(&parse_spec("consumer ^example-ng+compat").unwrap())
        .unwrap();
    let mut cache = BuildCache::new();
    cache.add_spec(farm.spec());

    // Request consumer with example instead; forbidden example-ng forces
    // the splice.
    let mut goal = spackle_core::Goal::single(parse_spec("consumer ^example").unwrap());
    goal.forbidden.push(Sym::intern("example-ng"));
    let sol = Concretizer::new(&repo)
        .with_config(ConcretizerConfig::splice_spack())
        .with_reusable(cache.clone())
        .concretize_goal(&goal)
        .unwrap();
    assert_eq!(sol.spliced.len(), 1);
    assert_eq!(sol.spliced[0].replaced.as_str(), "example-ng");
    assert_eq!(sol.spliced[0].replacement.as_str(), "example");
    let spec = &sol.specs[0];
    let ex = spec.node(spec.find(Sym::intern("example")).unwrap());
    // The when-clause pinned the replacement's configuration.
    assert_eq!(ex.version, v("1.1.0"));
}

#[test]
fn direct_encoding_with_splicing_flag_is_a_config_error() {
    let repo = chain_repo();
    let cfg = ConcretizerConfig {
        encoding: Encoding::Direct,
        splicing: true, // structurally impossible under Direct
        ..ConcretizerConfig::default()
    };
    // The contradiction is rejected loudly instead of silently solving a
    // different problem than the caller asked for...
    let err = Concretizer::new(&repo)
        .with_config(cfg.clone())
        .concretize(&parse_spec("app").unwrap())
        .unwrap_err();
    assert!(
        matches!(err, CoreError::Config(_)),
        "expected CoreError::Config, got {err:?}"
    );
    // ...and the documented repair is explicit: normalize() turns
    // splicing off, after which the solve proceeds splice-free.
    let sol = Concretizer::new(&repo)
        .with_config(cfg.normalize())
        .concretize(&parse_spec("app").unwrap())
        .unwrap();
    assert!(sol.spliced.is_empty());
}

// ---------------------------------------------------------------------
// Cache filtering
// ---------------------------------------------------------------------

#[test]
fn irrelevant_cache_entries_filtered_from_encoding() {
    let repo = Repository::from_packages([
        PackageBuilder::new("zlib").version("1.3").build().unwrap(),
        PackageBuilder::new("app")
            .version("1.0")
            .depends_on("zlib")
            .build()
            .unwrap(),
        PackageBuilder::new("unrelated")
            .version("9.0")
            .build()
            .unwrap(),
    ])
    .unwrap();
    let c = Concretizer::new(&repo);
    let mut cache = BuildCache::new();
    cache.add_spec(
        c.concretize(&parse_spec("unrelated").unwrap())
            .unwrap()
            .spec(),
    );
    cache.add_spec(c.concretize(&parse_spec("zlib").unwrap()).unwrap().spec());
    // Concretizing app must only consider the zlib entry.
    let sol = Concretizer::new(&repo)
        .with_reusable(cache.clone())
        .concretize(&parse_spec("app").unwrap())
        .unwrap();
    assert_eq!(sol.stats.reusable_specs, 1);
    assert!(sol.reused.iter().any(|s| s.as_str() == "zlib"));
}

#[test]
fn multi_valued_variant_concretizes_to_default() {
    let repo = Repository::from_packages([
        PackageBuilder::new("blas")
            .version("1.0")
            .variant_multi("precisions", &["single", "double"], &["single", "double", "quad"])
            .build()
            .unwrap(),
    ])
    .unwrap();
    let sol = Concretizer::new(&repo)
        .concretize(&parse_spec("blas").unwrap())
        .unwrap();
    let node = sol.spec().root();
    let val = node.variants.get(&Sym::intern("precisions")).unwrap();
    assert_eq!(val.canonical(), "double,single");
}
