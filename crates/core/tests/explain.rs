//! End-to-end `--explain` pipeline tests: provenance-mapped unsat
//! cores from `Concretizer::explain_goal`.

use spackle_asp::CancelToken;
use spackle_core::{
    Concretizer, ConcretizerConfig, CoreError, EncodeOrigin, Explanation, Goal,
};
use spackle_repo::{PackageBuilder, Repository};
use spackle_spec::{parse_spec, Sym};

/// liba pins zlib@1.2, libb pins zlib@1.3; app needs both — a classic
/// two-directive version conflict on a shared dependency.
fn conflicted_repo() -> Repository {
    let zlib = PackageBuilder::new("zlib")
        .version("1.3")
        .version("1.2.11")
        .build()
        .unwrap();
    let liba = PackageBuilder::new("liba")
        .version("1.0")
        .depends_on("zlib@1.2")
        .build()
        .unwrap();
    let libb = PackageBuilder::new("libb")
        .version("1.0")
        .depends_on("zlib@1.3")
        .build()
        .unwrap();
    let app = PackageBuilder::new("app")
        .version("2.0")
        .depends_on("liba")
        .depends_on("libb")
        .build()
        .unwrap();
    let r = Repository::from_packages([zlib, liba, libb, app]).unwrap();
    r.validate().unwrap();
    r
}

fn explain(c: &Concretizer, spec: &str) -> Option<Explanation> {
    c.explain_goal(&Goal::single(parse_spec(spec).unwrap()))
        .unwrap()
}

#[test]
fn satisfiable_goal_has_no_explanation() {
    let repo = conflicted_repo();
    let c = Concretizer::new(&repo);
    assert!(explain(&c, "liba").is_none());
    // And the regular path agrees.
    assert!(c.concretize(&parse_spec("liba").unwrap()).is_ok());
}

#[test]
fn version_conflict_core_names_both_directives() {
    let repo = conflicted_repo();
    let c = Concretizer::new(&repo);
    // Sanity: the normal path reports plain UNSAT.
    assert!(matches!(
        c.concretize(&parse_spec("app").unwrap()),
        Err(CoreError::Unsatisfiable)
    ));

    let ex = explain(&c, "app").expect("app is unsatisfiable");
    assert!(ex.minimal, "budget is ample; minimization must finish");
    assert!(!ex.entries.is_empty());
    assert!(ex.core_initial >= ex.entries.len());

    let directives: Vec<&EncodeOrigin> =
        ex.directive_entries().filter_map(|e| e.origin.as_ref()).collect();
    let has_dep = |pkg: &str| {
        directives.iter().any(|o| {
            matches!(o, EncodeOrigin::DependsOn { package, .. }
                     if package.as_str() == pkg)
        })
    };
    // The two clashing pins must both be named...
    assert!(has_dep("liba"), "liba's zlib@1.2 pin missing: {directives:?}");
    assert!(has_dep("libb"), "libb's zlib@1.3 pin missing: {directives:?}");
    // ...and nothing about packages outside the conflict.
    assert!(
        !directives.iter().any(|o| matches!(o,
            EncodeOrigin::DependsOn { package, .. }
                | EncodeOrigin::Conflict { package, .. }
                if package.as_str() == "zlib")),
        "zlib declares nothing conflicting: {directives:?}"
    );
}

#[test]
fn core_lines_point_at_the_generated_rules() {
    let repo = conflicted_repo();
    let c = Concretizer::new(&repo);
    let goal = Goal::single(parse_spec("app").unwrap());
    let ex = c.explain_goal(&goal).unwrap().expect("unsat");
    let text = c.program_text(&goal).unwrap();
    let lines: Vec<&str> = text.program.lines().collect();
    for e in &ex.entries {
        let Some(line) = e.line else { continue };
        let src = lines[line - 1];
        // A DependsOn entry's line must mention the declaring package.
        if let Some(EncodeOrigin::DependsOn { package, .. }) = &e.origin {
            assert!(
                src.contains(package.as_str()),
                "line {line} ({src:?}) does not mention {package}"
            );
        }
    }
    // At least one entry resolved to a concrete line.
    assert!(ex.entries.iter().any(|e| e.line.is_some()));
}

#[test]
fn goal_pinned_variant_conflict_names_the_conflicts_directive() {
    let tool = PackageBuilder::new("tool")
        .version("1.0")
        .variant_bool("cuda", false)
        .conflicts_when("+cuda", "")
        .build()
        .unwrap();
    let repo = Repository::from_packages([tool]).unwrap();
    repo.validate().unwrap();
    let c = Concretizer::new(&repo);

    // Default (~cuda) concretizes fine.
    assert!(explain(&c, "tool").is_none());

    // Pinning +cuda trips the conflicts directive.
    let ex = explain(&c, "tool+cuda").expect("unsat");
    let origins: Vec<&EncodeOrigin> =
        ex.entries.iter().filter_map(|e| e.origin.as_ref()).collect();
    assert!(
        origins.iter().any(|o| matches!(o,
            EncodeOrigin::Conflict { package, index: 0 }
                if package.as_str() == "tool")),
        "conflicts directive missing: {origins:?}"
    );
    assert!(
        origins.iter().any(|o| matches!(o,
            EncodeOrigin::GoalRoot { root } if root.as_str() == "tool")),
        "goal pin missing: {origins:?}"
    );
}

#[test]
fn forbidden_sole_provider_is_named() {
    let mpich = PackageBuilder::new("mpich")
        .version("3.4")
        .provides("mpi")
        .build()
        .unwrap();
    let app = PackageBuilder::new("app")
        .version("1.0")
        .depends_on("mpi")
        .build()
        .unwrap();
    let repo = Repository::from_packages([mpich, app]).unwrap();
    repo.validate().unwrap();
    let c = Concretizer::new(&repo);

    let mut goal = Goal::single(parse_spec("app").unwrap());
    goal.forbidden.push(Sym::intern("mpich"));
    let ex = c.explain_goal(&goal).unwrap().expect("unsat");
    let origins: Vec<&EncodeOrigin> =
        ex.entries.iter().filter_map(|e| e.origin.as_ref()).collect();
    assert!(
        origins.iter().any(|o| matches!(o,
            EncodeOrigin::Forbidden { package } if package.as_str() == "mpich")),
        "forbid exclusion missing: {origins:?}"
    );
}

#[test]
fn cancelled_explain_is_an_error_not_a_hang() {
    let repo = conflicted_repo();
    let cancel = CancelToken::new();
    cancel.cancel();
    let c = Concretizer::new(&repo).with_config(ConcretizerConfig {
        solver: spackle_asp::SolverConfig {
            cancel,
            ..Default::default()
        },
        ..Default::default()
    });
    match c.explain_goal(&Goal::single(parse_spec("app").unwrap())) {
        Err(CoreError::Cancelled { deadline: false }) => {}
        other => panic!("expected cancelled, got {other:?}"),
    }
}

#[test]
fn ledger_is_monotone_and_covers_the_program() {
    let repo = conflicted_repo();
    let c = Concretizer::new(&repo);
    let enc = c
        .program_text(&Goal::single(parse_spec("app").unwrap()))
        .unwrap();
    assert!(!enc.ledger.is_empty());
    assert_eq!(enc.ledger[0].0, 0, "ledger must start at offset 0");
    for w in enc.ledger.windows(2) {
        assert!(w[0].0 <= w[1].0, "ledger offsets must be ascending");
    }
    assert!(enc.ledger.last().unwrap().0 <= enc.program.len());
    // Every offset resolves to some origin.
    assert!(enc.origin_at(0).is_some());
    assert!(enc.origin_at(enc.program.len() - 1).is_some());
    // The tail of the program is the appended logic fragments.
    assert!(matches!(
        enc.origin_at(enc.program.len() - 1),
        Some(EncodeOrigin::Logic { .. })
    ));
}
