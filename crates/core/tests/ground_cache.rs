//! Ground-program memoization semantics: a cache hit must be exactly
//! that — same key, same prepared program, bit-identical solution — and
//! every input that can change the ground program must change the key.

use proptest::prelude::*;
use proptest::TestRng;
use spackle_buildcache::BuildCache;
use spackle_core::{Concretizer, ConcretizerConfig, Goal, GroundCache};
use spackle_repo::{PackageBuilder, Repository};
use spackle_spec::{parse_spec, Target};
use std::time::Duration;

fn tiny_repo() -> Repository {
    Repository::from_packages([
        PackageBuilder::new("zlib")
            .version("1.3")
            .version("1.2")
            .build()
            .unwrap(),
        PackageBuilder::new("app")
            .version("1.0")
            .depends_on("zlib")
            .build()
            .unwrap(),
    ])
    .unwrap()
}

#[test]
fn identical_resolve_hits_and_matches() {
    let repo = tiny_repo();
    let cache = GroundCache::shared();
    let conc = Concretizer::new(&repo).with_ground_cache(cache.clone());
    let goal = parse_spec("app").unwrap();

    let first = conc.concretize(&goal).unwrap();
    assert!(!first.stats.ground_cache_hit, "first solve must miss");
    assert_eq!(first.stats.ground_cache_misses, 1);
    assert_eq!(cache.len(), 1);

    let second = conc.concretize(&goal).unwrap();
    assert!(second.stats.ground_cache_hit, "re-solve must hit");
    assert_eq!(second.stats.ground_cache_hits, 1);
    assert_eq!(second.stats.ground_cache_misses, 1);

    // A hit skips encode + parse + ground + CNF translation entirely...
    assert_eq!(second.stats.encode_time, Duration::ZERO);
    assert_eq!(second.stats.parse_time, Duration::ZERO);
    assert_eq!(second.stats.solver.ground_time, Duration::ZERO);
    // ...and still returns the identical concretization.
    assert_eq!(first.spec().dag_hash(), second.spec().dag_hash());
    assert_eq!(first.reused, second.reused);
    assert_eq!(first.built, second.built);
    assert_eq!(first.stats.reusable_specs, second.stats.reusable_specs);
    assert_eq!(first.stats.program_bytes, second.stats.program_bytes);
}

#[test]
fn repository_change_misses_only_when_closure_segments_move() {
    let mut repo = tiny_repo();
    let cache = GroundCache::shared();
    let goal = parse_spec("app").unwrap();
    Concretizer::new(&repo)
        .with_ground_cache(cache.clone())
        .concretize(&goal)
        .unwrap();

    // Adding a package outside `app`'s closure leaves every segment the
    // key is composed from untouched: the warm entry keeps hitting.
    // (The pre-segment cache keyed on the repository revision and would
    // have missed here.)
    repo.add(PackageBuilder::new("bzip2").version("1.0").build().unwrap())
        .unwrap();
    let sol = Concretizer::new(&repo)
        .with_ground_cache(cache.clone())
        .concretize(&goal)
        .unwrap();
    assert!(sol.stats.ground_cache_hit, "unrelated addition must hit");
    assert_eq!(cache.hits(), 1);
    assert_eq!(cache.len(), 1);

    // Upserting a closure member moves its segment fingerprint, so the
    // composed key changes and the solve re-prepares.
    repo.upsert(
        PackageBuilder::new("zlib")
            .version("1.4")
            .version("1.3")
            .version("1.2")
            .build()
            .unwrap(),
    );
    let sol = Concretizer::new(&repo)
        .with_ground_cache(cache.clone())
        .concretize(&goal)
        .unwrap();
    assert!(!sol.stats.ground_cache_hit, "closure change must miss");
    assert_eq!(cache.misses(), 2);
    assert_eq!(cache.len(), 2);
}

#[test]
fn goal_change_misses() {
    let repo = tiny_repo();
    let cache = GroundCache::shared();
    let conc = Concretizer::new(&repo).with_ground_cache(cache.clone());
    conc.concretize(&parse_spec("app").unwrap()).unwrap();

    let sol = conc.concretize(&parse_spec("app@1.0").unwrap()).unwrap();
    assert!(!sol.stats.ground_cache_hit, "distinct goal must miss");

    let multi = conc
        .concretize_goal(&Goal {
            roots: vec![parse_spec("app").unwrap(), parse_spec("zlib").unwrap()],
            forbidden: Vec::new(),
        })
        .unwrap();
    assert!(!multi.stats.ground_cache_hit, "multi-root goal must miss");
    assert_eq!(cache.misses(), 3);
}

#[test]
fn config_change_misses() {
    let repo = tiny_repo();
    let cache = GroundCache::shared();
    let goal = parse_spec("app").unwrap();
    Concretizer::new(&repo)
        .with_config(ConcretizerConfig::splice_spack_disabled())
        .with_ground_cache(cache.clone())
        .concretize(&goal)
        .unwrap();

    let other_target = ConcretizerConfig {
        target: Target::new("icelake"),
        ..ConcretizerConfig::splice_spack_disabled()
    };
    let sol = Concretizer::new(&repo)
        .with_config(other_target)
        .with_ground_cache(cache.clone())
        .concretize(&goal)
        .unwrap();
    assert!(!sol.stats.ground_cache_hit, "target change must miss");

    let sol = Concretizer::new(&repo)
        .with_config(ConcretizerConfig::old_spack())
        .with_ground_cache(cache.clone())
        .concretize(&goal)
        .unwrap();
    assert!(!sol.stats.ground_cache_hit, "encoding change must miss");
    assert_eq!(cache.misses(), 3);
    assert_eq!(cache.hits(), 0);
}

#[test]
fn reusable_set_change_misses() {
    let repo = tiny_repo();
    let goal = parse_spec("app").unwrap();
    let base = Concretizer::new(&repo).concretize(&goal).unwrap();

    let mut bc = BuildCache::new();
    bc.add_spec(base.spec());

    let cache = GroundCache::shared();
    let first = Concretizer::new(&repo)
        .with_reusable(bc.clone())
        .with_ground_cache(cache.clone())
        .concretize(&goal)
        .unwrap();
    assert!(!first.stats.ground_cache_hit);

    // Same goal, same repo — but the buildcache gained an entry, so the
    // reuse facts (and therefore the ground program) can differ.
    let zlib = Concretizer::new(&repo)
        .concretize(&parse_spec("zlib@1.2").unwrap())
        .unwrap();
    bc.add_spec(zlib.spec());
    let second = Concretizer::new(&repo)
        .with_reusable(bc.clone())
        .with_ground_cache(cache.clone())
        .concretize(&goal)
        .unwrap();
    assert!(
        !second.stats.ground_cache_hit,
        "cache-content change must miss"
    );
    assert_eq!(cache.misses(), 2);
}

/// Random small repositories: a cached re-solve must reproduce the
/// uncached concretization exactly (DAG hashes, reuse/build decisions,
/// solver cost vector) — the determinism claim the fast path rests on.
fn check_cached_equals_uncached(seed: u64) {
    let mut rng = TestRng::seed_from_u64(seed);
    let nver = 1 + (rng.below(3) as usize);
    let mut zlib = PackageBuilder::new("zlib");
    for ver in ["1.1", "1.2", "1.3"].iter().take(nver) {
        zlib = zlib.version(ver);
    }
    let mut app = PackageBuilder::new("app").version("1.0").version("2.0");
    if rng.below(2) == 1 {
        app = app.depends_on("zlib");
    }
    let repo = Repository::from_packages([zlib.build().unwrap(), app.build().unwrap()]).unwrap();

    let goal_text = match rng.below(3) {
        0 => "app",
        1 => "app@1.0",
        _ => "app@2.0",
    };
    let goal = parse_spec(goal_text).unwrap();

    let mut bc = BuildCache::new();
    if rng.below(2) == 1 {
        let seeded = Concretizer::new(&repo)
            .concretize(&parse_spec(&format!("zlib@1.{}", 1 + rng.below(2))).unwrap());
        if let Ok(s) = seeded {
            bc.add_spec(s.spec());
        }
    }

    let uncached = Concretizer::new(&repo)
        .with_reusable(bc.clone())
        .concretize(&goal)
        .unwrap();

    let gc = GroundCache::shared();
    let conc = Concretizer::new(&repo)
        .with_reusable(bc.clone())
        .with_ground_cache(gc.clone());
    let miss = conc.concretize(&goal).unwrap();
    let hit = conc.concretize(&goal).unwrap();
    assert!(!miss.stats.ground_cache_hit && hit.stats.ground_cache_hit);

    for sol in [&miss, &hit] {
        assert_eq!(
            uncached.spec().dag_hash(),
            sol.spec().dag_hash(),
            "seed {seed}: dag hash diverged (goal {goal_text})"
        );
        assert_eq!(uncached.reused, sol.reused, "seed {seed}: reuse diverged");
        assert_eq!(uncached.built, sol.built, "seed {seed}: build diverged");
        assert_eq!(
            uncached.spliced.len(),
            sol.spliced.len(),
            "seed {seed}: splice diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn cached_resolve_is_identical_to_uncached(seed in 0u64..u64::MAX) {
        check_cached_equals_uncached(seed);
    }
}
