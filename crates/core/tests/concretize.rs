//! End-to-end concretizer tests: plain resolution, conditional
//! dependencies, virtuals, reuse, the old/new encoding equivalence
//! (RQ1), and automatic splice synthesis (RQ2).

use spackle_buildcache::BuildCache;
use spackle_core::{Concretizer, ConcretizerConfig, CoreError, Goal};
use spackle_repo::{PackageBuilder, Repository};
use spackle_spec::{parse_spec, Sym, Version};

fn v(s: &str) -> Version {
    Version::parse(s).unwrap()
}

/// zlib, bzip2, mpich/openmpi/mpiabi (mpi providers), hdf5, example
/// (the Fig 1 package), app (MPI consumer), and py-shroud (no MPI).
fn test_repo() -> Repository {
    let zlib = PackageBuilder::new("zlib")
        .version("1.3")
        .version("1.2.11")
        .variant_bool("optimize", true)
        .build()
        .unwrap();
    let bzip2 = PackageBuilder::new("bzip2")
        .version("1.0.8")
        .build()
        .unwrap();
    let mpich = PackageBuilder::new("mpich")
        .version("3.4.3")
        .version("3.1")
        .provides("mpi")
        .build()
        .unwrap();
    let openmpi = PackageBuilder::new("openmpi")
        .version("4.1.5")
        .provides("mpi")
        .build()
        .unwrap();
    let mpiabi = PackageBuilder::new("mpiabi")
        .version("1.0")
        .provides("mpi")
        .can_splice("mpich@3.4.3", "")
        .build()
        .unwrap();
    let hdf5 = PackageBuilder::new("hdf5")
        .version("1.14.5")
        .version("1.12.0")
        .variant_bool("mpi", true)
        .depends_on("zlib")
        .depends_on_when("mpi", "+mpi")
        .build()
        .unwrap();
    let example = PackageBuilder::new("example")
        .version("1.1.0")
        .version("1.0.0")
        .variant_bool("bzip", true)
        .depends_on_when("bzip2", "+bzip")
        .depends_on_when("zlib@1.2", "@1.0.0")
        .depends_on_when("zlib@1.3", "@1.1.0")
        .depends_on("mpi")
        .build()
        .unwrap();
    let app = PackageBuilder::new("app")
        .version("2.0")
        .depends_on("hdf5")
        .depends_on("mpi")
        .build()
        .unwrap();
    let pyshroud = PackageBuilder::new("py-shroud")
        .version("0.13.0")
        .depends_on("zlib")
        .build()
        .unwrap();
    let r = Repository::from_packages([
        zlib, bzip2, mpich, openmpi, mpiabi, hdf5, example, app, pyshroud,
    ])
    .unwrap();
    r.validate().unwrap();
    r
}

#[test]
fn concretize_simple_build() {
    let repo = test_repo();
    let c = Concretizer::new(&repo);
    let sol = c.concretize(&parse_spec("py-shroud").unwrap()).unwrap();
    let spec = sol.spec();
    assert_eq!(spec.root().name.as_str(), "py-shroud");
    assert_eq!(spec.root().version, v("0.13.0"));
    // zlib present at its newest version, default variant on.
    let z = spec.find(Sym::intern("zlib")).unwrap();
    assert_eq!(spec.node(z).version, v("1.3"));
    assert_eq!(sol.built.len(), 2);
    assert!(sol.reused.is_empty());
    assert!(sol.spliced.is_empty());
}

#[test]
fn conditional_deps_follow_version() {
    let repo = test_repo();
    let c = Concretizer::new(&repo);

    // example@1.1.0 (default/newest) depends on zlib@1.3.
    let sol = c.concretize(&parse_spec("example").unwrap()).unwrap();
    let spec = sol.spec();
    assert_eq!(spec.root().version, v("1.1.0"));
    let z = spec.find(Sym::intern("zlib")).unwrap();
    assert_eq!(spec.node(z).version, v("1.3"));
    // +bzip default pulls bzip2 in.
    assert!(spec.find(Sym::intern("bzip2")).is_some());

    // example@1.0.0 flips the zlib constraint to 1.2.x.
    let sol = c.concretize(&parse_spec("example@1.0.0").unwrap()).unwrap();
    let spec = sol.spec();
    assert_eq!(spec.root().version, v("1.0.0"));
    let z = spec.find(Sym::intern("zlib")).unwrap();
    assert_eq!(spec.node(z).version, v("1.2.11"));

    // ~bzip drops bzip2.
    let sol = c.concretize(&parse_spec("example~bzip").unwrap()).unwrap();
    assert!(sol.spec().find(Sym::intern("bzip2")).is_none());
}

#[test]
fn virtual_resolution_prefers_first_provider() {
    let repo = test_repo();
    let c = Concretizer::new(&repo);
    let sol = c.concretize(&parse_spec("app").unwrap()).unwrap();
    let spec = sol.spec();
    // mpich is declared before openmpi/mpiabi in the repository (BTree
    // order: mpiabi < mpich < openmpi; provider order is declaration
    // order per package, weight by provides index). The chosen provider
    // must provide mpi and be unique.
    let provs: Vec<&str> = ["mpich", "openmpi", "mpiabi"]
        .iter()
        .copied()
        .filter(|p| spec.find(Sym::intern(p)).is_some())
        .collect();
    assert_eq!(provs.len(), 1, "exactly one MPI implementation: {provs:?}");
    // hdf5's +mpi default means mpi is needed.
    assert!(spec.find(Sym::intern("hdf5")).is_some());
}

#[test]
fn goal_variant_and_version_constraints() {
    let repo = test_repo();
    let c = Concretizer::new(&repo);
    let sol = c
        .concretize(&parse_spec("hdf5@1.12.0 ~mpi ^zlib@1.2").unwrap())
        .unwrap();
    let spec = sol.spec();
    assert_eq!(spec.root().version, v("1.12.0"));
    let z = spec.find(Sym::intern("zlib")).unwrap();
    assert_eq!(spec.node(z).version, v("1.2.11"));
    // ~mpi: no MPI implementation in the DAG.
    assert!(spec.find(Sym::intern("mpich")).is_none());
    assert!(spec.find(Sym::intern("openmpi")).is_none());
}

#[test]
fn unsatisfiable_goal_reports_unsat() {
    let repo = test_repo();
    let c = Concretizer::new(&repo);
    let err = c.concretize(&parse_spec("zlib@9.9").unwrap()).unwrap_err();
    assert!(matches!(err, CoreError::Unsatisfiable), "{err}");
}

#[test]
fn unknown_package_is_bad_goal() {
    let repo = test_repo();
    let c = Concretizer::new(&repo);
    let err = c.concretize(&parse_spec("ghost").unwrap()).unwrap_err();
    assert!(matches!(err, CoreError::BadGoal(_)));
}

/// Build a cache from a fresh concretization of `spec_str`.
fn cache_of(repo: &Repository, spec_str: &str) -> BuildCache {
    let c = Concretizer::new(repo);
    let sol = c.concretize(&parse_spec(spec_str).unwrap()).unwrap();
    let mut cache = BuildCache::new();
    cache.add_spec(sol.spec());
    cache
}

#[test]
fn full_reuse_zero_builds() {
    let repo = test_repo();
    let cache = cache_of(&repo, "py-shroud");
    let c = Concretizer::new(&repo).with_reusable(cache.clone());
    let sol = c.concretize(&parse_spec("py-shroud").unwrap()).unwrap();
    assert_eq!(sol.built.len(), 0, "built: {:?}", sol.built);
    assert_eq!(sol.reused.len(), 2);
    // The reused spec is hash-identical to the cached one.
    assert!(cache.get(sol.spec().dag_hash()).is_some());
}

#[test]
fn partial_reuse_of_shared_deps() {
    let repo = test_repo();
    let cache = cache_of(&repo, "py-shroud"); // contains zlib@1.3
    let c = Concretizer::new(&repo).with_reusable(cache.clone());
    let sol = c.concretize(&parse_spec("hdf5~mpi").unwrap()).unwrap();
    // zlib reused from cache; hdf5 built.
    assert!(sol.reused.iter().any(|s| s.as_str() == "zlib"));
    assert!(sol.built.iter().any(|s| s.as_str() == "hdf5"));
}

#[test]
fn rq1_old_and_new_encodings_agree_without_splicing() {
    let repo = test_repo();
    let cache = cache_of(&repo, "example");
    for goal in ["example", "example@1.0.0", "hdf5~mpi", "py-shroud", "app"] {
        let old = Concretizer::new(&repo)
            .with_config(ConcretizerConfig::old_spack())
            .with_reusable(cache.clone())
            .concretize(&parse_spec(goal).unwrap())
            .unwrap();
        let new = Concretizer::new(&repo)
            .with_config(ConcretizerConfig::splice_spack_disabled())
            .with_reusable(cache.clone())
            .concretize(&parse_spec(goal).unwrap())
            .unwrap();
        assert_eq!(
            old.spec().dag_hash(),
            new.spec().dag_hash(),
            "encodings disagree on {goal}: old={} new={}",
            old.spec(),
            new.spec()
        );
        assert_eq!(old.built.len(), new.built.len(), "build counts for {goal}");
        assert!(new.spliced.is_empty());
    }
}

#[test]
fn rq2_splice_synthesized_when_needed() {
    let repo = test_repo();
    // The buildcache holds app ^hdf5 ^mpich (the reference MPI).
    let cache = cache_of(&repo, "app ^mpich");

    // Old spack, asked for app with mpiabi: must rebuild the MPI
    // dependents (app, hdf5) because mpich binaries can't be mixed out.
    let old = Concretizer::new(&repo)
        .with_config(ConcretizerConfig::old_spack())
        .with_reusable(cache.clone())
        .concretize(&parse_spec("app ^mpiabi").unwrap())
        .unwrap();
    assert!(
        old.built.iter().any(|s| s.as_str() == "app"),
        "old spack must rebuild app: built={:?}",
        old.built
    );
    assert!(old.spliced.is_empty());

    // Splice spack: reuses the cached app and splices mpiabi in for
    // mpich. Only mpiabi itself may need building.
    let new = Concretizer::new(&repo)
        .with_config(ConcretizerConfig::splice_spack())
        .with_reusable(cache.clone())
        .concretize(&parse_spec("app ^mpiabi").unwrap())
        .unwrap();
    assert!(
        !new.spliced.is_empty(),
        "splice spack must produce a spliced solution"
    );
    assert!(
        new.built.len() < old.built.len(),
        "splicing must save rebuilds: old={:?} new={:?}",
        old.built,
        new.built
    );
    let spec = new.specs[0].clone();
    assert!(spec.find(Sym::intern("mpiabi")).is_some());
    assert!(spec.find(Sym::intern("mpich")).is_none());
    // Build provenance: the spliced parents carry build specs.
    assert!(
        spec.nodes().iter().any(|n| n.is_spliced()),
        "spliced solution must record provenance"
    );
}

#[test]
fn splicing_disabled_behaves_like_old_spack() {
    let repo = test_repo();
    let cache = cache_of(&repo, "app ^mpich");
    let disabled = Concretizer::new(&repo)
        .with_config(ConcretizerConfig::splice_spack_disabled())
        .with_reusable(cache.clone())
        .concretize(&parse_spec("app ^mpiabi").unwrap())
        .unwrap();
    assert!(disabled.spliced.is_empty());
    assert!(disabled.built.iter().any(|s| s.as_str() == "app"));
}

#[test]
fn forbidden_package_forces_alternative() {
    let repo = test_repo();
    let cache = cache_of(&repo, "app ^mpich");
    let mut goal = Goal::single(parse_spec("app").unwrap());
    goal.forbidden.push(Sym::intern("mpich"));
    let sol = Concretizer::new(&repo)
        .with_config(ConcretizerConfig::splice_spack())
        .with_reusable(cache.clone())
        .concretize_goal(&goal)
        .unwrap();
    let spec = &sol.specs[0];
    assert!(spec.find(Sym::intern("mpich")).is_none());
    // Some other MPI provider took its place.
    assert!(
        spec.find(Sym::intern("mpiabi")).is_some()
            || spec.find(Sym::intern("openmpi")).is_some()
    );
}

#[test]
fn joint_concretization_shares_nodes() {
    let repo = test_repo();
    let goal = Goal {
        roots: vec![
            parse_spec("py-shroud").unwrap(),
            parse_spec("hdf5~mpi").unwrap(),
        ],
        forbidden: vec![],
    };
    let sol = Concretizer::new(&repo).concretize_goal(&goal).unwrap();
    assert_eq!(sol.specs.len(), 2);
    // Shared zlib is the same configuration in both DAGs.
    let z1 = sol.specs[0].find(Sym::intern("zlib")).unwrap();
    let z2 = sol.specs[1].find(Sym::intern("zlib")).unwrap();
    assert_eq!(
        sol.specs[0].node(z1).hash,
        sol.specs[1].node(z2).hash
    );
}

#[test]
fn non_mpi_package_unaffected_by_splice_config() {
    let repo = test_repo();
    let cache = cache_of(&repo, "py-shroud");
    let with_splice = Concretizer::new(&repo)
        .with_config(ConcretizerConfig::splice_spack())
        .with_reusable(cache.clone())
        .concretize(&parse_spec("py-shroud").unwrap())
        .unwrap();
    assert!(with_splice.spliced.is_empty());
    assert_eq!(with_splice.built.len(), 0);
}

#[test]
fn stats_populated() {
    let repo = test_repo();
    let c = Concretizer::new(&repo);
    let sol = c.concretize(&parse_spec("app").unwrap()).unwrap();
    assert!(sol.stats.program_bytes > 0);
    assert!(sol.stats.solver.ground_rules > 0);
    assert!(sol.stats.total_time.as_nanos() > 0);
}
