//! Random package repositories and abstract specs for differential
//! testing of the concretizer.
//!
//! Repositories are acyclic by construction (package `i` only depends
//! on packages with larger indices), always validate, and exercise the
//! directive surface: version preferences, boolean variants,
//! conditional dependencies, virtual providers, conflicts, and
//! `can_splice` declarations. The goal spec always names the root
//! package so every generated case is a well-formed request (it may
//! still be unsatisfiable, which is a legitimate outcome to test).

use proptest::TestRng;
use spackle_repo::{PackageBuilder, Repository};
use spackle_spec::{parse_spec, AbstractSpec};

const NAMES: [&str; 5] = ["appa", "libb", "libc", "libd", "libe"];
const VERSIONS: [&str; 5] = ["1.0", "1.1", "2.0", "2.1.3", "3.0"];
const VIRTUAL: &str = "vio";

fn chance(rng: &mut TestRng, percent: u64) -> bool {
    rng.below(100) < percent
}

/// Generate a random valid repository plus a root spec naming its first
/// package, optionally constrained by version and variant.
pub fn random_repo_and_spec(rng: &mut TestRng) -> (Repository, AbstractSpec) {
    let npkg = 2 + rng.below(4) as usize; // 2..=5
    let mut decl_versions: Vec<Vec<&str>> = Vec::new();
    let mut has_debug: Vec<bool> = Vec::new();
    let mut repo = Repository::new();

    // One designated virtual provider pair, sometimes.
    let with_virtual = npkg >= 3 && chance(rng, 35);
    let provider_a = npkg - 1;
    let provider_b = npkg - 2;

    for i in 0..npkg {
        let mut b = PackageBuilder::new(NAMES[i]);

        // 1–3 distinct declared versions.
        let nvers = 1 + rng.below(3) as usize;
        let start = rng.below((VERSIONS.len() - nvers + 1) as u64) as usize;
        let vers: Vec<&str> = VERSIONS[start..start + nvers].to_vec();
        for v in &vers {
            b = b.version(v);
        }

        let debug = chance(rng, 40);
        if debug {
            b = b.variant_bool("debug", chance(rng, 50));
        }

        // Dependencies only on higher-index packages (acyclic).
        for (j, &dep) in NAMES.iter().enumerate().take(npkg).skip(i + 1) {
            if with_virtual && (j == provider_a || j == provider_b) {
                continue; // providers are reached through the virtual
            }
            if chance(rng, 45) {
                match rng.below(4) {
                    0 => {
                        // Version-constrained on a prefix of a declared
                        // version of the dependency (filled in below once
                        // we know them — use the global pool instead).
                        let v = VERSIONS[rng.below(VERSIONS.len() as u64) as usize];
                        let major = v.split('.').next().unwrap();
                        b = b.depends_on(&format!("{dep}@{major}"));
                    }
                    1 if !vers.is_empty() => {
                        // Conditional on our own newest version.
                        b = b.depends_on_when(dep, &format!("@{}", vers[vers.len() - 1]));
                    }
                    2 if debug => {
                        b = b.depends_on_when(dep, "+debug");
                    }
                    _ => {
                        b = b.depends_on(dep);
                    }
                }
            }
        }

        if with_virtual && i < provider_b && chance(rng, 50) {
            b = b.depends_on(VIRTUAL);
        }
        if with_virtual && (i == provider_a || i == provider_b) {
            b = b.provides(VIRTUAL);
        }

        // Occasional conflict pinned to a concrete declared version, so
        // unsatisfiable cases arise but do not dominate.
        if chance(rng, 15) && i > 0 {
            let target = NAMES[rng.below(i as u64) as usize];
            let v = vers[rng.below(vers.len() as u64) as usize];
            b = b.conflicts_when(&format!("^{target}"), &format!("@{v}"));
        }

        // Occasional splice declaration against another package.
        if chance(rng, 25) && i + 1 < npkg {
            let target = NAMES[i + 1 + rng.below((npkg - i - 1) as u64) as usize];
            b = b.can_splice(target, "");
        }

        let pkg = b.build().expect("generated package must be valid");
        decl_versions.push(vers);
        has_debug.push(debug);
        repo.add(pkg).expect("no duplicate names by construction");
    }
    repo.validate().expect("generated repository must validate");

    // Root request: the index-0 package with random constraints.
    let mut text = NAMES[0].to_string();
    if chance(rng, 50) {
        let v = decl_versions[0][rng.below(decl_versions[0].len() as u64) as usize];
        if chance(rng, 50) {
            let major = v.split('.').next().unwrap();
            text.push_str(&format!("@{major}"));
        } else {
            text.push_str(&format!("@{v}"));
        }
    }
    if has_debug[0] && chance(rng, 50) {
        text.push_str(if chance(rng, 50) { "+debug" } else { "~debug" });
    }
    let spec = parse_spec(&text).expect("generated spec text must parse");
    (repo, spec)
}
