//! Random logic-program generation for differential testing.
//!
//! Programs are built directly as ASTs (not text) so generation can
//! never fail to parse, and are kept small enough for the brute-force
//! reference solver: a handful of propositional atoms plus one optional
//! relational "flavor" that exercises grounder joins, comparisons,
//! conditional choice elements, and variable minimize tuples.
//!
//! Generated programs stay inside the engine's documented fragment:
//! choice-element conditions only mention certain (fact-derived) atoms,
//! `#minimize` weights are non-negative, and every rule is safe.

use proptest::TestRng;
use spackle_asp::program::{BodyElem, ChoiceElem, CmpOp, Head, MinimizeElem, Rule};
use spackle_asp::{Atom, Program, Term};

fn chance(rng: &mut TestRng, percent: u64) -> bool {
    rng.below(100) < percent
}

fn pick_atom(rng: &mut TestRng, props: &[Atom]) -> Atom {
    props[rng.below(props.len() as u64) as usize].clone()
}

/// Generate a random program. Deterministic in `rng`'s state; every
/// draw of the same seed yields the same program.
pub fn random_program(rng: &mut TestRng) -> Program {
    let mut prog = Program::new();

    // Propositional pool p0..p{k-1}.
    let nprops = 2 + rng.below(4) as usize; // 2..=5
    let props: Vec<Atom> = (0..nprops)
        .map(|i| Atom::new(&format!("p{i}"), Vec::new()))
        .collect();

    for a in &props {
        if chance(rng, 15) {
            prog.fact(a.clone());
        }
    }

    // Normal rules with positive and negated propositional bodies.
    for _ in 0..rng.below(6) {
        let head = pick_atom(rng, &props);
        let mut body = Vec::new();
        for _ in 0..rng.below(3) {
            body.push(BodyElem::Pos(pick_atom(rng, &props)));
        }
        for _ in 0..rng.below(3) {
            body.push(BodyElem::Neg(pick_atom(rng, &props)));
        }
        prog.rule(Rule {
            head: Head::Atom(head),
            body,
        });
    }

    // Unconditional choice rules, possibly bounded, possibly guarded.
    for _ in 0..rng.below(3) {
        let nelem = 1 + rng.below(3);
        let elements: Vec<ChoiceElem> = (0..nelem)
            .map(|_| ChoiceElem {
                atom: pick_atom(rng, &props),
                condition: Vec::new(),
            })
            .collect();
        let lower = chance(rng, 50).then(|| rng.below(nelem + 2) as u32);
        let upper = chance(rng, 50).then(|| rng.below(nelem + 1) as u32);
        let mut body = Vec::new();
        if chance(rng, 30) {
            body.push(BodyElem::Pos(pick_atom(rng, &props)));
        }
        if chance(rng, 30) {
            body.push(BodyElem::Neg(pick_atom(rng, &props)));
        }
        prog.rule(Rule {
            head: Head::Choice {
                lower,
                upper,
                elements,
            },
            body,
        });
    }

    // Integrity constraints.
    for _ in 0..rng.below(3) {
        let mut body = vec![BodyElem::Pos(pick_atom(rng, &props))];
        if chance(rng, 50) {
            body.push(BodyElem::Neg(pick_atom(rng, &props)));
        }
        prog.constraint(body);
    }

    // One relational flavor (or none), linking back into the pool.
    let link = pick_atom(rng, &props);
    match rng.below(3) {
        1 => even_loop_flavor(rng, &mut prog, link),
        2 => selection_flavor(rng, &mut prog),
        _ => {}
    }

    // Propositional minimize statements across 1–2 priorities.
    for _ in 0..rng.below(3) {
        let a = pick_atom(rng, &props);
        let cond = if chance(rng, 25) {
            BodyElem::Neg(a)
        } else {
            BodyElem::Pos(a)
        };
        // Composite weights (0, 2, 3, 4, 6, 9, ...) give the optimizer's
        // weighted cardinality counters shared factors to normalize.
        let weight = rng.below(4) as i64 * (1 + rng.below(3) as i64);
        prog.minimize.push(MinimizeElem {
            weight: Term::Int(weight),
            priority: Term::Int(1 + rng.below(2) as i64),
            terms: vec![Term::sym(&format!("t{}", rng.below(3)))],
            condition: vec![cond],
        });
    }

    prog
}

fn d(x: i64) -> Atom {
    Atom::new("d", vec![Term::Int(x)])
}

fn unary(pred: &str, t: Term) -> Atom {
    Atom::new(pred, vec![t])
}

/// `q(X) :- d(X), not r(X).  r(X) :- d(X), not q(X).` over a small
/// domain — one even negation loop (two stable branches) per element.
fn even_loop_flavor(rng: &mut TestRng, prog: &mut Program, link: Atom) {
    let m = 1 + rng.below(3) as i64; // 1..=3
    for i in 0..m {
        prog.fact(d(i));
    }
    let x = || Term::var("X");
    for (a, b) in [("q", "r"), ("r", "q")] {
        prog.rule(Rule {
            head: Head::Atom(unary(a, x())),
            body: vec![
                BodyElem::Pos(unary("d", x())),
                BodyElem::Neg(unary(b, x())),
            ],
        });
    }
    if chance(rng, 50) {
        // Tie the relational world to the propositional pool.
        prog.rule(Rule {
            head: Head::Atom(link),
            body: vec![BodyElem::Pos(unary("q", Term::Int(0)))],
        });
    }
    if chance(rng, 50) {
        prog.minimize.push(MinimizeElem {
            weight: Term::Int(1 + rng.below(3) as i64),
            priority: Term::Int(1),
            terms: vec![x()],
            condition: vec![BodyElem::Pos(unary("q", x()))],
        });
    }
}

/// A bounded conditional choice over a domain — the shape of the
/// concretizer's version/variant selection — with a variable-weight
/// minimize and an occasional comparison constraint.
fn selection_flavor(rng: &mut TestRng, prog: &mut Program) {
    let m = 2 + rng.below(2) as i64; // 2..=3
    for i in 0..m {
        prog.fact(unary("cand", Term::Int(i)));
    }
    let x = || Term::var("X");
    let lower = rng.below(2) as u32;
    prog.rule(Rule {
        head: Head::Choice {
            lower: Some(lower),
            upper: Some(lower.max(1)),
            elements: vec![ChoiceElem {
                atom: unary("sel", x()),
                condition: vec![BodyElem::Pos(unary("cand", x()))],
            }],
        },
        body: Vec::new(),
    });
    if chance(rng, 50) {
        // Forbid the largest candidate.
        prog.constraint(vec![
            BodyElem::Pos(unary("sel", x())),
            BodyElem::Cmp(x(), CmpOp::Ge, Term::Int(m - 1)),
        ]);
    }
    // Prefer small indices: weight is the (variable) index itself.
    prog.minimize.push(MinimizeElem {
        weight: x(),
        priority: Term::Int(1 + rng.below(2) as i64),
        terms: vec![x()],
        condition: vec![BodyElem::Pos(unary("sel", x()))],
    });
}
