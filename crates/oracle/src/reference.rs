//! The brute-force reference solver.
//!
//! Enumerates *all* stable models of a small ground program by checking
//! every subset of the non-certain possible atoms against the
//! Gelfond–Lifschitz definition directly, and computes exact
//! lexicographic `#minimize` optima by evaluating the objective on every
//! stable model. Exponential on purpose: the point is an implementation
//! so simple it is obviously correct, to differential-test the
//! production grounder/CDCL/stability/optimization pipeline against.
//!
//! Semantics implemented (matching the production engine's fragment):
//!
//! * a candidate is stable iff it equals the least model of its reduct,
//!   where the reduct keeps a rule iff none of its negated atoms are in
//!   the candidate, and a kept choice instance justifies exactly those
//!   of its elements the candidate chose;
//! * choice cardinality bounds act as constraints, enforced only when
//!   the instance's body holds in the candidate;
//! * `#minimize` uses Clingo set-of-tuples semantics: each distinct
//!   `(priority, weight, tuple)` contributes its weight once if any of
//!   its conditions holds; levels are ordered by descending priority.

use rustc_hash::FxHashSet;
use spackle_asp::ground::GroundProgram;
use spackle_asp::term::AtomId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Default cap on free (non-certain) atoms; 2^16 candidates.
pub const DEFAULT_MAX_FREE_ATOMS: usize = 16;

/// Why the oracle refused to enumerate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The program's free-atom universe exceeds the exhaustive-search cap.
    TooLarge {
        /// Free (non-certain possible) atoms in the program.
        free: usize,
        /// The configured cap.
        max: usize,
    },
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::TooLarge { free, max } => {
                write!(f, "{free} free atoms exceed the oracle cap of {max}")
            }
        }
    }
}

impl std::error::Error for OracleError {}

/// All stable models of a ground program, with their objective values.
#[derive(Debug, Clone)]
pub struct OracleSolution {
    /// Every stable model as a sorted atom-id list, in canonical
    /// (lexicographic) order.
    pub models: Vec<Vec<AtomId>>,
    /// Cost vector per model (aligned with `models`), highest priority
    /// first; empty when the program has no `#minimize` statements.
    pub costs: Vec<Vec<(i64, i64)>>,
}

impl OracleSolution {
    /// The lexicographically least cost vector, if any model exists.
    pub fn best_cost(&self) -> Option<&[(i64, i64)]> {
        self.costs.iter().map(Vec::as_slice).min()
    }

    /// Indices of all models achieving the optimum.
    pub fn optimal_models(&self) -> Vec<usize> {
        match self.best_cost() {
            None => Vec::new(),
            Some(best) => {
                let best = best.to_vec();
                self.costs
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.as_slice() == best)
                    .map(|(i, _)| i)
                    .collect()
            }
        }
    }
}

fn holds(cand: &FxHashSet<AtomId>, pos: &[AtomId], neg: &[AtomId]) -> bool {
    pos.iter().all(|a| cand.contains(a)) && !neg.iter().any(|a| cand.contains(a))
}

/// Is `cand` a stable model of `gp`? Checked straight from the
/// definition: constraints and choice bounds as classical conditions,
/// then `cand == least_model(reduct(gp, cand))`. (Classical rule
/// satisfaction is implied by reduct-least-model equality: a kept rule
/// whose positive body is in the least model derives its head into it.)
pub fn is_stable(gp: &GroundProgram, cand: &FxHashSet<AtomId>) -> bool {
    for c in &gp.constraints {
        if holds(cand, &c.pos, &c.neg) {
            return false;
        }
    }
    for c in &gp.choices {
        if holds(cand, &c.pos, &c.neg) {
            let chosen = c.elements.iter().filter(|e| cand.contains(e)).count() as u32;
            if c.lower.is_some_and(|l| chosen < l) || c.upper.is_some_and(|u| chosen > u) {
                return false;
            }
        }
    }
    let mut least: FxHashSet<AtomId> = FxHashSet::default();
    loop {
        let mut changed = false;
        for r in &gp.rules {
            if !r.neg.iter().any(|a| cand.contains(a))
                && r.pos.iter().all(|a| least.contains(a))
                && least.insert(r.head)
            {
                changed = true;
            }
        }
        for c in &gp.choices {
            if !c.neg.iter().any(|a| cand.contains(a))
                && c.pos.iter().all(|a| least.contains(a))
            {
                for &e in c.elements.iter() {
                    if cand.contains(&e) && least.insert(e) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    least == *cand
}

/// The objective value of `cand`, highest priority first, one entry per
/// priority occurring in the ground program (even at cost zero, to match
/// the production solver's reported vector shape).
pub fn cost_of(gp: &GroundProgram, cand: &FxHashSet<AtomId>) -> Vec<(i64, i64)> {
    let mut levels: BTreeMap<i64, i64> = BTreeMap::new();
    let mut charged: BTreeSet<(i64, i64, Vec<u32>)> = BTreeSet::new();
    for m in &gp.minimize {
        levels.entry(m.priority).or_insert(0);
        let key = (m.priority, m.weight, m.tuple.iter().map(|t| t.0).collect());
        if holds(cand, &m.pos, &m.neg) && charged.insert(key) {
            *levels.entry(m.priority).or_insert(0) += m.weight;
        }
    }
    levels.into_iter().rev().collect()
}

/// Enumerate every stable model by exhaustive subset search over the
/// free (possible but not certain) atoms. Certain atoms — negation-free
/// consequences of facts — belong to every stable model and are fixed
/// true, which prunes the search space soundly.
pub fn stable_models(
    gp: &GroundProgram,
    max_free: usize,
) -> Result<Vec<Vec<AtomId>>, OracleError> {
    let mut free: Vec<AtomId> = gp
        .possible
        .iter()
        .copied()
        .filter(|a| !gp.certain.contains(a))
        .collect();
    free.sort_unstable();
    if free.len() > max_free {
        return Err(OracleError::TooLarge {
            free: free.len(),
            max: max_free,
        });
    }
    let mut out: Vec<Vec<AtomId>> = Vec::new();
    for mask in 0u64..(1u64 << free.len()) {
        let mut cand: FxHashSet<AtomId> = gp.certain.iter().copied().collect();
        for (i, &a) in free.iter().enumerate() {
            if (mask >> i) & 1 == 1 {
                cand.insert(a);
            }
        }
        if is_stable(gp, &cand) {
            let mut v: Vec<AtomId> = cand.into_iter().collect();
            v.sort_unstable();
            out.push(v);
        }
    }
    out.sort();
    Ok(out)
}

/// Enumerate all stable models and evaluate the objective on each.
pub fn solve(gp: &GroundProgram, max_free: usize) -> Result<OracleSolution, OracleError> {
    let models = stable_models(gp, max_free)?;
    let costs = models
        .iter()
        .map(|m| {
            let set: FxHashSet<AtomId> = m.iter().copied().collect();
            cost_of(gp, &set)
        })
        .collect();
    Ok(OracleSolution { models, costs })
}

/// Render a model (a sorted atom-id list) as sorted atom text, the
/// canonical cross-solver comparison form.
pub fn render(gp: &GroundProgram, model: &[AtomId]) -> Vec<String> {
    let mut v: Vec<String> = model.iter().map(|&a| gp.store.format_atom(a)).collect();
    v.sort();
    v
}
