#![warn(missing_docs)]

//! # spackle-oracle
//!
//! The verification layer for Spackle's hand-rolled ASP engine and
//! concretizer — a certifying-solver harness in the tradition of the
//! checked pipelines around Clingo (paper §3.3, §5.1). Nothing here is
//! on any production path; the crate exists to catch the production
//! stack being subtly wrong.
//!
//! Three pieces:
//!
//! 1. [`reference`] — a brute-force stable-model enumerator working
//!    straight from the Gelfond–Lifschitz definition, with exact
//!    lexicographic `#minimize` optima. Exponential, deliberately
//!    simple, used as ground truth for small programs.
//! 2. [`genprog`] / [`genrepo`] — deterministic random generators for
//!    logic programs, package repositories, and abstract specs, driven
//!    by a seeded [`proptest::TestRng`].
//! 3. [`diff`] — differential checks tying them together: production
//!    solver vs oracle on stable-model sets and optima, plus
//!    concretizer-level cross-configuration and certificate checks.
//!    The `fuzz-solve` binary (`cargo run -p spackle-oracle --bin
//!    fuzz-solve`) runs these open-endedly with seed-corpus replay;
//!    the property tests in `tests/` run a bounded number per build.
//!
//! The model *certificate checker* itself lives in
//! [`spackle_asp::certify`] so the concretizer can assert certificates
//! in debug builds without depending on this crate.

pub mod diff;
pub mod genprog;
pub mod genrepo;
pub mod reference;

pub use diff::{check_program_case, check_program_case_with, check_repo_case, CaseStats};
pub use reference::{OracleError, OracleSolution};
