//! Long-running differential fuzzer for the ASP engine and concretizer.
//!
//! ```text
//! cargo run --release -p spackle-oracle --bin fuzz-solve -- [OPTIONS]
//!
//!   --cases N        random cases per kind to run (default 200)
//!   --seed S         base seed (default: from system entropy)
//!   --max-seconds T  stop after T seconds (default: unlimited)
//!   --corpus PATH    seed corpus file (default: crates/oracle/corpus/seeds.txt)
//!   --no-replay      skip corpus replay
//!   --replay-only    only replay the corpus, no random exploration
//! ```
//!
//! The corpus file holds one case per line, `program:SEED` or
//! `repo:SEED` (bare numbers replay as both kinds); `#` starts a
//! comment. Every corpus seed is replayed before random exploration so
//! past failures act as regressions. New failures are appended to
//! `<corpus>.failures` in replayable form and reported at exit with a
//! nonzero status.

use spackle_oracle::diff;
use std::io::Write;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Program,
    Repo,
}

impl Kind {
    fn run(self, seed: u64) -> Result<diff::CaseStats, String> {
        match self {
            Kind::Program => diff::check_program_case(seed),
            Kind::Repo => diff::check_repo_case(seed),
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Kind::Program => "program",
            Kind::Repo => "repo",
        }
    }
}

struct Options {
    cases: u64,
    seed: u64,
    max_seconds: u64,
    corpus: String,
    replay: bool,
    explore: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        cases: 200,
        seed: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed),
        max_seconds: 0,
        corpus: "crates/oracle/corpus/seeds.txt".to_string(),
        replay: true,
        explore: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next_u64 = |name: &str| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a numeric argument");
                    std::process::exit(2);
                })
        };
        match a.as_str() {
            "--cases" => opts.cases = next_u64("--cases"),
            "--seed" => opts.seed = next_u64("--seed"),
            "--max-seconds" => opts.max_seconds = next_u64("--max-seconds"),
            "--corpus" => {
                opts.corpus = args.next().unwrap_or_else(|| {
                    eprintln!("--corpus needs a path argument");
                    std::process::exit(2);
                })
            }
            "--no-replay" => opts.replay = false,
            "--replay-only" => opts.explore = false,
            "--help" | "-h" => {
                eprintln!("see module docs: cargo doc -p spackle-oracle");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn corpus_cases(path: &str) -> Vec<(Kind, u64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(s) = line.strip_prefix("program:") {
            if let Ok(seed) = s.trim().parse() {
                out.push((Kind::Program, seed));
            }
        } else if let Some(s) = line.strip_prefix("repo:") {
            if let Ok(seed) = s.trim().parse() {
                out.push((Kind::Repo, seed));
            }
        } else if let Ok(seed) = line.parse() {
            out.push((Kind::Program, seed));
            out.push((Kind::Repo, seed));
        }
    }
    out
}

fn main() {
    let opts = parse_args();
    let started = Instant::now();
    let deadline = (opts.max_seconds > 0).then(|| Duration::from_secs(opts.max_seconds));
    let mut failures: Vec<(Kind, u64)> = Vec::new();
    let mut ran: u64 = 0;
    let mut skipped: u64 = 0;

    let mut run_case = |kind: Kind, seed: u64, failures: &mut Vec<(Kind, u64)>| {
        ran += 1;
        match kind.run(seed) {
            Ok(stats) => {
                if stats.skipped {
                    skipped += 1;
                }
            }
            Err(msg) => {
                eprintln!("FAIL {}:{seed}\n{msg}\n", kind.tag());
                failures.push((kind, seed));
            }
        }
    };

    if opts.replay {
        let corpus = corpus_cases(&opts.corpus);
        println!("replaying {} corpus cases from {}", corpus.len(), opts.corpus);
        for (kind, seed) in corpus {
            run_case(kind, seed, &mut failures);
        }
    }

    if opts.explore {
        println!(
            "exploring {} random cases per kind from base seed {}",
            opts.cases, opts.seed
        );
        'outer: for i in 0..opts.cases {
            for kind in [Kind::Program, Kind::Repo] {
                if deadline.is_some_and(|d| started.elapsed() > d) {
                    println!("time cap reached after {i} iterations");
                    break 'outer;
                }
                run_case(kind, opts.seed.wrapping_add(i), &mut failures);
            }
        }
    }

    println!(
        "ran {ran} cases ({skipped} skipped as too large) in {:.1}s: {} failures",
        started.elapsed().as_secs_f64(),
        failures.len()
    );

    if !failures.is_empty() {
        let path = format!("{}.failures", opts.corpus);
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            for (kind, seed) in &failures {
                let _ = writeln!(f, "{}:{seed}", kind.tag());
            }
            println!("failing seeds appended to {path}");
        }
        std::process::exit(1);
    }
}
