//! The differential harness: one function per case kind, shared by the
//! `cargo test` property suites and the `fuzz-solve` binary.
//!
//! A *program case* generates a random logic program, runs the
//! production solver (enumeration and optimization) and the brute-force
//! oracle on the same grounding, and requires:
//!
//! * identical stable-model sets (compared as rendered atom text);
//! * identical lexicographic `#minimize` optima;
//! * every production model to pass the independent certificate checker.
//!
//! A *repo case* generates a random repository and goal spec, and
//! cross-checks the concretizer: the exact solver input (via
//! [`Concretizer::program_text`]) is re-solved and certificate-checked,
//! the old-Spack and splice-Spack configurations must agree on
//! satisfiability and (with no buildcaches in play) on the chosen
//! versions, and returned specs must satisfy DAG-hash invariants.

use crate::genprog::random_program;
use crate::genrepo::random_repo_and_spec;
use crate::reference;
use proptest::TestRng;
use rustc_hash::FxHashSet;
use spackle_asp::certify;
use spackle_asp::ground::ground;
use spackle_asp::term::AtomId;
use spackle_asp::{parse_program, AspError, SolveOutcome, Solver, SolverConfig};
use spackle_core::{Concretizer, ConcretizerConfig, CoreError, Goal};

/// Cap on free atoms for program-case oracle enumeration.
pub const PROGRAM_CASE_MAX_FREE: usize = 14;
/// Cap on full model-set comparison; beyond it only containment and the
/// optimum are checked (keeps worst-case powerset programs fast).
const MAX_ENUMERATED: usize = 48;

/// What a differential case did — useful for fuzz-loop telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseStats {
    /// Stable models the oracle found (program cases).
    pub models: usize,
    /// The case was skipped (too large for the oracle / resource limit).
    pub skipped: bool,
}

/// Run one program differential case with the default solver
/// configuration. `Err` carries a human-readable mismatch description
/// including enough detail to reproduce.
pub fn check_program_case(seed: u64) -> Result<CaseStats, String> {
    check_program_case_with(seed, &SolverConfig::default())
}

/// Run one program differential case under an explicit
/// [`SolverConfig`] — the entry point for the solver-config
/// differential matrix, which replays the same cases under every
/// engine-technique toggle combination.
pub fn check_program_case_with(seed: u64, config: &SolverConfig) -> Result<CaseStats, String> {
    let mut rng = TestRng::seed_from_u64(seed);
    let prog = random_program(&mut rng);
    let fail =
        |msg: String| Err(format!("[program seed {seed}, config {config:?}] {msg}\nprogram:\n{prog}"));

    let gp = match ground(&prog) {
        Ok(gp) => gp,
        Err(AspError::ResourceLimit(_)) => {
            return Ok(CaseStats {
                skipped: true,
                ..Default::default()
            })
        }
        Err(e) => return fail(format!("grounder rejected generated program: {e}")),
    };

    let oracle = match reference::solve(&gp, PROGRAM_CASE_MAX_FREE) {
        Ok(s) => s,
        Err(reference::OracleError::TooLarge { .. }) => {
            return Ok(CaseStats {
                skipped: true,
                ..Default::default()
            })
        }
    };
    let oracle_rendered: Vec<Vec<String>> = oracle
        .models
        .iter()
        .map(|m| reference::render(&gp, m))
        .collect();

    let solver = Solver::with_config(config.clone());

    // ---- model-set comparison (enumeration ignores #minimize) ----
    let limit = (oracle.models.len() + 1).min(MAX_ENUMERATED + 1);
    let produced = match solver.enumerate(&prog, limit) {
        Ok(ms) => ms,
        Err(e) => return fail(format!("production enumerate failed: {e}")),
    };
    for m in &produced {
        let set: FxHashSet<AtomId> = m.true_atoms().collect();
        if let Err(e) = certify::certify_atoms(m.ground(), &set) {
            return fail(format!(
                "production model failed certification: {e}\nmodel: {:?}",
                m.render()
            ));
        }
    }
    let mut produced_rendered: Vec<Vec<String>> = produced.iter().map(|m| m.render()).collect();
    produced_rendered.sort();
    if oracle.models.len() <= MAX_ENUMERATED {
        let mut want = oracle_rendered.clone();
        want.sort();
        if produced_rendered != want {
            return fail(format!(
                "stable-model sets differ\noracle ({} models): {want:?}\nproduction ({}): \
                 {produced_rendered:?}",
                want.len(),
                produced_rendered.len()
            ));
        }
    } else {
        // Spot-check: everything produced must be an oracle model.
        for m in &produced_rendered {
            if !oracle_rendered.contains(m) {
                return fail(format!("production emitted a non-model: {m:?}"));
            }
        }
    }

    // ---- optimum comparison ----
    let (outcome, _) = match solver.solve(&prog) {
        Ok(r) => r,
        Err(e) => return fail(format!("production solve failed: {e}")),
    };
    match (outcome, oracle.best_cost()) {
        (SolveOutcome::Unsat, None) => {}
        (SolveOutcome::Unsat, Some(_)) => {
            return fail(format!(
                "production says UNSAT but oracle found {} models",
                oracle.models.len()
            ))
        }
        (SolveOutcome::Optimal(m), None) => {
            return fail(format!(
                "production found a model but oracle found none: {:?}",
                m.render()
            ))
        }
        (SolveOutcome::Optimal(m), Some(best)) => {
            if let Err(e) = certify::certify_model(&m) {
                return fail(format!("optimal model failed certification: {e}"));
            }
            if m.cost.as_slice() != best {
                return fail(format!(
                    "optima differ: production {:?} vs oracle {best:?} (model {:?})",
                    m.cost,
                    m.render()
                ));
            }
            let rendered = m.render();
            let optimal: Vec<&Vec<String>> = oracle
                .optimal_models()
                .into_iter()
                .map(|i| &oracle_rendered[i])
                .collect();
            if !optimal.iter().any(|o| **o == rendered) {
                return fail(format!(
                    "production optimum {rendered:?} is not among the oracle's optimal models"
                ));
            }
        }
    }

    Ok(CaseStats {
        models: oracle.models.len(),
        skipped: false,
    })
}

/// Run one concretizer differential case.
pub fn check_repo_case(seed: u64) -> Result<CaseStats, String> {
    let mut rng = TestRng::seed_from_u64(seed);
    let (repo, spec) = random_repo_and_spec(&mut rng);
    let fail = |msg: String| Err(format!("[repo seed {seed}] {msg}\ngoal: {spec}"));
    let goal = Goal::single(spec.clone());

    // Solve the exact program the (splice-spack) concretizer would, and
    // certificate-check the optimal model independently of the
    // concretizer's own debug assertions.
    let conc = Concretizer::new(&repo);
    let text = match conc.program_text(&goal) {
        Ok(enc) => enc.program,
        Err(e) => return fail(format!("encode failed: {e}")),
    };
    let prog = match parse_program(&text) {
        Ok(p) => p,
        Err(e) => return fail(format!("generated program does not parse: {e}")),
    };
    match Solver::new().solve(&prog) {
        Err(e) => return fail(format!("solver failed on encoded program: {e}")),
        Ok((SolveOutcome::Unsat, _)) => {}
        Ok((SolveOutcome::Optimal(m), _)) => {
            if let Err(e) = certify::certify_model(&m) {
                return fail(format!("encoded-program model failed certification: {e}"));
            }
        }
    }

    // Metamorphic cross-configuration check: with no buildcaches, the
    // direct (old spack) and indirect+splicing (splice spack)
    // configurations must agree on satisfiability and resolve the same
    // package versions.
    let old = Concretizer::new(&repo)
        .with_config(ConcretizerConfig::old_spack())
        .concretize_goal(&goal);
    let new = Concretizer::new(&repo)
        .with_config(ConcretizerConfig::splice_spack())
        .concretize_goal(&goal);
    match (old, new) {
        (Err(CoreError::Unsatisfiable), Err(CoreError::Unsatisfiable)) => {}
        (Err(e), _) => return fail(format!("old-spack config failed: {e}")),
        (_, Err(e)) => return fail(format!("splice-spack config failed: {e}")),
        (Ok(a), Ok(b)) => {
            for (sa, sb) in a.specs.iter().zip(b.specs.iter()) {
                let mut va: Vec<String> = sa
                    .nodes()
                    .iter()
                    .map(|n| format!("{}@{}", n.name, n.version))
                    .collect();
                let mut vb: Vec<String> = sb
                    .nodes()
                    .iter()
                    .map(|n| format!("{}@{}", n.name, n.version))
                    .collect();
                va.sort();
                vb.sort();
                if va != vb {
                    return fail(format!(
                        "configs disagree on resolution: old {va:?} vs splice {vb:?}"
                    ));
                }
            }
            // DAG-hash invariant: re-hashing a returned spec is a fixpoint.
            for s in a.specs.iter().chain(b.specs.iter()) {
                let mut r = s.clone();
                if let Err(e) = r.rehash() {
                    return fail(format!("rehash failed: {e}"));
                }
                if r.dag_hash() != s.dag_hash() {
                    return fail(format!(
                        "dag hash not a rehash fixpoint for {}",
                        s.root().name
                    ));
                }
            }
        }
    }

    Ok(CaseStats::default())
}
