//! Differential property suite for [`Program::prune_unreachable`]:
//! pruning must never change what the solver can conclude.
//!
//! Two checks per random program, both against the brute-force oracle:
//!
//! * **all-goals** — with every head predicate passed as a goal, only
//!   dead-rule removal applies, which is exactly model-preserving: the
//!   full (model, cost) sets must be identical.
//! * **restricted-goal** — with a single goal predicate, relevance
//!   removal also applies: the pruned program's (model, cost) set must
//!   equal the original's projected onto the surviving predicates
//!   (the stratified-top guarantee makes this a bijection).

use proptest::prelude::*;
use proptest::TestRng;
use spackle_asp::analysis::head_preds;
use spackle_asp::ground::ground;
use spackle_asp::{AspError, Program};
use spackle_oracle::diff::PROGRAM_CASE_MAX_FREE;
use spackle_oracle::genprog::random_program;
use spackle_oracle::reference;
use spackle_spec::Sym;
use std::collections::BTreeSet;

/// `(name, arity)` of a rendered ground atom like `p("a",node(1))`.
fn rendered_pred(atom: &str) -> (Sym, usize) {
    let Some(i) = atom.find('(') else {
        return (Sym::intern(atom), 0);
    };
    let name = &atom[..i];
    let inner = &atom[i + 1..atom.rfind(')').unwrap_or(atom.len())];
    let (mut depth, mut in_str, mut arity) = (0i32, false, 1usize);
    for c in inner.chars() {
        match c {
            '"' => in_str = !in_str,
            '(' if !in_str => depth += 1,
            ')' if !in_str => depth -= 1,
            ',' if !in_str && depth == 0 => arity += 1,
            _ => {}
        }
    }
    (Sym::intern(name), arity)
}

/// Solve `prog` with the oracle and return its `(model, cost)` pairs,
/// each model rendered and sorted. `Ok(None)` means "too large, skip".
type ModelCost = (Vec<String>, Vec<(i64, i64)>);

fn oracle_models(prog: &Program) -> Result<Option<Vec<ModelCost>>, String> {
    let gp = match ground(prog) {
        Ok(gp) => gp,
        Err(AspError::ResourceLimit(_)) => return Ok(None),
        Err(e) => return Err(format!("grounder rejected program: {e}")),
    };
    let sol = match reference::solve(&gp, PROGRAM_CASE_MAX_FREE) {
        Ok(s) => s,
        Err(reference::OracleError::TooLarge { .. }) => return Ok(None),
    };
    let mut out: Vec<ModelCost> = sol
        .models
        .iter()
        .zip(&sol.costs)
        .map(|(m, c)| {
            let mut atoms = reference::render(&gp, m);
            atoms.sort();
            (atoms, c.clone())
        })
        .collect();
    out.sort();
    Ok(Some(out))
}

fn check_prune_case(seed: u64) -> Result<bool, String> {
    let mut rng = TestRng::seed_from_u64(seed);
    let prog = random_program(&mut rng);
    let ctx = |msg: String| format!("[prune seed {seed}] {msg}\nprogram:\n{prog}");

    let Some(original) = oracle_models(&prog).map_err(&ctx)? else {
        return Ok(false);
    };

    let all_goals: Vec<Sym> = {
        let names: BTreeSet<Sym> = head_preds(&prog).iter().map(|p| p.0).collect();
        names.into_iter().collect()
    };

    // ---- all-goals: pruning must be exactly model-preserving ----
    let (pruned_all, _) = prog.prune_unreachable(&all_goals);
    match oracle_models(&pruned_all).map_err(|e| ctx(format!("all-goals pruned: {e}")))? {
        None => return Ok(false),
        Some(models) => {
            if models != original {
                return Err(ctx(format!(
                    "all-goals pruning changed the model set\noriginal ({}): {original:?}\npruned ({}): {models:?}\npruned program:\n{pruned_all}",
                    original.len(),
                    models.len()
                )));
            }
        }
    }

    // ---- restricted goal: models must match modulo dead predicates ----
    if !all_goals.is_empty() {
        let goal = all_goals[(seed as usize) % all_goals.len()];
        let (pruned_one, report) = prog.prune_unreachable(&[goal]);
        let Some(pruned_models) =
            oracle_models(&pruned_one).map_err(|e| ctx(format!("single-goal pruned: {e}")))?
        else {
            return Ok(false);
        };
        let mut projected: Vec<ModelCost> = original
            .iter()
            .map(|(atoms, cost)| {
                let kept: Vec<String> = atoms
                    .iter()
                    .filter(|a| !report.dead_preds.contains(&rendered_pred(a)))
                    .cloned()
                    .collect();
                (kept, cost.clone())
            })
            .collect();
        projected.sort();
        if pruned_models != projected {
            return Err(ctx(format!(
                "single-goal pruning (goal {goal}) broke projection equivalence\nprojected original ({}): {projected:?}\npruned ({}): {pruned_models:?}\ndead preds: {:?}\npruned program:\n{pruned_one}",
                projected.len(),
                pruned_models.len(),
                report.dead_preds
            )));
        }
    }

    Ok(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn prune_preserves_stable_models_and_costs(seed in 0u64..u64::MAX) {
        if let Err(msg) = check_prune_case(seed) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// Deterministic anchor independent of `PROPTEST_SEED`: the first 64
/// seeds must pass, and enough of them must actually exercise the
/// comparison (not skip) for the suite to mean anything.
#[test]
fn prune_case_fixed_seeds_replay_clean() {
    let mut ran = 0;
    for seed in 0..64 {
        match check_prune_case(seed) {
            Ok(true) => ran += 1,
            Ok(false) => {}
            Err(e) => panic!("{e}"),
        }
    }
    assert!(ran >= 16, "too many skipped cases ({ran}/64 ran)");
}
