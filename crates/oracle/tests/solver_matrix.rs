//! The solver-config differential matrix: every engine technique the
//! modern CDCL core added (preprocessing passes, phase saving, Luby
//! restarts, LBD-scored clause deletion, incremental branch-and-bound)
//! must be *invisible* in outcomes — identical satisfiability, identical
//! stable-model sets, identical lexicographic optima — under every
//! on/off combination in the grid.
//!
//! Three corpora drive the check, mirroring `parallel_ground.rs`:
//!
//! * the 512-case random suite (384 program-case seeds checked against
//!   the brute-force oracle + 128 repo-case seeds cross-checked between
//!   configurations at the concretizer level), with fixed seeds so
//!   failures replay without `PROPTEST_SEED` plumbing;
//! * the committed fuzz seed corpus (`corpus/seeds.txt`);
//! * the hand-written hardening programs (recursive joins, bounded
//!   choices, negation + comparisons, multi-priority minimization).
//!
//! Set `SOLVER_MATRIX_PROGRAM_CASES` / `SOLVER_MATRIX_REPO_CASES` to
//! shrink or grow the random portion (CI runs the full 384 + 128).

use proptest::TestRng;
use rustc_hash::FxHashSet;
use spackle_asp::certify;
use spackle_asp::ground::ground;
use spackle_asp::preprocess::PreprocessConfig;
use spackle_asp::term::AtomId;
use spackle_asp::{parse_program, SatConfig, SolveOutcome, Solver, SolverConfig};
use spackle_core::{Concretizer, ConcretizerConfig, CoreError, Goal};
use spackle_oracle::genrepo::random_repo_and_spec;
use spackle_oracle::{diff, reference};

/// The configuration grid: all-on, all-off, and every single technique
/// switched off on its own (so a bug in one technique is attributed to
/// it directly), plus the two layer-only variants.
fn matrix() -> Vec<(&'static str, SolverConfig)> {
    let all_on = SolverConfig::default();
    let one_off = |f: &dyn Fn(&mut SolverConfig)| {
        let mut c = all_on.clone();
        f(&mut c);
        c
    };
    vec![
        ("all-on", all_on.clone()),
        ("all-off", SolverConfig::seed_engine()),
        (
            "no-preprocess",
            one_off(&|c| c.preprocess = PreprocessConfig::disabled()),
        ),
        ("no-pure", one_off(&|c| c.preprocess.pure_literals = false)),
        (
            "no-failed",
            one_off(&|c| c.preprocess.failed_literals = false),
        ),
        (
            "no-subsumption",
            one_off(&|c| c.preprocess.subsumption = false),
        ),
        (
            "no-self-subsumption",
            one_off(&|c| c.preprocess.self_subsumption = false),
        ),
        ("no-var-elim", one_off(&|c| c.preprocess.var_elim = false)),
        (
            "no-phase-saving",
            one_off(&|c| c.sat.phase_saving = false),
        ),
        ("no-restarts", one_off(&|c| c.sat.restarts = false)),
        ("no-lbd", one_off(&|c| c.sat.lbd_deletion = false)),
        (
            "no-incremental-bnb",
            one_off(&|c| c.incremental_bnb = false),
        ),
        (
            "preprocess-only",
            one_off(&|c| {
                c.sat = SatConfig::seed_engine();
                c.incremental_bnb = false;
            }),
        ),
        (
            "search-only",
            one_off(&|c| c.preprocess = PreprocessConfig::disabled()),
        ),
    ]
}

fn env_cases(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn random_programs_agree_with_oracle_under_every_config() {
    let cases = env_cases("SOLVER_MATRIX_PROGRAM_CASES", 384);
    let configs = matrix();
    assert!(configs.len() >= 8, "acceptance requires ≥8 configs");
    let mut checked = 0u64;
    for seed in 0..cases {
        for (name, config) in &configs {
            if let Err(msg) = diff::check_program_case_with(seed, config) {
                panic!("config {name}: {msg}");
            }
        }
        checked += 1;
    }
    assert_eq!(checked, cases);
}

#[test]
fn corpus_seeds_agree_with_oracle_under_every_config() {
    let corpus = include_str!("../corpus/seeds.txt");
    let configs = matrix();
    let mut ran = 0;
    for line in corpus.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let seed: u64 = match line.strip_prefix("program:") {
            Some(s) => s.trim().parse().unwrap(),
            None => match line.strip_prefix("repo:") {
                Some(_) => continue,
                None => line.parse().unwrap(),
            },
        };
        for (name, config) in &configs {
            diff::check_program_case_with(seed, config)
                .unwrap_or_else(|e| panic!("config {name}, corpus seed {seed}: {e}"));
        }
        ran += 1;
    }
    assert!(ran >= 4, "corpus unexpectedly small ({ran} program cases)");
}

/// The same hand-written hardening programs the parallel-grounding suite
/// pins, checked against the brute-force oracle under every config:
/// exact model sets and exact lexicographic optima.
const HARDENING_PROGRAMS: &[(&str, &str)] = &[
    (
        "recursive-join",
        "node(a). node(b). node(c). node(d).\n\
         edge(a,b). edge(b,c). edge(c,d). edge(d,a). edge(b,d).\n\
         path(X,Y) :- edge(X,Y).\n\
         path(X,Z) :- path(X,Y), edge(Y,Z).\n\
         reach(X) :- path(a,X).\n",
    ),
    (
        "bounded-choice-with-conditions",
        "opt(x). opt(y). opt(z). good(x). good(z).\n\
         1 { pick(O) : opt(O) } 2.\n\
         :- pick(O), not good(O).\n\
         #minimize { 1@1,O : pick(O) }.\n",
    ),
    (
        "negation-and-comparisons",
        "n(1). n(2). n(3). n(4).\n\
         big(X) :- n(X), X > 2.\n\
         small(X) :- n(X), not big(X).\n\
         pair(X,Y) :- small(X), big(Y), X < Y.\n\
         :- pair(2,3), not n(4).\n",
    ),
    (
        "multi-priority-minimize",
        "item(a). item(b). item(c).\n\
         cost(a,3). cost(b,1). cost(c,2).\n\
         1 { take(I) : item(I) } 3.\n\
         taken :- take(a).\n\
         #minimize { C@2,I : take(I), cost(I,C) }.\n\
         #minimize { 1@1,I : take(I) }.\n",
    ),
    (
        "even-loop-negation",
        "a :- not b. b :- not a. c :- a. c :- b. :- not c.\n",
    ),
    (
        "positive-loop-external-support",
        "{ p }. a :- p. a :- b. b :- a. :- not a. #minimize { 1@1 : p }.\n",
    ),
];

#[test]
fn hardening_programs_agree_with_oracle_under_every_config() {
    let configs = matrix();
    for (pname, text) in HARDENING_PROGRAMS {
        let prog = parse_program(text).unwrap_or_else(|e| panic!("{pname}: parse failed: {e}"));
        let gp = ground(&prog).unwrap_or_else(|e| panic!("{pname}: ground failed: {e}"));
        let oracle = reference::solve(&gp, reference::DEFAULT_MAX_FREE_ATOMS)
            .unwrap_or_else(|e| panic!("{pname}: oracle failed: {e:?}"));
        let mut oracle_models: Vec<Vec<String>> = oracle
            .models
            .iter()
            .map(|m| reference::render(&gp, m))
            .collect();
        oracle_models.sort();
        let oracle_best = oracle.best_cost().map(|c| c.to_vec());

        for (cname, config) in &configs {
            let solver = Solver::with_config(config.clone());
            // Exact model-set equality.
            let produced = solver
                .enumerate(&prog, oracle.models.len() + 1)
                .unwrap_or_else(|e| panic!("{pname}/{cname}: enumerate failed: {e}"));
            let mut produced_rendered: Vec<Vec<String>> =
                produced.iter().map(|m| m.render()).collect();
            produced_rendered.sort();
            assert_eq!(
                produced_rendered, oracle_models,
                "{pname}/{cname}: stable-model sets differ"
            );
            for m in &produced {
                let set: FxHashSet<AtomId> = m.true_atoms().collect();
                certify::certify_atoms(m.ground(), &set)
                    .unwrap_or_else(|e| panic!("{pname}/{cname}: certification failed: {e}"));
            }
            // Exact lexicographic optimum.
            match solver.solve(&prog) {
                Err(e) => panic!("{pname}/{cname}: solve failed: {e}"),
                Ok((SolveOutcome::Unsat, _)) => {
                    assert!(oracle_best.is_none(), "{pname}/{cname}: wrongly UNSAT")
                }
                Ok((SolveOutcome::Optimal(m), _)) => {
                    certify::certify_model(&m)
                        .unwrap_or_else(|e| panic!("{pname}/{cname}: optimum uncertified: {e}"));
                    assert_eq!(
                        Some(m.cost.clone()),
                        oracle_best,
                        "{pname}/{cname}: optima differ"
                    );
                }
            }
        }
    }
}

/// Repo cases: the concretizer must return the *same solution* under
/// every engine configuration — same satisfiability, same resolved
/// versions, same DAG hashes, same splice count.
#[test]
fn concretizer_optima_identical_under_every_config() {
    let cases = env_cases("SOLVER_MATRIX_REPO_CASES", 128);
    let configs = matrix();
    let mut solved = 0u64;
    for seed in 0..cases {
        let mut rng = TestRng::seed_from_u64(seed);
        let (repo, spec) = random_repo_and_spec(&mut rng);
        let goal = Goal::single(spec.clone());

        // The engine contract across configurations is identical
        // satisfiability and identical lexicographic optima. Co-optimal
        // models (cost ties) may legitimately differ between configs —
        // the solver breaks ties by search order — so the comparison is
        // on the cost vector, never on DAG hashes or chosen versions.
        // None = UNSAT.
        let mut reference_outcome: Option<Option<Vec<(i64, i64)>>> = None;
        for (cname, solver_config) in &configs {
            let config = ConcretizerConfig {
                solver: solver_config.clone(),
                ..Default::default()
            };
            let outcome = match Concretizer::new(&repo)
                .with_config(config)
                .concretize_goal(&goal)
            {
                Ok(sol) => Some(sol.cost),
                Err(CoreError::Unsatisfiable) => None,
                Err(e) => panic!("[repo seed {seed}] config {cname}: {e}\ngoal: {spec}"),
            };
            match &reference_outcome {
                None => reference_outcome = Some(outcome),
                Some(want) => assert_eq!(
                    want, &outcome,
                    "[repo seed {seed}] config {cname} diverges from {}\ngoal: {spec}",
                    configs[0].0
                ),
            }
        }
        if matches!(reference_outcome, Some(Some(_))) {
            solved += 1;
        }
    }
    assert!(
        solved >= cases / 4,
        "too few satisfiable repo cases ({solved}/{cases}) — generator drift?"
    );
}
