//! The chaos differential suite: every injected-fault schedule must
//! produce either the *fault-free oracle's answer, bit for bit* or a
//! structured error / degraded result — never a wrong answer, a hang,
//! or a panic.
//!
//! Shape: 8 random repo cases (the `genrepo` generator, same universe
//! as the differential suite) × 16 seeded fault schedules × 2 cache
//! topologies = 256 schedules. Each repo case gets a "local" cache
//! (the goal's own fault-free solution) and a "public" cache (every
//! repo package concretized as its own root), then each schedule wraps
//! the backends in [`FaultInjector`]s and solves the same goal:
//!
//! * **split topology** — local and public as separate top-level
//!   sources: degradation may drop either independently, and the
//!   result must match the fault-free oracle computed over exactly the
//!   surviving subset;
//! * **chained topology** — both backends inside one [`ChainedCache`]:
//!   the chain is deliberately strict (never silently skips a failing
//!   member), so degradation is all-or-nothing and a degraded result
//!   must match the source-only oracle.
//!
//! A 60-second cancel token backstops every faulty solve: fault-free
//! solves on these repos take milliseconds, so a fired deadline can
//! only mean a hang — which is a failure, not an accepted outcome.

use proptest::TestRng;
use spackle_asp::CancelToken;
use spackle_buildcache::{
    BuildCache, CacheSource, ChainedCache, FaultConfig, FaultInjector, RetryPolicy,
};
use spackle_core::{Concretizer, ConcretizerConfig, CoreError, Goal};
use spackle_oracle::genrepo::random_repo_and_spec;
use spackle_repo::Repository;
use std::sync::Arc;
use std::time::Duration;

const REPO_CASES: u64 = 8;
const FAULT_SCHEDULES: u64 = 16;
const SWEEP_SEED: u64 = 0x5bac_c405;

/// What a fault-free solve of a goal produces: the DAG hashes of its
/// solution, or unsatisfiability (a legitimate outcome for random
/// repos that a faulty solve must reproduce, not mask).
#[derive(Clone, Debug, PartialEq, Eq)]
enum Oracle {
    Sat(Vec<String>),
    Unsat,
}

fn solve_oracle(
    repo: &Repository,
    goal: &Goal,
    sources: &[&BuildCache],
) -> Result<Oracle, String> {
    let mut conc = Concretizer::new(repo).with_config(ConcretizerConfig::splice_spack());
    for s in sources {
        conc = conc.with_reusable((*s).clone());
    }
    match conc.concretize_goal(goal) {
        Ok(sol) => Ok(Oracle::Sat(
            sol.specs.iter().map(|s| s.dag_hash().to_string()).collect(),
        )),
        Err(CoreError::Unsatisfiable) => Ok(Oracle::Unsat),
        Err(e) => Err(format!("fault-free oracle failed: {e}")),
    }
}

/// The two per-case backends: "local" holds the goal's own solution,
/// "public" holds every package of the repo solved as its own root.
/// Either may be empty (e.g. an unsatisfiable goal) — faults on an
/// empty backend still exercise the index-read error paths.
fn build_backends(repo: &Repository, goal: &Goal) -> (BuildCache, BuildCache) {
    let mut local = BuildCache::new();
    if let Ok(sol) = Concretizer::new(repo).concretize_goal(goal) {
        for spec in &sol.specs {
            local.add_spec(spec);
        }
    }
    let mut public = BuildCache::new();
    for pkg in repo.packages() {
        let single = Goal::single(
            spackle_spec::parse_spec(pkg.name.as_str()).expect("package names parse"),
        );
        if let Ok(sol) = Concretizer::new(repo).concretize_goal(&single) {
            for spec in &sol.specs {
                public.add_spec(spec);
            }
        }
    }
    (local, public)
}

/// One schedule's fault pair, spanning errors (transient and
/// permanent), corruption, latency, and hard outage windows on either
/// or both backends — all deterministic in (sweep seed, k).
fn fault_pair(k: u64) -> (FaultConfig, FaultConfig) {
    let s = SWEEP_SEED
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(k.wrapping_mul(0x2545_f491_4f6c_dd1d));
    let none = FaultConfig::default();
    match k % 8 {
        0 => (none, FaultConfig::flaky(s, 0.4)),
        1 => (FaultConfig::flaky(s, 0.6), FaultConfig::flaky(s ^ 1, 0.6)),
        2 => (none, FaultConfig::down()),
        3 => (FaultConfig::hard_down(), FaultConfig::down()),
        4 => (
            FaultConfig {
                seed: s,
                corrupt_rate: 0.6,
                ..FaultConfig::default()
            },
            none,
        ),
        5 => (
            FaultConfig {
                seed: s,
                fail_calls: Some(0..4),
                ..FaultConfig::default()
            },
            FaultConfig {
                seed: s ^ 2,
                corrupt_rate: 0.3,
                error_rate: 0.3,
                transient_ratio: 0.5,
                ..FaultConfig::default()
            },
        ),
        6 => (
            FaultConfig {
                seed: s,
                error_rate: 0.5,
                transient_ratio: 0.0,
                latency_rate: 0.2,
                latency: Duration::from_micros(200),
                ..FaultConfig::default()
            },
            FaultConfig::flaky(s ^ 3, 0.8),
        ),
        _ => (
            FaultConfig {
                seed: s,
                error_rate: 0.25,
                transient_ratio: 0.7,
                corrupt_rate: 0.25,
                latency_rate: 0.1,
                latency: Duration::from_micros(100),
                ..FaultConfig::default()
            },
            FaultConfig {
                seed: s ^ 4,
                corrupt_rate: 0.5,
                ..FaultConfig::default()
            },
        ),
    }
}

/// Fast retry policy: real retry/breaker logic, microsecond sleeps.
fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_micros(50),
        max_backoff: Duration::from_micros(500),
        breaker_threshold: 2,
        breaker_cooldown: 4,
        ..RetryPolicy::default()
    }
}

/// Aggregate evidence that the sweep actually exercised the machinery.
#[derive(Default)]
struct SweepTotals {
    schedules: u64,
    ok: u64,
    degraded: u64,
    structured_errors: u64,
    injected: u64,
    retries: u64,
    corrupt_seen: u64,
    breaker_opens: u64,
}

/// Run one faulty solve and check it against the subset oracles.
/// `oracles[mask]` is the fault-free answer over the surviving sources
/// (bit 0 = local, bit 1 = public).
#[allow(clippy::too_many_arguments)]
fn check_schedule(
    repo: &Repository,
    goal: &Goal,
    sources: Vec<Arc<dyn CacheSource>>,
    oracles: &[Oracle; 4],
    split: bool,
    label: &str,
    totals: &mut SweepTotals,
) -> Result<(), String> {
    totals.schedules += 1;
    let mut conc = Concretizer::new(repo)
        .with_config(ConcretizerConfig::splice_spack())
        .with_cancel(CancelToken::with_deadline(Duration::from_secs(60)));
    for s in &sources {
        conc = conc.with_reusable(s);
    }
    match conc.concretize_goal(goal) {
        Ok(sol) => {
            totals.injected += sol.stats.cache_injected_faults;
            totals.retries += sol.stats.cache_retries;
            totals.corrupt_seen += sol.stats.cache_corrupt_entries;
            totals.breaker_opens += sol.stats.cache_breaker_opens;
            if sol.stats.degraded == sol.stats.skipped_sources.is_empty() {
                return Err(format!(
                    "{label}: degraded flag disagrees with skipped sources: {:?}",
                    sol.stats.skipped_sources
                ));
            }
            // Which fault-free subset must this answer equal?
            let mut mask = 0b11usize;
            if split {
                for skipped in &sol.stats.skipped_sources {
                    match (skipped.backend.contains("local"), skipped.backend.contains("public")) {
                        (true, false) => mask &= !1,
                        (false, true) => mask &= !2,
                        _ => {
                            return Err(format!(
                                "{label}: unattributable skipped source {:?}",
                                skipped.backend
                            ))
                        }
                    }
                }
            } else if sol.stats.degraded {
                // One chained top-level source: dropping it drops both
                // backends.
                mask = 0;
            }
            let got = Oracle::Sat(
                sol.specs.iter().map(|s| s.dag_hash().to_string()).collect(),
            );
            if got != oracles[mask] {
                return Err(format!(
                    "{label}: answer diverges from fault-free oracle over subset \
                     {mask:#04b}: got {got:?}, want {:?} (skipped: {:?})",
                    oracles[mask], sol.stats.skipped_sources
                ));
            }
            if sol.stats.degraded {
                totals.degraded += 1;
            } else {
                totals.ok += 1;
            }
            Ok(())
        }
        // Unsat must match the oracle: faults may degrade or error a
        // solve, but they must never flip satisfiability silently.
        Err(CoreError::Unsatisfiable) => {
            // With degradation on, a cache fault never *causes* unsat
            // (sources only add reuse candidates); so unsat is only
            // correct if the goal is unsat without any sources too.
            if oracles[0] != Oracle::Unsat {
                return Err(format!("{label}: faulty solve reported unsat, oracle is sat"));
            }
            totals.ok += 1;
            Ok(())
        }
        // Structured cache/budget errors are honest outcomes.
        Err(e @ CoreError::Cache { .. }) | Err(e @ CoreError::BudgetExhausted { .. }) => {
            debug_assert!(!e.kind().is_empty());
            totals.structured_errors += 1;
            Ok(())
        }
        Err(CoreError::Cancelled { .. }) => {
            Err(format!("{label}: 60s safety deadline fired — the solve hung"))
        }
        Err(e) => Err(format!("{label}: unexpected error class: {e}")),
    }
}

#[test]
fn faults_never_change_answers_only_provenance() {
    let mut totals = SweepTotals::default();
    for case in 0..REPO_CASES {
        let mut rng = TestRng::seed_from_u64(SWEEP_SEED.wrapping_add(case));
        let (repo, spec) = random_repo_and_spec(&mut rng);
        let goal = Goal::single(spec.clone());
        let (local, public) = build_backends(&repo, &goal);

        // Fault-free oracles for every subset of surviving backends.
        let oracles: [Oracle; 4] = [
            solve_oracle(&repo, &goal, &[]).unwrap(),
            solve_oracle(&repo, &goal, &[&local]).unwrap(),
            solve_oracle(&repo, &goal, &[&public]).unwrap(),
            solve_oracle(&repo, &goal, &[&local, &public]).unwrap(),
        ];

        for k in 0..FAULT_SCHEDULES {
            let (cfg_local, cfg_public) = fault_pair(k);

            // Split topology: independent top-level sources.
            let split_sources: Vec<Arc<dyn CacheSource>> = vec![
                Arc::new(
                    ChainedCache::with(vec![
                        FaultInjector::new(local.clone(), "local").with_config(cfg_local.clone()),
                    ])
                    .with_policy(fast_policy()),
                ),
                Arc::new(
                    ChainedCache::with(vec![
                        FaultInjector::new(public.clone(), "public")
                            .with_config(cfg_public.clone()),
                    ])
                    .with_policy(fast_policy()),
                ),
            ];
            check_schedule(
                &repo,
                &goal,
                split_sources,
                &oracles,
                true,
                &format!("case {case} schedule {k} split goal {spec}"),
                &mut totals,
            )
            .unwrap();

            // Chained topology: both backends behind one strict chain.
            let chained: Vec<Arc<dyn CacheSource>> = vec![Arc::new(
                ChainedCache::with(vec![
                    FaultInjector::new(local.clone(), "local").with_config(cfg_local.clone()),
                    FaultInjector::new(public.clone(), "public").with_config(cfg_public.clone()),
                ])
                .with_policy(fast_policy()),
            )];
            check_schedule(
                &repo,
                &goal,
                chained,
                &oracles,
                false,
                &format!("case {case} schedule {k} chained goal {spec}"),
                &mut totals,
            )
            .unwrap();
        }
    }

    assert_eq!(totals.schedules, REPO_CASES * FAULT_SCHEDULES * 2);
    assert_eq!(
        totals.ok + totals.degraded + totals.structured_errors,
        totals.schedules,
        "every schedule classified exactly once"
    );
    // The sweep must actually bite: faults injected, retries spent,
    // corruption detected, degradation observed.
    assert!(totals.injected > 0, "no faults injected");
    assert!(totals.retries > 0, "retry machinery never engaged");
    assert!(totals.corrupt_seen > 0, "corruption never detected");
    assert!(totals.degraded > 0, "degradation never exercised");
    eprintln!(
        "chaos sweep: {} schedules, {} ok, {} degraded, {} structured errors, \
         {} injected faults, {} retries, {} corrupt entries, {} breaker opens",
        totals.schedules,
        totals.ok,
        totals.degraded,
        totals.structured_errors,
        totals.injected,
        totals.retries,
        totals.corrupt_seen,
        totals.breaker_opens,
    );
}

/// A solve that dies mid-flight from a permanent backend failure with
/// degradation *disabled* must surface a structured `Cache` error that
/// names the failing backend — the no-silent-wrong-answer half of the
/// contract without the graceful half.
#[test]
fn degradation_off_surfaces_structured_cache_errors() {
    let mut rng = TestRng::seed_from_u64(SWEEP_SEED);
    let (repo, spec) = random_repo_and_spec(&mut rng);
    let goal = Goal::single(spec);
    let (local, _) = build_backends(&repo, &goal);
    if local.is_empty() {
        return; // unsat case: nothing to reuse, nothing to fail
    }

    let mut config = ConcretizerConfig::splice_spack();
    config.degrade_on_cache_failure = false;
    let source: Arc<dyn CacheSource> = Arc::new(
        ChainedCache::with(vec![
            FaultInjector::new(local, "mirror-a").with_config(FaultConfig::hard_down()),
        ])
        .with_policy(fast_policy()),
    );
    let err = Concretizer::new(&repo)
        .with_config(config)
        .with_reusable(&source)
        .concretize_goal(&goal)
        .expect_err("a hard-down backend must fail a non-degrading solve");
    match err {
        CoreError::Cache { backend, .. } => {
            assert!(
                backend.contains("mirror-a"),
                "error must name the failing backend, got {backend:?}"
            );
        }
        other => panic!("expected a structured cache error, got: {other}"),
    }
}
