//! Delta-reconcretization differential suite: the correctness bar for
//! incremental re-grounding is **bit-identical output** — a solve that
//! went through the warm path (segment-keyed ground cache retained
//! across a repository or buildcache delta, partial invalidation via
//! [`GroundCache::apply_delta`]) must equal a cold solve of the
//! post-delta world in every observable: DAG hash, reuse/build
//! decisions, and the lexicographic cost vector. UNSAT must stay UNSAT.
//!
//! Two mutation families drive the check, each over the random
//! repository generator (`genrepo`) and the concretizer-config matrix
//! (direct vs splice encoding, dead-rule pruning, seed vs modern SAT
//! engine):
//!
//! * **package mutations** — a randomly chosen package gains a new
//!   version; the repo-level [`SegmentDelta`] is applied to the warm
//!   cache, exactly as `spackled update` does it;
//! * **buildcache mutations** — the reusable-spec source gains an
//!   entry; no explicit invalidation happens at all, because the
//!   composed key covers the source-partition fingerprint and shifts by
//!   itself.
//!
//! On top of outcome equality the suite pins the retention contract:
//! a goal whose composed segment key did not move across the delta must
//! *hit* the retained entry (that hit being bit-identical is the whole
//! point of content addressing), and a goal whose key moved must miss.
//!
//! Set `DELTA_RECONCRETIZE_CASES` to shrink or grow the random portion.

use proptest::TestRng;
use spackle_buildcache::BuildCache;
use spackle_core::{repo_delta, Concretizer, ConcretizerConfig, CoreError, Goal, GroundCache};
use spackle_oracle::genrepo::random_repo_and_spec;
use spackle_repo::Repository;
use spackle_spec::{parse_spec, Version};

fn env_cases(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The concretizer-config matrix: every axis that changes the encoded
/// program or the engine searching it, so a delta bug hiding behind one
/// configuration cannot pass unnoticed.
fn matrix() -> Vec<(&'static str, ConcretizerConfig)> {
    vec![
        ("direct", ConcretizerConfig::default()),
        ("splice", ConcretizerConfig::splice_spack()),
        (
            "prune-dead",
            ConcretizerConfig {
                prune_dead: true,
                ..Default::default()
            },
        ),
        (
            "seed-solver",
            ConcretizerConfig {
                solver: spackle_asp::SolverConfig::seed_engine(),
                ..Default::default()
            },
        ),
    ]
}

/// Everything observable about one solve. `None` = UNSAT. The Debug
/// renderings are injective for these types, and string equality keeps
/// the assertion diff readable on failure.
type Outcome = Option<String>;

fn outcome(result: Result<spackle_core::Solution, CoreError>, ctx: &str) -> (Outcome, bool) {
    match result {
        Ok(sol) => (
            Some(format!(
                "dag={:?} cost={:?} reused={:?} built={:?}",
                sol.spec().dag_hash(),
                sol.cost,
                sol.reused,
                sol.built
            )),
            sol.stats.ground_cache_hit,
        ),
        Err(CoreError::Unsatisfiable) => (None, false),
        Err(e) => panic!("{ctx}: unexpected error {e}"),
    }
}

/// One differential case: warm a segment-keyed cache on the pre-delta
/// world, mutate, and require every post-delta warm-path solve to equal
/// its cold twin.
fn check_case(seed: u64, mutate_buildcache: bool) {
    let mut rng = TestRng::seed_from_u64(seed);
    let (repo, root_spec) = random_repo_and_spec(&mut rng);

    // Goal set: the generated root request plus one bare goal per
    // package, so the warm pass populates entries over several distinct
    // closures (some will straddle the mutation, some will not).
    // (Deduped on the goal's Debug rendering — the key input — because
    // the generated root request is sometimes a bare package name.)
    let mut goals = vec![Goal::single(root_spec)];
    let names: Vec<_> = repo.packages().map(|p| p.name).collect();
    for n in &names {
        let g = Goal::single(parse_spec(n.as_str()).unwrap());
        if !goals.iter().any(|have| format!("{have:?}") == format!("{g:?}")) {
            goals.push(g);
        }
    }

    // Optionally seeded buildcache, shared by every path below.
    let mut bc = BuildCache::new();
    if rng.below(2) == 1 {
        let pick = names[rng.below(names.len() as u64) as usize];
        if let Ok(sol) = Concretizer::new(&repo).concretize(&parse_spec(pick.as_str()).unwrap()) {
            bc.add_spec(sol.spec());
        }
    }

    for (cname, config) in &matrix() {
        let gc = GroundCache::shared();

        // Warm pass on the pre-delta world.
        let warm = |repo: &Repository, bc: &BuildCache| {
            Concretizer::new(repo)
                .with_config(config.clone())
                .with_reusable(bc.clone())
                .with_ground_cache(gc.clone())
        };
        let mut warm_ok = vec![false; goals.len()];
        for (i, g) in goals.iter().enumerate() {
            warm_ok[i] = warm(&repo, &bc).concretize_goal(g).is_ok();
        }

        // The mutation.
        let mut repo_post = repo.clone();
        let mut bc_post = bc.clone();
        if mutate_buildcache {
            let pick = names[rng.below(names.len() as u64) as usize];
            if let Ok(sol) =
                Concretizer::new(&repo).concretize(&parse_spec(pick.as_str()).unwrap())
            {
                bc_post.add_spec(sol.spec());
            }
        } else {
            let pick = names[rng.below(names.len() as u64) as usize];
            let mut def = repo.get(pick).expect("generated package").clone();
            def.versions.push(Version::parse("9.9").unwrap());
            repo_post.upsert(def);
            let delta = repo_delta(&repo, &repo_post);
            assert!(!delta.is_empty(), "[seed {seed}] version add must move a segment");
            gc.apply_delta(&delta);
        }

        // Per-goal key movement decides the retention expectation.
        let pre_keyer = warm(&repo, &bc);
        let post_keyer = warm(&repo_post, &bc_post);
        for (i, g) in goals.iter().enumerate() {
            let (pre_key, _) = pre_keyer.segment_key(g).unwrap();
            let (post_key, _) = post_keyer.segment_key(g).unwrap();

            let (delta_out, delta_hit) = outcome(
                post_keyer.concretize_goal(g),
                &format!("[seed {seed}] config {cname} goal {i} (delta path)"),
            );
            let cold = Concretizer::new(&repo_post)
                .with_config(config.clone())
                .with_reusable(bc_post.clone());
            let (cold_out, _) = outcome(
                cold.concretize_goal(g),
                &format!("[seed {seed}] config {cname} goal {i} (cold path)"),
            );

            assert_eq!(
                delta_out, cold_out,
                "[seed {seed}] config {cname} goal {i}: delta-updated solve \
                 diverged from cold solve of the post-delta world"
            );

            if warm_ok[i] && delta_out.is_some() {
                assert_eq!(
                    delta_hit,
                    pre_key == post_key,
                    "[seed {seed}] config {cname} goal {i}: retention contract — \
                     hit iff the composed key did not move (pre={pre_key:#x} post={post_key:#x})"
                );
            }

            // The delta path re-warmed the cache; an immediate re-solve
            // must hit and still match.
            if delta_out.is_some() {
                let (again, again_hit) = outcome(
                    post_keyer.concretize_goal(g),
                    &format!("[seed {seed}] config {cname} goal {i} (re-warm path)"),
                );
                assert!(again_hit, "[seed {seed}] config {cname} goal {i}: re-solve must hit");
                assert_eq!(again, cold_out, "[seed {seed}] config {cname} goal {i}: warm hit diverged");
            }
        }
    }
}

#[test]
fn delta_solve_equals_cold_solve_after_package_mutation() {
    let cases = env_cases("DELTA_RECONCRETIZE_CASES", 32);
    for seed in 0..cases {
        check_case(seed, false);
    }
}

#[test]
fn delta_solve_equals_cold_solve_after_buildcache_mutation() {
    let cases = env_cases("DELTA_RECONCRETIZE_CASES", 32);
    for seed in 0..cases {
        check_case(1_000_000 + seed, true);
    }
}
