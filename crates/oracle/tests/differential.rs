//! The bounded differential property suite: production solver vs the
//! brute-force oracle on random programs, and concretizer cross-checks
//! on random repositories. 384 program cases + 128 repo cases = 512
//! random cases per `cargo test` run; the open-ended version of the
//! same checks is the `fuzz-solve` binary.
//!
//! Reproduce any failure by exporting `PROPTEST_SEED` (printed on
//! failure), or by feeding the per-case seed from the failure message
//! to `fuzz-solve --replay-only` via a corpus line.

use proptest::prelude::*;
use spackle_oracle::diff;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]
    #[test]
    fn production_matches_oracle_on_random_programs(seed in 0u64..u64::MAX) {
        if let Err(msg) = diff::check_program_case(seed) {
            prop_assert!(false, "{}", msg);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn concretizer_configs_agree_on_random_repos(seed in 0u64..u64::MAX) {
        if let Err(msg) = diff::check_repo_case(seed) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// The committed seed corpus must stay green: these are regression
/// anchors for the fuzz harness (and double as deterministic coverage
/// of both case kinds independent of `PROPTEST_SEED`).
#[test]
fn corpus_seeds_replay_clean() {
    let corpus = include_str!("../corpus/seeds.txt");
    let mut ran = 0;
    for line in corpus.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let result = if let Some(s) = line.strip_prefix("program:") {
            diff::check_program_case(s.trim().parse().unwrap()).map(|_| ())
        } else if let Some(s) = line.strip_prefix("repo:") {
            diff::check_repo_case(s.trim().parse().unwrap()).map(|_| ())
        } else {
            let seed: u64 = line.parse().unwrap();
            diff::check_program_case(seed)
                .map(|_| ())
                .and_then(|()| diff::check_repo_case(seed).map(|_| ()))
        };
        result.unwrap_or_else(|e| panic!("corpus case {line} failed: {e}"));
        ran += 1;
    }
    assert!(ran >= 8, "corpus unexpectedly small ({ran} cases)");
}

/// Acceptance negative test: the certificate checker must reject
/// deliberately corrupted models.
#[test]
fn certificate_checker_rejects_corrupted_models() {
    use rustc_hash::FxHashSet;
    use spackle_asp::certify;
    use spackle_asp::ground::ground;
    use spackle_asp::parse_program;
    use spackle_asp::term::AtomId;
    use spackle_oracle::reference;

    let gp = ground(
        &parse_program(
            r#"
            cand("x"). cand("y").
            1 { pick(V) : cand(V) } 1.
            dep :- pick("x").
            #minimize { 1@1 : pick("y") }.
        "#,
        )
        .unwrap(),
    )
    .unwrap();
    let sol = reference::solve(&gp, reference::DEFAULT_MAX_FREE_ATOMS).unwrap();
    assert!(!sol.models.is_empty());

    // Every genuine oracle model passes the full certificate.
    for (m, c) in sol.models.iter().zip(&sol.costs) {
        let set: FxHashSet<AtomId> = m.iter().copied().collect();
        certify::certify(&gp, &set, Some(c)).unwrap();
    }

    // Corrupt a model by flipping each free atom in turn: every
    // corruption must be caught.
    let free: Vec<AtomId> = gp
        .possible
        .iter()
        .copied()
        .filter(|a| !gp.certain.contains(a))
        .collect();
    let base: FxHashSet<AtomId> = sol.models[0].iter().copied().collect();
    for &a in &free {
        let mut corrupted = base.clone();
        if !corrupted.remove(&a) {
            corrupted.insert(a);
        }
        assert!(
            certify::certify_atoms(&gp, &corrupted).is_err(),
            "flipping {} went undetected",
            gp.store.format_atom(a)
        );
    }

    // A dishonest cost vector must also be caught.
    let honest = &sol.costs[0];
    let lie: Vec<(i64, i64)> = honest.iter().map(|&(p, c)| (p, c + 1)).collect();
    assert!(matches!(
        certify::certify(&gp, &base, Some(&lie)),
        Err(certify::CertifyError::CostMismatch { .. })
    ));
}
