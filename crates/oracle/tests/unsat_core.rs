//! Property suite for unsat-core extraction, checked against the
//! brute-force reference oracle on the same random corpus the solver
//! matrix uses.
//!
//! Three properties:
//!
//! 1. **Agreement** — `explain_ground` says `Satisfiable` exactly when
//!    the oracle enumerates at least one stable model, and `Unsat`
//!    (with a non-empty core) exactly when it enumerates none.
//! 2. **Soundness + minimality** — verified against an independent
//!    brute-force model of the extractor's semantics. A core is a set
//!    of *soft clause groups* (ground rules, choice bounds,
//!    constraints, completions); an assignment "satisfies" a candidate
//!    set of groups when it classically satisfies each group and every
//!    true atom is founded (non-circularly derivable) through the
//!    *full* program — exactly what the extractor's selector-guarded
//!    CNF plus stability CEGAR enforces. The reported core must admit
//!    no such assignment (soundness), and when flagged `minimal`,
//!    dropping any single member must admit one (drop-one SAT). Note
//!    this is deliberately *not* "delete the construct from the source
//!    program and re-solve": removing a rule also strengthens its
//!    head's completion, so textual deletion over-approximates the
//!    clause-level drop and the textual property is genuinely false.
//! 3. **Config stability** — extraction runs under one fixed internal
//!    engine configuration, so the rendered core must be bit-identical
//!    under every [`SolverConfig`] toggle combination of the solver
//!    matrix, including the seed engine.
//!
//! Set `UNSAT_CORE_CASES` to shrink or grow the random scan.

use proptest::TestRng;
use rustc_hash::FxHashSet;
use spackle_asp::ground::{ground, GroundProgram};
use spackle_asp::preprocess::PreprocessConfig;
use spackle_asp::term::AtomId;
use spackle_asp::{
    ClauseOrigin, ExplainConfig, ExplainOutcome, SatConfig, Solver, SolverConfig, UnsatCore,
};
use spackle_oracle::genprog::random_program;
use spackle_oracle::reference;

/// The solver-matrix configuration grid (mirrors `solver_matrix.rs`).
fn matrix() -> Vec<(&'static str, SolverConfig)> {
    let all_on = SolverConfig::default();
    let one_off = |f: &dyn Fn(&mut SolverConfig)| {
        let mut c = all_on.clone();
        f(&mut c);
        c
    };
    vec![
        ("all-on", all_on.clone()),
        ("all-off", SolverConfig::seed_engine()),
        (
            "no-preprocess",
            one_off(&|c| c.preprocess = PreprocessConfig::disabled()),
        ),
        ("no-phase-saving", one_off(&|c| c.sat.phase_saving = false)),
        ("no-restarts", one_off(&|c| c.sat.restarts = false)),
        ("no-lbd", one_off(&|c| c.sat.lbd_deletion = false)),
        (
            "no-incremental-bnb",
            one_off(&|c| c.incremental_bnb = false),
        ),
        (
            "preprocess-only",
            one_off(&|c| {
                c.sat = SatConfig::seed_engine();
                c.incremental_bnb = false;
            }),
        ),
    ]
}

fn env_cases(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Ground the seed's random program, or `None` when it exceeds the
/// oracle's exhaustive-search cap.
fn oracle_case(seed: u64) -> Option<(GroundProgram, bool)> {
    let mut rng = TestRng::seed_from_u64(seed);
    let prog = random_program(&mut rng);
    let gp = ground(&prog).expect("generated programs always ground");
    match reference::stable_models(&gp, reference::DEFAULT_MAX_FREE_ATOMS) {
        Ok(models) => {
            let sat = !models.is_empty();
            Some((gp, sat))
        }
        Err(reference::OracleError::TooLarge { .. }) => None,
    }
}

// ---------------------------------------------------------------------
// Brute-force model of the extractor's clause-group semantics
// ---------------------------------------------------------------------

fn holds_body(m: &FxHashSet<AtomId>, pos: &[AtomId], neg: &[AtomId]) -> bool {
    pos.iter().all(|a| m.contains(a)) && !neg.iter().any(|a| m.contains(a))
}

/// Classical support for `a` in candidate `m`: some rule with head `a`
/// (or choice instance offering `a`) whose body holds in `m`.
fn supported(gp: &GroundProgram, a: AtomId, m: &FxHashSet<AtomId>) -> bool {
    gp.rules
        .iter()
        .any(|r| r.head == a && holds_body(m, &r.pos, &r.neg))
        || gp
            .choices
            .iter()
            .any(|c| c.elements.contains(&a) && holds_body(m, &c.pos, &c.neg))
}

/// Does candidate `m` classically satisfy one soft clause group of the
/// full program?
fn group_satisfied(gp: &GroundProgram, origin: ClauseOrigin, m: &FxHashSet<AtomId>) -> bool {
    match origin {
        ClauseOrigin::Rule(i) => {
            let r = &gp.rules[i as usize];
            !holds_body(m, &r.pos, &r.neg) || m.contains(&r.head)
        }
        ClauseOrigin::Choice(i) => {
            let c = &gp.choices[i as usize];
            if !holds_body(m, &c.pos, &c.neg) {
                return true;
            }
            let chosen = c.elements.iter().filter(|e| m.contains(e)).count() as u32;
            !(c.lower.is_some_and(|l| chosen < l) || c.upper.is_some_and(|u| chosen > u))
        }
        ClauseOrigin::Constraint(i) => {
            let c = &gp.constraints[i as usize];
            !holds_body(m, &c.pos, &c.neg)
        }
        ClauseOrigin::Completion(a) => !m.contains(&a) || supported(gp, a, m),
        ClauseOrigin::Definition => true,
    }
}

/// Is the candidate free of unfounded sets? Foundedness is enforced by
/// the extractor through *hard* lazily-generated loop nogoods, and only
/// over the grounder's `possible` universe (the stability check sees
/// the SAT model filtered to `gp.possible`, so atoms outside it — those
/// no rule can ever derive — are constrained solely by their soft
/// completion groups). Mirroring `check_stability`, the reduct drops a
/// deriver when a negated atom is true *in the possible projection*.
fn founded(gp: &GroundProgram, m: &FxHashSet<AtomId>) -> bool {
    let mp: FxHashSet<AtomId> = m
        .iter()
        .copied()
        .filter(|a| gp.possible.contains(a))
        .collect();
    let mut f: FxHashSet<AtomId> = FxHashSet::default();
    loop {
        let mut changed = false;
        for r in &gp.rules {
            if mp.contains(&r.head)
                && !f.contains(&r.head)
                && !r.neg.iter().any(|a| mp.contains(a))
                && r.pos.iter().all(|a| f.contains(a))
            {
                f.insert(r.head);
                changed = true;
            }
        }
        for c in &gp.choices {
            if !c.neg.iter().any(|a| mp.contains(a)) && c.pos.iter().all(|a| f.contains(a)) {
                for &e in c.elements.iter() {
                    if mp.contains(&e) && f.insert(e) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    mp.iter().all(|a| f.contains(a))
}

/// Enumeration cap for the group-satisfiability brute force (2^14
/// candidates worst case).
const MAX_BRUTE_ATOMS: usize = 14;

/// Is there a founded candidate satisfying every group in `groups`?
/// `None` when the atom universe is too large to enumerate. The
/// universe is *every* interned atom, not just `possible`: atoms no
/// rule derives still carry a CNF variable and a completion group, and
/// become free once that group is dropped.
fn groups_satisfiable(gp: &GroundProgram, groups: &[ClauseOrigin]) -> Option<bool> {
    let atoms: Vec<AtomId> = (0..gp.atom_count() as u32).map(AtomId).collect();
    if atoms.len() > MAX_BRUTE_ATOMS {
        return None;
    }
    for mask in 0u64..(1u64 << atoms.len()) {
        let m: FxHashSet<AtomId> = atoms
            .iter()
            .enumerate()
            .filter(|(i, _)| (mask >> i) & 1 == 1)
            .map(|(_, &a)| a)
            .collect();
        if groups.iter().all(|&g| group_satisfied(gp, g, &m)) && founded(gp, &m) {
            return Some(true);
        }
    }
    Some(false)
}

fn origins(core: &UnsatCore) -> Vec<ClauseOrigin> {
    core.members.iter().map(|m| m.origin).collect()
}

fn render_core(core: &UnsatCore) -> String {
    core.members
        .iter()
        .map(|m| m.text.as_str())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn explain_agrees_with_oracle_and_cores_are_sound_and_minimal() {
    let cases = env_cases("UNSAT_CORE_CASES", 256);
    let solver = Solver::new();
    let cfg = ExplainConfig::default();
    let (mut sat_cases, mut unsat_cases) = (0u64, 0u64);
    let (mut soundness_checks, mut drop_one_checks) = (0u64, 0u64);

    for seed in 0..cases {
        let Some((gp, oracle_sat)) = oracle_case(seed) else {
            continue;
        };
        let (outcome, stats) = solver
            .explain_ground(&gp, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: explain failed: {e}"));
        match outcome {
            ExplainOutcome::Satisfiable => {
                assert!(oracle_sat, "seed {seed}: explain says SAT, oracle says UNSAT");
                sat_cases += 1;
            }
            ExplainOutcome::Unsat(core) => {
                assert!(!oracle_sat, "seed {seed}: explain says UNSAT, oracle says SAT");
                assert!(!core.members.is_empty(), "seed {seed}: empty core");
                assert!(core.minimal, "seed {seed}: default budget must minimize fully");
                assert!(
                    stats.explain_core_initial >= stats.explain_core_minimized,
                    "seed {seed}: minimization grew the core"
                );
                unsat_cases += 1;

                // Soundness: no founded assignment satisfies the whole
                // core.
                let all = origins(&core);
                if let Some(sat) = groups_satisfiable(&gp, &all) {
                    assert!(
                        !sat,
                        "seed {seed}: reported core is satisfiable — not a core:\n{}",
                        render_core(&core)
                    );
                    soundness_checks += 1;

                    // Minimality: dropping any single member restores
                    // group-level satisfiability.
                    for k in 0..all.len() {
                        let mut rest = all.clone();
                        rest.remove(k);
                        let sat = groups_satisfiable(&gp, &rest)
                            .expect("same universe as the full-core check");
                        assert!(
                            sat,
                            "seed {seed}: core flagged minimal, but member {:?} ({}) is \
                             redundant-proof-resistant: the remainder is still unsatisfiable\n{}",
                            core.members[k].origin,
                            core.members[k].text,
                            render_core(&core)
                        );
                        drop_one_checks += 1;
                    }
                }
            }
        }
    }
    assert!(
        sat_cases >= 20 && unsat_cases >= 20,
        "corpus skew ({sat_cases} SAT / {unsat_cases} UNSAT) — generator drift?"
    );
    assert!(
        soundness_checks >= 20 && drop_one_checks >= 40,
        "too few brute-force checks ran ({soundness_checks} soundness, {drop_one_checks} drop-one)"
    );
}

#[test]
fn cores_are_identical_under_every_engine_config() {
    let cases = env_cases("UNSAT_CORE_CASES", 256);
    let configs = matrix();
    let cfg = ExplainConfig::default();
    let mut unsat_cases = 0u64;

    for seed in 0..cases {
        let Some((gp, oracle_sat)) = oracle_case(seed) else {
            continue;
        };
        if oracle_sat {
            continue;
        }
        unsat_cases += 1;
        let mut reference_core: Option<(Vec<String>, bool)> = None;
        for (name, config) in &configs {
            let (outcome, _) = Solver::with_config(config.clone())
                .explain_ground(&gp, &cfg)
                .unwrap_or_else(|e| panic!("seed {seed}, config {name}: {e}"));
            let ExplainOutcome::Unsat(core) = outcome else {
                panic!("seed {seed}, config {name}: lost unsatisfiability")
            };
            let rendered: Vec<String> = core.members.iter().map(|m| m.text.clone()).collect();
            match &reference_core {
                None => reference_core = Some((rendered, core.minimal)),
                Some((want, want_minimal)) => {
                    assert_eq!(
                        want, &rendered,
                        "seed {seed}: core under {name} differs from {}",
                        configs[0].0
                    );
                    assert_eq!(want_minimal, &core.minimal, "seed {seed}, config {name}");
                }
            }
        }
    }
    assert!(unsat_cases >= 20, "only {unsat_cases} UNSAT cases scanned");
}

#[test]
fn corpus_seeds_explain_deterministically() {
    // The committed fuzz corpus, same parsing idiom as the solver
    // matrix: every program seed must explain identically twice in a
    // row (exact member texts), and source-rule provenance must stay in
    // bounds.
    let corpus = include_str!("../corpus/seeds.txt");
    let solver = Solver::new();
    let cfg = ExplainConfig::default();
    let mut ran = 0;
    for line in corpus.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let seed: u64 = match line.strip_prefix("program:") {
            Some(s) => s.trim().parse().unwrap(),
            None => match line.strip_prefix("repo:") {
                Some(_) => continue,
                None => line.parse().unwrap(),
            },
        };
        let mut rng = TestRng::seed_from_u64(seed);
        let prog = random_program(&mut rng);
        let nrules = prog.rules.len() as u32;
        let gp = ground(&prog).unwrap();
        let render = |o: &ExplainOutcome| match o {
            ExplainOutcome::Satisfiable => Vec::new(),
            ExplainOutcome::Unsat(core) => {
                for m in &core.members {
                    if let Some(src) = m.src_rule {
                        assert!(
                            src < nrules,
                            "corpus seed {seed}: src_rule {src} out of bounds ({nrules} rules)"
                        );
                    }
                }
                core.members.iter().map(|m| m.text.clone()).collect()
            }
        };
        let (first, _) = solver.explain_ground(&gp, &cfg).unwrap();
        let (second, _) = solver.explain_ground(&gp, &cfg).unwrap();
        assert_eq!(
            render(&first),
            render(&second),
            "corpus seed {seed}: explain is not deterministic"
        );
        ran += 1;
    }
    assert!(ran >= 4, "corpus unexpectedly small ({ran} program cases)");
}
