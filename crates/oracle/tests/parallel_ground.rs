//! Parallel-grounding equivalence suite: the grounded program — and
//! everything downstream of it — must be *bit-identical* at every
//! thread count.
//!
//! Three corpora drive the check:
//!
//! * 256 random programs from the differential generator (fixed seeds,
//!   so failures replay without `PROPTEST_SEED` plumbing);
//! * the committed fuzz seed corpus (`corpus/seeds.txt`), so every seed
//!   that ever exposed an engine bug also gates the parallel grounder;
//! * hand-written hardening programs covering the constructs with the
//!   trickiest emission ordering (recursive joins, bounded choices with
//!   conditions, constraints, multi-priority minimization).
//!
//! For each program we require, at 1 vs 2 vs 8 grounding threads:
//! identical ground rules / choices / constraints / minimize terms
//! (including atom *numbering* — the `AtomId`-valued structs are
//! compared directly), identical certain/possible sets, identical atom
//! interning, and an identical solver outcome (optimal cost + model).

use proptest::TestRng;
use spackle_asp::{
    ground_parallel, parse_program, AspError, GroundLimits, GroundProgram, Program, SolveOutcome,
    Solver, SolverConfig,
};
use spackle_oracle::genprog::random_program;

const THREAD_COUNTS: [usize; 2] = [2, 8];

/// Ground at 1 thread and at each count in [`THREAD_COUNTS`]; assert
/// every representation-level field matches. Returns the sequential
/// grounding (None when the program trips a resource limit).
fn assert_grounds_identical(prog: &Program, label: &str) -> Option<GroundProgram> {
    let seq = match ground_parallel(prog, GroundLimits::default(), 1) {
        Ok(g) => g,
        Err(AspError::ResourceLimit(_)) => return None,
        Err(e) => panic!("{label}: sequential grounding failed: {e}\n{prog}"),
    };
    for &threads in &THREAD_COUNTS {
        let par = ground_parallel(prog, GroundLimits::default(), threads)
            .unwrap_or_else(|e| panic!("{label}: grounding at {threads} threads failed: {e}"));
        assert_eq!(seq.rules, par.rules, "{label}: rules differ at {threads} threads");
        assert_eq!(
            seq.choices, par.choices,
            "{label}: choices differ at {threads} threads"
        );
        assert_eq!(
            seq.constraints, par.constraints,
            "{label}: constraints differ at {threads} threads"
        );
        assert_eq!(
            seq.minimize, par.minimize,
            "{label}: minimize terms differ at {threads} threads"
        );
        assert_eq!(
            seq.certain, par.certain,
            "{label}: certain sets differ at {threads} threads"
        );
        assert_eq!(
            seq.possible, par.possible,
            "{label}: possible sets differ at {threads} threads"
        );
        assert_eq!(
            seq.atom_count(),
            par.atom_count(),
            "{label}: atom interning differs at {threads} threads"
        );
        for &a in &seq.possible {
            assert_eq!(
                seq.store.format_atom(a),
                par.store.format_atom(a),
                "{label}: atom id {a:?} names different atoms at {threads} threads"
            );
        }
    }
    Some(seq)
}

/// `None` = unsat; `Some` = (optimal cost vector, rendered model).
type Outcome = Option<(Vec<(i64, i64)>, Vec<String>)>;

/// Solve at every thread count and assert identical outcomes: same
/// sat/unsat answer, same optimal cost vector, same rendered model.
fn assert_solves_identical(prog: &Program, label: &str) {
    let mut outcomes: Vec<Outcome> = Vec::new();
    for threads in std::iter::once(1).chain(THREAD_COUNTS) {
        let config = SolverConfig {
            ground_threads: threads,
            ..Default::default()
        };
        match Solver::with_config(config).solve(prog) {
            Ok((SolveOutcome::Unsat, _)) => outcomes.push(None),
            Ok((SolveOutcome::Optimal(m), _)) => outcomes.push(Some((m.cost.clone(), m.render()))),
            Err(AspError::ResourceLimit(_)) => return,
            Err(e) => panic!("{label}: solve at {threads} threads failed: {e}\n{prog}"),
        }
    }
    for (i, o) in outcomes.iter().enumerate().skip(1) {
        assert_eq!(
            &outcomes[0], o,
            "{label}: solver outcome differs between 1 thread and {} threads",
            if i == 1 { THREAD_COUNTS[0] } else { THREAD_COUNTS[1] }
        );
    }
}

#[test]
fn random_programs_ground_identically_across_threads() {
    let mut checked = 0;
    for seed in 0u64..256 {
        let mut rng = TestRng::seed_from_u64(seed);
        let prog = random_program(&mut rng);
        let label = format!("random seed {seed}");
        if assert_grounds_identical(&prog, &label).is_some() {
            assert_solves_identical(&prog, &label);
            checked += 1;
        }
    }
    assert!(checked >= 200, "too many skipped cases ({checked} checked)");
}

#[test]
fn corpus_seeds_ground_identically_across_threads() {
    let corpus = include_str!("../corpus/seeds.txt");
    let mut ran = 0;
    for line in corpus.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        // Repo-case seeds exercise the concretizer, not raw programs;
        // program-case and bare seeds both drive the program generator.
        let seed: u64 = match line.strip_prefix("program:") {
            Some(s) => s.trim().parse().unwrap(),
            None => match line.strip_prefix("repo:") {
                Some(_) => continue,
                None => line.parse().unwrap(),
            },
        };
        let mut rng = TestRng::seed_from_u64(seed);
        let prog = random_program(&mut rng);
        let label = format!("corpus seed {seed}");
        if assert_grounds_identical(&prog, &label).is_some() {
            assert_solves_identical(&prog, &label);
        }
        ran += 1;
    }
    assert!(ran >= 4, "corpus unexpectedly small ({ran} program cases)");
}

/// Constructs with the most delicate deterministic-merge paths, written
/// out by hand so a generator change can never silently stop covering
/// them.
const HARDENING_PROGRAMS: &[(&str, &str)] = &[
    (
        "recursive-join",
        "node(a). node(b). node(c). node(d).\n\
         edge(a,b). edge(b,c). edge(c,d). edge(d,a). edge(b,d).\n\
         path(X,Y) :- edge(X,Y).\n\
         path(X,Z) :- path(X,Y), edge(Y,Z).\n\
         reach(X) :- path(a,X).\n",
    ),
    (
        "bounded-choice-with-conditions",
        "opt(x). opt(y). opt(z). good(x). good(z).\n\
         1 { pick(O) : opt(O) } 2.\n\
         :- pick(O), not good(O).\n\
         #minimize { 1@1,O : pick(O) }.\n",
    ),
    (
        "negation-and-comparisons",
        "n(1). n(2). n(3). n(4).\n\
         big(X) :- n(X), X > 2.\n\
         small(X) :- n(X), not big(X).\n\
         pair(X,Y) :- small(X), big(Y), X < Y.\n\
         :- pair(2,3), not n(4).\n",
    ),
    (
        "multi-priority-minimize",
        "item(a). item(b). item(c).\n\
         cost(a,3). cost(b,1). cost(c,2).\n\
         1 { take(I) : item(I) } 3.\n\
         taken :- take(a).\n\
         #minimize { C@2,I : take(I), cost(I,C) }.\n\
         #minimize { 1@1,I : take(I) }.\n",
    ),
];

#[test]
fn hardening_programs_ground_identically_across_threads() {
    for (name, text) in HARDENING_PROGRAMS {
        let prog = parse_program(text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        let gp = assert_grounds_identical(&prog, name).unwrap_or_else(|| {
            panic!("{name}: hardening program unexpectedly hit a resource limit")
        });
        assert!(
            gp.rules.len() + gp.choices.len() + gp.constraints.len() > 0,
            "{name}: hardening program grounded to nothing"
        );
        assert_solves_identical(&prog, name);
    }
}
