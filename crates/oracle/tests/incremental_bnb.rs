//! Incremental branch-and-bound: retaining learned clauses across the
//! lexicographic `#minimize` bound-tightening loop must change *work*,
//! never *answers*.
//!
//! Two checks, both over fixed seeds (the whole stack is deterministic,
//! so these replay bit-for-bit):
//!
//! * **Answer equivalence** — for every random program, the optimum
//!   found with clause retention equals the from-scratch optimum, and
//!   both agree on satisfiability.
//! * **Work reduction** — across the suite, the incremental engine
//!   resolves strictly fewer conflicts than the from-scratch engine
//!   (which relearns everything after each bound), and never does
//!   worse on any single optimization-heavy case by more than noise.

use proptest::TestRng;
use spackle_asp::{parse_program, SolveOutcome, Solver, SolverConfig};
use spackle_oracle::genprog::random_program;

fn incremental_config() -> SolverConfig {
    SolverConfig::default()
}

fn scratch_config() -> SolverConfig {
    SolverConfig {
        incremental_bnb: false,
        ..SolverConfig::default()
    }
}

#[test]
fn retained_clauses_never_change_the_optimum() {
    let mut optimization_cases = 0u64;
    let mut inc_conflicts = 0u64;
    let mut scr_conflicts = 0u64;
    for seed in 0..256u64 {
        let mut rng = TestRng::seed_from_u64(seed);
        let prog = random_program(&mut rng);

        let inc = Solver::with_config(incremental_config()).solve(&prog);
        let scr = Solver::with_config(scratch_config()).solve(&prog);
        match (inc, scr) {
            (Err(a), Err(b)) => assert_eq!(
                a.to_string(),
                b.to_string(),
                "[seed {seed}] error kind differs between modes"
            ),
            (Ok((a, sa)), Ok((b, sb))) => {
                match (&a, &b) {
                    (SolveOutcome::Unsat, SolveOutcome::Unsat) => {}
                    (SolveOutcome::Optimal(ma), SolveOutcome::Optimal(mb)) => {
                        assert_eq!(
                            ma.cost, mb.cost,
                            "[seed {seed}] optima differ: incremental {:?} vs scratch {:?}\n\
                             program:\n{prog}",
                            ma.cost, mb.cost
                        );
                    }
                    _ => panic!("[seed {seed}] satisfiability differs\nprogram:\n{prog}"),
                }
                if matches!(&a, SolveOutcome::Optimal(m) if !m.cost.is_empty()) {
                    optimization_cases += 1;
                    inc_conflicts += sa.conflicts;
                    scr_conflicts += sb.conflicts;
                }
            }
            (Err(e), Ok(_)) => panic!("[seed {seed}] only incremental mode errored: {e}"),
            (Ok(_), Err(e)) => panic!("[seed {seed}] only scratch mode errored: {e}"),
        }
    }
    assert!(
        optimization_cases >= 32,
        "suite too thin: only {optimization_cases} cases exercised #minimize"
    );
    // Retention can only help: the scratch engine relearns what the
    // incremental engine kept. Equality happens when programs are so
    // small that no bound step conflicts at all.
    assert!(
        inc_conflicts <= scr_conflicts,
        "incremental B&B did MORE total work: {inc_conflicts} vs {scr_conflicts} conflicts"
    );
}

/// A deliberately conflict-heavy optimization instance: select exactly
/// half the items, minimize total weight at the high priority, then
/// count at the low priority. The descent takes several bound
/// tightenings, so retention has something to retain.
const KNAPSACK: &str = "
item(i1). item(i2). item(i3). item(i4). item(i5). item(i6). item(i7). item(i8).
w(i1,7). w(i2,3). w(i3,9). w(i4,2). w(i5,8). w(i6,4). w(i7,6). w(i8,5).
4 { sel(I) : item(I) } 4.
conflictpair(i1,i2). conflictpair(i3,i4). conflictpair(i5,i6).
:- conflictpair(A,B), sel(A), sel(B).
#minimize { W@2,I : sel(I), w(I,W) }.
#minimize { 1@1,I : sel(I) }.
";

#[test]
fn retention_reduces_conflicts_on_descent_heavy_instance() {
    let prog = parse_program(KNAPSACK).unwrap();

    let (inc_out, inc_stats) = Solver::with_config(incremental_config())
        .solve(&prog)
        .unwrap();
    let (scr_out, scr_stats) = Solver::with_config(scratch_config()).solve(&prog).unwrap();

    let (inc_m, scr_m) = match (inc_out, scr_out) {
        (SolveOutcome::Optimal(a), SolveOutcome::Optimal(b)) => (a, b),
        _ => panic!("knapsack must be satisfiable in both modes"),
    };
    assert_eq!(inc_m.cost, scr_m.cost, "optima must agree");
    assert!(
        !inc_m.cost.is_empty(),
        "instance must actually exercise #minimize"
    );

    // The scratch engine relearns across bound steps; retention must
    // show up as strictly fewer conflicts on this descent-heavy
    // instance (deterministic: 21 vs 34 at the time of writing).
    assert!(
        inc_stats.conflicts < scr_stats.conflicts,
        "retention no longer reduces conflicts: {} vs {}",
        inc_stats.conflicts,
        scr_stats.conflicts
    );
    assert!(inc_stats.decisions > 0 && scr_stats.decisions > 0);
}
