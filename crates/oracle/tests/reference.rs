//! Ground-truth checks for the brute-force reference solver itself, on
//! textbook programs with hand-computed answer sets and optima. If
//! these fail, the oracle is wrong and every differential result is
//! meaningless — so they are deliberately simple and exhaustive.

use spackle_asp::ground::ground;
use spackle_asp::parse_program;
use spackle_oracle::reference::{self, DEFAULT_MAX_FREE_ATOMS};

fn models_of(text: &str) -> Vec<Vec<String>> {
    let gp = ground(&parse_program(text).unwrap()).unwrap();
    let models = reference::stable_models(&gp, DEFAULT_MAX_FREE_ATOMS).unwrap();
    let mut out: Vec<Vec<String>> = models.iter().map(|m| reference::render(&gp, m)).collect();
    out.sort();
    out
}

fn best_cost_of(text: &str) -> Option<Vec<(i64, i64)>> {
    let gp = ground(&parse_program(text).unwrap()).unwrap();
    let sol = reference::solve(&gp, DEFAULT_MAX_FREE_ATOMS).unwrap();
    sol.best_cost().map(|c| c.to_vec())
}

#[test]
fn facts_have_one_model() {
    assert_eq!(models_of("a. b :- a."), vec![vec!["a", "b"]]);
}

#[test]
fn even_negation_loop_has_two_models() {
    assert_eq!(
        models_of("a :- not b. b :- not a."),
        vec![vec!["a"], vec!["b"]]
    );
}

#[test]
fn odd_negation_loop_has_no_model() {
    assert!(models_of("a :- not a.").is_empty());
}

#[test]
fn positive_loop_is_unfounded() {
    // Without c, the a/b loop has no external support; with c, the
    // whole loop derives.
    let empty: Vec<String> = Vec::new();
    let full: Vec<String> = ["a", "b", "c"].map(String::from).to_vec();
    assert_eq!(
        models_of("{ c }. a :- c. a :- b. b :- a."),
        vec![empty, full]
    );
}

#[test]
fn free_choice_powerset() {
    assert_eq!(models_of("{ a }. { b }. { c }.").len(), 8);
}

#[test]
fn cardinality_bounds_prune_powerset() {
    // Exactly-one over three atoms.
    let ms = models_of("1 { a ; b ; c } 1.");
    assert_eq!(ms, vec![vec!["a"], vec!["b"], vec!["c"]]);
}

#[test]
fn guarded_choice_bounds_only_apply_when_body_holds() {
    // When g is false the bound is vacuous and a,b are simply unfounded.
    let ms = models_of("{ g }. 2 { a ; b } 2 :- g.");
    assert_eq!(ms, vec![vec![], vec!["a", "b", "g"]]);
}

#[test]
fn constraints_filter_models() {
    assert_eq!(models_of("{ a }. { b }. :- a, b."), {
        let mut v: Vec<Vec<String>> = vec![
            vec![],
            vec!["a".to_string()],
            vec!["b".to_string()],
        ];
        v.sort();
        v
    });
}

#[test]
fn path_two_coloring_count() {
    let ms = models_of(
        r#"
        node(1). node(2). node(3).
        edge(1,2). edge(2,3).
        col("r"). col("g").
        1 { c(N,C) : col(C) } 1 :- node(N).
        :- edge(A,B), c(A,C), c(B,C).
    "#,
    );
    assert_eq!(ms.len(), 2);
}

#[test]
fn minimize_picks_cheapest() {
    let best = best_cost_of(
        r#"
        cand("x"). cand("y").
        1 { pick(V) : cand(V) } 1.
        cost("x", 1). cost("y", 2).
        #minimize { C@1,V : pick(V), cost(V, C) }.
    "#,
    );
    assert_eq!(best, Some(vec![(1, 1)]));
}

#[test]
fn lexicographic_priorities_order_descending() {
    let best = best_cost_of(
        r#"
        opt("a"). opt("b").
        1 { pick(V) : opt(V) } 1.
        p2cost("a", 5). p2cost("b", 1).
        p1cost("a", 0). p1cost("b", 100).
        #minimize { C@2,V : pick(V), p2cost(V, C) }.
        #minimize { C@1,V : pick(V), p1cost(V, C) }.
    "#,
    );
    // Priority 2 dominates: choose "b" despite its worse priority-1 cost.
    assert_eq!(best, Some(vec![(2, 1), (1, 100)]));
}

#[test]
fn minimize_counts_each_tuple_once() {
    let best = best_cost_of(
        r#"
        a. b.
        #minimize { 7@1,"same" : a ; 7@1,"same" : b }.
    "#,
    );
    assert_eq!(best, Some(vec![(1, 7)]));
}

#[test]
fn unsat_has_no_best_cost() {
    assert_eq!(best_cost_of("a. :- a."), None);
}

#[test]
fn too_large_is_reported_not_attempted() {
    // 20 free atoms from independent choices exceed a cap of 8.
    let text: String = (0..20).map(|i| format!("{{ x{i} }}. ")).collect();
    let gp = ground(&parse_program(&text).unwrap()).unwrap();
    assert!(matches!(
        reference::stable_models(&gp, 8),
        Err(reference::OracleError::TooLarge { free: 20, max: 8 })
    ));
}
