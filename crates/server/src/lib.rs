#![warn(missing_docs)]

//! # spackle-server — `spackled`, the long-lived concretization service
//!
//! PR 5's ground-program memoization makes warm solves ~2.5× faster,
//! but a cold CLI process throws the warm state away every time. This
//! crate keeps it resident: `spackled` owns a [`Repository`] snapshot,
//! chained [`CacheSource`] indexes, and one shared warm
//! [`GroundCache`], and serves concurrent concretize / audit / stats /
//! invalidate requests over a line-delimited JSON protocol on TCP —
//! the production shape of the source paper's story, where one mirror
//! index serves many users' solves.
//!
//! Layout:
//!
//! * [`protocol`] — the flat request/response wire types;
//! * [`server`] — [`ServerState`] (the resident memory), the accept
//!   loop, and per-connection worker threads;
//! * [`session`] — per-connection defaults and the last solution;
//! * [`handle`] — socket-free request dispatch (unit-testable);
//! * [`telemetry`] — lock-free counters behind the `stats` op;
//! * [`client`] — the blocking reference client.
//!
//! Everything rides on the shared-state concretizer API: a request
//! builds a throwaway [`Concretizer`] from `Arc` handles, so N
//! connections solve in parallel against one set of indexes, and
//! `invalidate` swaps the repository snapshot without disturbing
//! in-flight solves.
//!
//! [`Repository`]: spackle_repo::Repository
//! [`CacheSource`]: spackle_buildcache::CacheSource
//! [`GroundCache`]: spackle_core::GroundCache
//! [`Concretizer`]: spackle_core::Concretizer
//! [`ServerState`]: server::ServerState

pub mod client;
pub mod handle;
pub mod protocol;
pub mod server;
pub mod session;
pub mod telemetry;

pub use client::{Client, RetryConfig};
pub use protocol::{Request, Response, MAX_LINE_BYTES, PROTOCOL_VERSION};
pub use server::{serve, DrainReport, OpsConfig, ServerError, ServerHandle, ServerState};
pub use session::{config_preset, Session};
pub use telemetry::{Telemetry, TelemetrySnapshot};
