//! Service telemetry: lock-free counters shared by every worker thread.
//!
//! All counters are monotonic atomics except `in_flight`, a gauge
//! maintained by [`InFlightGuard`] (RAII, so a panicking handler still
//! decrements). The `stats` request snapshots everything; snapshots are
//! *per-counter* consistent (each value is an atomic load) but not a
//! single cross-counter transaction — good enough for monitoring, and
//! the price of staying off every hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Cumulative service counters plus the in-flight gauge.
#[derive(Debug)]
pub struct Telemetry {
    started: Instant,
    requests: AtomicU64,
    concretizations: AtomicU64,
    failures: AtomicU64,
    in_flight: AtomicU64,
    solve_us_total: AtomicU64,
    solve_us_max: AtomicU64,
    conflicts: AtomicU64,
    decisions: AtomicU64,
    propagations: AtomicU64,
    restarts: AtomicU64,
    shed: AtomicU64,
    updates: AtomicU64,
    timeouts: AtomicU64,
    budget_exhausted: AtomicU64,
    degraded_solves: AtomicU64,
    worker_panics: AtomicU64,
    explains: AtomicU64,
    explains_partial: AtomicU64,
    explain_probes: AtomicU64,
    explain_core_members: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// Fresh telemetry; the uptime clock starts now.
    pub fn new() -> Telemetry {
        Telemetry {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            concretizations: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            solve_us_total: AtomicU64::new(0),
            solve_us_max: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
            decisions: AtomicU64::new(0),
            propagations: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            budget_exhausted: AtomicU64::new(0),
            degraded_solves: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            explains: AtomicU64::new(0),
            explains_partial: AtomicU64::new(0),
            explain_probes: AtomicU64::new(0),
            explain_core_members: AtomicU64::new(0),
        }
    }

    /// Count one incoming request and raise the in-flight gauge; the
    /// returned guard lowers it again when dropped.
    pub fn begin_request(&self) -> InFlightGuard<'_> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlightGuard { telemetry: self }
    }

    /// Record one finished concretization attempt.
    pub fn record_solve(&self, wall: Duration, ok: bool) {
        if ok {
            self.concretizations.fetch_add(1, Ordering::Relaxed);
        }
        let us = wall.as_micros().min(u128::from(u64::MAX)) as u64;
        self.solve_us_total.fetch_add(us, Ordering::Relaxed);
        self.solve_us_max.fetch_max(us, Ordering::Relaxed);
    }

    /// Record the SAT-search effort behind one concretization (the ASP
    /// engine's own `SolveStats` counters, summed service-wide).
    pub fn record_search(&self, conflicts: u64, decisions: u64, propagations: u64, restarts: u64) {
        self.conflicts.fetch_add(conflicts, Ordering::Relaxed);
        self.decisions.fetch_add(decisions, Ordering::Relaxed);
        self.propagations.fetch_add(propagations, Ordering::Relaxed);
        self.restarts.fetch_add(restarts, Ordering::Relaxed);
    }

    /// Record one failed request (any operation).
    pub fn record_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request shed by overload protection. Shed requests are
    /// deliberately *not* failures: the client did nothing wrong and the
    /// structured `overloaded` response tells it when to retry.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one applied repository delta (`update` request).
    pub fn record_update(&self) {
        self.updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one concretize request that hit its wall-clock deadline.
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one concretize request that exhausted the conflict budget.
    pub fn record_budget_exhausted(&self) {
        self.budget_exhausted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one solve that completed degraded (sources skipped).
    pub fn record_degraded(&self) {
        self.degraded_solves.fetch_add(1, Ordering::Relaxed);
    }

    /// Record worker threads found panicked at drain time.
    pub fn record_worker_panics(&self, n: u64) {
        self.worker_panics.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one unsat explanation: how many core members survived
    /// minimization, how many deletion probes it cost, and whether
    /// minimization stopped early (`partial`).
    pub fn record_explain(&self, core_members: u64, probes: u64, partial: bool) {
        self.explains.fetch_add(1, Ordering::Relaxed);
        if partial {
            self.explains_partial.fetch_add(1, Ordering::Relaxed);
        }
        self.explain_probes.fetch_add(probes, Ordering::Relaxed);
        self.explain_core_members
            .fetch_add(core_members, Ordering::Relaxed);
    }

    /// Current in-flight gauge (cheap single load; used by overload
    /// protection on the request hot path).
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Snapshot every counter.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            concretizations: self.concretizations.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            total_solve: Duration::from_micros(self.solve_us_total.load(Ordering::Relaxed)),
            max_solve: Duration::from_micros(self.solve_us_max.load(Ordering::Relaxed)),
            uptime: self.started.elapsed(),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            decisions: self.decisions.load(Ordering::Relaxed),
            propagations: self.propagations.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            budget_exhausted: self.budget_exhausted.load(Ordering::Relaxed),
            degraded_solves: self.degraded_solves.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            explains: self.explains.load(Ordering::Relaxed),
            explains_partial: self.explains_partial.load(Ordering::Relaxed),
            explain_probes: self.explain_probes.load(Ordering::Relaxed),
            explain_core_members: self.explain_core_members.load(Ordering::Relaxed),
        }
    }
}

/// RAII in-flight decrement (see [`Telemetry::begin_request`]).
#[derive(Debug)]
pub struct InFlightGuard<'a> {
    telemetry: &'a Telemetry,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.telemetry.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One point-in-time view of the counters.
#[derive(Clone, Debug)]
pub struct TelemetrySnapshot {
    /// Requests handled since boot (all operations).
    pub requests: u64,
    /// Successful concretizations since boot.
    pub concretizations: u64,
    /// Failed requests since boot.
    pub failures: u64,
    /// Requests currently in flight.
    pub in_flight: u64,
    /// Total concretization wall time since boot.
    pub total_solve: Duration,
    /// Slowest single concretization since boot.
    pub max_solve: Duration,
    /// Time since boot.
    pub uptime: Duration,
    /// SAT conflicts resolved across all concretizations.
    pub conflicts: u64,
    /// SAT decisions made across all concretizations.
    pub decisions: u64,
    /// SAT literal propagations across all concretizations.
    pub propagations: u64,
    /// SAT restarts performed across all concretizations.
    pub restarts: u64,
    /// Requests shed by overload protection.
    pub shed: u64,
    /// Repository deltas applied via the `update` request.
    pub updates: u64,
    /// Concretize requests that hit their deadline.
    pub timeouts: u64,
    /// Concretize requests that exhausted the conflict budget.
    pub budget_exhausted: u64,
    /// Solves that completed degraded.
    pub degraded_solves: u64,
    /// Worker threads that panicked.
    pub worker_panics: u64,
    /// Unsat explanations produced.
    pub explains: u64,
    /// Explanations whose minimization stopped early.
    pub explains_partial: u64,
    /// Deletion probes run across all explanations.
    pub explain_probes: u64,
    /// Core members reported across all explanations (post-minimization).
    pub explain_core_members: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_across_threads() {
        let t = Arc::new(Telemetry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        let _guard = t.begin_request();
                        t.record_solve(Duration::from_micros(i), i % 10 != 0);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let s = t.snapshot();
        assert_eq!(s.requests, 400);
        assert_eq!(s.concretizations, 4 * 90);
        assert_eq!(s.in_flight, 0, "every guard dropped");
        assert_eq!(s.max_solve, Duration::from_micros(99));
        assert_eq!(s.total_solve, Duration::from_micros(4 * 99 * 100 / 2));
    }

    #[test]
    fn search_effort_accumulates_exactly() {
        let t = Arc::new(Telemetry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        t.record_search(i, 2 * i, 10 * i, i % 3);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let s = t.snapshot();
        let tri = 49 * 50 / 2; // sum 0..50
        assert_eq!(s.conflicts, 4 * tri);
        assert_eq!(s.decisions, 8 * tri);
        assert_eq!(s.propagations, 40 * tri);
        assert_eq!(s.restarts, 4 * (0..50u64).map(|i| i % 3).sum::<u64>());
    }

    #[test]
    fn in_flight_guard_survives_panic() {
        let t = Telemetry::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = t.begin_request();
            panic!("handler died");
        }));
        assert!(result.is_err());
        assert_eq!(t.snapshot().in_flight, 0, "guard ran on unwind");
    }
}
