//! A minimal blocking client for the `spackled` protocol — used by the
//! integration tests, the `--smoke` self-check, and as the reference
//! implementation for external clients (the protocol is just
//! line-delimited JSON; see `protocol.rs`).

use crate::protocol::{Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a running `spackled`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            next_id: 0,
        })
    }

    /// Send one request and block for its response. Stamps a fresh
    /// correlation id and verifies the server echoed it.
    pub fn call(&mut self, mut request: Request) -> Result<Response, String> {
        self.next_id += 1;
        request.id = self.next_id;
        let line = request.to_line();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send: {e}"))?;

        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) => return Err("server closed the connection".to_string()),
            Ok(_) => {}
            Err(e) => return Err(format!("recv: {e}")),
        }
        let response = Response::from_line(reply.trim())?;
        if response.id != request.id {
            return Err(format!(
                "correlation mismatch: sent id {} got {}",
                request.id, response.id
            ));
        }
        Ok(response)
    }

    /// `concretize` one spec with the session-default configuration.
    pub fn concretize(&mut self, spec: &str) -> Result<Response, String> {
        self.call(Request::concretize(spec))
    }

    /// Fetch the service counters.
    pub fn stats(&mut self) -> Result<Response, String> {
        self.call(Request::op("stats"))
    }

    /// Trigger a repository reload / ground-cache invalidation.
    pub fn invalidate(&mut self) -> Result<Response, String> {
        self.call(Request::op("invalidate"))
    }

    /// Ask the server to stop accepting and drain.
    pub fn shutdown(&mut self) -> Result<Response, String> {
        self.call(Request::op("shutdown"))
    }
}
