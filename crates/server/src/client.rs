//! A minimal blocking client for the `spackled` protocol — used by the
//! integration tests, the `--smoke` self-check, and as the reference
//! implementation for external clients (the protocol is just
//! line-delimited JSON; see `protocol.rs`).
//!
//! Two calling conventions:
//!
//! * [`Client::call`] — one attempt, transport errors surface raw;
//! * [`Client::call_retrying`] — reconnect-and-resend on transport
//!   failure and back off on structured `overloaded` responses, under a
//!   [`RetryConfig`] with capped exponential backoff and an optional
//!   total deadline. Only *transport* errors and explicit shed
//!   responses retry; an `ok:false` answer the server actually
//!   computed (bad spec, unsat, timeout, ...) is returned as-is —
//!   retrying it would just repeat the work for the same answer.

use crate::protocol::{Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Backoff policy for [`Client::connect_with`] and
/// [`Client::call_retrying`].
#[derive(Clone, Copy, Debug)]
pub struct RetryConfig {
    /// Total attempts (first try included). `1` means no retries.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep (also caps a server-suggested
    /// `retry_after_ms`).
    pub max_backoff: Duration,
    /// Overall budget across all attempts and sleeps. `None` means the
    /// attempt count is the only bound.
    pub total_deadline: Option<Duration>,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            max_attempts: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            total_deadline: None,
        }
    }
}

impl RetryConfig {
    /// A policy that never retries (one attempt, no sleeps).
    pub fn none() -> RetryConfig {
        RetryConfig {
            max_attempts: 1,
            ..RetryConfig::default()
        }
    }

    /// The sleep before retry number `retry` (1-based): capped
    /// exponential, deterministic.
    fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(16);
        (self.base_backoff * factor).min(self.max_backoff)
    }
}

/// One connection to a running `spackled`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    peer: SocketAddr,
    retry: RetryConfig,
}

impl Client {
    /// Connect to a server (one attempt; see [`Client::connect_with`]
    /// for a retrying connect).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        Client::from_stream(writer, RetryConfig::none())
    }

    /// Connect with retries: transient connection failures (daemon still
    /// booting, listen backlog full) back off and try again under
    /// `retry`'s attempt, backoff, and deadline budget. The policy is
    /// kept on the client and also governs [`Client::call_retrying`].
    pub fn connect_with(addr: impl ToSocketAddrs, retry: RetryConfig) -> std::io::Result<Client> {
        let started = Instant::now();
        let mut last_err = None;
        for attempt in 1..=retry.max_attempts.max(1) {
            match TcpStream::connect(&addr) {
                Ok(stream) => return Client::from_stream(stream, retry),
                Err(e) => last_err = Some(e),
            }
            if attempt < retry.max_attempts.max(1) {
                let sleep = retry.backoff(attempt);
                if out_of_budget(started, retry.total_deadline, sleep) {
                    break;
                }
                std::thread::sleep(sleep);
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::TimedOut, "connect retries exhausted")
        }))
    }

    fn from_stream(writer: TcpStream, retry: RetryConfig) -> std::io::Result<Client> {
        let peer = writer.peer_addr()?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            next_id: 0,
            peer,
            retry,
        })
    }

    /// Drop the broken connection and dial the same peer again. The
    /// correlation-id counter keeps counting up, so responses from the
    /// old and new connection can never be confused.
    fn reconnect(&mut self) -> std::io::Result<()> {
        let writer = TcpStream::connect(self.peer)?;
        self.reader = BufReader::new(writer.try_clone()?);
        self.writer = writer;
        Ok(())
    }

    /// Send one request and block for its response. Stamps a fresh
    /// correlation id and verifies the server echoed it.
    pub fn call(&mut self, mut request: Request) -> Result<Response, String> {
        self.next_id += 1;
        request.id = self.next_id;
        let line = request.to_line();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send: {e}"))?;

        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) => return Err("server closed the connection".to_string()),
            Ok(_) => {}
            Err(e) => return Err(format!("recv: {e}")),
        }
        let response = Response::from_line(reply.trim())?;
        if response.id != request.id {
            return Err(format!(
                "correlation mismatch: sent id {} got {}",
                request.id, response.id
            ));
        }
        Ok(response)
    }

    /// [`Client::call`] under the client's [`RetryConfig`]: transport
    /// failures reconnect and resend; `overloaded` responses honor the
    /// server's `retry_after_ms` (capped at `max_backoff`) and resend.
    /// Any other response — success or a computed error — returns
    /// immediately.
    pub fn call_retrying(&mut self, request: Request) -> Result<Response, String> {
        let retry = self.retry;
        let started = Instant::now();
        let attempts = retry.max_attempts.max(1);
        let mut last_err = String::new();
        for attempt in 1..=attempts {
            match self.call(request.clone()) {
                Ok(response) if response.error_kind == "overloaded" && attempt < attempts => {
                    let suggested = Duration::from_millis(response.retry_after_ms)
                        .max(retry.backoff(attempt))
                        .min(retry.max_backoff);
                    if out_of_budget(started, retry.total_deadline, suggested) {
                        return Ok(response);
                    }
                    std::thread::sleep(suggested);
                }
                Ok(response) => return Ok(response),
                Err(e) if attempt < attempts => {
                    last_err = e;
                    let sleep = retry.backoff(attempt);
                    if out_of_budget(started, retry.total_deadline, sleep) {
                        break;
                    }
                    std::thread::sleep(sleep);
                    if let Err(e) = self.reconnect() {
                        last_err = format!("reconnect: {e}");
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(format!("retries exhausted: {last_err}"))
    }

    /// `concretize` one spec with the session-default configuration.
    pub fn concretize(&mut self, spec: &str) -> Result<Response, String> {
        self.call(Request::concretize(spec))
    }

    /// Fetch the service counters.
    pub fn stats(&mut self) -> Result<Response, String> {
        self.call(Request::op("stats"))
    }

    /// Trigger a repository reload / ground-cache invalidation.
    pub fn invalidate(&mut self) -> Result<Response, String> {
        self.call(Request::op("invalidate"))
    }

    /// Ask the server to stop accepting and drain.
    pub fn shutdown(&mut self) -> Result<Response, String> {
        self.call(Request::op("shutdown"))
    }
}

/// Would sleeping `next` blow the total deadline (measured from
/// `started`)?
fn out_of_budget(started: Instant, deadline: Option<Duration>, next: Duration) -> bool {
    match deadline {
        Some(total) => started.elapsed() + next > total,
        None => false,
    }
}
