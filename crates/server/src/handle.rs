//! Request dispatch: one function per operation, all funneled through
//! [`handle`]. Handlers never touch sockets — they map a parsed
//! [`Request`] plus the shared [`ServerState`] and per-connection
//! [`Session`] to a [`Response`], which keeps every operation unit
//! testable without a live server.

use crate::protocol::{Request, Response, PROTOCOL_VERSION};
use crate::server::ServerState;
use crate::session::{config_preset, Session};
use spackle_asp::CancelToken;
use spackle_audit::{audit, audit_repository, explanation_report, AuditReport, Severity};
use spackle_core::{CoreError, Goal};
use spackle_spec::{parse_spec, Sym};
use std::time::{Duration, Instant};

/// Dispatch one request. Infallible at this layer: every failure mode
/// becomes an `ok:false` response with a rendered error.
pub fn handle(state: &ServerState, session: &mut Session, request: &Request) -> Response {
    let response = match request.op.as_str() {
        "ping" => {
            let mut r = Response::ok_for(request);
            r.protocol = PROTOCOL_VERSION;
            r
        }
        "concretize" => concretize(state, session, request),
        "last" => match session.last() {
            Some(prev) => {
                let mut r = prev.clone();
                r.id = request.id;
                r.op = request.op.clone();
                r
            }
            None => Response::err_for(request, "no concretization on this connection yet"),
        },
        "set-config" => match session.set_default_config(&request.config) {
            Ok(()) => Response::ok_for(request),
            Err(e) => Response::err_for(request, e),
        },
        "audit" => run_audit(state, session, request),
        "stats" => stats(state, request),
        "update" => update(state, request),
        "invalidate" => {
            let (revision, dropped) = state.invalidate();
            let mut r = Response::ok_for(request);
            r.repo_revision = revision;
            r.invalidated = dropped as u64;
            r
        }
        "shutdown" => Response::ok_for(request),
        other => Response::err_for(request, format!("unknown op {other:?}")),
    };
    if !response.ok {
        state.telemetry().record_failure();
    }
    response
}

/// Parse the request's goal: `roots` when non-empty, else `spec`.
fn parse_goal(request: &Request) -> Result<Goal, String> {
    let texts: Vec<&str> = if request.roots.is_empty() {
        if request.spec.is_empty() {
            return Err("concretize needs a `spec` or non-empty `roots`".to_string());
        }
        vec![request.spec.as_str()]
    } else {
        request.roots.iter().map(String::as_str).collect()
    };
    let mut goal = Goal {
        roots: Vec::with_capacity(texts.len()),
        forbidden: Vec::new(),
    };
    for text in texts {
        goal.roots
            .push(parse_spec(text).map_err(|e| format!("bad spec {text:?}: {e}"))?);
    }
    for name in &request.forbid {
        goal.forbidden.push(Sym::intern(name));
    }
    Ok(goal)
}

fn concretize(state: &ServerState, session: &mut Session, request: &Request) -> Response {
    let preset = session.effective_config(&request.config);
    let config = match config_preset(preset) {
        Ok(c) => c,
        Err(e) => {
            let mut r = Response::err_for(request, e);
            r.error_kind = "config".to_string();
            return r;
        }
    };
    let goal = match parse_goal(request) {
        Ok(g) => g,
        Err(e) => {
            let mut r = Response::err_for(request, e);
            r.error_kind = "parse".to_string();
            return r;
        }
    };

    // Per-request deadline wins over the server-wide default.
    let deadline = if request.timeout_ms > 0 {
        Some(Duration::from_millis(request.timeout_ms))
    } else {
        state.ops().default_timeout
    };
    let mut conc = state.concretizer(config);
    if let Some(budget) = deadline {
        conc = conc.with_cancel(CancelToken::with_deadline(budget));
    }

    let t = Instant::now();
    let result = conc.concretize_goal(&goal);
    let wall = t.elapsed();
    state.telemetry().record_solve(wall, result.is_ok());

    match result {
        Ok(solution) => {
            let search = &solution.stats.solver;
            state.telemetry().record_search(
                search.conflicts,
                search.decisions,
                search.propagations,
                search.restarts,
            );
            if solution.stats.degraded {
                state.telemetry().record_degraded();
            }
            let mut r = Response::ok_for(request);
            r.conflicts = search.conflicts;
            r.decisions = search.decisions;
            r.propagations = search.propagations;
            r.restarts = search.restarts;
            r.hashes = solution
                .specs
                .iter()
                .map(|s| s.dag_hash().to_string())
                .collect();
            r.reused = solution.reused.iter().map(|s| s.as_str().to_string()).collect();
            r.built = solution.built.iter().map(|s| s.as_str().to_string()).collect();
            r.spliced = solution.spliced.len() as u64;
            r.ground_cache_hit = solution.stats.ground_cache_hit;
            r.solve_ms = wall.as_secs_f64() * 1e3;
            r.degraded = solution.stats.degraded;
            r.skipped_sources = solution
                .stats
                .skipped_sources
                .iter()
                .map(|s| s.backend.clone())
                .collect();
            session.remember(&r);
            r
        }
        Err(e) => {
            let mut r = Response::err_for(request, e.to_string());
            r.error_kind = e.kind().to_string();
            r.solve_ms = wall.as_secs_f64() * 1e3;
            // Explain-on-unsat: the client opted in, so spend (deadline
            // permitting — the concretizer's cancel token still governs
            // the extractor) on a provenance-mapped unsat core. A core
            // that ran out of budget mid-minimization still ships, just
            // flagged non-minimal; an extractor failure ships the plain
            // unsat answer rather than masking it.
            if request.explain && matches!(e, CoreError::Unsatisfiable) {
                if let Ok(Some(ex)) = conc.explain_goal(&goal) {
                    let label = if request.roots.is_empty() {
                        request.spec.clone()
                    } else {
                        request.roots.join(", ")
                    };
                    let report = explanation_report(&state.repo_snapshot(), &label, &ex);
                    r.explanation = report.render_json();
                    r.explain_minimal = ex.minimal;
                    r.explain_core_size = ex.entries.len() as u64;
                    r.explain_probes = ex.probes;
                    state.telemetry().record_explain(
                        ex.entries.len() as u64,
                        ex.probes,
                        !ex.minimal,
                    );
                }
            }
            match e {
                CoreError::Cancelled { deadline: true } => state.telemetry().record_timeout(),
                // Budget exhaustion carries the solver's effort counters;
                // surface them so a client can see *how hard* the solver
                // tried before giving up.
                CoreError::BudgetExhausted {
                    conflicts,
                    decisions,
                    propagations,
                    restarts,
                } => {
                    state.telemetry().record_budget_exhausted();
                    r.conflicts = conflicts;
                    r.decisions = decisions;
                    r.propagations = propagations;
                    r.restarts = restarts;
                }
                _ => {}
            }
            r
        }
    }
}

/// Audit the resident repository; when the request names a goal spec,
/// also audit the exact ASP program a solve of that goal would hand the
/// solver (the concretizer reads `attr` and `splice_to` from models).
fn run_audit(state: &ServerState, session: &mut Session, request: &Request) -> Response {
    let repo = state.repo_snapshot();
    let mut report = AuditReport::new(audit_repository(&repo));

    if !request.spec.is_empty() {
        let preset = session.effective_config(&request.config);
        let config = match config_preset(preset) {
            Ok(c) => c,
            Err(e) => return Response::err_for(request, e),
        };
        let goal = match parse_goal(request) {
            Ok(g) => g,
            Err(e) => return Response::err_for(request, e),
        };
        let encoded = match state.concretizer(config).program_text(&goal) {
            Ok(e) => e,
            Err(e) => return Response::err_for(request, e.to_string()),
        };
        let program = match spackle_asp::parse_program(&encoded.program) {
            Ok(p) => p,
            Err(e) => {
                return Response::err_for(request, format!("generated program invalid: {e}"))
            }
        };
        let goals = [Sym::intern("attr"), Sym::intern("splice_to")];
        report = audit(&repo, &program, &goals);
    }

    let mut r = Response::ok_for(request);
    r.audit_errors = report.count(Severity::Error) as u64;
    r.audit_warnings = report.count(Severity::Warning) as u64;
    r.audit_report = report.render_json();
    r
}

/// Apply one repository delta: declare a new (least-preferred) version
/// on an existing package and partially invalidate the warm ground
/// cache by segment fingerprint. The response reports exactly what the
/// delta cost: how many segments moved, how many warm entries were
/// dropped, and how many survived to keep serving hits.
fn update(state: &ServerState, request: &Request) -> Response {
    if request.package.is_empty() || request.version.is_empty() {
        return Response::err_for(request, "update needs `package` and `version`");
    }
    match state.update(&request.package, &request.version) {
        Ok(outcome) => {
            let mut r = Response::ok_for(request);
            r.repo_revision = outcome.revision;
            r.segments_changed = outcome.segments_changed as u64;
            r.invalidated = outcome.report.invalidated as u64;
            r.retained = outcome.report.retained as u64;
            r
        }
        Err(e) => Response::err_for(request, e),
    }
}

fn stats(state: &ServerState, request: &Request) -> Response {
    let telemetry = state.telemetry().snapshot();
    let cache = state.ground_cache().stats();
    // Absolute fault totals over every reusable-spec source (chained
    // sources already merge their children).
    let faults = state
        .caches()
        .iter()
        .fold(spackle_buildcache::SourceFaultStats::default(), |acc, c| {
            acc.merge(c.fault_stats())
        });
    let mut r = Response::ok_for(request);
    r.requests = telemetry.requests;
    r.concretizations = telemetry.concretizations;
    r.failures = telemetry.failures;
    r.in_flight = telemetry.in_flight;
    r.total_solve_ms = telemetry.total_solve.as_secs_f64() * 1e3;
    r.max_solve_ms = telemetry.max_solve.as_secs_f64() * 1e3;
    r.uptime_s = telemetry.uptime.as_secs_f64();
    r.conflicts = telemetry.conflicts;
    r.decisions = telemetry.decisions;
    r.propagations = telemetry.propagations;
    r.restarts = telemetry.restarts;
    r.ground_hits = cache.hits;
    r.ground_misses = cache.misses;
    r.hit_rate = cache.hit_rate();
    r.cache_entries = cache.entries as u64;
    r.invalidated = cache.invalidated;
    r.delta_updates = cache.delta_updates;
    r.segments_invalidated = cache.segments_invalidated;
    r.segments_retained = cache.segments_retained;
    r.salvaged_translations = cache.salvaged_translations;
    r.repo_revision = state.repo_snapshot().revision();
    r.shed = telemetry.shed;
    r.timeouts = telemetry.timeouts;
    r.budget_exhausted = telemetry.budget_exhausted;
    r.degraded_solves = telemetry.degraded_solves;
    r.worker_panics = telemetry.worker_panics;
    r.cache_retries = faults.retries;
    r.cache_transient_errors = faults.transient_errors;
    r.cache_permanent_errors = faults.permanent_errors;
    r.cache_corrupt_entries = faults.corrupt_entries;
    r.cache_breaker_opens = faults.breaker_opens;
    r.cache_injected_faults = faults.injected_faults;
    r.explains = telemetry.explains;
    r.explains_partial = telemetry.explains_partial;
    r.explain_probes = telemetry.explain_probes;
    r.explain_core_size = telemetry.explain_core_members;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerState;
    use spackle_repo::{PackageBuilder, Repository};
    use std::sync::Arc;

    fn tiny_state() -> Arc<ServerState> {
        let repo = Repository::from_packages([
            PackageBuilder::new("zlib").version("1.3").build().unwrap(),
            PackageBuilder::new("app")
                .version("1.0")
                .depends_on("zlib")
                .build()
                .unwrap(),
            // Outside app's closure: its warm entries must survive a
            // zlib delta untouched.
            PackageBuilder::new("lua").version("5.4.4").build().unwrap(),
        ])
        .unwrap();
        Arc::new(ServerState::new(repo, Vec::new()))
    }

    #[test]
    fn concretize_then_last_then_stats() {
        let state = tiny_state();
        let mut session = Session::new();

        let resp = handle(&state, &mut session, &Request::concretize("app").with_id(1));
        assert!(resp.ok, "{}", resp.error);
        assert_eq!(resp.hashes.len(), 1);
        assert!(!resp.ground_cache_hit, "cold cache");
        // The tiny instance solves by propagation alone (preprocessing
        // leaves nothing to decide), so propagations is the counter
        // guaranteed to move.
        assert!(
            resp.propagations > 0,
            "search effort must surface per solve: {resp:?}"
        );

        let again = handle(&state, &mut session, &Request::concretize("app").with_id(2));
        assert!(again.ok);
        assert!(again.ground_cache_hit, "warm cache");
        assert_eq!(again.hashes, resp.hashes, "warm solve is bit-identical");

        let last = handle(&state, &mut session, &Request::op("last").with_id(3));
        assert!(last.ok);
        assert_eq!(last.id, 3);
        assert_eq!(last.hashes, again.hashes);

        let stats = handle(&state, &mut session, &Request::op("stats"));
        assert_eq!(stats.concretizations, 2);
        assert_eq!(stats.ground_hits, 1);
        assert_eq!(stats.ground_misses, 1);
        assert_eq!(stats.in_flight, 0, "handlers run outside begin_request here");
        assert_eq!(
            stats.decisions,
            resp.decisions + again.decisions,
            "stats must be the exact sum of per-solve search effort"
        );
        assert_eq!(stats.propagations, resp.propagations + again.propagations);
        assert_eq!(stats.conflicts, resp.conflicts + again.conflicts);
        assert_eq!(stats.restarts, resp.restarts + again.restarts);
    }

    #[test]
    fn inconsistent_config_is_a_structured_error() {
        let state = tiny_state();
        let mut session = Session::new();
        let resp = handle(
            &state,
            &mut session,
            &Request::concretize("app").with_config("old+splice"),
        );
        assert!(!resp.ok);
        assert!(
            resp.error.starts_with("configuration:"),
            "structured config error over the wire, got: {}",
            resp.error
        );
    }

    #[test]
    fn invalidate_drops_and_rebuilds() {
        let state = tiny_state();
        let mut session = Session::new();
        handle(&state, &mut session, &Request::concretize("app"));
        assert_eq!(state.ground_cache().len(), 1);

        let inv = handle(&state, &mut session, &Request::op("invalidate"));
        assert!(inv.ok);
        assert_eq!(inv.invalidated, 1);
        assert_eq!(state.ground_cache().len(), 0);

        let resp = handle(&state, &mut session, &Request::concretize("app"));
        assert!(resp.ok);
        assert!(!resp.ground_cache_hit, "fresh revision misses, then repopulates");
        assert_eq!(state.ground_cache().len(), 1);
    }

    #[test]
    fn update_invalidates_touched_segments_and_retains_the_rest() {
        let state = tiny_state();
        let mut session = Session::new();

        // Warm two entries: one whose closure contains zlib, one whose
        // closure does not.
        let app_cold = handle(&state, &mut session, &Request::concretize("app"));
        assert!(app_cold.ok, "{}", app_cold.error);
        let lua_cold = handle(&state, &mut session, &Request::concretize("lua"));
        assert!(lua_cold.ok, "{}", lua_cold.error);
        assert_eq!(state.ground_cache().len(), 2);

        let mut req = Request::op("update");
        req.package = "zlib".to_string();
        req.version = "1.4".to_string();
        let resp = handle(&state, &mut session, &req.clone().with_id(5));
        assert!(resp.ok, "{}", resp.error);
        assert_eq!(resp.id, 5);
        assert_eq!(resp.segments_changed, 1, "only zlib's segment moved");
        assert_eq!(resp.invalidated, 1, "only app's entry references zlib");
        assert_eq!(resp.retained, 1, "lua's entry must survive");
        assert_eq!(state.repo_snapshot().revision(), resp.repo_revision);
        assert_eq!(
            state
                .repo_snapshot()
                .get(spackle_spec::Sym::intern("zlib"))
                .unwrap()
                .versions
                .len(),
            2
        );

        // The retained entry keeps hitting; the touched goal re-prepares
        // against the new world and — the appended version being least
        // preferred — still concretizes to the same DAG.
        let lua_warm = handle(&state, &mut session, &Request::concretize("lua"));
        assert!(lua_warm.ground_cache_hit, "retained entry must keep hitting");
        assert_eq!(lua_warm.hashes, lua_cold.hashes);
        let app_post = handle(&state, &mut session, &Request::concretize("app"));
        assert!(!app_post.ground_cache_hit, "touched goal must re-prepare");
        assert_eq!(app_post.hashes, app_cold.hashes);

        let stats = handle(&state, &mut session, &Request::op("stats"));
        assert_eq!(stats.delta_updates, 1);
        assert_eq!(stats.segments_invalidated, 1);
        assert_eq!(stats.segments_retained, 1);
        assert!(stats.hit_rate > 0.0);

        // Structured failures: duplicate version, unknown package,
        // unparseable version, missing arguments.
        assert!(!handle(&state, &mut session, &req).ok, "re-declaring 1.4");
        let mut ghost = Request::op("update");
        ghost.package = "ghost".to_string();
        ghost.version = "1.0".to_string();
        assert!(!handle(&state, &mut session, &ghost).ok);
        let mut bad = Request::op("update");
        bad.package = "zlib".to_string();
        bad.version = "not a version".to_string();
        assert!(!handle(&state, &mut session, &bad).ok);
        assert!(!handle(&state, &mut session, &Request::op("update")).ok);
    }

    #[test]
    fn unknown_op_and_bad_spec_fail_cleanly() {
        let state = tiny_state();
        let mut session = Session::new();
        assert!(!handle(&state, &mut session, &Request::op("frobnicate")).ok);
        assert!(!handle(&state, &mut session, &Request::concretize("@@@ nope")).ok);
        let empty = handle(&state, &mut session, &Request::op("concretize"));
        assert!(!empty.ok);
        let stats = handle(&state, &mut session, &Request::op("stats"));
        assert_eq!(stats.failures, 3);
    }

    #[test]
    fn unsat_with_explain_carries_a_provenance_mapped_core() {
        // app's two deps pin zlib to disjoint versions: a guaranteed
        // minimal two-directive conflict.
        let repo = Repository::from_packages([
            PackageBuilder::new("zlib")
                .version("1.3")
                .version("1.2.11")
                .build()
                .unwrap(),
            PackageBuilder::new("liba")
                .version("1.0")
                .depends_on("zlib@1.2")
                .build()
                .unwrap(),
            PackageBuilder::new("libb")
                .version("1.0")
                .depends_on("zlib@1.3")
                .build()
                .unwrap(),
            PackageBuilder::new("app")
                .version("2.0")
                .depends_on("liba")
                .depends_on("libb")
                .build()
                .unwrap(),
        ])
        .unwrap();
        let state = Arc::new(ServerState::new(repo, Vec::new()));
        let mut session = Session::new();

        // Without the flag: plain unsat, no explanation paid for.
        let plain = handle(&state, &mut session, &Request::concretize("app"));
        assert!(!plain.ok);
        assert_eq!(plain.error_kind, "unsat");
        assert!(plain.explanation.is_empty());

        let mut req = Request::concretize("app").with_id(9);
        req.explain = true;
        let resp = handle(&state, &mut session, &req);
        assert!(!resp.ok);
        assert_eq!(resp.error_kind, "unsat");
        assert!(resp.explain_minimal, "two disjoint pins minimize fully");
        assert!(resp.explain_core_size > 0);
        for frag in ["SPKL-E002", "zlib@1.2", "zlib@1.3"] {
            assert!(
                resp.explanation.contains(frag),
                "explanation must name both pinned directives, missing {frag}: {}",
                resp.explanation
            );
        }
        // Survives a wire round trip.
        let back = Response::from_line(&resp.to_line()).unwrap();
        assert_eq!(back.explanation, resp.explanation);
        assert_eq!(back.explain_probes, resp.explain_probes);

        let stats = handle(&state, &mut session, &Request::op("stats"));
        assert_eq!(stats.explains, 1);
        assert_eq!(stats.explains_partial, 0);
        assert_eq!(stats.explain_core_size, resp.explain_core_size);
        assert_eq!(stats.explain_probes, resp.explain_probes);
    }

    #[test]
    fn audit_repo_and_program() {
        let state = tiny_state();
        let mut session = Session::new();
        let repo_only = handle(&state, &mut session, &Request::op("audit"));
        assert!(repo_only.ok);
        assert_eq!(repo_only.audit_errors, 0, "{}", repo_only.audit_report);

        let mut with_goal = Request::op("audit");
        with_goal.spec = "app".to_string();
        let full = handle(&state, &mut session, &with_goal);
        assert!(full.ok);
        assert_eq!(full.audit_errors, 0, "{}", full.audit_report);
        assert!(!full.audit_report.is_empty());
    }
}
