//! `spackled` — the long-lived concretization daemon.
//!
//! Boots the RADIUSS universe (the paper's experimental stack, with the
//! mpiabi shim package), builds the local and public buildcaches once,
//! and serves concretize / audit / stats / update / invalidate requests
//! over line-delimited JSON on TCP until a client sends `shutdown`.
//!
//! ```text
//! spackled [--listen ADDR] [--public-dags N] [--seed S]
//!          [--max-in-flight N] [--request-timeout-ms MS]
//!          [--drain-timeout-ms MS] [--smoke] [--chaos-smoke]
//! ```
//!
//! * `--listen ADDR`   — bind address (default `127.0.0.1:7654`;
//!   use port `0` for an ephemeral port, printed at boot)
//! * `--public-dags N` — synthesized public-cache DAGs (default `100`;
//!   `0` serves from the local cache alone)
//! * `--seed S`        — public-cache synthesis seed (default `42`)
//! * `--max-in-flight N` — shed concretize requests past N in flight
//!   with a structured `overloaded` response (default `0` = no limit)
//! * `--request-timeout-ms MS` — default wall-clock deadline for
//!   concretize requests that carry no `timeout_ms` of their own
//!   (default `0` = no deadline)
//! * `--drain-timeout-ms MS` — how long shutdown waits for in-flight
//!   workers before abandoning them (default `5000`)
//! * `--smoke`         — boot on an ephemeral port, run a scripted
//!   ping / concretize / stats / update / invalidate / shutdown
//!   exchange against the live server, and exit nonzero on any protocol
//!   mismatch. Used by CI's `server-smoke` job.
//! * `--chaos-smoke`   — run the fault-injection self-check: a seeded
//!   sweep of error / corruption / outage schedules solved differentially
//!   against per-source-subset oracles, plus a live overload + deadline
//!   exercise against a latency-injected server. Prints a one-line JSON
//!   summary (`schedules`, `ok`, `degraded`, `structured_errors`,
//!   `mismatches`, `retries`, `breaker_opens`, `shed`, `timeouts`) and
//!   exits nonzero on any violation. Used by CI's `chaos-smoke` job.

use spackle_buildcache::{
    CacheSource, ChainedCache, FaultConfig, FaultInjector, Labeled, RetryPolicy,
};
use spackle_core::{Concretizer, ConcretizerConfig, CoreError};
use spackle_radiuss::{local_cache, public_cache, radiuss_repo, with_mpiabi};
use spackle_server::server::{OpsConfig, ServerState};
use spackle_server::{serve, Client, Request};
use spackle_spec::parse_spec;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    listen: String,
    public_dags: usize,
    seed: u64,
    max_in_flight: usize,
    request_timeout_ms: u64,
    drain_timeout_ms: u64,
    smoke: bool,
    chaos_smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7654".to_string(),
        public_dags: 100,
        seed: 42,
        max_in_flight: 0,
        request_timeout_ms: 0,
        drain_timeout_ms: 5000,
        smoke: false,
        chaos_smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        fn parsed<T: std::str::FromStr>(name: &str, v: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("{name}: {e}"))
        }
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--public-dags" => {
                args.public_dags = parsed("--public-dags", value("--public-dags")?)?;
            }
            "--seed" => args.seed = parsed("--seed", value("--seed")?)?,
            "--max-in-flight" => {
                args.max_in_flight = parsed("--max-in-flight", value("--max-in-flight")?)?;
            }
            "--request-timeout-ms" => {
                args.request_timeout_ms =
                    parsed("--request-timeout-ms", value("--request-timeout-ms")?)?;
            }
            "--drain-timeout-ms" => {
                args.drain_timeout_ms =
                    parsed("--drain-timeout-ms", value("--drain-timeout-ms")?)?;
            }
            "--smoke" => args.smoke = true,
            "--chaos-smoke" => args.chaos_smoke = true,
            "--help" | "-h" => {
                println!(
                    "usage: spackled [--listen ADDR] [--public-dags N] [--seed S] \
                     [--max-in-flight N] [--request-timeout-ms MS] [--drain-timeout-ms MS] \
                     [--smoke] [--chaos-smoke]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn ops_config(args: &Args) -> OpsConfig {
    OpsConfig {
        max_in_flight: args.max_in_flight,
        default_timeout: (args.request_timeout_ms > 0)
            .then(|| Duration::from_millis(args.request_timeout_ms)),
        drain_timeout: Duration::from_millis(args.drain_timeout_ms),
    }
}

/// Build the resident state: the RADIUSS repository (with the mpiabi
/// shim, so splice goals resolve) and the local + public caches as
/// *separate* labeled sources. Keeping them separate (instead of
/// pre-chaining them) is what lets a degraded solve report exactly which
/// backend it dropped — the provenance the `degraded` / `skipped_sources`
/// response fields carry.
fn boot_state(public_dags: usize, seed: u64, ops: OpsConfig) -> ServerState {
    let base = radiuss_repo();
    let repo = with_mpiabi(&base);
    eprintln!(
        "spackled: repository ready ({} packages, revision {})",
        repo.len(),
        repo.revision()
    );

    let local = local_cache(&base);
    eprintln!("spackled: local cache ready ({} entries)", local.len());
    let mut caches: Vec<Arc<dyn CacheSource>> = Vec::new();
    caches.push(Arc::new(Labeled::new(local, "local")));
    if public_dags > 0 {
        let public = public_cache(&base, public_dags, seed);
        eprintln!(
            "spackled: public cache ready ({} entries, {public_dags} dags, seed {seed})",
            public.len()
        );
        caches.push(Arc::new(Labeled::new(public, "public")));
    }
    ServerState::new(repo, caches).with_ops(ops)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("spackled: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.smoke {
        return match smoke(args.public_dags, args.seed) {
            Ok(()) => {
                println!("spackled: smoke OK");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("spackled: smoke FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.chaos_smoke {
        return match chaos_smoke(args.seed) {
            Ok(summary) => {
                println!("{summary}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("spackled: chaos-smoke FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let state = Arc::new(boot_state(args.public_dags, args.seed, ops_config(&args)));
    let server = match serve(state, &args.listen) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("spackled: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    println!("spackled: listening on {}", server.addr());
    match server.join() {
        Ok(report) => {
            println!(
                "spackled: shut down cleanly ({} workers joined, {} abandoned, {} panicked)",
                report.workers_joined, report.workers_abandoned, report.worker_panics
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("spackled: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The scripted end-to-end self-check behind `--smoke`: every assertion
/// here is a protocol guarantee CI relies on.
fn smoke(public_dags: usize, seed: u64) -> Result<(), String> {
    // Small universe: the smoke job checks the protocol, not throughput.
    let state = Arc::new(boot_state(public_dags.min(25), seed, OpsConfig::default()));
    let server = serve(state, "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();
    eprintln!("spackled: smoke server on {addr}");
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;

    fn expect(cond: bool, what: &str) -> Result<(), String> {
        if cond {
            Ok(())
        } else {
            Err(what.to_string())
        }
    }

    let ping = client.call(Request::op("ping"))?;
    expect(ping.ok && ping.protocol == spackle_server::PROTOCOL_VERSION, "ping")?;

    // Cold solve, then the identical goal again: the second must be a
    // warm ground-cache hit with bit-identical hashes.
    let cold = client.concretize("hypre ^mpiabi")?;
    expect(cold.ok, "cold concretize failed")?;
    expect(!cold.ground_cache_hit, "first solve must miss the ground cache")?;
    expect(!cold.hashes.is_empty(), "cold solve returned no hashes")?;
    expect(!cold.degraded, "no faults injected, must not degrade")?;
    let warm = client.concretize("hypre ^mpiabi")?;
    expect(warm.ok, "warm concretize failed")?;
    expect(warm.ground_cache_hit, "second solve must hit the ground cache")?;
    expect(warm.hashes == cold.hashes, "warm hashes differ from cold")?;
    expect(warm.solve_ms >= 0.0, "bad solve_ms")?;

    let audit = client.call(Request::op("audit"))?;
    expect(audit.ok, "audit failed")?;
    expect(audit.audit_errors == 0, "repository audit reported errors")?;

    let stats = client.stats()?;
    expect(stats.ok, "stats failed")?;
    expect(stats.concretizations == 2, "expected 2 concretizations")?;
    expect(stats.ground_hits == 1 && stats.ground_misses == 1, "hit/miss counters")?;
    expect(stats.failures == 0, "unexpected failures recorded")?;
    expect(stats.cache_entries >= 1, "ground cache should be warm")?;
    expect(
        stats.shed == 0 && stats.timeouts == 0 && stats.worker_panics == 0,
        "fault counters must be zero on a healthy run",
    )?;
    let rev_before = stats.repo_revision;

    // Delta update outside the goal's closure: lua gains a version, but
    // hypre's segments are untouched — the warm entry must be retained
    // and keep hitting.
    let mut unrelated = Request::op("update");
    unrelated.package = "lua".to_string();
    unrelated.version = "5.4.6".to_string();
    let up = client.call(unrelated)?;
    expect(up.ok, "unrelated update failed")?;
    expect(up.segments_changed >= 1, "update moved no segments")?;
    expect(up.invalidated == 0, "unrelated update must invalidate nothing")?;
    expect(up.retained >= 1, "unrelated update must retain the warm entry")?;
    expect(up.repo_revision > rev_before, "update must bump the revision")?;
    let still_warm = client.concretize("hypre ^mpiabi")?;
    expect(still_warm.ok, "post-update concretize failed")?;
    expect(
        still_warm.ground_cache_hit,
        "retained entry must hit after an unrelated update",
    )?;
    expect(still_warm.hashes == cold.hashes, "retained hit changed the answer")?;

    // Delta update inside the closure: hypre itself gains a (least
    // preferred) version. Its entry is invalidated; the re-solve misses
    // but concretizes to the same DAG.
    let mut touching = Request::op("update");
    touching.package = "hypre".to_string();
    touching.version = "99.0.0".to_string();
    let up = client.call(touching)?;
    expect(up.ok, "touching update failed")?;
    expect(up.invalidated >= 1, "touching update must drop the warm entry")?;
    let delta_solve = client.concretize("hypre ^mpiabi")?;
    expect(delta_solve.ok, "post-delta concretize failed")?;
    expect(!delta_solve.ground_cache_hit, "touched goal must re-prepare")?;
    expect(
        delta_solve.hashes == cold.hashes,
        "least-preferred version changed the solution",
    )?;

    // Structured update failures keep the connection alive.
    let mut ghost = Request::op("update");
    ghost.package = "no-such-package".to_string();
    ghost.version = "1.0".to_string();
    expect(!client.call(ghost)?.ok, "unknown package must fail")?;

    let stats = client.stats()?;
    expect(stats.delta_updates == 2, "expected 2 delta updates")?;
    expect(stats.segments_invalidated >= 1, "no segments invalidated")?;
    expect(stats.segments_retained >= 1, "no segments retained")?;

    // Invalidate: revision bumps, warm entries drop, next solve misses
    // but still produces the same answer.
    let inv = client.invalidate()?;
    expect(inv.ok, "invalidate failed")?;
    expect(inv.repo_revision > rev_before, "revision must increase")?;
    expect(inv.invalidated >= 1, "invalidate dropped nothing")?;
    let rebuilt = client.concretize("hypre ^mpiabi")?;
    expect(rebuilt.ok, "post-invalidate concretize failed")?;
    expect(!rebuilt.ground_cache_hit, "post-invalidate solve must miss")?;
    expect(rebuilt.hashes == cold.hashes, "post-invalidate hashes differ")?;

    // A structured config error must arrive as a failure, not a panic.
    let bad = client.call(Request::concretize("hypre").with_config("old+splice"))?;
    expect(!bad.ok, "inconsistent config must fail")?;
    expect(bad.error.starts_with("configuration:"), "config error not structured")?;
    expect(bad.error_kind == "config", "config error must carry its kind")?;

    let down = client.shutdown()?;
    expect(down.ok, "shutdown refused")?;
    let report = server.join().map_err(|e| e.to_string())?;
    expect(report.workers_abandoned == 0, "drain abandoned workers")?;
    expect(report.worker_panics == 0, "a worker panicked")?;
    Ok(())
}

/// One schedule's fault pair (local backend, public backend), derived
/// deterministically from the sweep seed and the schedule index.
fn fault_pair(seed: u64, k: u64) -> (FaultConfig, FaultConfig) {
    let s = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(k.wrapping_mul(0x2545_f491_4f6c_dd1d));
    let none = FaultConfig::default();
    match k % 8 {
        0 => (none, FaultConfig::flaky(s, 0.5)),
        1 => (FaultConfig::flaky(s, 0.3), none),
        2 => (none, FaultConfig::down()),
        3 => (FaultConfig::hard_down(), none),
        4 => (
            none,
            FaultConfig {
                seed: s,
                corrupt_rate: 0.5,
                ..FaultConfig::default()
            },
        ),
        5 => (
            FaultConfig {
                seed: s,
                fail_calls: Some(0..6),
                ..FaultConfig::default()
            },
            FaultConfig::flaky(s ^ 1, 0.2),
        ),
        6 => (
            FaultConfig::flaky(s, 0.8),
            FaultConfig {
                seed: s ^ 2,
                corrupt_rate: 0.3,
                ..FaultConfig::default()
            },
        ),
        _ => (
            FaultConfig {
                seed: s,
                error_rate: 0.3,
                transient_ratio: 0.5,
                corrupt_rate: 0.2,
                ..FaultConfig::default()
            },
            FaultConfig::flaky(s ^ 3, 0.5),
        ),
    }
}

/// The fault-injection self-check behind `--chaos-smoke` (a fast subset
/// of the `chaos` differential test suite, runnable against the shipped
/// binary). Returns the JSON summary line on success.
fn chaos_smoke(seed: u64) -> Result<String, String> {
    let base = radiuss_repo();
    let repo = with_mpiabi(&base);
    let local = local_cache(&base);
    let public = public_cache(&base, 25, seed);
    let goals = ["hypre ^mpiabi", "mfem ^mpich", "conduit", "py-shroud"];
    let config = ConcretizerConfig::splice_spack();

    // Per-goal oracles for every subset of surviving sources (bit 0 =
    // local, bit 1 = public): a degraded solve that dropped a backend
    // must be bit-identical to a fault-free solve that never had it.
    eprintln!("spackled: chaos-smoke: computing {} oracles", goals.len() * 4);
    let mut oracle: Vec<Vec<Vec<String>>> = Vec::new();
    for goal in &goals {
        let spec = parse_spec(goal).map_err(|e| format!("goal {goal:?}: {e}"))?;
        let mut per_subset = Vec::new();
        for subset in 0u32..4 {
            let mut conc = Concretizer::new(&repo).with_config(config.clone());
            if subset & 1 != 0 {
                conc = conc.with_reusable(local.clone());
            }
            if subset & 2 != 0 {
                conc = conc.with_reusable(public.clone());
            }
            let sol = conc
                .concretize(&spec)
                .map_err(|e| format!("oracle {goal:?} subset {subset}: {e}"))?;
            per_subset.push(
                sol.specs
                    .iter()
                    .map(|s| s.dag_hash().to_string())
                    .collect(),
            );
        }
        oracle.push(per_subset);
    }

    // Keep retry sleeps tiny: the smoke job replays many schedules and
    // the backoff *logic* is what matters, not the wall time.
    let policy = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_micros(200),
        max_backoff: Duration::from_millis(2),
        breaker_threshold: 2,
        breaker_cooldown: 4,
        ..RetryPolicy::default()
    };

    let n_schedules: u64 = 16;
    let mut schedules = 0u64;
    let mut ok = 0u64;
    let mut degraded = 0u64;
    let mut structured_errors = 0u64;
    let mut mismatches = 0u64;
    let mut retries = 0u64;
    let mut breaker_opens = 0u64;
    let mut injected = 0u64;

    for k in 0..n_schedules {
        let (cfg_local, cfg_public) = fault_pair(seed, k);
        for (gi, goal) in goals.iter().enumerate() {
            schedules += 1;
            let spec = parse_spec(goal).expect("validated above");
            let src_local = ChainedCache::with(vec![
                FaultInjector::new(local.clone(), "local").with_config(cfg_local.clone()),
            ])
            .with_policy(policy.clone());
            let src_public = ChainedCache::with(vec![
                FaultInjector::new(public.clone(), "public").with_config(cfg_public.clone()),
            ])
            .with_policy(policy.clone());
            let conc = Concretizer::new(&repo)
                .with_config(config.clone())
                .with_reusable(src_local)
                .with_reusable(src_public);
            match conc.concretize(&spec) {
                Ok(sol) => {
                    retries += sol.stats.cache_retries;
                    breaker_opens += sol.stats.cache_breaker_opens;
                    injected += sol.stats.cache_injected_faults;
                    // Which sources survived? Compare against the oracle
                    // for exactly that subset.
                    let mut subset = 0b11u32;
                    for skipped in &sol.stats.skipped_sources {
                        if skipped.backend.contains("local") {
                            subset &= !1;
                        }
                        if skipped.backend.contains("public") {
                            subset &= !2;
                        }
                    }
                    let hashes: Vec<String> = sol
                        .specs
                        .iter()
                        .map(|s| s.dag_hash().to_string())
                        .collect();
                    if hashes == oracle[gi][subset as usize] {
                        if sol.stats.degraded {
                            degraded += 1;
                        } else {
                            ok += 1;
                        }
                    } else {
                        mismatches += 1;
                        eprintln!(
                            "spackled: chaos-smoke MISMATCH: schedule {k} goal {goal:?} \
                             subset {subset:#04b}: {hashes:?} != {:?}",
                            oracle[gi][subset as usize]
                        );
                    }
                }
                // Structured errors are an acceptable outcome (the
                // gate is "right answer or honest error, never a wrong
                // answer / hang / panic").
                Err(e @ CoreError::Cache { .. })
                | Err(e @ CoreError::Cancelled { .. })
                | Err(e @ CoreError::BudgetExhausted { .. }) => {
                    let _ = e.kind();
                    structured_errors += 1;
                }
                Err(e) => {
                    return Err(format!(
                        "schedule {k} goal {goal:?}: unexpected error class: {e}"
                    ));
                }
            }
        }
    }

    // Live-server leg: a latency-injected backend plus a 1-request
    // in-flight cap must produce structured timeouts and sheds — and
    // exact counters — without dropping a single connection.
    eprintln!("spackled: chaos-smoke: live overload/deadline exercise");
    let slow: Arc<dyn CacheSource> = Arc::new(
        ChainedCache::with(vec![FaultInjector::new(local.clone(), "local")
            .with_config(FaultConfig::slow(Duration::from_millis(40)))])
        .with_policy(RetryPolicy::no_retries()),
    );
    let ops = OpsConfig {
        max_in_flight: 1,
        default_timeout: None,
        drain_timeout: Duration::from_secs(5),
    };
    let state = Arc::new(ServerState::new(repo.clone(), vec![slow]).with_ops(ops));
    let server = serve(state, "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();

    // Deadline: the injected 40 ms/call latency guarantees a 1 ms budget
    // expires during encoding, long before the solver runs.
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut timed = Request::concretize("hypre ^mpiabi");
    timed.timeout_ms = 1;
    let r = client.call(timed)?;
    if r.ok || r.error_kind != "timeout" {
        return Err(format!(
            "expected a structured timeout, got ok={} kind={:?} error={:?}",
            r.ok, r.error_kind, r.error
        ));
    }

    // Overload: hold one slow solve in flight, then probe; every probe
    // must shed with a structured `overloaded` answer.
    let held = std::thread::spawn({
        let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        move || c.concretize("mfem ^mpich")
    });
    std::thread::sleep(Duration::from_millis(20));
    let mut shed_seen = 0u64;
    for _ in 0..3 {
        let mut probe = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let r = probe.call(Request::concretize("hypre ^mpiabi"))?;
        if !r.ok && r.error_kind == "overloaded" && r.retry_after_ms > 0 {
            shed_seen += 1;
        }
    }
    let held_resp = held
        .join()
        .map_err(|_| "held solve thread panicked".to_string())??;
    if !held_resp.ok {
        return Err(format!("held solve failed: {}", held_resp.error));
    }
    if shed_seen == 0 {
        return Err("no probe was shed under a saturated server".to_string());
    }

    let stats = client.stats()?;
    if stats.timeouts != 1 || stats.shed != shed_seen || stats.worker_panics != 0 {
        return Err(format!(
            "telemetry mismatch: timeouts={} (want 1) shed={} (want {shed_seen}) panics={}",
            stats.timeouts, stats.shed, stats.worker_panics
        ));
    }
    client.shutdown()?;
    let report = server.join().map_err(|e| e.to_string())?;
    if report.workers_abandoned != 0 || report.worker_panics != 0 {
        return Err(format!("bad drain: {report:?}"));
    }

    if mismatches > 0 {
        return Err(format!("{mismatches} differential mismatches"));
    }
    if injected == 0 || retries == 0 {
        return Err(format!(
            "fault schedule too tame: injected={injected} retries={retries}"
        ));
    }

    Ok(format!(
        "{{\"schedules\":{},\"ok\":{},\"degraded\":{},\"structured_errors\":{},\
         \"mismatches\":{},\"retries\":{},\"breaker_opens\":{},\"injected_faults\":{},\
         \"shed\":{},\"timeouts\":{}}}",
        schedules,
        ok,
        degraded,
        structured_errors,
        mismatches,
        retries,
        breaker_opens,
        injected,
        shed_seen,
        stats.timeouts,
    ))
}
