//! `spackled` — the long-lived concretization daemon.
//!
//! Boots the RADIUSS universe (the paper's experimental stack, with the
//! mpiabi shim package), builds the local and public buildcaches once,
//! and serves concretize / audit / stats / invalidate requests over
//! line-delimited JSON on TCP until a client sends `shutdown`.
//!
//! ```text
//! spackled [--listen ADDR] [--public-dags N] [--seed S] [--smoke]
//! ```
//!
//! * `--listen ADDR`   — bind address (default `127.0.0.1:7654`;
//!   use port `0` for an ephemeral port, printed at boot)
//! * `--public-dags N` — synthesized public-cache DAGs (default `100`;
//!   `0` serves from the local cache alone)
//! * `--seed S`        — public-cache synthesis seed (default `42`)
//! * `--smoke`         — boot on an ephemeral port, run a scripted
//!   ping / concretize / stats / invalidate / shutdown exchange against
//!   the live server, and exit nonzero on any protocol mismatch. Used
//!   by CI's `server-smoke` job.

use spackle_buildcache::{CacheSource, ChainedCache};
use spackle_radiuss::{local_cache, public_cache, radiuss_repo, with_mpiabi};
use spackle_server::server::ServerState;
use spackle_server::{serve, Client, Request};
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    listen: String,
    public_dags: usize,
    seed: u64,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7654".to_string(),
        public_dags: 100,
        seed: 42,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--public-dags" => {
                args.public_dags = value("--public-dags")?
                    .parse()
                    .map_err(|e| format!("--public-dags: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "usage: spackled [--listen ADDR] [--public-dags N] [--seed S] [--smoke]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

/// Build the resident state: the RADIUSS repository (with the mpiabi
/// shim, so splice goals resolve) and the chained local + public caches.
fn boot_state(public_dags: usize, seed: u64) -> ServerState {
    let base = radiuss_repo();
    let repo = with_mpiabi(&base);
    eprintln!(
        "spackled: repository ready ({} packages, revision {})",
        repo.len(),
        repo.revision()
    );

    let local = local_cache(&base);
    eprintln!("spackled: local cache ready ({} entries)", local.len());
    let mut caches: Vec<Arc<dyn CacheSource>> = Vec::new();
    if public_dags > 0 {
        let public = public_cache(&base, public_dags, seed);
        eprintln!(
            "spackled: public cache ready ({} entries, {public_dags} dags, seed {seed})",
            public.len()
        );
        caches.push(Arc::new(ChainedCache::with(vec![local, public])));
    } else {
        caches.push(Arc::new(local));
    }
    ServerState::new(repo, caches)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("spackled: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.smoke {
        return match smoke(args.public_dags, args.seed) {
            Ok(()) => {
                println!("spackled: smoke OK");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("spackled: smoke FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let state = Arc::new(boot_state(args.public_dags, args.seed));
    let server = match serve(state, &args.listen) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("spackled: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    println!("spackled: listening on {}", server.addr());
    server.join();
    println!("spackled: shut down cleanly");
    ExitCode::SUCCESS
}

/// The scripted end-to-end self-check behind `--smoke`: every assertion
/// here is a protocol guarantee CI relies on.
fn smoke(public_dags: usize, seed: u64) -> Result<(), String> {
    // Small universe: the smoke job checks the protocol, not throughput.
    let state = Arc::new(boot_state(public_dags.min(25), seed));
    let server = serve(state, "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();
    eprintln!("spackled: smoke server on {addr}");
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;

    fn expect(cond: bool, what: &str) -> Result<(), String> {
        if cond {
            Ok(())
        } else {
            Err(what.to_string())
        }
    }

    let ping = client.call(Request::op("ping"))?;
    expect(ping.ok && ping.protocol == spackle_server::PROTOCOL_VERSION, "ping")?;

    // Cold solve, then the identical goal again: the second must be a
    // warm ground-cache hit with bit-identical hashes.
    let cold = client.concretize("hypre ^mpiabi")?;
    expect(cold.ok, "cold concretize failed")?;
    expect(!cold.ground_cache_hit, "first solve must miss the ground cache")?;
    expect(!cold.hashes.is_empty(), "cold solve returned no hashes")?;
    let warm = client.concretize("hypre ^mpiabi")?;
    expect(warm.ok, "warm concretize failed")?;
    expect(warm.ground_cache_hit, "second solve must hit the ground cache")?;
    expect(warm.hashes == cold.hashes, "warm hashes differ from cold")?;
    expect(warm.solve_ms >= 0.0, "bad solve_ms")?;

    let audit = client.call(Request::op("audit"))?;
    expect(audit.ok, "audit failed")?;
    expect(audit.audit_errors == 0, "repository audit reported errors")?;

    let stats = client.stats()?;
    expect(stats.ok, "stats failed")?;
    expect(stats.concretizations == 2, "expected 2 concretizations")?;
    expect(stats.ground_hits == 1 && stats.ground_misses == 1, "hit/miss counters")?;
    expect(stats.failures == 0, "unexpected failures recorded")?;
    expect(stats.cache_entries >= 1, "ground cache should be warm")?;
    let rev_before = stats.repo_revision;

    // Invalidate: revision bumps, warm entries drop, next solve misses
    // but still produces the same answer.
    let inv = client.invalidate()?;
    expect(inv.ok, "invalidate failed")?;
    expect(inv.repo_revision > rev_before, "revision must increase")?;
    expect(inv.invalidated >= 1, "invalidate dropped nothing")?;
    let rebuilt = client.concretize("hypre ^mpiabi")?;
    expect(rebuilt.ok, "post-invalidate concretize failed")?;
    expect(!rebuilt.ground_cache_hit, "post-invalidate solve must miss")?;
    expect(rebuilt.hashes == cold.hashes, "post-invalidate hashes differ")?;

    // A structured config error must arrive as a failure, not a panic.
    let bad = client.call(Request::concretize("hypre").with_config("old+splice"))?;
    expect(!bad.ok, "inconsistent config must fail")?;
    expect(bad.error.starts_with("configuration:"), "config error not structured")?;

    let down = client.shutdown()?;
    expect(down.ok, "shutdown refused")?;
    server.join();
    Ok(())
}
